#!/usr/bin/env python3
"""A complete RTL verification flow for a generated GeAr adder.

What a hardware team would run before taping the open-sourced RTL into a
design:

1. build the netlist and *prove* it equivalent to the behavioural model
   (exhaustive — every input pattern — for this 10-bit instance),
2. emit Verilog, parse it back, prove the round trip equivalent too,
3. stuck-at fault simulation: coverage and how much the §3.3 error
   detector observes for free,
4. emit a self-checking Verilog testbench for an external simulator.
"""

import pathlib

from repro.core.gear import GeArAdder, GeArConfig
from repro.rtl.builders import build_gear
from repro.rtl.equivalence import check_equivalence
from repro.rtl.faults import fault_simulation
from repro.rtl.sim import simulate_bus
from repro.rtl.testbench import generate_testbench
from repro.rtl.verilog import to_verilog
from repro.rtl.verilog_parser import parse_verilog

import numpy as np


def main() -> None:
    config = GeArConfig(10, 2, 4)
    adder = GeArAdder(config)
    netlist = build_gear(10, 2, 4)

    # 1. netlist vs behavioural model, exhaustively (2^20 patterns).
    size = 1 << 10
    vals = np.arange(size, dtype=np.int64)
    a = np.repeat(vals, size)
    b = np.tile(vals, size)
    assert np.array_equal(
        simulate_bus(netlist, {"A": a, "B": b}, "S"),
        np.asarray(adder.add(a, b)),
    )
    print(f"[1] netlist == behavioural model on all {size * size} patterns")

    # 2. Verilog round trip, proven equivalent.
    source = to_verilog(netlist)
    parsed = parse_verilog(source)
    report = check_equivalence(netlist, parsed)
    assert report.equivalent and report.exhaustive
    print(f"[2] Verilog round trip proven equivalent "
          f"({report.vectors_checked} patterns, exhaustive)")

    # 3. stuck-at fault campaign.
    faults = fault_simulation(netlist, vectors=256, seed=11)
    print(f"[3] stuck-at faults: {faults.total} total, "
          f"coverage {faults.coverage:.1%}, "
          f"ERR-flag observability {faults.err_observability:.1%}")
    if faults.undetected:
        sample = ", ".join(str(f) for f in faults.undetected[:4])
        print(f"    undetectable (redundant logic): {sample}"
              f"{' ...' if len(faults.undetected) > 4 else ''}")

    # 4. artefacts for an external simulator.
    out_dir = pathlib.Path(__file__).parent
    (out_dir / "gear_10_2_4.v").write_text(source)
    (out_dir / "gear_10_2_4_tb.v").write_text(
        generate_testbench(netlist, vectors=100)
    )
    print("[4] wrote gear_10_2_4.v and gear_10_2_4_tb.v "
          "(run: iverilog gear_10_2_4_tb.v gear_10_2_4.v && ./a.out)")


if __name__ == "__main__":
    main()
