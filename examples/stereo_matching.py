#!/usr/bin/env python3
"""Variable-window stereo matching on approximate integral images.

The paper's Image Integral application exists to serve kernels like
Veksler's fast variable-window stereo [14].  This demo runs the full loop:
synthetic stereo pair -> absolute-difference cost -> box aggregation via a
2-D integral image built with approximate adders -> winner-take-all
disparities -> accuracy against the known ground truth.

It also demonstrates an error-amplification effect worth knowing before
deploying: box sums are *differences* of four large integral values, so
the integral stage's absolute errors matter more than its relative ones —
an aggressive GeAr config that is fine for plain integrals degrades box
aggregation badly.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.apps.boxfilter import disparity_map
from repro.apps.images import natural_image
from repro.core.gear import GeArAdder, GeArConfig

TRUE_DISPARITY = 4


def main() -> None:
    right = natural_image(48, 80, seed=21)
    left = np.roll(right, TRUE_DISPARITY, axis=1)
    interior = (slice(10, 38), slice(20, 70))

    exact = disparity_map(left, right, max_disparity=8, radius=2)
    exact_acc = float(np.mean(exact[interior] == TRUE_DISPARITY))
    print(f"exact matcher: {exact_acc:.1%} of interior pixels at the "
          f"true disparity ({TRUE_DISPARITY})")

    rows = []
    for (r, p) in [(4, 12), (4, 8), (5, 5), (2, 2)]:
        strict = (20 - r - p) % r == 0
        adder = GeArAdder(GeArConfig(20, r, p, allow_partial=not strict))
        disp = disparity_map(left, right, max_disparity=8, radius=2,
                             adder=adder)
        acc = float(np.mean(disp[interior] == TRUE_DISPARITY))
        agree = float(np.mean(disp[interior] == exact[interior]))
        rows.append(
            (f"GeAr(20,{r},{p})", f"{adder.error_probability():.5f}",
             f"{acc:.1%}", f"{agree:.1%}")
        )
    print(format_table(
        ["integral adder", "adder p(err)", "true-disparity rate",
         "agrees with exact"],
        rows,
        title="Stereo accuracy vs integral-image adder configuration",
    ))
    print(
        "\nNote the cliff between (4,8) and (5,5): box aggregation "
        "differences four integral corners, amplifying the integral "
        "stage's absolute errors. Accuracy knobs must be set for the "
        "*consumer* of the integral, not the integral itself."
    )


if __name__ == "__main__":
    main()
