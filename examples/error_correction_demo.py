#!/usr/bin/env python3
"""Configurable error correction (§3.3) in action.

Shows the detector/corrector on the Fig. 4 configuration GeAr(12,2,6):

* cycle accounting (1 cycle speculative, +1 per corrected sub-adder),
* the error-control select signal: enabling correction on only the MSB
  sub-adder removes most of the error magnitude at a fraction of the
  worst-case latency,
* measured mean cycles vs the paper's best/average/worst model.
"""

import numpy as np

from repro import ErrorCorrector, GeArAdder, GeArConfig
from repro.analysis.tables import format_table
from repro.timing.latency import correction_cycle_counts
from repro.utils.distributions import UniformOperands


def main() -> None:
    adder = GeArAdder(GeArConfig(12, 2, 6))  # Fig. 4: k = 3 sub-adders
    k = adder.config.k
    print(adder.config.describe())
    print(f"analytic error probability: {adder.error_probability():.6f}\n")

    a, b = 0b111111111111, 0b000000000001  # worst case: carries everywhere
    print("worst-case operands: every sub-adder misses its carry")
    result = ErrorCorrector(adder).add(a, b)
    print(f"  corrected={result.value} exact={a + b} "
          f"cycles={result.cycles} corrections={result.corrections}\n")

    samples = 100_000
    ops_a, ops_b = UniformOperands(12).sample_pairs(samples, seed=3)
    exact = ops_a + ops_b

    rows = []
    masks = {
        "none": [False, False],
        "MSB only": [False, True],
        "LSB only": [True, False],
        "all": [True, True],
    }
    for label, mask in masks.items():
        corrector = ErrorCorrector(adder, enabled=mask)
        res = corrector.add(ops_a, ops_b)
        err = np.abs(np.asarray(res.value) - exact)
        rows.append(
            (
                label,
                f"{np.mean(err > 0):.6f}",
                f"{err.mean():.4f}",
                f"{np.asarray(res.cycles).mean():.4f}",
                int(np.asarray(res.cycles).max()),
            )
        )
    print(format_table(
        ["correction mask", "residual error rate", "residual MED",
         "mean cycles", "max cycles"],
        rows,
        title=f"Selective correction over {samples} uniform additions",
    ))

    print("\npaper timing model (extra cycles per erroneous addition):")
    p = adder.error_probability()
    for scenario, cycles in correction_cycle_counts(k).items():
        print(f"  {scenario:8s}: 1 + p·{cycles:g} = "
              f"{1 + p * cycles:.6f} cycles/addition on average")


if __name__ == "__main__":
    main()
