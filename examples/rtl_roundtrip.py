#!/usr/bin/env python3
"""RTL flow: generate Verilog, parse it back, prove equivalence, time it.

The paper open-sources synthesizable RTL for its adders; this example
regenerates that artefact from the Python models and closes the loop:

1. build the GeAr(16,4,4) netlist gate by gate,
2. emit structural Verilog (written next to this script),
3. re-parse the emitted Verilog into a fresh netlist,
4. check bit-exact equivalence against the behavioural model on random
   vectors plus directed corner cases,
5. report static timing and LUT estimates for both netlists.
"""

import pathlib

import numpy as np

from repro import GeArAdder, GeArConfig
from repro.rtl.sim import simulate_bus
from repro.rtl.verilog import to_verilog
from repro.rtl.verilog_parser import parse_verilog
from repro.timing.fpga import characterize_netlist


def main() -> None:
    adder = GeArAdder(GeArConfig(16, 4, 4))
    netlist = adder.build_netlist()
    assert netlist is not None

    source = to_verilog(netlist)
    out_path = pathlib.Path(__file__).with_name("gear_16_4_4.v")
    out_path.write_text(source)
    print(f"emitted {len(source.splitlines())} lines of Verilog "
          f"-> {out_path.name}")

    parsed = parse_verilog(source)

    rng = np.random.default_rng(2015)
    a = rng.integers(0, 1 << 16, size=20_000, dtype=np.int64)
    b = rng.integers(0, 1 << 16, size=20_000, dtype=np.int64)
    corners = np.array([0, 1, 0x00FF, 0x0FF0, 0xFFFF, 0xAAAA, 0x5555],
                       dtype=np.int64)
    a = np.concatenate([a, corners, corners[::-1]])
    b = np.concatenate([b, corners[::-1], corners])

    behavioural = np.asarray(adder.add(a, b))
    original = simulate_bus(netlist, {"A": a, "B": b}, "S")
    roundtrip = simulate_bus(parsed, {"A": a, "B": b}, "S")

    assert np.array_equal(behavioural, original), "netlist != behavioural model"
    assert np.array_equal(behavioural, roundtrip), "round-trip changed behaviour"
    print(f"equivalence verified on {len(a)} vectors "
          "(behavioural == netlist == parsed Verilog)")

    for label, nl in (("generated", netlist), ("re-parsed", parsed)):
        char = characterize_netlist(nl, name=label)
        print(f"{label:10s}: delay={char.delay_ns:.3f} ns  LUTs={char.luts}  "
              f"gates={char.gates}  depth={char.logic_depth}")

    err_nets = netlist.output_buses.get("ERR", [])
    print(f"error-detection outputs: {len(err_nets)} "
          "(one AND flag per speculative sub-adder, §3.3)")


if __name__ == "__main__":
    main()
