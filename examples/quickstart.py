#!/usr/bin/env python3
"""Quickstart: build a GeAr adder, add approximately, recover exactly.

Walks the paper's two running examples — GeAr(12,4,4) from Fig. 3 and
GeAr(12,2,6) from Fig. 4 — through the public API:

* the approximate sum and where it errs,
* the analytic error probability (§3.2),
* error detection and correction (§3.3) with cycle accounting,
* the FPGA-style delay/area characterisation.
"""

import numpy as np

from repro import ErrorCorrector, GeArAdder, GeArConfig, RippleCarryAdder
from repro.engine import EvalRequest, evaluate
from repro.timing.fpga import characterize


def main() -> None:
    fig3 = GeArAdder(GeArConfig(12, 4, 4))  # two 8-bit sub-adders
    fig4 = GeArAdder(GeArConfig(12, 2, 6))  # three 8-bit sub-adders

    print("== Configurations ==")
    for adder in (fig3, fig4):
        cfg = adder.config
        print(f"{cfg.describe()}")
        print(f"  analytic error probability: {adder.error_probability():.6f}")

    print("\n== A single addition ==")
    a, b = 0b000011111111, 0b000000000001  # long carry chain from bit 0
    for adder in (fig3, fig4):
        approx = adder.add(a, b)
        exact = a + b
        print(f"{adder.name}: approx={approx}, exact={exact}, "
              f"error={exact - approx}")

    print("\n== Error recovery (§3.3) ==")
    corrector = ErrorCorrector(fig3)
    result = corrector.add(a, b)
    print(f"corrected sum: {result.value} (exact: {a + b})")
    print(f"cycles: {result.cycles} (speculative result alone costs 1)")
    print(f"sub-adders corrected: {result.corrections}")

    print("\n== Model vs simulation ==")
    result = evaluate(EvalRequest.monte_carlo(fig3, 10_000, seed=2015))
    print(f"measured over 10k uniform patterns: "
          f"{result.stats.error_rate:.4%}")
    print(f"analytic (Eq. 5-7):                 "
          f"{fig3.error_probability():.4%}")

    print("\n== Hardware characterisation ==")
    for adder in (fig3, fig4, RippleCarryAdder(12)):
        char = characterize(adder)
        print(f"{char.name:24s} delay={char.delay_ns:.3f} ns  "
              f"LUTs={char.luts}  depth={char.logic_depth}")

    print("\n== Vectorised use ==")
    rng = np.random.default_rng(0)
    x = rng.integers(0, 1 << 12, size=5, dtype=np.int64)
    y = rng.integers(0, 1 << 12, size=5, dtype=np.int64)
    print("a      :", x)
    print("b      :", y)
    print("approx :", fig3.add(x, y))
    print("exact  :", x + y)


if __name__ == "__main__":
    main()
