#!/usr/bin/env python3
"""Runtime accuracy management across GeAr's approximation modes.

The adder's configurability is a *runtime* knob in systems that can switch
datapaths: this demo streams operands whose statistics change mid-stream
(easy sparse data, then hard uniform data, then easy again) through an
:class:`~repro.analysis.runtime.AccuracyController` that watches the free
§3.3 detection flags and walks a delay-sorted mode ladder to keep the
error rate inside a budget.
"""

import numpy as np

from repro.analysis.runtime import AccuracyController, build_mode_ladder
from repro.analysis.tables import format_table
from repro.utils.distributions import SparseOperands, UniformOperands


def main() -> None:
    ladder = build_mode_ladder(16, 2, [2, 4, 6, 8, 10])
    print("mode ladder (fastest first):")
    print(format_table(
        ["mode", "config", "delay ns", "p(err)"],
        [
            (i, f"GeAr(2,{m.config.p})", f"{m.delay_ns:.3f}",
             f"{m.error_probability:.5f}")
            for i, m in enumerate(ladder)
        ],
    ))

    rng_phase = [
        ("sparse", SparseOperands(16, one_density=0.15), 20_000),
        ("uniform", UniformOperands(16), 20_000),
        ("sparse", SparseOperands(16, one_density=0.15), 20_000),
    ]
    chunks_a, chunks_b = [], []
    for i, (_, dist, count) in enumerate(rng_phase):
        a, b = dist.sample_pairs(count, seed=100 + i)
        chunks_a.append(a)
        chunks_b.append(b)
    a = np.concatenate(chunks_a)
    b = np.concatenate(chunks_b)

    controller = AccuracyController(ladder, error_budget=0.02, chunk=2048)
    trace = controller.run(a, b)

    print(f"\nstream: sparse -> uniform -> sparse, {a.size} additions")
    print(f"observed error rate : {trace.error_rate:.4f}")
    print(f"mean delay          : {trace.mean_delay_ns:.3f} ns "
          f"(fastest mode {ladder[0].delay_ns:.3f}, "
          f"slowest {ladder[-1].delay_ns:.3f})")
    print(f"mode switches       : {trace.switches}")
    print("mode per chunk      :",
          "".join(str(m) for m in trace.mode_per_chunk))

    fixed = ladder[-1]
    print("\nversus always running the most accurate mode:")
    print(f"  fixed delay {fixed.delay_ns:.3f} ns -> adaptive saves "
          f"{(1 - trace.mean_delay_ns / fixed.delay_ns) * 100:.1f}% delay "
          f"at error rate {trace.error_rate:.4f}")


if __name__ == "__main__":
    main()
