#!/usr/bin/env python3
"""Accuracy-configurable multiplication built from GeAr adders.

An 8×8 array multiplier reduces its partial products with a 16-bit adder;
swapping that adder for GeAr configurations turns (R, P) into a product-
quality knob.  The demo sweeps the knob and then uses the approximate
multiplier in a tiny image-brightness scaling kernel, reporting PSNR.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.apps.images import natural_image
from repro.apps.quality import psnr
from repro.core.multiplier import make_exact_multiplier, make_gear_multiplier


def quality_sweep() -> None:
    print("== product quality vs reduction-adder configuration ==")
    rng = np.random.default_rng(5)
    a = rng.integers(0, 256, 20_000, dtype=np.int64)
    b = rng.integers(0, 256, 20_000, dtype=np.int64)
    rows = []
    for (r, p) in [(2, 2), (2, 6), (4, 4), (4, 8), (4, 12)]:
        mul = make_gear_multiplier(8, r, p)
        err = np.abs(np.asarray(mul.multiply(a, b)) - a * b)
        rows.append(
            (f"GeAr(16,{r},{p})", f"{mul.adder.error_probability():.5f}",
             f"{float(np.mean(err / np.maximum(a * b, 1))):.5f}",
             f"{float(np.mean(err > 0)):.4f}")
        )
    print(format_table(
        ["reduction adder", "adder p(err)", "product MRED", "product err rate"],
        rows,
    ))


def brightness_scaling() -> None:
    print("\n== image brightness scaling (pixel * 179 >> 8) ==")
    image = natural_image(64, 64, seed=8)
    gain = 179  # ~0.7x brightness
    exact_mul = make_exact_multiplier(8)
    exact = (np.asarray(exact_mul.multiply(image.ravel(),
                                           np.full(image.size, gain,
                                                   dtype=np.int64)))
             >> 8).reshape(image.shape)
    rows = []
    for (r, p) in [(2, 2), (4, 4), (4, 8)]:
        mul = make_gear_multiplier(8, r, p)
        scaled = (np.asarray(mul.multiply(image.ravel(),
                                          np.full(image.size, gain,
                                                  dtype=np.int64)))
                  >> 8).reshape(image.shape)
        rows.append((f"GeAr(16,{r},{p})", f"{psnr(exact, scaled):.2f}",
                     f"{float(np.mean(scaled == exact)):.4f}"))
    print(format_table(["reduction adder", "PSNR dB", "exact pixels"], rows))


def main() -> None:
    quality_sweep()
    brightness_scaling()


if __name__ == "__main__":
    main()
