#!/usr/bin/env python3
"""Approximate image pipeline: integral image, motion search and smoothing.

Runs the paper's three application kernels end to end on synthetic imagery
with a spread of adders, reporting output quality (PSNR / SSIM / exact
fraction).  This demonstrates the "application resilience" premise: a
kernel can absorb a surprisingly high adder error rate before its output
degrades visibly.
"""

import numpy as np

from repro import GeArAdder, GeArConfig, LowerPartOrAdder
from repro.apps.images import gradient_image, moving_block_pair, natural_image
from repro.apps.integral import integral_image_rows, max_row_width
from repro.apps.lpf import low_pass_filter
from repro.apps.quality import compare_images
from repro.apps.sad import motion_search
from repro.analysis.tables import format_table


def integral_demo() -> None:
    print("== 1-D Image Integral (N=16) ==")
    image = natural_image(48, max_row_width(16), seed=5)
    exact = integral_image_rows(image)
    rows = []
    for p in (2, 4, 6, 8):
        strict = (16 - 4 - p) % 4 == 0
        adder = GeArAdder(GeArConfig(16, 4, p, allow_partial=not strict))
        approx = integral_image_rows(image, adder)
        q = compare_images(exact, approx, peak=float(exact.max()))
        rows.append((f"GeAr(4,{p})", f"{q.mae:.2f}", f"{q.psnr_db:.2f}",
                     f"{q.exact_fraction:.4f}"))
    print(format_table(["adder", "MAE", "PSNR dB", "exact pixels"], rows))


def motion_demo() -> None:
    print("\n== SAD motion search (N=16) ==")
    reference, frame = moving_block_pair(64, 64, shift=(2, 3), seed=17)
    origin, block, search = (24, 24), 16, 4
    exact_mv = motion_search(frame, reference, origin, block, search)
    print(f"exact search finds motion vector {exact_mv} (truth: (2, 3))")
    rows = []
    for p in (2, 4, 6):
        strict = (16 - 2 - p) % 2 == 0
        adder = GeArAdder(GeArConfig(16, 2, p, allow_partial=not strict))
        mv = motion_search(frame, reference, origin, block, search, adder)
        rows.append((adder.name, str(mv), mv == exact_mv))
    print(format_table(["adder", "motion vector", "matches exact"], rows))


def lpf_demo() -> None:
    print("\n== 3x3 binomial low-pass filter (N=12) ==")
    image = gradient_image(64, 64, seed=9)
    exact = low_pass_filter(image)
    rows = []
    for (r, p) in ((2, 2), (2, 6), (4, 4)):
        strict = (12 - r - p) % r == 0
        adder = GeArAdder(GeArConfig(12, r, p, allow_partial=not strict))
        approx = low_pass_filter(image, adder)
        q = compare_images(exact, approx)
        rows.append((adder.name, f"{q.psnr_db:.2f}", f"{q.ssim:.5f}",
                     f"{q.exact_fraction:.4f}"))
    adder = LowerPartOrAdder(12, 4)
    q = compare_images(exact, low_pass_filter(image, adder))
    rows.append((adder.name, f"{q.psnr_db:.2f}", f"{q.ssim:.5f}",
                 f"{q.exact_fraction:.4f}"))
    print(format_table(["adder", "PSNR dB", "SSIM", "exact pixels"], rows))


def main() -> None:
    integral_demo()
    motion_demo()
    lpf_demo()


if __name__ == "__main__":
    main()
