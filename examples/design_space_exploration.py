#!/usr/bin/env python3
"""Design-space exploration: pick the cheapest adder meeting a quality bar.

This is the workflow the paper's introduction motivates: a designer has an
accuracy requirement and wants the configuration with the least delay/area
that meets it.  The script sweeps every GeAr configuration for a 16-bit
datapath, extracts the Pareto frontier over (error, delay, area), and
answers three concrete accuracy queries.
"""

from repro.analysis.pareto import pareto_front, select_config
from repro.analysis.sweep import sweep_gear_configs
from repro.analysis.tables import format_table
from repro.core.coverage import classify_config
from repro.core.gear import GeArConfig


def main() -> None:
    results = sweep_gear_configs(16, with_hardware=True)
    print(f"evaluated {len(results)} GeAr configurations for N=16")

    front = pareto_front(results)
    front.sort(key=lambda r: r.error_probability)
    print("\nPareto frontier (error probability vs delay vs LUTs):")
    rows = []
    for r in front:
        strict = (16 - r.r - r.p) % r.r == 0
        cfg = GeArConfig(16, r.r, r.p, allow_partial=not strict)
        rows.append(
            (f"({r.r},{r.p})", r.k, f"{r.accuracy_pct:.4f}",
             f"{r.delay_ns:.3f}", r.luts, ", ".join(classify_config(cfg)))
        )
    print(format_table(
        ["config", "k", "accuracy %", "delay ns", "LUTs", "covers"], rows
    ))

    print("\nAccuracy queries (cheapest qualifying config by delay, then LUTs):")
    for target in (90.0, 99.0, 99.9):
        best = select_config(results, min_accuracy_pct=target)
        if best is None:
            print(f"  >= {target:5.1f}%: no configuration qualifies")
        else:
            print(f"  >= {target:5.1f}%: GeAr({best.r},{best.p})  "
                  f"accuracy={best.accuracy_pct:.4f}%  "
                  f"delay={best.delay_ns:.3f} ns  LUTs={best.luts}")


if __name__ == "__main__":
    main()
