"""Unit tests for the accuracy-configurable array multiplier."""

import numpy as np
import pytest

from repro.adders.rca import RippleCarryAdder
from repro.core.gear import GeArAdder, GeArConfig
from repro.core.multiplier import (
    ApproximateMultiplier,
    make_exact_multiplier,
    make_gear_multiplier,
)
from tests.conftest import random_pairs


class TestExactMultiplier:
    def test_none_adder_reference(self):
        mul = ApproximateMultiplier(8)
        a, b = random_pairs(8, 500, seed=1)
        np.testing.assert_array_equal(mul.multiply(a, b), a * b)

    def test_rca_reduction_exact(self):
        mul = make_exact_multiplier(6)
        vals = np.arange(64, dtype=np.int64)
        a = np.repeat(vals, 64)
        b = np.tile(vals, 64)
        np.testing.assert_array_equal(mul.multiply(a, b), a * b)

    def test_scalar(self):
        mul = make_exact_multiplier(8)
        assert mul.multiply(255, 255) == 255 * 255
        assert mul.multiply(0, 123) == 0


class TestApproximateMultiplier:
    def test_never_exceeds_exact(self):
        mul = make_gear_multiplier(8, 4, 4)
        a, b = random_pairs(8, 20000, seed=2)
        assert np.all(np.asarray(mul.multiply(a, b)) <= a * b)

    def test_quality_improves_with_p(self):
        mreds = [make_gear_multiplier(8, 2, p).mean_relative_error(8000)
                 for p in (2, 6, 10)]
        assert mreds == sorted(mreds, reverse=True)

    def test_mred_small_for_accurate_config(self):
        assert make_gear_multiplier(8, 4, 8).mean_relative_error(8000) < 1e-3

    def test_error_distance(self):
        mul = make_gear_multiplier(8, 2, 2)
        a, b = random_pairs(8, 5000, seed=3)
        ed = mul.error_distance(a, b)
        assert np.asarray(ed).min() >= 0

    def test_identity_operands(self):
        mul = make_gear_multiplier(8, 2, 2)
        a, _ = random_pairs(8, 500, seed=4)
        np.testing.assert_array_equal(mul.multiply(a, np.ones_like(a)), a)
        np.testing.assert_array_equal(mul.multiply(a, np.zeros_like(a)), 0)


class TestValidation:
    def test_adder_width_checked(self):
        with pytest.raises(ValueError):
            ApproximateMultiplier(8, RippleCarryAdder(8))  # needs 16

    def test_operand_range_checked(self):
        mul = make_exact_multiplier(8)
        with pytest.raises(ValueError):
            mul.multiply(256, 1)
        with pytest.raises(TypeError):
            mul.multiply(1.5, 1)

    def test_out_width(self):
        assert ApproximateMultiplier(8).out_width == 16
