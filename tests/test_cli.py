"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info_args(self):
        args = build_parser().parse_args(["info", "12", "4", "4"])
        assert (args.n, args.r, args.p) == (12, 4, 4)


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "12", "4", "4"]) == 0
        out = capsys.readouterr().out
        assert "k=2" in out
        assert "0.02929688" in out
        assert "sub-adder 2" in out

    def test_info_partial_config(self, capsys):
        assert main(["info", "20", "3", "7"]) == 0
        assert "k=5" in capsys.readouterr().out

    def test_sweep_no_hardware(self, capsys):
        assert main(["sweep", "10", "--r", "2", "--no-hardware"]) == 0
        out = capsys.readouterr().out
        assert "design space" in out
        assert "(2,2)" in out

    def test_verilog(self, capsys):
        assert main(["verilog", "8", "2", "2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("module gear_8_2_2")
        assert "endmodule" in out

    def test_verilog_output_parses_back(self, capsys):
        from repro.rtl.verilog_parser import parse_verilog

        main(["verilog", "8", "2", "2"])
        netlist = parse_verilog(capsys.readouterr().out)
        assert netlist.input_buses == {"A": 8, "B": 8}

    def test_table3_command(self, capsys):
        assert main(["table3"]) == 0
        assert "Table III" in capsys.readouterr().out

    def test_fig1_command(self, capsys):
        assert main(["fig1"]) == 0
        assert "configurability" in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_motivation_command(self, capsys):
        assert main(["motivation"]) == 0
        out = capsys.readouterr().out
        assert "longest carry chains" in out
        assert "64" in out

    def test_hierarchical_verilog(self, capsys):
        assert main(["verilog", "12", "4", "4", "--hierarchical"]) == 0
        out = capsys.readouterr().out
        assert out.count("endmodule") == 2
        from repro.rtl.hierarchy import elaborate_hierarchical

        netlist = elaborate_hierarchical(out)
        assert netlist.input_buses == {"A": 12, "B": 12}

    def test_export_command(self, capsys, tmp_path):
        assert main(["export", "--dir", str(tmp_path), "--only",
                     "fig1", "table3"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "table3" in out
        assert (tmp_path / "fig1_design_space.csv").exists()

    def test_spectrum_command(self, capsys):
        assert main(["spectrum", "12", "4", "4", "--samples", "20000"]) == 0
        out = capsys.readouterr().out
        assert "Error spectrum" in out
        assert "dominant error source: speculative sub-adder 1" in out

    def test_report_quick_command(self, capsys, tmp_path):
        target = tmp_path / "rep.md"
        assert main(["report", "--quick", "--out", str(target)]) == 0
        assert target.exists()
        assert "# GeAr reproduction report" in target.read_text()
