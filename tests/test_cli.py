"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info_args(self):
        args = build_parser().parse_args(["info", "12", "4", "4"])
        assert (args.n, args.r, args.p) == (12, 4, 4)


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "12", "4", "4"]) == 0
        out = capsys.readouterr().out
        assert "k=2" in out
        assert "0.02929688" in out
        assert "sub-adder 2" in out

    def test_info_partial_config(self, capsys):
        assert main(["info", "20", "3", "7"]) == 0
        assert "k=5" in capsys.readouterr().out

    def test_sweep_no_hardware(self, capsys):
        assert main(["sweep", "10", "--r", "2", "--no-hardware"]) == 0
        out = capsys.readouterr().out
        assert "design space" in out
        assert "(2,2)" in out

    def test_verilog(self, capsys):
        assert main(["verilog", "8", "2", "2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("module gear_8_2_2")
        assert "endmodule" in out

    def test_verilog_output_parses_back(self, capsys):
        from repro.rtl.verilog_parser import parse_verilog

        main(["verilog", "8", "2", "2"])
        netlist = parse_verilog(capsys.readouterr().out)
        assert netlist.input_buses == {"A": 8, "B": 8}

    def test_table3_command(self, capsys):
        assert main(["table3"]) == 0
        assert "Table III" in capsys.readouterr().out

    def test_fig1_command(self, capsys):
        assert main(["fig1"]) == 0
        assert "configurability" in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_motivation_command(self, capsys):
        assert main(["motivation"]) == 0
        out = capsys.readouterr().out
        assert "longest carry chains" in out
        assert "64" in out

    def test_hierarchical_verilog(self, capsys):
        assert main(["verilog", "12", "4", "4", "--hierarchical"]) == 0
        out = capsys.readouterr().out
        assert out.count("endmodule") == 2
        from repro.rtl.hierarchy import elaborate_hierarchical

        netlist = elaborate_hierarchical(out)
        assert netlist.input_buses == {"A": 12, "B": 12}

    def test_export_command(self, capsys, tmp_path):
        assert main(["export", "--dir", str(tmp_path), "--only",
                     "fig1", "table3"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "table3" in out
        assert (tmp_path / "fig1_design_space.csv").exists()

    def test_spectrum_command(self, capsys):
        assert main(["spectrum", "12", "4", "4", "--samples", "20000"]) == 0
        out = capsys.readouterr().out
        assert "Error spectrum" in out
        assert "dominant error source: speculative sub-adder 1" in out

    def test_report_quick_command(self, capsys, tmp_path):
        target = tmp_path / "rep.md"
        assert main(["report", "--quick", "--out", str(target)]) == 0
        assert target.exists()
        assert "# GeAr reproduction report" in target.read_text()


class TestEngineFlags:
    def test_sweep_measured_columns(self, capsys):
        assert main(["sweep", "10", "--r", "2", "--no-hardware",
                     "--samples", "4000", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "measured err" in out

    def test_sweep_json_identical_across_jobs(self, capsys):
        argv = ["sweep", "10", "--r", "4", "--no-hardware",
                "--samples", "8000", "--json"]
        assert main(argv + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "4"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_sweep_json_shape(self, capsys):
        import json

        assert main(["sweep", "10", "--r", "4", "--no-hardware",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "sweep"
        assert payload["n"] == 10
        assert payload["rows"][0]["measured_error_rate"] is None

    def test_sweep_cache_flag_populates_dir(self, capsys, tmp_path):
        cache = tmp_path / "shards"
        assert main(["sweep", "10", "--r", "4", "--no-hardware",
                     "--samples", "4000", "--cache", str(cache)]) == 0
        assert any(cache.glob("??/*.json"))

    def test_experiment_subcommand(self, capsys):
        assert main(["experiment", "fig1"]) == 0
        assert "configurability" in capsys.readouterr().out

    def test_experiment_unknown_name_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig42"])

    def test_experiment_json(self, capsys):
        import json

        assert main(["experiment", "table3", "--samples", "2000",
                     "--seed", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "table3"
        assert payload["rows"][0]["samples"] == 2000

    def test_table3_alias_has_sampling_flags(self, capsys):
        assert main(["table3", "--samples", "2000"]) == 0
        assert "Table III" in capsys.readouterr().out

    def test_spectrum_seed_flag(self, capsys):
        assert main(["spectrum", "12", "4", "4", "--samples", "20000",
                     "--seed", "9"]) == 0
        assert "Error spectrum" in capsys.readouterr().out

    def test_export_json(self, capsys, tmp_path):
        import json

        assert main(["export", "--dir", str(tmp_path), "--only", "fig1",
                     "--json"]) == 0
        path = tmp_path / "fig1.json"
        assert path.exists()
        assert json.loads(path.read_text())["experiment"] == "fig1"


class TestLintCommand:
    def test_clean_builder_exits_zero(self, capsys):
        assert main(["lint", "rca", "8"]) == 0
        assert "rca 8: clean" in capsys.readouterr().out

    def test_gear_builder_with_params(self, capsys):
        assert main(["lint", "gear", "12", "4", "4"]) == 0
        assert "gear 12 4 4:" in capsys.readouterr().out

    def test_json_output_parses(self, capsys):
        import json

        assert main(["lint", "gear", "12", "4", "4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["target"] == "gear 12 4 4"
        assert "combinational-loop" in payload["rules_run"]

    def test_fail_on_threshold(self, capsys):
        # CLA legitimately carries duplicate-gate/fanout INFO diagnostics.
        assert main(["lint", "cla", "16"]) == 0
        assert main(["lint", "cla", "16", "--fail-on", "info"]) == 1
        assert main(["lint", "cla", "16", "--fail-on", "never"]) == 0

    def test_suppress_rule(self, capsys):
        assert main(["lint", "cla", "16", "--fail-on", "info",
                     "--suppress", "duplicate-gate",
                     "--suppress", "fanout-outlier"]) == 0

    def test_opt_flag_lints_optimized_netlist(self, capsys):
        assert main(["lint", "cla", "16", "--opt", "--fail-on", "warning",
                     "--suppress", "fanout-outlier"]) == 0

    def test_all_matrix(self, capsys):
        assert main(["lint", "all", "--fail-on", "warning"]) == 0
        out = capsys.readouterr().out
        assert "rca 16: clean" in out
        assert "gear 12 4 4:" in out

    def test_verilog_file_target(self, capsys, tmp_path):
        main(["verilog", "8", "2", "2"])
        source = capsys.readouterr().out
        path = tmp_path / "adder.v"
        path.write_text(source)
        assert main(["lint", str(path)]) == 0
        assert f"{path}:" in capsys.readouterr().out

    def test_verilog_file_with_defect_fails(self, capsys, tmp_path):
        path = tmp_path / "dead.v"
        path.write_text(
            "module m (input [1:0] A, input [1:0] B, output [1:0] S);\n"
            "  wire d;\n"
            "  assign d = A[0] & B[0];\n"
            "  assign S[0] = A[0] ^ B[0];\n"
            "  assign S[1] = A[1] ^ B[1];\n"
            "endmodule\n"
        )
        assert main(["lint", str(path), "--fail-on", "warning"]) == 1
        out = capsys.readouterr().out
        assert "dead-logic" in out
        assert "line 3" in out

    def test_syntax_error_file_exits_two(self, capsys, tmp_path):
        path = tmp_path / "broken.v"
        path.write_text("module m (input [1:0] A@);\n")
        assert main(["lint", str(path)]) == 2
        assert "line 1" in capsys.readouterr().err

    def test_unknown_suppress_exits_two(self, capsys):
        assert main(["lint", "rca", "8", "--suppress", "typo-rule"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_unknown_builder_exits_two(self, capsys):
        assert main(["lint", "frobnicate", "8"]) == 2
        assert "unknown builder" in capsys.readouterr().err

    def test_missing_target_exits_two(self, capsys):
        assert main(["lint"]) == 2
        assert "required" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "combinational-loop" in out
        assert "dead-logic" in out


class TestBackendValidation:
    """Unknown --backend names exit 2 with the registered list."""

    def test_sweep_unknown_backend_exits_two(self, capsys):
        assert main(["sweep", "8", "--samples", "100",
                     "--backend", "typo"]) == 2
        err = capsys.readouterr().err
        assert "unknown backend 'typo'" in err
        for name in ("sampling", "analytic", "compiled", "auto"):
            assert name in err

    def test_verify_unknown_backend_exits_two(self, capsys):
        assert main(["verify", "--adder", "rca", "--layer", "stats",
                     "--backend", "nonesuch"]) == 2
        assert "registered backends" in capsys.readouterr().err

    def test_validation_happens_before_any_work(self, capsys):
        # a bad backend on a heavy command must fail fast, not mid-sweep
        assert main(["table3", "--backend", "bogus"]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "bogus" in captured.err

    def test_registered_backends_still_accepted(self, capsys):
        assert main(["sweep", "8", "--samples", "50", "--backend",
                     "analytic", "--json"]) == 0
        assert capsys.readouterr().out.startswith("{")


class TestClientCommand:
    """gear client argument handling that needs no running daemon."""

    def test_client_eval_offline_prints_canonical_bytes(self, capsys):
        from repro.serve import protocol

        wire = {"adder": "gear_r2p2", "samples": 200, "seed": 6}
        import json as _json

        assert main(["client", "eval", _json.dumps(wire), "--offline"]) == 0
        out = capsys.readouterr().out
        expected = protocol.canonical_bytes(
            protocol.offline_eval_payload(wire)).decode()
        assert out == expected

    def test_client_eval_offline_bad_body_exits_two(self, capsys):
        assert main(["client", "eval", "not json", "--offline"]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_client_eval_offline_bad_adder_exits_two(self, capsys):
        assert main(["client", "eval", '{"adder": "nope"}',
                     "--offline"]) == 2
        assert "bad adder reference" in capsys.readouterr().err

    def test_client_unreachable_daemon_exits_two(self, capsys):
        assert main(["client", "health", "--port", "1"]) == 2
        assert "cannot reach daemon" in capsys.readouterr().err

    def test_replay_missing_script_exits_two(self, capsys):
        assert main(["client", "replay", "/no/such/script.json"]) == 2
        assert "cannot load script" in capsys.readouterr().err
