"""Unit tests for repro.rtl.sta (static timing analysis)."""

import pytest

from repro.rtl.builders import build_cla, build_gear, build_rca
from repro.rtl.gates import Op
from repro.rtl.netlist import Netlist
from repro.rtl.sta import (
    FpgaDelayModel,
    UnitDelayModel,
    arrival_times,
    critical_path,
    critical_path_delay,
    depth_histogram,
)


def _chain(depth: int) -> Netlist:
    """A NOT chain of the given depth."""
    nl = Netlist("chain")
    a = nl.add_input_bus("A", 1)
    net = a[0]
    for _ in range(depth):
        net = nl.not_(net)
    nl.set_output_bus("S", [net])
    return nl


class TestUnitDelay:
    @pytest.mark.parametrize("depth", [1, 3, 10])
    def test_chain_depth(self, depth):
        assert critical_path_delay(_chain(depth), UnitDelayModel()) == depth

    def test_inputs_at_zero(self):
        nl = _chain(2)
        times = arrival_times(nl, UnitDelayModel())
        assert times["A[0]"] == 0.0

    def test_max_over_outputs(self):
        nl = Netlist("t")
        a = nl.add_input_bus("A", 2)
        short = nl.not_(a[0])
        long = nl.not_(nl.not_(nl.not_(a[1])))
        nl.set_output_bus("S", [short, long])
        assert critical_path_delay(nl, UnitDelayModel()) == 3

    def test_critical_path_is_traceable(self):
        nl = _chain(4)
        path = critical_path(nl, UnitDelayModel())
        assert path[0] == "A[0]"
        assert len(path) == 5  # input + 4 NOTs

    def test_no_outputs_raises(self):
        nl = Netlist("t")
        nl.add_input_bus("A", 1)
        with pytest.raises(ValueError):
            critical_path_delay(nl, UnitDelayModel())

    def test_depth_histogram(self):
        nl = Netlist("t")
        a = nl.add_input_bus("A", 2)
        nl.set_output_bus("S", [nl.not_(a[0]), nl.not_(nl.not_(a[1]))])
        assert depth_histogram(nl) == {1: 1, 2: 1}


class TestBusRestriction:
    def test_excluding_err_bus_shortens_path(self):
        nl = build_gear(16, 4, 4, with_error_detect=True)
        model = FpgaDelayModel()
        full = critical_path_delay(nl, model)
        sum_only = critical_path_delay(nl, model, buses=["S"])
        assert sum_only <= full

    def test_unknown_bus_rejected(self):
        nl = build_rca(4)
        with pytest.raises(KeyError):
            critical_path_delay(nl, UnitDelayModel(), buses=["Q"])


class TestFpgaModel:
    def test_carry_chain_is_cheap(self):
        model = FpgaDelayModel()
        nl = Netlist("t")
        a = nl.add_input_bus("A", 2)
        fast = nl.and_(a[0], a[1], group="carry")
        slow = nl.and_(a[0], a[1])
        nl.set_output_bus("S", [fast, slow])
        times = arrival_times(nl, model)
        assert times[fast] < times[slow]

    def test_io_delay_applied_once(self):
        model = FpgaDelayModel(io_delay=0.5, lut_delay=0.25, net_delay=0.2)
        nl = _chain(1)
        assert critical_path_delay(nl, model) == pytest.approx(0.95)

    def test_rca_delay_scales_with_width(self):
        model = FpgaDelayModel()
        delays = [
            critical_path_delay(build_rca(w), model, buses=["S"])
            for w in (4, 8, 16, 32)
        ]
        assert delays == sorted(delays)
        assert delays[-1] > delays[0]

    def test_gear_beats_rca_of_same_width(self):
        model = FpgaDelayModel()
        rca = critical_path_delay(build_rca(16), model, buses=["S"])
        gear = critical_path_delay(build_gear(16, 4, 4), model, buses=["S"])
        assert gear < rca

    def test_gear_delay_tracks_sub_adder_length(self):
        # Table IV observation: delay depends on L, not N.
        model = FpgaDelayModel()
        short = critical_path_delay(build_gear(16, 2, 2), model, buses=["S"])
        long = critical_path_delay(build_gear(16, 4, 8), model, buses=["S"])
        assert short < long

    def test_cla_slower_than_rca_on_fpga(self):
        # §4.2: CLA maps to generic LUTs, RCA rides the carry chain.
        model = FpgaDelayModel()
        rca = critical_path_delay(build_rca(16), model, buses=["S"])
        cla = critical_path_delay(build_cla(16), model, buses=["S"])
        assert cla > rca

    def test_negative_params_rejected(self):
        with pytest.raises(ValueError):
            FpgaDelayModel(lut_delay=-0.1)

    def test_calibration_anchor_rca16(self):
        # The default model is calibrated near the paper's 1.365 ns.
        model = FpgaDelayModel()
        delay = critical_path_delay(build_rca(16), model, buses=["S"])
        assert 1.0 < delay < 1.8
