"""Fault-campaign parity: compiled stuck-at forcing vs netlist rewriting.

:func:`repro.rtl.faults.fault_simulation` accepts ``simulator="compiled"``,
which replays one bit-sliced kernel with per-fault forcing instead of
rebuilding a faulty netlist per fault.  These tests pin that the two
machineries are *observationally identical*: every stuck-at fault on the
GeAr N=8 netlist is either killed or proven masked by both, with the same
coverage, ERR observability and undetected-fault list — including when the
vector count is not a multiple of the 64-lane word (padding lanes must
never count as detections).
"""

import numpy as np
import pytest

from repro.rtl.builders import build_gear, build_rca
from repro.rtl.compile import compile_netlist
from repro.rtl.faults import enumerate_faults, fault_simulation, inject_fault
from repro.rtl.sim import simulate_bus


def _assert_reports_identical(interp, comp):
    assert comp.total == interp.total
    assert comp.detected_any_output == interp.detected_any_output
    assert comp.flagged_by_err == interp.flagged_by_err
    assert comp.undetected == interp.undetected
    assert comp.coverage == interp.coverage
    assert comp.err_observability == interp.err_observability


class TestCampaignParity:
    def test_gear_n8_every_fault_agrees(self):
        # The full fault universe of GeAr(8, 2, 2): each fault must be
        # killed by both simulators or masked by both.
        netlist = build_gear(8, 2, 2)
        interp = fault_simulation(netlist, vectors=256, seed=2,
                                  simulator="interpreted")
        comp = fault_simulation(netlist, vectors=256, seed=2,
                                simulator="compiled")
        _assert_reports_identical(interp, comp)
        # GeAr's discarded speculative low bits leave genuine redundancy,
        # so the parity above is exercised on both outcomes.
        assert comp.undetected
        assert comp.detected_any_output

    def test_rca_full_coverage_parity(self):
        netlist = build_rca(6)
        interp = fault_simulation(netlist, vectors=128, seed=5,
                                  simulator="interpreted")
        comp = fault_simulation(netlist, vectors=128, seed=5,
                                simulator="compiled")
        _assert_reports_identical(interp, comp)
        assert comp.coverage == 1.0

    def test_partial_word_vector_count(self):
        # 60 vectors leave 4 padding lanes in the packed word; a forced
        # net can flip outputs there, which must not count as detection.
        netlist = build_gear(8, 2, 2)
        interp = fault_simulation(netlist, vectors=60, seed=9,
                                  simulator="interpreted")
        comp = fault_simulation(netlist, vectors=60, seed=9,
                                simulator="compiled")
        _assert_reports_identical(interp, comp)

    def test_fault_subset_parity(self):
        netlist = build_gear(8, 2, 2)
        subset = enumerate_faults(netlist)[::7]
        interp = fault_simulation(netlist, vectors=200, seed=3, faults=subset,
                                  simulator="interpreted")
        comp = fault_simulation(netlist, vectors=200, seed=3, faults=subset,
                                simulator="compiled")
        _assert_reports_identical(interp, comp)

    def test_unknown_simulator_rejected(self):
        with pytest.raises(ValueError, match="simulator"):
            fault_simulation(build_rca(2), vectors=8, simulator="hdl")


class TestForcedKernelSemantics:
    def test_force_bit_equal_to_inject_fault(self):
        # Forcing a net in the compiled kernel must reproduce the
        # rewritten netlist bit for bit on every output bus.
        netlist = build_gear(8, 2, 2)
        kernel = compile_netlist(netlist)
        rng = np.random.default_rng(4)
        stimulus = {
            bus: rng.integers(0, 1 << width, size=333, dtype=np.int64)
            for bus, width in netlist.input_buses.items()
        }
        for fault in enumerate_faults(netlist)[::13]:
            forced = kernel.run(stimulus,
                                force={fault.net: fault.stuck_at})
            faulty = inject_fault(netlist, fault)
            for bus in netlist.output_buses:
                np.testing.assert_array_equal(
                    forced[bus], simulate_bus(faulty, stimulus, bus),
                    err_msg=f"fault {fault} diverges on bus {bus}")

    def test_force_unknown_net_rejected(self):
        kernel = compile_netlist(build_rca(4))
        with pytest.raises(KeyError):
            kernel.run({"A": 1, "B": 2}, force={"ghost": 1})

    def test_force_value_validated(self):
        netlist = build_rca(4)
        kernel = compile_netlist(netlist)
        net = enumerate_faults(netlist)[0].net
        with pytest.raises(ValueError):
            kernel.run({"A": 1, "B": 2}, force={net: 2})

    def test_forcing_leaves_kernel_reusable(self):
        # A forced run must not contaminate subsequent clean runs.
        netlist = build_rca(4)
        kernel = compile_netlist(netlist)
        fault = enumerate_faults(netlist, include_inputs=True)[0]
        clean_before = kernel.run({"A": 5, "B": 9})["S"].copy()
        kernel.run({"A": 5, "B": 9}, force={fault.net: 1})
        clean_after = kernel.run({"A": 5, "B": 9})["S"]
        np.testing.assert_array_equal(clean_before, clean_after)
        assert int(clean_after) == 14
