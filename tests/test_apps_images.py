"""Unit tests for synthetic image generation."""

import numpy as np
import pytest

from repro.apps.images import (
    checkerboard_image,
    gradient_image,
    moving_block_pair,
    natural_image,
)


class TestGenerators:
    @pytest.mark.parametrize("fn", [gradient_image, natural_image])
    def test_shape_and_range(self, fn):
        img = fn(32, 48)
        assert img.shape == (32, 48)
        assert img.min() >= 0 and img.max() <= 255
        assert np.issubdtype(img.dtype, np.integer)

    def test_determinism(self):
        np.testing.assert_array_equal(
            natural_image(16, 16, seed=5), natural_image(16, 16, seed=5)
        )
        assert not np.array_equal(
            natural_image(16, 16, seed=5), natural_image(16, 16, seed=6)
        )

    def test_natural_image_is_spatially_correlated(self):
        img = natural_image(64, 64, seed=1).astype(np.float64)
        horizontal_diff = np.abs(np.diff(img, axis=1)).mean()
        rng = np.random.default_rng(0)
        white = rng.uniform(0, 255, size=(64, 64))
        white_diff = np.abs(np.diff(white, axis=1)).mean()
        assert horizontal_diff < white_diff / 2

    def test_natural_image_uses_full_contrast(self):
        img = natural_image(64, 64, seed=2)
        assert img.max() - img.min() > 200

    def test_checkerboard_tiles(self):
        img = checkerboard_image(16, 16, tile=4, low=10, high=200)
        assert set(np.unique(img)) == {10, 200}
        assert img[0, 0] == 10
        assert img[0, 4] == 200
        assert img[4, 0] == 200

    def test_checkerboard_validation(self):
        with pytest.raises(ValueError):
            checkerboard_image(8, 8, low=200, high=100)

    def test_moving_block_pair_shift(self):
        ref, moved = moving_block_pair(32, 32, shift=(3, 5), seed=7)
        assert ref.shape == moved.shape == (32, 32)
        # The shifted frame must correlate best at the known displacement.
        exact_shift = np.roll(ref, (3, 5), axis=(0, 1))
        assert np.abs(moved - exact_shift).mean() < 3.0
