"""Tests for the Fig. 5/6 correction netlist and its multi-cycle harness."""

import numpy as np
import pytest

from repro.core.correction import ErrorCorrector
from repro.core.gear import GeArAdder, GeArConfig
from repro.rtl.builders import build_gear_corrected
from repro.rtl.correction_harness import MultiCycleCorrector
from repro.rtl.sim import simulate_bus
from tests.conftest import random_pairs


def _pairs(n, count=20000, seed=3):
    if n <= 8:
        size = 1 << n
        vals = np.arange(size, dtype=np.int64)
        return np.repeat(vals, size), np.tile(vals, size)
    return random_pairs(n, count, seed=seed)


class TestCorrectionNetlist:
    @pytest.mark.parametrize("n,r,p", [(8, 2, 2), (12, 4, 4), (12, 2, 6)])
    def test_uncorrected_equals_plain_gear(self, n, r, p):
        nl = build_gear_corrected(n, r, p)
        adder = GeArAdder(GeArConfig(n, r, p))
        a, b = _pairs(n)
        got = simulate_bus(nl, {"A": a, "B": b, "EN": 0, "CORR": 0}, "S")
        np.testing.assert_array_equal(got, np.asarray(adder.add(a, b)))

    def test_fig5_single_correction(self):
        # Fig. 5: GeAr(12,4,4); forcing CORR on sub-adder 2 fixes the
        # canonical missed-carry case.
        nl = build_gear_corrected(12, 4, 4)
        a, b = 0b000011111111, 0b000000000001
        wrong = int(simulate_bus(nl, {"A": a, "B": b, "EN": 1, "CORR": 0}, "S"))
        fixed = int(simulate_bus(nl, {"A": a, "B": b, "EN": 1, "CORR": 1}, "S"))
        assert wrong != a + b
        assert fixed == a + b

    def test_flag_self_clears_after_correction(self):
        nl = build_gear_corrected(12, 4, 4)
        a, b = 0b000011111111, 0b000000000001
        before = int(simulate_bus(nl, {"A": a, "B": b, "EN": 1, "CORR": 0}, "ERR"))
        after = int(simulate_bus(nl, {"A": a, "B": b, "EN": 1, "CORR": 1}, "ERR"))
        assert before == 1
        assert after == 0

    def test_enable_gates_flags(self):
        nl = build_gear_corrected(12, 4, 4)
        a, b = 0b000011111111, 0b000000000001
        gated = int(simulate_bus(nl, {"A": a, "B": b, "EN": 0, "CORR": 0}, "ERR"))
        assert gated == 0

    def test_needs_speculation(self):
        with pytest.raises(ValueError):
            build_gear_corrected(8, 4, 4)  # k = 1


class TestMultiCycleHarness:
    @pytest.mark.parametrize("n,r,p", [(8, 2, 2), (8, 1, 3), (12, 2, 6)])
    def test_sequential_matches_behavioural_corrector(self, n, r, p):
        nl = build_gear_corrected(n, r, p)
        harness = MultiCycleCorrector(nl)
        core = ErrorCorrector(GeArAdder(GeArConfig(n, r, p)))
        a, b = _pairs(n)
        hres = harness.add(a, b)
        cres = core.add(a, b)
        np.testing.assert_array_equal(hres.value, a + b)
        np.testing.assert_array_equal(hres.cycles, cres.cycles)
        np.testing.assert_array_equal(hres.corrections, cres.corrections)

    def test_parallel_policy_exact_and_no_slower(self):
        nl = build_gear_corrected(8, 1, 2)
        a, b = _pairs(8)
        seq = MultiCycleCorrector(nl, policy="sequential").add(a, b)
        par = MultiCycleCorrector(nl, policy="parallel").add(a, b)
        np.testing.assert_array_equal(par.value, a + b)
        assert np.all(par.cycles <= seq.cycles)

    def test_partial_enable_respected(self):
        nl = build_gear_corrected(12, 2, 6)
        adder = GeArAdder(GeArConfig(12, 2, 6))
        a, b = random_pairs(12, 20000, seed=4)
        mask_bits = [False, True]
        hres = MultiCycleCorrector(nl, enabled=mask_bits).add(a, b)
        cres = ErrorCorrector(adder, enabled=mask_bits).add(a, b)
        np.testing.assert_array_equal(hres.value, cres.value)

    def test_harness_validates_buses(self):
        from repro.rtl.builders import build_gear

        with pytest.raises(ValueError):
            MultiCycleCorrector(build_gear(8, 2, 2))

    def test_harness_validates_policy(self):
        nl = build_gear_corrected(8, 2, 2)
        with pytest.raises(ValueError):
            MultiCycleCorrector(nl, policy="greedy")

    def test_harness_validates_mask(self):
        nl = build_gear_corrected(8, 2, 2)
        with pytest.raises(ValueError):
            MultiCycleCorrector(nl, enabled=[True])
