"""Spec IR v2: static windows, rectification stages, and migration.

The v2 contract has three proof-shaped halves:

* **Backward compatibility** — version-1 documents load (migrated
  forward, not rejected), round-trip back to ``"version": 1``, and
  every spec expressible in v1 keeps its exact ``spec/v1:`` fingerprint
  byte for byte, so no engine cache entry or registry identity moves.
* **Forward semantics** — static windows (LOA ``or`` / HOERAA) and
  ``rectify`` stages validate strictly, fingerprint under a disjoint
  ``spec/v2:`` prefix, and behave exactly as their closed-form
  references at every operand pair.
* **Six-layer conformance** — the three new catalog families pass the
  whole oracle stack exhaustively at N=8 with zero family-specific
  oracle code (the ISSUE payoff criterion, as a test).
"""

import itertools
import json
from dataclasses import replace

import pytest

from repro.spec import (
    AdderSpec,
    RectifiedSpecAdder,
    RectifySpec,
    SpecAdder,
    StaticSpecAdder,
    WindowSpec,
)
from repro.spec.catalog import (
    catalog_spec,
    cesa_rect_spec,
    gear_spec,
    hoeraa_spec,
    loa_static_spec,
)
from repro.verify import VerifyOptions, verify_registry


def exhaustive_pairs(width):
    return itertools.product(range(1 << width), repeat=2)


# ---------------------------------------------------------------------------
# backward compatibility: v1 documents and fingerprints are frozen
# ---------------------------------------------------------------------------

#: Byte-for-byte fingerprint pins.  A v2 code change that moves any of
#: these silently invalidates engine caches and registry identities for
#: every pre-existing spec; fail loudly instead.
V1_FINGERPRINT_PINS = {
    "gear_r2p2": ("spec/v1:gear_8_2_2:w8:t0:d1:"
                  "[0.3.0.3.rca.fused;2.5.4.5.rca.fused;4.7.6.7.rca.fused]"),
    "loa_half": "spec/v1:loa_8_4:w8:t4:d0:[4.7.4.7.rca.fused]",
    "rca": "spec/v1:rca_8:w8:t0:d0:[0.7.0.7.rca.fused]",
    "hetero": ("spec/v1:hetero_8:w8:t0:d0:"
               "[0.2.0.2.ksa.fused;1.4.3.4.cla.fused;3.7.5.7.rca.gen_rca]"),
}


class TestV1Compatibility:
    @pytest.mark.parametrize("key", sorted(V1_FINGERPRINT_PINS))
    def test_v1_fingerprints_are_byte_identical(self, key):
        assert catalog_spec(key, 8).fingerprint() == V1_FINGERPRINT_PINS[key]

    def test_v1_document_migrates_forward(self):
        # A pinned pre-v2 wire document: loads without error, compares
        # equal to the generator's spec, and does NOT get rewritten to
        # version 2 on the way back out.
        document = {
            "version": 1,
            "name": "gear_8_2_2",
            "width": 8,
            "truncation": 0,
            "error_detect": True,
            "windows": [
                {"low": 0, "high": 3, "result_low": 0, "result_high": 3,
                 "arch": "rca", "pred": "fused"},
                {"low": 2, "high": 5, "result_low": 4, "result_high": 5,
                 "arch": "rca", "pred": "fused"},
                {"low": 4, "high": 7, "result_low": 6, "result_high": 7,
                 "arch": "rca", "pred": "fused"},
            ],
        }
        spec = AdderSpec.from_dict(document)
        assert spec == gear_spec(8, 2, 2, allow_partial=True,
                                 error_detect=True)
        assert spec.to_dict()["version"] == 1
        assert spec.fingerprint().startswith("spec/v1:")
        assert AdderSpec.from_json(spec.to_json()) == spec

    def test_v1_shapes_never_emit_v2_documents(self):
        for key in ("gear_r2p2", "loa_half", "rca", "hetero"):
            spec = catalog_spec(key, 8)
            assert not spec.uses_v2
            assert spec.to_dict()["version"] == 1
            assert "rectify" not in spec.to_dict()

    def test_unsupported_version_names_the_known_set(self):
        document = catalog_spec("rca", 8).to_dict()
        document["version"] = 99
        with pytest.raises(ValueError,
                           match="unsupported spec version 99.*1 and 2"):
            AdderSpec.from_dict(document)

    def test_v1_document_cannot_smuggle_v2_features(self):
        document = hoeraa_spec(8, 4).to_dict()
        assert document["version"] == 2
        document["version"] = 1
        with pytest.raises(ValueError, match="version 1 documents cannot"):
            AdderSpec.from_dict(document)
        rect = cesa_rect_spec(8).to_dict()
        rect["version"] = 1
        with pytest.raises(ValueError, match="version 1 documents cannot"):
            AdderSpec.from_dict(rect)


# ---------------------------------------------------------------------------
# v2 round-trips and fingerprint disjointness
# ---------------------------------------------------------------------------

class TestV2Identity:
    @pytest.mark.parametrize("spec", [
        cesa_rect_spec(8), cesa_rect_spec(12, 2, 4),
        hoeraa_spec(8, 4), hoeraa_spec(12, 5),
        loa_static_spec(8, 4), loa_static_spec(16, 6),
    ], ids=lambda s: s.name)
    def test_v2_round_trip(self, spec):
        document = spec.to_dict()
        assert document["version"] == 2
        again = AdderSpec.from_dict(json.loads(json.dumps(document)))
        assert again == spec
        assert again.fingerprint() == spec.fingerprint()
        assert spec.fingerprint().startswith("spec/v2:")

    def test_rectified_twin_fingerprints_differ(self):
        base = gear_spec(8, 2, 2, allow_partial=True, error_detect=True)
        rect = cesa_rect_spec(8, 2, 2)
        assert base.fingerprint().startswith("spec/v1:")
        assert rect.fingerprint().startswith("spec/v2:")
        # Same geometry; only the declared rectify stage separates them.
        assert base.to_windows() == rect.to_windows()

    def test_rectify_tap_choice_is_part_of_the_identity(self):
        base = gear_spec(8, 2, 2, allow_partial=True, error_detect=True)
        full = replace(base, rectify=RectifySpec())
        partial = replace(base, rectify=RectifySpec(enabled=(1,)))
        assert full.fingerprint() != partial.fingerprint()

    def test_static_approx_is_part_of_the_identity(self):
        assert (hoeraa_spec(8, 4).fingerprint()
                != loa_static_spec(8, 4).fingerprint())


# ---------------------------------------------------------------------------
# v2 validation diagnostics
# ---------------------------------------------------------------------------

def _rect_document(**overrides):
    document = cesa_rect_spec(8).to_dict()
    document["rectify"] = {**document["rectify"], **overrides}
    return document


class TestV2Validation:
    def test_unknown_window_kind(self):
        with pytest.raises(ValueError, match="unknown window kind 'frob'"):
            WindowSpec(0, 3, 0, 3, kind="frob")

    def test_unknown_static_approx(self):
        with pytest.raises(ValueError, match="approx"):
            WindowSpec(0, 3, 0, 3, kind="static", approx="sota")

    def test_speculative_window_rejects_approx(self):
        with pytest.raises(ValueError, match="approx"):
            WindowSpec(0, 3, 0, 3, approx="or")

    def test_static_window_must_come_first(self):
        good = loa_static_spec(8, 4)
        bad_windows = (good.windows[1],
                       WindowSpec(4, 7, 4, 7, kind="static", approx="or"))
        with pytest.raises(ValueError):
            AdderSpec(name="bad", width=8,
                      windows=(WindowSpec(0, 3, 0, 3),) + bad_windows[1:])

    def test_static_window_excludes_truncation(self):
        good = loa_static_spec(8, 4)
        with pytest.raises(ValueError, match="truncation"):
            AdderSpec(name="bad", width=8, truncation=2,
                      windows=good.windows)

    def test_rectify_requires_error_detect(self):
        base = gear_spec(8, 2, 2, allow_partial=True, error_detect=False)
        with pytest.raises(ValueError, match="error_detect"):
            replace(base, rectify=RectifySpec())

    def test_unknown_rectify_kind(self):
        with pytest.raises(ValueError, match="rectify"):
            AdderSpec.from_dict(_rect_document(kind="oracle"))

    @pytest.mark.parametrize("enabled", [[0], [3], [2, 2], [2, 1]])
    def test_bad_rectify_taps(self, enabled):
        with pytest.raises(ValueError):
            AdderSpec.from_dict(_rect_document(enabled=enabled))

    def test_unknown_rectify_field(self):
        with pytest.raises(ValueError, match="rectify"):
            AdderSpec.from_dict(_rect_document(latency=3))


# ---------------------------------------------------------------------------
# behaviour: closed-form references, exhaustively at N=8
# ---------------------------------------------------------------------------

def hoeraa_reference(a, b, width, k):
    """HOERAA closed form: OR bits [0, k-2], half-adder at k-1, its
    AND feeds the accurate upper adder as carry-in."""
    low_mask = (1 << (k - 1)) - 1
    low = (a | b) & low_mask
    top = ((a ^ b) >> (k - 1)) & 1
    cin = ((a & b) >> (k - 1)) & 1
    high = ((a >> k) + (b >> k) + cin) << k
    return high | (top << (k - 1)) | low


class TestV2Behaviour:
    def test_hoeraa_matches_closed_form(self):
        model = hoeraa_spec(8, 4).to_model()
        assert isinstance(model, StaticSpecAdder)
        for a, b in exhaustive_pairs(8):
            assert model.add(a, b) == hoeraa_reference(a, b, 8, 4)

    def test_loa_static_twin_matches_v1_truncation(self):
        # The same LOA written two ways — v1 truncation field, v2 static
        # window — must be the same function.
        v2 = loa_static_spec(8, 4).to_model()
        v1 = catalog_spec("loa_half", 8).to_model()
        for a, b in exhaustive_pairs(8):
            assert v2.add(a, b) == v1.add(a, b)

    def test_full_rectification_is_exact(self):
        base = gear_spec(8, 2, 2, allow_partial=True, error_detect=True)
        spec = replace(base, rectify=RectifySpec())
        model = spec.to_model()
        assert isinstance(model, RectifiedSpecAdder)
        for a, b in exhaustive_pairs(8):
            assert model.add(a, b) == a + b
        pmf = spec.to_error_pmf()
        assert pmf.support == (0,)
        assert pmf.probabilities == (1.0,)

    def test_partial_rectification_never_hurts(self):
        spec = cesa_rect_spec(8, 2, 2)
        rect = spec.to_model()
        plain = SpecAdder(gear_spec(8, 2, 2, allow_partial=True,
                                    error_detect=True))
        for a, b in exhaustive_pairs(8):
            exact = a + b
            assert abs(exact - rect.add(a, b)) <= abs(exact - plain.add(a, b))


# ---------------------------------------------------------------------------
# analytic backend: exact against brute-force enumeration
# ---------------------------------------------------------------------------

def brute_force_pmf(model, width):
    counts = {}
    for a, b in exhaustive_pairs(width):
        err = model.add(a, b) - (a + b)
        counts[err] = counts.get(err, 0) + 1
    total = float(1 << (2 * width))
    return {err: n / total for err, n in sorted(counts.items())}


@pytest.mark.parametrize("spec", [
    cesa_rect_spec(8), hoeraa_spec(8, 4), loa_static_spec(8, 4),
    cesa_rect_spec(10, 2, 2), hoeraa_spec(6, 3),
], ids=lambda s: s.name)
def test_analytic_pmf_is_exact(spec):
    pmf = spec.to_error_pmf()
    analytic = dict(zip(pmf.support, pmf.probabilities))
    observed = brute_force_pmf(spec.to_model(), spec.width)
    assert set(analytic) == set(observed)
    for err, p in observed.items():
        assert analytic[err] == pytest.approx(p, abs=1e-9)
    terms = spec.to_error_terms()
    assert max(abs(e) for e in analytic) <= terms.max_error_distance()


# ---------------------------------------------------------------------------
# the payoff criterion: six oracles, zero family-specific oracle code
# ---------------------------------------------------------------------------

class TestSixLayerConformance:
    def test_new_families_pass_every_layer_exhaustively(self):
        reports = verify_registry(
            ["cesa_rect", "hoeraa", "loa_static"],
            options=VerifyOptions(width=8))
        assert len(reports) == 3
        for report in reports:
            assert len(report.layers) == 6
            assert report.ok, (
                f"{report.key}: "
                f"{[(r.layer, r.message) for r in report.layers]}")
            behavioural = report.layer("behavioural")
            assert behavioural.exhaustive
            assert behavioural.vectors == 1 << 16


# ---------------------------------------------------------------------------
# CLI: kind columns and sourced lint diagnostics
# ---------------------------------------------------------------------------

class TestCliV2:
    def test_spec_list_shows_stage_column(self, capsys):
        from repro.cli import main

        assert main(["spec", "list"]) == 0
        out = capsys.readouterr().out
        for needle in ("windowed+err+rect", "static:or", "static:hoeraa"):
            assert needle in out

    def test_verify_list_adders_shows_kind_column(self, capsys):
        from repro.cli import main

        assert main(["verify", "--list-adders"]) == 0
        out = capsys.readouterr().out
        assert "bespoke" in out            # hand-written models
        assert "windowed+err+rect" in out  # cesa_rect

    def test_spec_lint_accepts_a_file_path(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "good.json"
        path.write_text(cesa_rect_spec(8).to_json())
        assert main(["spec", "lint", str(path)]) == 0
        assert "cesa_rect_8_2_2" in capsys.readouterr().out

    def test_spec_lint_bad_kind_is_a_sourced_diagnostic(self, tmp_path,
                                                        capsys):
        from repro.cli import main

        document = json.loads(cesa_rect_spec(8).to_json())
        document["windows"][0]["kind"] = "frob"
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(document))
        assert main(["spec", "lint", str(path)]) == 2
        err = capsys.readouterr().err
        assert str(path) in err
        assert "unknown window kind 'frob'" in err
