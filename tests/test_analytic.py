"""Tests for the exact analytic error-PMF solver (repro.engine.analytic).

The solver's claim is strong — the *exact* signed error distribution of
any block-based adder — so the tests hold it to exact agreement with
brute force: weighted enumeration of every operand pair for non-uniform
profiles, and the engine's exhaustive statistics (themselves simulation)
for uniform ones, including property-based random layouts.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.engine import AnalyticUnsupported, ErrorPMF, adder_error_pmf
from repro.engine.analytic import bit_probability_profile, error_pmf
from repro.metrics.exhaustive import exhaustive_stats
from repro.spec.catalog import (
    SPEC_CATALOG,
    aca1_spec,
    catalog_spec,
    etaii_spec,
    gda_spec,
    gear_spec,
    hetero_spec,
)
from repro.utils.distributions import (
    GaussianOperands,
    SparseOperands,
    UniformOperands,
)

EXACT = 1e-9


def brute_force_pmf(adder, width, bit_one):
    """Weighted enumeration of every operand pair (the ground truth)."""
    values = np.arange(1 << width, dtype=np.int64)
    weights = np.ones(1 << width, dtype=np.float64)
    for i, alpha in enumerate(bit_one):
        bit = (values >> i) & 1
        weights *= np.where(bit == 1, alpha, 1.0 - alpha)
    approx = adder.add(
        np.repeat(values, 1 << width), np.tile(values, 1 << width))
    exact = (values[:, None] + values[None, :]).ravel()
    err = np.asarray(approx, dtype=np.int64) - exact
    joint = (weights[:, None] * weights[None, :]).ravel()
    pmf = {}
    for e in np.unique(err):
        pmf[int(e)] = float(joint[err == e].sum())
    return pmf


def assert_pmf_equals(pmf: ErrorPMF, reference: dict, tol: float = 1e-12):
    assert abs(pmf.total_mass - 1.0) <= tol
    got = dict(zip(pmf.support, pmf.probabilities))
    for e in set(got) | set(reference):
        assert got.get(e, 0.0) == pytest.approx(reference.get(e, 0.0),
                                                abs=tol), f"error value {e}"


# ---------------------------------------------------------------------------
# catalog families: exact agreement with exhaustive statistics
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("key", sorted(SPEC_CATALOG))
def test_catalog_family_matches_exhaustive(key):
    family = SPEC_CATALOG[key]
    width = max(8, family.min_width)
    adder = family(width).to_model()
    pmf = adder_error_pmf(adder)
    stats = exhaustive_stats(adder)
    assert pmf.error_rate == pytest.approx(stats.error_rate, abs=EXACT)
    assert pmf.med == pytest.approx(stats.med, abs=EXACT * max(1.0, stats.med))
    assert pmf.max_abs == stats.max_ed_observed


def test_exact_adder_has_trivial_pmf():
    pmf = adder_error_pmf(catalog_spec("rca", 8).to_model())
    assert pmf.support == (0,)
    assert pmf.probabilities == (1.0,)
    assert pmf.error_rate == 0.0
    assert pmf.med == 0.0


# ---------------------------------------------------------------------------
# non-uniform operand profiles against weighted brute force
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("key", ["gear_r2p2", "loa_half", "gda_b2c2"])
def test_weighted_pmf_matches_brute_force(key):
    width = 8
    adder = catalog_spec(key, width).to_model()
    bit_one = (0.3,) * width
    pmf = adder_error_pmf(adder, bit_one=bit_one)
    assert_pmf_equals(pmf, brute_force_pmf(adder, width, bit_one))


def test_varied_profile_matches_brute_force():
    width = 8
    adder = catalog_spec("gear_r2p2", width).to_model()
    bit_one = tuple(0.1 + 0.1 * i for i in range(width))
    pmf = adder_error_pmf(adder, bit_one=bit_one)
    assert_pmf_equals(pmf, brute_force_pmf(adder, width, bit_one))


def test_spec_to_error_pmf_shortcut():
    spec = catalog_spec("gear_r2p2", 8)
    direct = spec.to_error_pmf(one_density=0.3)
    via_model = adder_error_pmf(spec.to_model(), bit_one=(0.3,) * 8)
    assert direct.support == via_model.support
    assert direct.probabilities == pytest.approx(via_model.probabilities)


# ---------------------------------------------------------------------------
# property-based: random layouts of every block-based family
# ---------------------------------------------------------------------------

def _try(build):
    try:
        return build()
    except ValueError:
        return None


@st.composite
def block_based_specs(draw):
    width = draw(st.sampled_from([6, 8, 10]))
    kind = draw(st.sampled_from(["gear", "aca1", "etaii", "gda", "hetero"]))
    if kind == "gear":
        r = draw(st.integers(1, width - 1))
        p = draw(st.integers(1, width - r))
        spec = _try(lambda: gear_spec(width, r, p, allow_partial=True))
    elif kind == "aca1":
        sub = draw(st.integers(2, width - 1))
        spec = _try(lambda: aca1_spec(width, sub))
    elif kind == "etaii":
        sub = draw(st.integers(2, width // 2))
        spec = _try(lambda: etaii_spec(width, sub, allow_partial=True))
    elif kind == "gda":
        mb = draw(st.sampled_from([1, 2]))
        mc = draw(st.integers(1, max(1, width // mb - 1)))
        spec = _try(lambda: gda_spec(width, mb, mc, enforce_multiple=False))
    else:
        spec = _try(lambda: hetero_spec(width))
    assume(spec is not None)  # invalid geometry for this family
    return spec


@given(spec=block_based_specs())
@settings(max_examples=25, deadline=None)
def test_random_spec_pmf_matches_exhaustive(spec):
    adder = spec.to_model()
    pmf = adder_error_pmf(adder)
    # invariants
    assert abs(pmf.total_mass - 1.0) <= EXACT
    assert all(p > 0.0 for p in pmf.probabilities)
    assert list(pmf.support) == sorted(pmf.support)
    # exact agreement with full enumeration
    stats = exhaustive_stats(adder)
    assert pmf.error_rate == pytest.approx(stats.error_rate, abs=EXACT)
    assert pmf.med == pytest.approx(stats.med, abs=EXACT * max(1.0, stats.med))
    assert pmf.max_abs == stats.max_ed_observed


# ---------------------------------------------------------------------------
# supported-set boundaries and plumbing
# ---------------------------------------------------------------------------

def test_non_block_based_adder_is_unsupported():
    from repro.adders.etai import ErrorTolerantAdderI

    with pytest.raises(AnalyticUnsupported):
        adder_error_pmf(ErrorTolerantAdderI(8, split=4))


def test_support_cap_raises_cleanly():
    spec = catalog_spec("hetero", 10)
    with pytest.raises(AnalyticUnsupported):
        error_pmf(spec.width, spec.to_windows(), truncation=spec.truncation,
                  max_support=2)


def test_bit_probability_profile_rules():
    assert bit_probability_profile(None, 6, "monte_carlo") == (0.5,) * 6
    assert bit_probability_profile(
        GaussianOperands(8), 8, "exhaustive") == (0.5,) * 8
    assert bit_probability_profile(GaussianOperands(8), 8, "monte_carlo") is None
    assert bit_probability_profile(
        UniformOperands(8), 8, "monte_carlo") == (0.5,) * 8
    assert bit_probability_profile(
        SparseOperands(8, one_density=0.25), 8, "monte_carlo") == (0.25,) * 8


def test_pmf_round_trips_through_dict():
    pmf = adder_error_pmf(catalog_spec("gear_r2p2", 8).to_model())
    assert ErrorPMF.from_dict(pmf.to_dict()) == pmf


def test_error_stats_reduction():
    pmf = adder_error_pmf(catalog_spec("gear_r2p2", 8).to_model())
    stats = pmf.to_error_stats(max_ed_bound=1 << 8)
    assert stats.samples == 0
    assert stats.error_rate == pmf.error_rate
    assert stats.med == pmf.med
    assert stats.ned == pmf.med / (1 << 8)
    assert stats.mred is None
    assert stats.acc_amp_avg is None
    assert stats.maa_acceptance == {
        1.0: pytest.approx((1.0 - pmf.error_rate) * 100.0)}
