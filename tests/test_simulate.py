"""Unit tests for Monte-Carlo simulation and exhaustive evaluation."""

import numpy as np
import pytest

from repro.adders.rca import RippleCarryAdder
from repro.core.gear import GeArAdder, GeArConfig
from repro.metrics.exhaustive import (
    MAX_EXHAUSTIVE_WIDTH,
    exhaustive_error_probability,
    exhaustive_stats,
)
from repro.metrics.simulate import (
    PAPER_SAMPLE_COUNT,
    monte_carlo_stats,
    simulate_error_probability,
)
from repro.utils.distributions import SparseOperands


class TestSimulateErrorProbability:
    def test_exact_adder_never_errs(self):
        report = simulate_error_probability(RippleCarryAdder(12), samples=2000)
        assert report.measured_error_probability == 0.0
        assert report.analytic_error_probability == 0.0
        assert report.absolute_gap == 0.0

    def test_paper_protocol_close_to_model(self):
        adder = GeArAdder(GeArConfig(12, 4, 4))
        report = simulate_error_probability(adder, samples=PAPER_SAMPLE_COUNT,
                                            seed=2015)
        assert report.absolute_gap is not None
        assert report.absolute_gap < 0.01

    def test_large_sample_converges(self):
        adder = GeArAdder(GeArConfig(12, 4, 4))
        report = simulate_error_probability(adder, samples=500_000, seed=1)
        assert report.absolute_gap < 1e-3

    def test_seed_reproducibility(self):
        adder = GeArAdder(GeArConfig(12, 4, 4))
        r1 = simulate_error_probability(adder, samples=5000, seed=9)
        r2 = simulate_error_probability(adder, samples=5000, seed=9)
        assert r1.measured_error_probability == r2.measured_error_probability

    def test_custom_distribution(self):
        adder = GeArAdder(GeArConfig(12, 4, 4))
        sparse = simulate_error_probability(
            adder, samples=50_000, seed=2,
            distribution=SparseOperands(12, one_density=0.1),
        )
        uniform = simulate_error_probability(adder, samples=50_000, seed=2)
        # Sparse operands propagate less -> fewer missed carries.
        assert sparse.measured_error_probability < \
            uniform.measured_error_probability

    def test_invalid_samples(self):
        with pytest.raises((ValueError, TypeError)):
            simulate_error_probability(RippleCarryAdder(8), samples=0)


class TestMonteCarloStats:
    def test_small_run_single_chunk(self):
        adder = GeArAdder(GeArConfig(12, 4, 4))
        stats = monte_carlo_stats(adder, samples=10_000, seed=3)
        assert stats.samples == 10_000
        assert 0 < stats.error_rate < 0.1

    def test_chunked_run_statistically_consistent(self):
        # Chunking re-pairs the rng draws, so results are statistically
        # equivalent rather than bit-identical.
        adder = GeArAdder(GeArConfig(10, 2, 2))
        whole = monte_carlo_stats(adder, samples=200_000, seed=4, chunk=1 << 20)
        chunked = monte_carlo_stats(adder, samples=200_000, seed=4, chunk=7000)
        assert chunked.samples == whole.samples
        assert chunked.med == pytest.approx(whole.med, rel=0.05)
        assert chunked.error_rate == pytest.approx(whole.error_rate, abs=5e-3)
        assert chunked.maa(0.95) == pytest.approx(whole.maa(0.95), abs=1.0)
        assert chunked.max_ed_bound == whole.max_ed_bound


class TestExhaustive:
    def test_matches_analytic_exactly(self):
        cfg = GeArConfig(10, 2, 2)
        adder = GeArAdder(cfg)
        from repro.core.error_model import error_probability_exact

        assert exhaustive_error_probability(adder) == pytest.approx(
            error_probability_exact(cfg), abs=1e-12
        )

    def test_width_guard(self):
        with pytest.raises(ValueError):
            exhaustive_error_probability(RippleCarryAdder(MAX_EXHAUSTIVE_WIDTH + 1))

    def test_stats_sample_count(self):
        adder = GeArAdder(GeArConfig(8, 2, 2))
        stats = exhaustive_stats(adder)
        assert stats.samples == 1 << 16

    def test_stats_chunking_invariant(self):
        adder = GeArAdder(GeArConfig(8, 2, 2))
        s1 = exhaustive_stats(adder, chunk_rows=256)
        s2 = exhaustive_stats(adder, chunk_rows=17)
        assert s1.med == pytest.approx(s2.med, rel=1e-12)
        assert s1.error_rate == pytest.approx(s2.error_rate, abs=1e-12)
