"""Unit tests for the Image Integral kernel."""

import numpy as np
import pytest

from repro.adders.rca import RippleCarryAdder
from repro.apps.images import natural_image
from repro.apps.integral import (
    accumulate,
    integral_image_2d,
    integral_image_rows,
    max_row_width,
)
from repro.core.gear import GeArAdder, GeArConfig


class TestMaxRowWidth:
    def test_paper_sizing(self):
        # N=20 fits a full-HD row of 8-bit pixels (the paper's choice).
        assert max_row_width(20) >= 1920
        # N=16 does not.
        assert max_row_width(16) < 1920


class TestAccumulate:
    def test_exact_prefix_sums(self):
        np.testing.assert_array_equal(
            accumulate(np.array([1, 2, 3, 4])), [1, 3, 6, 10]
        )

    def test_exact_adder_matches_cumsum(self):
        values = np.arange(50, dtype=np.int64)
        np.testing.assert_array_equal(
            accumulate(values, RippleCarryAdder(16)), np.cumsum(values)
        )

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            accumulate(np.zeros((2, 2)))


class TestIntegralRows:
    def test_exact_reference(self):
        img = natural_image(8, 16, seed=1)
        np.testing.assert_array_equal(
            integral_image_rows(img), np.cumsum(img, axis=1)
        )

    def test_exact_adder_reproduces_reference(self):
        img = natural_image(8, 32, seed=2)
        got = integral_image_rows(img, RippleCarryAdder(16))
        np.testing.assert_array_equal(got, np.cumsum(img, axis=1))

    def test_approximate_never_exceeds_exact(self):
        img = natural_image(16, 64, seed=3)
        adder = GeArAdder(GeArConfig(16, 4, 4))
        approx = integral_image_rows(img, adder)
        assert np.all(approx <= np.cumsum(img, axis=1))

    def test_errors_compound_along_rows(self):
        # Application-level MEDs grow towards the right edge (Table I's
        # large MEDs come from this accumulation).
        img = natural_image(32, 128, seed=4)
        adder = GeArAdder(GeArConfig(16, 4, 2, allow_partial=True))
        err = np.cumsum(img, axis=1) - integral_image_rows(img, adder)
        left = err[:, : 32].mean()
        right = err[:, -32 :].mean()
        assert right > left

    def test_overflow_guard(self):
        img = np.full((2, 2000), 255, dtype=np.int64)
        with pytest.raises(ValueError, match="overflow"):
            integral_image_rows(img, RippleCarryAdder(16))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            integral_image_rows(np.arange(5))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            integral_image_rows(np.array([[-1, 0]]))


class Test2D:
    def test_exact_2d(self):
        img = natural_image(8, 8, seed=5)
        expected = np.cumsum(np.cumsum(img, axis=1), axis=0)
        np.testing.assert_array_equal(integral_image_2d(img), expected)

    def test_2d_with_wide_adder(self):
        img = natural_image(8, 8, seed=6)
        got = integral_image_2d(img, RippleCarryAdder(20))
        expected = np.cumsum(np.cumsum(img, axis=1), axis=0)
        np.testing.assert_array_equal(got, expected)

    def test_2d_overflow_guard(self):
        img = np.full((64, 64), 255, dtype=np.int64)
        with pytest.raises(ValueError):
            integral_image_2d(img, RippleCarryAdder(16))
