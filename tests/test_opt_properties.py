"""Property-style checks tying the optimiser to lint and to equivalence.

For every architecture the builder registry can construct (at width 8, so
the joint input space stays within the exhaustive-equivalence bound):

* ``optimize`` must preserve functionality — proven, not sampled,
* ``sweep`` output must carry no dead-logic lint findings,
* ``strash`` output must carry no duplicate-gate lint findings.

This is the executable form of the contract that the ``dead-logic`` and
``duplicate-gate`` rules share their definitions (``opt.live_nets`` /
``opt.strash_key``) with the optimiser itself.
"""

import pytest

from repro.rtl.builders import build_named
from repro.rtl.equivalence import check_equivalence
from repro.rtl.lint import lint_netlist
from repro.rtl.opt import optimize, strash, sweep

#: Width-8 instances of every registered architecture: 16 joint input bits,
#: comfortably below check_equivalence's exhaustive threshold (22).
LOCAL_MATRIX = [
    ("rca", (8,)),
    ("cla", (8,)),
    ("ksa", (8,)),
    ("csla", (8, 4)),
    ("cska", (8, 4)),
    ("gear", (8, 2, 2)),
    ("gear_cla", (8, 2, 2)),
    ("gear_corrected", (8, 2, 2)),
    ("aca1", (8, 4)),
    ("aca2", (8, 4)),
    ("etaii", (8, 4)),
    ("gda", (8, 4, 4)),
    ("loa", (8, 4)),
]

_IDS = [" ".join([name, *map(str, params)]) for name, params in LOCAL_MATRIX]


@pytest.fixture(params=LOCAL_MATRIX, ids=_IDS)
def netlist(request):
    name, params = request.param
    return build_named(name, *params)


def test_optimize_preserves_function(netlist):
    report = check_equivalence(netlist, optimize(netlist))
    assert report.exhaustive, "width-8 adders must be checked exhaustively"
    assert report.equivalent, report.counterexample


def test_sweep_output_has_no_dead_logic(netlist):
    report = lint_netlist(sweep(netlist), rules=["dead-logic"])
    assert not report.diagnostics, report.format_text()


def test_strash_output_has_no_duplicates(netlist):
    report = lint_netlist(strash(netlist), rules=["duplicate-gate"])
    assert not report.diagnostics, report.format_text()


def test_optimized_output_stays_error_free(netlist):
    report = lint_netlist(optimize(netlist))
    assert report.ok(), report.format_text()


def test_build_named_rejects_unknown():
    with pytest.raises(ValueError, match="unknown builder"):
        build_named("carry-save", 8)
