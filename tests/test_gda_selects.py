"""Tests for GDA's per-block carry-select muxes (the [13] degradation knob)."""

import numpy as np
import pytest

from repro.adders.gda import GracefullyDegradingAdder
from tests.conftest import random_pairs


class TestSelectSemantics:
    def test_all_accurate_is_exact(self):
        gda = GracefullyDegradingAdder(16, 4, 4)
        a, b = random_pairs(16, 5000, seed=1)
        np.testing.assert_array_equal(gda.add_with_selects(a, b), a + b)

    def test_default_is_accurate(self):
        gda = GracefullyDegradingAdder(8, 2, 2)
        assert gda.add_with_selects(255, 1) == 256

    def test_all_approximate_matches_windowed_model(self):
        gda = GracefullyDegradingAdder(16, 4, 4)
        a, b = random_pairs(16, 5000, seed=2)
        selects = [False] * (gda.block_count - 1)
        np.testing.assert_array_equal(
            gda.add_with_selects(a, b, selects), np.asarray(gda.add(a, b))
        )

    def test_degradation_is_monotone_msb_first(self):
        # Chaining boundaries accurately from the MSB side can only shrink
        # the mean error.
        gda = GracefullyDegradingAdder(16, 2, 2)
        a, b = random_pairs(16, 20000, seed=3)
        boundaries = gda.block_count - 1
        meds = []
        for accurate_count in range(boundaries + 1):
            selects = [i >= boundaries - accurate_count
                       for i in range(boundaries)]
            out = np.asarray(gda.add_with_selects(a, b, selects))
            meds.append(float(np.abs(out - (a + b)).mean()))
        assert meds == sorted(meds, reverse=True)
        assert meds[-1] == 0.0

    def test_single_boundary_flip_fixes_that_boundary(self):
        gda = GracefullyDegradingAdder(8, 2, 2)
        # Generate in block 1, propagates through block 2: block 3's
        # 2-bit prediction (over bits 2..3) cannot see the carry.
        a, b = 0b00001111, 0b00000001
        approx = gda.add_with_selects(a, b, [False, False, False])
        fixed = gda.add_with_selects(a, b, [False, True, False])
        assert approx != a + b
        assert fixed == a + b

    def test_scalar_and_array_agree(self):
        gda = GracefullyDegradingAdder(8, 2, 4)
        a, b = random_pairs(8, 200, seed=4)
        selects = [False, True, False]
        vec = np.asarray(gda.add_with_selects(a, b, selects))
        for i in range(0, 200, 23):
            assert gda.add_with_selects(int(a[i]), int(b[i]), selects) == vec[i]


class TestValidation:
    def test_select_length_checked(self):
        gda = GracefullyDegradingAdder(8, 2, 2)
        with pytest.raises(ValueError):
            gda.add_with_selects(1, 2, [True])

    def test_operand_range_checked(self):
        gda = GracefullyDegradingAdder(8, 2, 2)
        with pytest.raises(ValueError):
            gda.add_with_selects(256, 0)

    def test_block_count(self):
        assert GracefullyDegradingAdder(16, 4, 4).block_count == 4
