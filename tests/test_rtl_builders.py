"""Unit tests for repro.rtl.builders: netlists match behavioural models."""

import numpy as np
import pytest

from repro.adders import (
    AccuracyConfigurableAdder,
    AlmostCorrectAdder,
    ErrorTolerantAdderII,
    GracefullyDegradingAdder,
    LowerPartOrAdder,
)
from repro.core.gear import GeArAdder, GeArConfig
from repro.rtl.builders import (
    build_aca1,
    build_aca2,
    build_cla,
    build_etaii,
    build_gda,
    build_gear,
    build_loa,
    build_rca,
)
from repro.rtl.sim import simulate_bus
from tests.conftest import random_pairs


def _assert_matches(netlist, adder, count=400, seed=11):
    a, b = random_pairs(adder.width, count, seed=seed)
    got = simulate_bus(netlist, {"A": a, "B": b}, "S")
    want = np.asarray(adder.add(a, b))
    np.testing.assert_array_equal(got, want)


class TestExactBuilders:
    @pytest.mark.parametrize("width", [1, 2, 5, 8, 16, 24])
    def test_rca_exact(self, width):
        nl = build_rca(width)
        a, b = random_pairs(width, 300, seed=width)
        np.testing.assert_array_equal(
            simulate_bus(nl, {"A": a, "B": b}, "S"), a + b
        )

    @pytest.mark.parametrize("width", [1, 2, 4, 8, 12])
    def test_cla_exact(self, width):
        nl = build_cla(width)
        a, b = random_pairs(width, 300, seed=width)
        np.testing.assert_array_equal(
            simulate_bus(nl, {"A": a, "B": b}, "S"), a + b
        )

    def test_rca_exhaustive_small(self):
        nl = build_rca(4)
        vals = np.arange(16, dtype=np.int64)
        a = np.repeat(vals, 16)
        b = np.tile(vals, 16)
        np.testing.assert_array_equal(
            simulate_bus(nl, {"A": a, "B": b}, "S"), a + b
        )

    def test_output_width_is_n_plus_1(self):
        assert len(build_rca(7).output_buses["S"]) == 8


class TestGearBuilder:
    @pytest.mark.parametrize("n,r,p", [(8, 2, 2), (12, 4, 4), (12, 2, 6),
                                       (16, 4, 4), (16, 2, 6), (20, 5, 5)])
    def test_matches_behavioural(self, n, r, p):
        adder = GeArAdder(GeArConfig(n, r, p))
        _assert_matches(build_gear(n, r, p), adder)

    @pytest.mark.parametrize("n,r,p", [(16, 4, 2), (16, 4, 6), (20, 3, 7)])
    def test_partial_mode_matches(self, n, r, p):
        adder = GeArAdder(GeArConfig(n, r, p, allow_partial=True))
        _assert_matches(build_gear(n, r, p, allow_partial=True), adder)

    def test_error_detect_bus_present(self):
        nl = build_gear(12, 4, 4)
        assert "ERR" in nl.output_buses
        assert len(nl.output_buses["ERR"]) == 1  # k-1 flags

    def test_error_detect_matches_behaviour(self):
        adder = GeArAdder(GeArConfig(12, 2, 6))
        nl = build_gear(12, 2, 6)
        a, b = random_pairs(12, 500, seed=5)
        err_bus = simulate_bus(nl, {"A": a, "B": b}, "ERR")
        flags = adder.detection_flags(a, b)
        want = np.zeros_like(err_bus)
        for i, f in enumerate(flags[1:]):
            want |= np.asarray(f) << i
        np.testing.assert_array_equal(err_bus, want)

    def test_no_error_detect_option(self):
        nl = build_gear(12, 4, 4, with_error_detect=False)
        assert "ERR" not in nl.output_buses

    def test_strict_mode_rejects_nondivisible(self):
        with pytest.raises(ValueError):
            build_gear(16, 4, 6)


class TestCoverageBuilders:
    def test_aca1_matches(self):
        _assert_matches(build_aca1(16, 4), AlmostCorrectAdder(16, 4))

    def test_aca2_matches(self):
        _assert_matches(build_aca2(16, 8), AccuracyConfigurableAdder(16, 8))

    def test_etaii_matches(self):
        _assert_matches(build_etaii(16, 8), ErrorTolerantAdderII(16, 8))

    def test_etaii_odd_length_rejected(self):
        with pytest.raises(ValueError):
            build_etaii(16, 7)

    def test_etaii_native_structure_costs_more_area(self):
        # Table I: ETAII 28 LUTs vs ACA-II 24 for the same function — the
        # separate carry-generator units cannot share slice LUTs with the
        # sum units.  Our model reproduces the ordering.
        from repro.timing.fpga import characterize_netlist

        etaii = characterize_netlist(build_etaii(16, 8))
        aca2 = characterize_netlist(build_aca2(16, 8))
        assert etaii.luts > aca2.luts

    def test_etaii_and_aca2_functionally_identical(self):
        from repro.rtl.equivalence import check_equivalence

        report = check_equivalence(build_etaii(16, 8), build_aca2(16, 8),
                                   random_vectors=20_000)
        assert report.equivalent


class TestGdaBuilder:
    @pytest.mark.parametrize("n,mb,mc", [(8, 1, 2), (8, 2, 2), (8, 2, 4),
                                         (16, 4, 4), (16, 4, 8)])
    def test_matches_behavioural(self, n, mb, mc):
        adder = GracefullyDegradingAdder(n, mb, mc, enforce_multiple=False)
        _assert_matches(build_gda(n, mb, mc), adder)

    def test_indivisible_width_rejected(self):
        with pytest.raises(ValueError):
            build_gda(10, 4, 4)

    def test_excessive_prediction_rejected(self):
        with pytest.raises(ValueError):
            build_gda(8, 4, 5)


class TestLoaBuilder:
    @pytest.mark.parametrize("approx", [0, 1, 3, 7])
    def test_matches_behavioural(self, approx):
        adder = LowerPartOrAdder(8, approx)
        _assert_matches(build_loa(8, approx), adder)

    def test_bad_approx_bits(self):
        with pytest.raises(ValueError):
            build_loa(8, 8)
