"""Unit tests for sweeps, Pareto analysis and table rendering."""

import pytest

from repro.adders import GracefullyDegradingAdder, RippleCarryAdder
from repro.analysis.pareto import dominates, pareto_front, select_config
from repro.analysis.sweep import SweepResult, sweep_adder_family, sweep_gear_configs
from repro.analysis.tables import Table, format_table
from repro.core.gear import GeArAdder, GeArConfig


def _point(name, err, delay, luts):
    return SweepResult(
        name=name, r=1, p=1, k=2, error_probability=err,
        accuracy_pct=(1 - err) * 100, med=0.0, ned=err,
        delay_ns=delay, luts=luts,
    )


class TestSweep:
    def test_gear_sweep_without_hardware(self):
        results = sweep_gear_configs(12, r_values=[4], with_hardware=False)
        assert len(results) == 7  # P = 1..7 (P=8 is exact)
        assert all(r.delay_ns is None for r in results)
        accs = [r.accuracy_pct for r in sorted(results, key=lambda r: r.p)]
        assert accs == sorted(accs)

    def test_gear_sweep_with_hardware(self):
        results = sweep_gear_configs(8, r_values=[2], with_hardware=True)
        assert all(r.delay_ns is not None and r.luts is not None
                   for r in results)
        assert all(r.delay_ned_product is not None for r in results)

    def test_family_sweep(self):
        adders = [RippleCarryAdder(8), GeArAdder(GeArConfig(8, 2, 2)),
                  GracefullyDegradingAdder(8, 2, 2)]
        rows = sweep_adder_family(adders)
        assert [r.name for r in rows] == [a.name for a in adders]
        assert rows[0].error_probability == 0.0
        assert rows[1].med > 0

    def test_family_sweep_med_fallback(self):
        from repro.adders.etai import ErrorTolerantAdderI

        rows = sweep_adder_family(
            [ErrorTolerantAdderI(8, 4)],
            med_fn=lambda adder: 5.0,
        )
        assert rows[0].med == 5.0
        assert rows[0].ned == pytest.approx(5.0 / 31)


class TestPareto:
    def test_dominates(self):
        good = _point("good", 0.01, 1.0, 10)
        bad = _point("bad", 0.02, 1.1, 11)
        assert dominates(good, bad)
        assert not dominates(bad, good)

    def test_incomparable(self):
        fast = _point("fast", 0.10, 0.5, 10)
        accurate = _point("accurate", 0.01, 2.0, 20)
        assert not dominates(fast, accurate)
        assert not dominates(accurate, fast)

    def test_front_extraction(self):
        pts = [
            _point("a", 0.01, 2.0, 20),
            _point("b", 0.10, 0.5, 10),
            _point("c", 0.10, 2.5, 25),  # dominated by both
        ]
        front = pareto_front(pts)
        assert [p.name for p in front] == ["a", "b"]

    def test_front_of_real_sweep_nonempty(self):
        results = sweep_gear_configs(8, with_hardware=False,
                                     r_values=[1, 2])
        front = pareto_front(
            results, objectives=[lambda r: r.error_probability,
                                 lambda r: -r.p]
        )
        assert front

    def test_select_config_thresholds(self):
        pts = [
            _point("coarse", 0.20, 0.5, 5),
            _point("fine", 0.001, 1.5, 15),
        ]
        assert select_config(pts, 99.0).name == "fine"
        assert select_config(pts, 50.0).name == "coarse"
        assert select_config(pts, 99.99) is None

    def test_select_config_validation(self):
        with pytest.raises(ValueError):
            select_config([], 120.0)


class TestTables:
    def test_render_alignment(self):
        table = Table(["a", "long_header"], title="T")
        table.add_row(1, 2.5)
        table.add_row("xx", None)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long_header" in lines[1]
        assert "-" in lines[2]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) <= 2  # header/sep/rows aligned

    def test_cell_formatting(self):
        table = Table(["x"])
        table.add_row(0.00001)
        table.add_row(True)
        table.add_row(None)
        text = table.render()
        assert "1.0000e-05" in text
        assert "yes" in text
        assert "-" in text

    def test_row_arity_checked(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_format_table_helper(self):
        text = format_table(["h"], [(1,), (2,)])
        assert text.count("\n") == 3

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            Table([])
