"""Tests for the service wire protocol (repro.serve.protocol).

Covers adder-reference resolution (registry keys, explicit widths, raw
GeAr triples, full spec documents), wire-to-EvalRequest translation and
its defaults, malformed-body rejection, canonical response encoding,
and the coalescing keys — including the auto-backend normalisation that
makes ``auto`` coalesce with the explicit spelling of the backend that
answers it.
"""

import json

import pytest

from repro.engine import api, evaluate
from repro.serve import protocol
from repro.serve.protocol import ProtocolError


# ---------------------------------------------------------------------------
# adder references
# ---------------------------------------------------------------------------

def test_resolve_registry_key_default_width():
    adder = protocol.resolve_adder("gear_r2p2")
    assert adder.width == protocol.DEFAULT_WIDTH


def test_resolve_family_with_width():
    adder = protocol.resolve_adder({"family": "rca", "width": 12})
    assert adder.width == 12


def test_resolve_gear_triple():
    adder = protocol.resolve_adder({"gear": [12, 4, 4]})
    assert (adder.config.n, adder.config.r, adder.config.p) == (12, 4, 4)


def test_resolve_spec_document_round_trips():
    from repro.spec.catalog import catalog_spec

    spec = catalog_spec("gear_r2p2", 8)
    via_wire = protocol.resolve_adder({"spec": spec.to_dict()})
    direct = spec.to_model()
    assert via_wire.fingerprint() == direct.fingerprint()


def test_resolution_is_memoised():
    first = protocol.resolve_adder("gear_r2p2")
    second = protocol.resolve_adder("gear_r2p2")
    assert first is second


@pytest.mark.parametrize("ref", [
    "definitely_not_registered",
    {"family": "nope"},
    {"gear": [8, 2]},
    {"unknown_kind": 1},
    42,
    None,
])
def test_bad_references_raise_protocol_error(ref):
    with pytest.raises(ProtocolError):
        protocol.resolve_adder(ref)


# ---------------------------------------------------------------------------
# /eval wire bodies
# ---------------------------------------------------------------------------

def test_build_request_defaults():
    request = protocol.build_request({"adder": "gear_r2p2"})
    assert request.mode == "monte_carlo"
    assert request.samples == 10_000
    assert request.seed == 2015
    assert request.backend == "sampling"


def test_build_request_full_body():
    request = protocol.build_request({
        "adder": {"gear": [12, 4, 4]},
        "mode": "exhaustive",
        "backend": "analytic",
        "thresholds": [16, 64],
    })
    assert request.mode == "exhaustive"
    assert request.backend == "analytic"
    assert request.maa_thresholds == (16.0, 64.0)


@pytest.mark.parametrize("wire,fragment", [
    ({}, "adder"),
    ({"adder": "gear_r2p2", "mode": "fixed"}, "mode"),
    ({"adder": "gear_r2p2", "bogus": 1}, "bogus"),
    ([], "object"),
    ({"adder": "gear_r2p2", "thresholds": "x"}, "thresholds"),
])
def test_build_request_rejects_malformed(wire, fragment):
    with pytest.raises(ProtocolError, match=fragment):
        protocol.build_request(wire)


def test_offline_payload_matches_engine(gear_wire={"adder": "gear_r2p2",
                                                   "samples": 1000,
                                                   "seed": 5}):
    payload = protocol.offline_eval_payload(gear_wire)
    direct = evaluate(protocol.build_request(gear_wire)).to_json()
    assert payload == direct


def test_canonical_bytes_match_cli_json_encoding():
    payload = {"b": 1, "a": {"z": [1, 2]}}
    expected = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()
    assert protocol.canonical_bytes(payload) == expected


# ---------------------------------------------------------------------------
# coalescing keys
# ---------------------------------------------------------------------------

def test_eval_key_stable_across_equivalent_bodies():
    a = protocol.build_request({"adder": "gear_r2p2", "samples": 1000,
                                "seed": 9})
    b = protocol.build_request({"adder": {"family": "gear_r2p2", "width": 8},
                                "seed": 9, "samples": 1000})
    assert protocol.eval_coalesce_key(a) == protocol.eval_coalesce_key(b)


def test_eval_key_distinguishes_seed_and_samples():
    base = {"adder": "gear_r2p2", "samples": 1000, "seed": 1}
    key = protocol.eval_coalesce_key(protocol.build_request(base))
    for variant in [dict(base, seed=2), dict(base, samples=2000)]:
        other = protocol.eval_coalesce_key(protocol.build_request(variant))
        assert other != key


def test_eval_key_none_for_unseeded_monte_carlo():
    request = protocol.build_request({"adder": "gear_r2p2", "seed": None})
    assert protocol.eval_coalesce_key(request) is None


def test_eval_key_auto_coalesces_with_resolved_backend():
    """'auto' must share a key with the backend it resolves to."""
    from repro.engine.backends import resolve_backend

    wire = {"adder": "gear_r2p2", "mode": "exhaustive"}
    auto = protocol.build_request(dict(wire, backend="auto"))
    resolved = resolve_backend(auto).name
    explicit = protocol.build_request(dict(wire, backend=resolved))
    assert (protocol.eval_coalesce_key(auto)
            == protocol.eval_coalesce_key(explicit))


def test_request_digest_folds_seed_into_identity():
    adder = protocol.resolve_adder("gear_r2p2")
    r1 = api.EvalRequest.monte_carlo(adder, 1000, seed=1)
    r2 = api.EvalRequest.monte_carlo(adder, 1000, seed=2)
    assert api.request_digest(r1) != api.request_digest(r2)
    # while the shard-cache key material stays seed-free
    assert (api.request_key_material(r1) == api.request_key_material(r2))


def test_wire_key_canonicalises_field_order():
    a = protocol.wire_coalesce_key("verify", {"width": 8, "adders": ["rca"]})
    b = protocol.wire_coalesce_key("verify", {"adders": ["rca"], "width": 8})
    assert a == b
    assert a != protocol.wire_coalesce_key("experiment",
                                           {"width": 8, "adders": ["rca"]})


# ---------------------------------------------------------------------------
# /verify and /experiment bodies
# ---------------------------------------------------------------------------

def test_build_verify_options_defaults_and_validation():
    adders, options = protocol.build_verify_options({})
    assert adders is None
    assert options.width == protocol.DEFAULT_WIDTH

    adders, options = protocol.build_verify_options(
        {"adders": ["rca"], "layers": ["behavioural"], "width": 6})
    assert adders == ["rca"]
    assert options.layers == ("behavioural",)

    with pytest.raises(ProtocolError, match="unknown adders"):
        protocol.build_verify_options({"adders": ["nope"]})
    with pytest.raises(ProtocolError, match="list of registry keys"):
        protocol.build_verify_options({"adders": "rca"})


def test_build_experiment_validates_name():
    name, kwargs = protocol.build_experiment(
        {"name": "table3", "samples": 100, "seed": 1})
    assert name == "table3"
    assert kwargs == {"samples": 100, "seed": 1}

    with pytest.raises(ProtocolError, match="unknown experiment"):
        protocol.build_experiment({"name": "nope"})
    with pytest.raises(ProtocolError, match="unknown experiment"):
        protocol.build_experiment({})
