"""Unit tests for error-spectrum analysis."""

import numpy as np
import pytest

from repro.core.error_model import error_probability_exact, mean_error_distance_analytic
from repro.core.gear import GeArAdder, GeArConfig
from repro.metrics.spectrum import ErrorSpectrum, error_spectrum, spectrum_table
from repro.utils.distributions import SparseOperands


class TestErrorSpectrum:
    @pytest.fixture(scope="class")
    def spectrum(self):
        adder = GeArAdder(GeArConfig(12, 4, 4))
        return error_spectrum(adder, samples=200_000, seed=1)

    def test_pmf_sums_to_one(self, spectrum):
        assert sum(spectrum.magnitude_pmf.values()) == pytest.approx(1.0)

    def test_error_rate_matches_model(self, spectrum):
        expected = error_probability_exact(GeArConfig(12, 4, 4))
        assert spectrum.error_rate == pytest.approx(expected, abs=2e-3)

    def test_med_matches_model(self, spectrum):
        expected = mean_error_distance_analytic(GeArConfig(12, 4, 4))
        assert spectrum.med == pytest.approx(expected, rel=0.1)

    def test_magnitudes_are_power_of_two_combinations(self, spectrum):
        # For k=2 every error is exactly one missed carry: 2^{result_low}.
        assert set(spectrum.magnitude_pmf) <= {0, 1 << 8}

    def test_window_attribution(self, spectrum):
        assert len(spectrum.window_miss_rate) == 1
        assert spectrum.window_miss_rate[0] == pytest.approx(
            spectrum.error_rate, abs=1e-9
        )
        assert spectrum.dominant_window() == 1

    def test_multi_window_attribution_msb_heavy(self):
        adder = GeArAdder(GeArConfig(16, 2, 2))
        spec = error_spectrum(adder, samples=100_000, seed=2)
        # Error *mass* (weighted by 2^{result_low}) is dominated by the
        # most significant window even though miss rates are similar.
        assert spec.dominant_window() == len(adder.windows) - 1
        assert spec.window_error_mass == sorted(spec.window_error_mass)

    def test_distribution_dependence(self):
        adder = GeArAdder(GeArConfig(12, 4, 4))
        sparse = error_spectrum(adder, samples=50_000, seed=3,
                                distribution=SparseOperands(12, 0.15))
        uniform = error_spectrum(adder, samples=50_000, seed=3)
        assert sparse.error_rate < uniform.error_rate

    def test_exact_adder_spectrum(self):
        adder = GeArAdder(GeArConfig(8, 4, 4))
        spec = error_spectrum(adder, samples=10_000, seed=4)
        assert spec.error_rate == 0.0
        assert spec.magnitude_pmf == {0: 1.0}
        assert spec.dominant_window() is None

    def test_table_rendering(self, spectrum):
        text = spectrum_table(spectrum)
        assert "Error spectrum" in text
        assert "256" in text
