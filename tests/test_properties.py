"""Hypothesis property-based tests on the core invariants.

These sweep randomly over configurations *and* operands, checking the
relationships everything else in the library leans on:

* approximate sums never exceed exact sums (speculation only loses carries),
* the §3.3 corrector always recovers the exact sum,
* netlists agree with behavioural models,
* the analytic error/MED models agree with brute-force enumeration.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adders.gda import GracefullyDegradingAdder
from repro.adders.loa import LowerPartOrAdder
from repro.core.correction import ErrorCorrector
from repro.core.error_model import (
    error_probability,
    error_probability_brute,
    error_probability_exact,
    max_error_distance,
)
from repro.core.gear import GeArAdder, GeArConfig


@st.composite
def gear_configs(draw, max_n=20):
    """Random valid GeArConfig with at least one speculative sub-adder."""
    n = draw(st.integers(4, max_n))
    r = draw(st.integers(1, max(1, n // 2)))
    p = draw(st.integers(1, n - r - 1))
    strict = (n - r - p) % r == 0
    return GeArConfig(n, r, p, allow_partial=not strict)


@st.composite
def config_and_operands(draw):
    cfg = draw(gear_configs(max_n=16))
    limit = (1 << cfg.n) - 1
    a = draw(st.integers(0, limit))
    b = draw(st.integers(0, limit))
    return cfg, a, b


class TestAdderProperties:
    @given(config_and_operands())
    def test_approx_never_exceeds_exact(self, cao):
        cfg, a, b = cao
        assert GeArAdder(cfg).add(a, b) <= a + b

    @given(config_and_operands())
    def test_low_l_bits_always_exact(self, cao):
        cfg, a, b = cao
        mask = (1 << cfg.L) - 1
        assert GeArAdder(cfg).add(a, b) & mask == (a + b) & mask

    @given(config_and_operands())
    def test_error_bounded(self, cao):
        cfg, a, b = cao
        err = (a + b) - GeArAdder(cfg).add(a, b)
        assert 0 <= err <= max_error_distance(cfg)

    @given(config_and_operands())
    def test_commutativity(self, cao):
        cfg, a, b = cao
        adder = GeArAdder(cfg)
        assert adder.add(a, b) == adder.add(b, a)

    @given(config_and_operands())
    def test_zero_is_identity(self, cao):
        cfg, a, _ = cao
        assert GeArAdder(cfg).add(a, 0) == a

    @given(config_and_operands())
    def test_detection_flags_cover_errors(self, cao):
        cfg, a, b = cao
        adder = GeArAdder(cfg)
        if adder.add(a, b) != a + b:
            flags = adder.detection_flags(a, b)
            assert any(int(f) for f in flags[1:])


class TestCorrectionProperties:
    @given(config_and_operands())
    def test_full_correction_is_exact(self, cao):
        cfg, a, b = cao
        result = ErrorCorrector(GeArAdder(cfg)).add(a, b)
        assert result.value == a + b
        assert 1 <= result.cycles <= cfg.k

    @given(config_and_operands(), st.data())
    def test_suffix_closed_correction_never_hurts(self, cao, data):
        # Monotonicity only holds for suffix-closed masks (a contiguous
        # MSB-side enabled block): a corrected field that wraps hands its
        # carry to the next sub-adder, which must then be enabled too.
        # See test_correction.py::test_non_suffix_mask_can_hurt for the
        # counterexample with arbitrary masks.
        cfg, a, b = cao
        adder = GeArAdder(cfg)
        spec = cfg.k - 1
        enabled_count = data.draw(st.integers(0, spec))
        mask = [i >= spec - enabled_count for i in range(spec)]
        plain_err = (a + b) - adder.add(a, b)
        result = ErrorCorrector(adder, enabled=mask).add(a, b)
        corrected_err = (a + b) - result.value
        assert 0 <= corrected_err <= plain_err

    @given(config_and_operands())
    def test_cycles_equal_one_plus_corrections(self, cao):
        cfg, a, b = cao
        result = ErrorCorrector(GeArAdder(cfg)).add(a, b)
        assert result.cycles == 1 + result.corrections


class TestModelProperties:
    @given(gear_configs(max_n=14))
    @settings(max_examples=30)
    def test_model_equals_brute_force(self, cfg):
        events = cfg.r * (cfg.k - 1)
        if events > 18:
            return
        assert abs(error_probability(cfg) - error_probability_brute(cfg)) < 1e-12

    @given(gear_configs(max_n=20))
    @settings(max_examples=30)
    def test_model_at_most_exact_dp(self, cfg):
        # Equal for strict configs, conservative (>=) for partial ones.
        model = error_probability(cfg)
        exact = error_probability_exact(cfg)
        assert model >= exact - 1e-12

    @given(gear_configs(max_n=12))
    @settings(max_examples=15)
    def test_exact_dp_matches_monte_carlo(self, cfg):
        adder = GeArAdder(cfg)
        rng = np.random.default_rng(0)
        a = rng.integers(0, 1 << cfg.n, size=40_000, dtype=np.int64)
        b = rng.integers(0, 1 << cfg.n, size=40_000, dtype=np.int64)
        measured = float(np.mean(np.asarray(adder.add(a, b)) != a + b))
        expected = error_probability_exact(cfg)
        sigma = max((expected * (1 - expected) / 40_000) ** 0.5, 1e-4)
        assert abs(measured - expected) < 6 * sigma


class TestOtherAdderProperties:
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(1, 7))
    def test_loa_error_bounded(self, a, b, approx_bits):
        adder = LowerPartOrAdder(8, approx_bits)
        assert abs(adder.add(a, b) - (a + b)) <= adder.max_error_distance()

    @given(st.integers(0, 255), st.integers(0, 255),
           st.sampled_from([(1, 2), (2, 2), (2, 4), (4, 4)]))
    def test_gda_never_exceeds_exact(self, a, b, params):
        mb, mc = params
        adder = GracefullyDegradingAdder(8, mb, mc, enforce_multiple=False)
        assert adder.add(a, b) <= a + b

    @given(st.integers(0, 255), st.integers(0, 255),
           st.sampled_from([(1, 2), (2, 2), (2, 4)]))
    def test_gda_correction_exact(self, a, b, params):
        mb, mc = params
        adder = GracefullyDegradingAdder(8, mb, mc, enforce_multiple=False)
        assert ErrorCorrector(adder).add(a, b).value == a + b


class TestAnalyticProperties:
    @given(gear_configs(max_n=16))
    @settings(max_examples=25)
    def test_med_formula_matches_exhaustive_small(self, cfg):
        if cfg.n > 10:
            return
        from repro.core.error_model import mean_error_distance_analytic
        from repro.metrics.exhaustive import exhaustive_stats

        stats = exhaustive_stats(GeArAdder(cfg))
        assert abs(mean_error_distance_analytic(cfg) - stats.med) < 1e-9

    @given(gear_configs(max_n=20))
    @settings(max_examples=25)
    def test_bitwise_uniform_equals_exact(self, cfg):
        from repro.core.bitwise_model import (
            BitStatistics,
            error_probability_bitwise,
        )

        assert abs(
            error_probability_bitwise(cfg, BitStatistics.uniform(cfg.n))
            - error_probability_exact(cfg)
        ) < 1e-12

    @given(gear_configs(max_n=16))
    @settings(max_examples=25)
    def test_gda_med_equals_gear_at_same_params(self, cfg):
        # The Table II identity, property-tested across the design space.
        if cfg.n % cfg.r != 0 or cfg.p > cfg.n - cfg.r:
            return
        from repro.core.error_model import mean_error_distance_windows

        gda = GracefullyDegradingAdder(cfg.n, cfg.r, cfg.p,
                                       enforce_multiple=False)
        gear_med = mean_error_distance_windows(
            GeArAdder(cfg).windows, cfg.n
        )
        gda_med = mean_error_distance_windows(gda.windows, cfg.n)
        assert abs(gear_med - gda_med) < 1e-9

    @given(gear_configs(max_n=24))
    @settings(max_examples=30)
    def test_accuracy_complements_probability(self, cfg):
        from repro.core.error_model import accuracy_percentage, error_probability

        assert abs(
            accuracy_percentage(cfg) - (1 - error_probability(cfg)) * 100
        ) < 1e-9


class TestNetlistProperties:
    @given(gear_configs(max_n=14), st.data())
    @settings(max_examples=15)
    def test_netlist_matches_behaviour(self, cfg, data):
        from repro.rtl.sim import simulate_bus

        adder = GeArAdder(cfg)
        netlist = adder.build_netlist()
        limit = (1 << cfg.n) - 1
        a = data.draw(st.integers(0, limit))
        b = data.draw(st.integers(0, limit))
        got = int(simulate_bus(netlist, {"A": a, "B": b}, "S"))
        assert got == adder.add(a, b)

    @given(gear_configs(max_n=12))
    @settings(max_examples=10)
    def test_verilog_roundtrip_preserves_structure(self, cfg):
        from repro.rtl.verilog import to_verilog
        from repro.rtl.verilog_parser import parse_verilog

        netlist = GeArAdder(cfg).build_netlist()
        parsed = parse_verilog(to_verilog(netlist))
        assert parsed.input_buses == netlist.input_buses
        assert len(parsed.output_buses["S"]) == len(netlist.output_buses["S"])
