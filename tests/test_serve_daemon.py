"""End-to-end tests for the serve daemon (repro.serve.daemon).

A module-scoped in-process daemon (workers=0) answers real HTTP over a
loopback socket.  Covers the health/stats endpoints, the byte-identity
guarantee of served /eval responses against the offline engine, request
coalescing under concurrent duplicates, HTTP error mapping (400/404/405
plus worker failures as 500-free 400s for protocol errors), /verify and
/experiment round trips, and the keep-alive connection behaviour.
"""

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve import (
    ServeClient,
    ServeDaemon,
    ServeError,
    protocol,
    start_background,
)

EVAL_WIRE = {"adder": "gear_r2p2", "samples": 1000, "seed": 5}


@pytest.fixture(scope="module")
def daemon():
    instance = ServeDaemon(port=0, workers=0)
    thread = start_background(instance)
    yield instance
    instance.stop()
    thread.join(timeout=30)
    assert not thread.is_alive()


@pytest.fixture
def client(daemon):
    with ServeClient(port=daemon.port) as instance:
        yield instance


def test_port_zero_binds_ephemeral(daemon):
    assert daemon.port != 0


def test_healthz(client):
    payload = client.healthz()
    assert payload["status"] == "ok"
    assert payload["protocol"] == protocol.PROTOCOL_VERSION
    assert "/eval" in payload["endpoints"]


def test_eval_byte_identity_vs_offline(client):
    served = client.eval_raw(EVAL_WIRE)
    offline = protocol.canonical_bytes(protocol.offline_eval_payload(EVAL_WIRE))
    assert served == offline


def test_eval_analytic_backend(client):
    payload = client.eval({"adder": "gear_r2p2", "mode": "exhaustive",
                           "backend": "analytic"})
    assert payload == protocol.offline_eval_payload(
        {"adder": "gear_r2p2", "mode": "exhaustive", "backend": "analytic"})


def test_concurrent_duplicates_coalesce(daemon):
    before = daemon.coalescer.hits
    wire = {"adder": "gear_r2p2", "samples": 150_000, "seed": 77}

    def one(_):
        with ServeClient(port=daemon.port) as c:
            return c.eval(wire)

    with ThreadPoolExecutor(max_workers=6) as pool:
        results = list(pool.map(one, range(6)))
    assert all(r == results[0] for r in results)
    assert daemon.coalescer.hits > before


def test_stats_counters_and_latency(daemon, client):
    client.eval(EVAL_WIRE)
    stats = client.stats()
    server = stats["server"]
    assert server["coalesce"]["hits"] + server["coalesce"]["misses"] > 0
    assert stats["latency"]["serve.eval"]["count"] >= 1
    p50 = stats["latency"]["serve.eval"]["p50_s"]
    assert p50 is None or p50 >= 0
    # worker frames were absorbed across the pool boundary
    assert stats["telemetry"]["counters"].get("engine.requests", 0) >= 1
    # the whole document survives canonical JSON encoding (no inf/nan)
    json.dumps(stats, allow_nan=False)


def test_verify_endpoint(client):
    payload = client.verify({"adders": ["gear_r2p2"],
                             "layers": ["behavioural"], "width": 6})
    assert payload["ok"] is True
    assert payload["adders"] == ["gear_r2p2"]


def test_experiment_endpoint(client):
    payload = client.experiment({"name": "table3", "samples": 2000,
                                 "seed": 3})
    assert payload  # unified to_json document


@pytest.mark.parametrize("wire,fragment", [
    ({"adder": "not_an_adder"}, "bad adder reference"),
    ({"adder": "gear_r2p2", "bogus": 1}, "unknown eval fields"),
    ({}, "adder"),
])
def test_bad_eval_bodies_are_400(client, wire, fragment):
    with pytest.raises(ServeError) as excinfo:
        client.eval(wire)
    assert excinfo.value.status == 400
    assert fragment in excinfo.value.message


def test_unsupported_backend_is_400_not_500(client):
    with pytest.raises(ServeError) as excinfo:
        client.eval({"adder": "gear_r2p2", "backend": "nope"})
    assert excinfo.value.status == 400


def test_invalid_json_body_is_400(client):
    status, data = client.request_raw("POST", "/eval")
    assert status == 400  # empty body is not a JSON object
    status, _ = client.request_raw("GET", "/healthz")
    assert status == 200


def test_unknown_path_is_404(client):
    status, data = client.request_raw("GET", "/nope")
    assert status == 404
    assert "/eval" in json.loads(data)["error"]


def test_wrong_method_is_405(client):
    status, _ = client.request_raw("POST", "/healthz", {})
    assert status == 405
    status, _ = client.request_raw("GET", "/eval")
    assert status == 405


def test_keep_alive_reuses_one_connection(client):
    client.healthz()
    conn_before = client._connection()
    client.eval(EVAL_WIRE)
    assert client._connection() is conn_before


def test_errors_do_not_poison_the_connection(client):
    with pytest.raises(ServeError):
        client.eval({"adder": "nope"})
    assert client.healthz()["status"] == "ok"
