"""Unit tests for carry-chain statistics (the §1 motivation, quantified)."""

import numpy as np
import pytest

from repro.analysis.carrychain import (
    chain_coverage_table,
    expected_longest_chain,
    longest_chain_distribution,
    prob_longest_chain_at_most,
    required_chain_for_coverage,
)
from repro.utils.bitvec import longest_carry_chain


class TestProbLongestChain:
    def test_limit_at_least_n_is_certain(self):
        assert prob_longest_chain_at_most(16, 16) == 1.0
        assert prob_longest_chain_at_most(16, 20) == 1.0

    def test_limit_zero_closed_form(self):
        # No generate anywhere: every bit kills or propagates chain-free.
        assert prob_longest_chain_at_most(8, 0) == pytest.approx(0.75 ** 8)

    def test_single_bit(self):
        assert prob_longest_chain_at_most(1, 0) == pytest.approx(0.75)
        assert prob_longest_chain_at_most(1, 1) == 1.0

    def test_monotone_in_limit(self):
        probs = [prob_longest_chain_at_most(32, l) for l in range(33)]
        assert probs == sorted(probs)
        assert probs[-1] == 1.0

    def test_matches_exhaustive_enumeration(self):
        # Ground truth over all 8-bit operand pairs.
        n = 8
        vals = np.arange(1 << n, dtype=np.int64)
        a = np.repeat(vals, 1 << n)
        b = np.tile(vals, 1 << n)
        chains = longest_carry_chain(a, b, n)
        for limit in range(n + 1):
            measured = float(np.mean(chains <= limit))
            assert prob_longest_chain_at_most(n, limit) == pytest.approx(
                measured, abs=1e-12
            ), limit

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            prob_longest_chain_at_most(8, -1)
        with pytest.raises((ValueError, TypeError)):
            prob_longest_chain_at_most(0, 1)


class TestDistribution:
    def test_pmf_sums_to_one(self):
        pmf = longest_chain_distribution(24)
        assert sum(pmf) == pytest.approx(1.0)
        assert all(p >= -1e-15 for p in pmf)

    def test_expected_value_matches_simulation(self):
        n = 16
        rng = np.random.default_rng(5)
        a = rng.integers(0, 1 << n, size=200_000, dtype=np.int64)
        b = rng.integers(0, 1 << n, size=200_000, dtype=np.int64)
        measured = float(np.mean(longest_carry_chain(a, b, n)))
        assert expected_longest_chain(n) == pytest.approx(measured, abs=0.02)

    def test_expected_grows_logarithmically(self):
        # Burks-Goldstine-von-Neumann: E ~ log2(N).
        e16 = expected_longest_chain(16)
        e64 = expected_longest_chain(64)
        e256 = expected_longest_chain(256)
        assert 1.2 < e64 - e16 < 2.8
        assert 1.2 < e256 - e64 < 2.8


class TestDesignQueries:
    def test_full_chain_is_very_rare(self):
        # The paper's §1 claim for 64-bit additions.
        p_full = 1.0 - prob_longest_chain_at_most(64, 63)
        assert p_full < 1e-17

    def test_required_chain_for_coverage(self):
        l = required_chain_for_coverage(64, 0.01)
        assert 8 <= l <= 16
        # Tighter tolerance, longer window.
        assert required_chain_for_coverage(64, 1e-4) > l

    def test_required_chain_validates(self):
        with pytest.raises(ValueError):
            required_chain_for_coverage(64, 0.0)

    def test_coverage_table(self):
        table = chain_coverage_table(32, [4, 8, 16])
        assert table[4] > table[8] > table[16]

    def test_coverage_brackets_adder_accuracy(self):
        # An adder errs iff a carry chain fully covers some prediction span
        # with its generate below it: that needs a chain of at least P+1
        # bits, and any chain longer than L = R+P is guaranteed (modulo
        # edge effects) to cover one.  So the error probability must sit
        # between those two chain-length tail probabilities.
        from repro.core.error_model import error_probability
        from repro.core.gear import GeArConfig

        cfg = GeArConfig(16, 4, 4)
        err = error_probability(cfg)
        upper = 1.0 - prob_longest_chain_at_most(16, cfg.p)
        lower = 1.0 - prob_longest_chain_at_most(16, cfg.L)
        assert lower * 0.5 < err < upper
