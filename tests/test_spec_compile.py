"""Compiler conformance: spec-derived artefacts match the legacy classes.

Two layers of proof:

* behavioural — ``spec.to_model()`` is ``add()``- and
  ``detection_flags()``-identical to the hand-written adder classes for
  random GeAr/ACA/ETAII/GDA geometries at N ∈ {8, 12, 16} (the ISSUE's
  hypothesis acceptance),
* structural — every catalog spec's compiled netlist simulates to exactly
  the model's sums, and the heterogeneous family passes all four
  conformance oracles with zero family-specific code.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adders import (
    AccuracyConfigurableAdder,
    AlmostCorrectAdder,
    ErrorTolerantAdderII,
    GracefullyDegradingAdder,
)
from repro.core.gear import GeArAdder, GeArConfig
from repro.rtl.sim import simulate_bus
from repro.spec.catalog import (
    SPEC_CATALOG,
    aca1_spec,
    aca2_spec,
    etaii_spec,
    gda_spec,
    gear_spec,
)
from repro.verify.oracles import (
    check_behavioural,
    check_stats,
    check_vector,
    check_verilog,
)
from repro.verify.registry import registry_adder
from repro.verify.report import LayerStatus
from repro.verify.vectors import operand_vectors

WIDTHS = [8, 12, 16]


def _operands(n, seed, count=512):
    rng = np.random.default_rng(seed)
    return (rng.integers(0, 1 << n, size=count, dtype=np.uint64),
            rng.integers(0, 1 << n, size=count, dtype=np.uint64))


def _assert_twins(spec, legacy, seed):
    """Spec model and legacy class agree on sums and detection flags."""
    model = spec.to_model()
    a, b = _operands(spec.width, seed)
    np.testing.assert_array_equal(model.add(a, b), legacy.add(a, b))
    if hasattr(legacy, "detection_flags"):
        got = model.detection_flags(a, b)
        want = legacy.detection_flags(a, b)
        assert len(got) == len(want)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g, w)


@st.composite
def gear_cases(draw):
    n = draw(st.sampled_from(WIDTHS))
    r = draw(st.integers(1, n // 2))
    p = draw(st.integers(1, n - r - 1))
    partial = (n - r - p) % r != 0
    return n, r, p, partial


class TestSpecModelsMatchLegacyClasses:
    @given(gear_cases(), st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_gear(self, case, seed):
        n, r, p, partial = case
        spec = gear_spec(n, r, p, allow_partial=partial)
        legacy = GeArAdder(GeArConfig(n, r, p, allow_partial=partial))
        _assert_twins(spec, legacy, seed)

    @given(st.sampled_from(WIDTHS), st.data(), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_aca1(self, n, data, seed):
        l = data.draw(st.integers(2, n - 1))
        _assert_twins(aca1_spec(n, l), AlmostCorrectAdder(n, l), seed)

    @given(st.sampled_from(WIDTHS), st.data(), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_aca2_and_etaii(self, n, data, seed):
        lengths = [l for l in range(2, n, 2) if (n - l) % (l // 2) == 0]
        l = data.draw(st.sampled_from(lengths))
        _assert_twins(aca2_spec(n, l), AccuracyConfigurableAdder(n, l), seed)
        _assert_twins(etaii_spec(n, l), ErrorTolerantAdderII(n, l), seed)

    @given(st.sampled_from(WIDTHS), st.data(), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_gda(self, n, data, seed):
        mb = data.draw(st.sampled_from([m for m in (1, 2, 4) if n % m == 0]))
        mc = data.draw(st.sampled_from(
            [c for c in (mb, 2 * mb, 4 * mb) if c < n]))
        _assert_twins(gda_spec(n, mb, mc),
                      GracefullyDegradingAdder(n, mb, mc), seed)


class TestCompiledNetlists:
    @pytest.mark.parametrize("key", sorted(SPEC_CATALOG))
    def test_netlist_matches_model_exhaustively(self, key):
        family = SPEC_CATALOG[key]
        width = max(8, family.min_width)
        spec = family(width)
        model = spec.to_model()
        netlist = spec.to_netlist()
        vec = operand_vectors(width)
        got = simulate_bus(netlist, {"A": vec.a, "B": vec.b}, "S")
        np.testing.assert_array_equal(got, model.add(vec.a, vec.b))

    @pytest.mark.parametrize("key", sorted(SPEC_CATALOG))
    def test_model_and_netlist_share_the_spec_fingerprint(self, key):
        family = SPEC_CATALOG[key]
        spec = family(max(8, family.min_width))
        assert spec.to_model().fingerprint() == spec.fingerprint()


class TestHeteroThroughAllOracles:
    """ISSUE acceptance: the heterogeneous family flows through all four
    conformance layers purely as data."""

    @pytest.fixture(scope="class")
    def hetero(self):
        return registry_adder("hetero", 8)

    def test_behavioural(self, hetero):
        result = check_behavioural(hetero, operand_vectors(8))
        assert result.status is LayerStatus.PASS
        assert result.exhaustive

    def test_verilog(self, hetero):
        assert check_verilog(hetero).status is LayerStatus.PASS

    def test_stats(self, hetero):
        result = check_stats(hetero)
        assert result.status is LayerStatus.PASS
        assert result.details["measured_error_rate"] == pytest.approx(
            result.details["analytic_error_rate"], abs=1e-12)

    def test_vector(self, hetero):
        assert check_vector(hetero, operand_vectors(8),
                            max_scalar=256).status is LayerStatus.PASS
