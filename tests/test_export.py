"""Unit tests for CSV export of the experiments."""

import csv
import pathlib

import pytest

from repro.analysis.export import EXPORTERS, export_all, export_fig1, export_table3


def _read(path: pathlib.Path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


class TestExporters:
    def test_fig1_csv(self, tmp_path):
        path = export_fig1(tmp_path)
        rows = _read(path)
        assert rows[0] == ["R", "architecture", "P"]
        gear_points = [r for r in rows[1:] if r[1] == "GeAr" and r[0] == "2"]
        assert len(gear_points) == 13

    def test_table3_csv(self, tmp_path):
        path = export_table3(tmp_path)
        rows = _read(path)
        assert rows[0][0] == "N"
        assert len(rows) == 5  # header + 4 configurations
        first = rows[1]
        assert first[:3] == ["12", "4", "4"]
        assert float(first[4]) == pytest.approx(2.9297, abs=1e-3)

    def test_export_subset(self, tmp_path):
        paths = export_all(tmp_path, artefacts=["fig1", "table3"])
        assert set(paths) == {"fig1", "table3"}
        for p in paths.values():
            assert p.exists()

    def test_unknown_artefact_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_all(tmp_path, artefacts=["fig42"])

    def test_registry_covers_every_paper_artefact(self):
        assert set(EXPORTERS) == {
            "fig1", "fig7", "fig8", "fig9",
            "table1", "table2", "table3", "table4",
        }

    def test_fig7_series_monotone(self, tmp_path):
        from repro.analysis.export import export_fig7

        rows = _read(export_fig7(tmp_path))
        r2 = [(int(r[1]), float(r[2])) for r in rows[1:] if r[0] == "2"]
        accs = [acc for _, acc in sorted(r2)]
        assert accs == sorted(accs)
