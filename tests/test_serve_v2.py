"""Serve-tier resolution and coalescing for IR v2 adders.

The wire protocol predates IR v2, so these tests pin the two things a
v2 rollout must not break: references to the new catalog families (and
full v2 spec documents) resolve to the right models, and the in-flight
coalescing key inherits the fingerprint split — a rectified spec and
its unrectified twin describe *different* computations and must never
share an ``/eval`` leader, even when every other wire field matches.
"""

import pytest

from repro.serve import protocol
from repro.spec import RectifiedSpecAdder, StaticSpecAdder
from repro.spec.catalog import (
    catalog_spec,
    cesa_rect_spec,
    gear_spec,
    hoeraa_spec,
    loa_static_spec,
)


# ---------------------------------------------------------------------------
# adder-reference resolution
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("family, model_type", [
    ("cesa_rect", RectifiedSpecAdder),
    ("hoeraa", StaticSpecAdder),
    ("loa_static", StaticSpecAdder),
])
def test_new_families_resolve_by_reference(family, model_type):
    adder = protocol.resolve_adder({"family": family, "width": 8})
    assert isinstance(adder, model_type)
    assert adder.width == 8
    assert adder.fingerprint() == catalog_spec(family, 8).to_model().fingerprint()


@pytest.mark.parametrize("spec", [
    cesa_rect_spec(8), hoeraa_spec(8, 4), loa_static_spec(8, 4),
], ids=lambda s: s.name)
def test_v2_spec_documents_resolve(spec):
    via_wire = protocol.resolve_adder({"spec": spec.to_dict()})
    assert via_wire.fingerprint() == spec.to_model().fingerprint()


def test_v1_spec_documents_still_resolve():
    spec = catalog_spec("gear_r2p2", 8)
    assert spec.to_dict()["version"] == 1
    via_wire = protocol.resolve_adder({"spec": spec.to_dict()})
    assert via_wire.fingerprint() == spec.to_model().fingerprint()


def test_malformed_v2_document_is_a_protocol_error():
    document = cesa_rect_spec(8).to_dict()
    document["rectify"] = {"kind": "oracle"}
    with pytest.raises(protocol.ProtocolError, match="rectify"):
        protocol.resolve_adder({"spec": document})


# ---------------------------------------------------------------------------
# coalescing: rectified vs unrectified twins never share a leader
# ---------------------------------------------------------------------------

def _eval_key(spec):
    request = protocol.build_request({
        "adder": {"spec": spec.to_dict()},
        "mode": "exhaustive",
    })
    return protocol.eval_coalesce_key(request)


def test_rectified_twin_never_coalesces_with_base():
    rect = cesa_rect_spec(8, 2, 2)
    twin = gear_spec(8, 2, 2, allow_partial=True, error_detect=True,
                     name=rect.name)
    # Identical name, width and window geometry; only the declared
    # rectify stage differs — and so must the request digest.
    assert twin.to_windows() == rect.to_windows()
    rect_key, twin_key = _eval_key(rect), _eval_key(twin)
    assert rect_key is not None and twin_key is not None
    assert rect_key != twin_key


def test_static_approx_split_reaches_the_coalescer():
    assert _eval_key(hoeraa_spec(8, 4)) != _eval_key(loa_static_spec(8, 4))


def test_same_document_coalesces_with_itself():
    spec = cesa_rect_spec(8)
    assert _eval_key(spec) == _eval_key(spec)
    # ... and with an independently constructed equal spec.
    assert _eval_key(spec) == _eval_key(cesa_rect_spec(8))
