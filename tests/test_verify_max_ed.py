"""Max-error-distance bound tightness (satellite of ISSUE 3).

``WindowedSpeculativeAdder.max_error_distance()`` returns
``sum(2**w.result_low)`` over the speculative windows — documented as the
*attained* maximum for k = 2 and an upper bound (worst case assumes every
window misses at once) for k > 2.  These tests pin both claims against
exhaustive NumPy sweeps:

* every k = 2 GeAr configuration up to N = 10 attains the bound exactly,
* sampled k > 2 configurations never exceed it, and at least one sits
  strictly below (the bound is genuinely a bound, not an equality).
"""

import numpy as np
import pytest

from repro.core.gear import GeArAdder, GeArConfig
from repro.verify.vectors import exhaustive_pairs


def _k2_configs(max_n=10):
    """Every valid k=2 config (0 < N-L <= R) with N <= max_n."""
    configs = []
    for n in range(3, max_n + 1):
        for r in range(1, n - 1):
            for p in range(1, n - r):
                spill = n - r - p
                if 0 < spill <= r:
                    configs.append(
                        GeArConfig(n, r, p, allow_partial=spill % r != 0))
    return configs


def _exhaustive_max_ed(adder):
    a, b = exhaustive_pairs(adder.width)
    return int(np.max(np.asarray(adder.error_distance(a, b))))


class TestK2BoundIsAttained:
    def test_enumeration_is_substantial(self):
        # Guard the generator itself: plenty of configs, all k=2.
        configs = _k2_configs()
        assert len(configs) == 70
        assert all(cfg.k == 2 for cfg in configs)

    @pytest.mark.parametrize("cfg", _k2_configs(),
                             ids=lambda c: f"n{c.n}r{c.r}p{c.p}")
    def test_bound_attained_exhaustively(self, cfg):
        adder = GeArAdder(cfg)
        bound = adder.max_error_distance()
        assert _exhaustive_max_ed(adder) == bound
        # The single speculative window pins the bound's closed form.
        assert bound == 1 << adder.windows[1].result_low


class TestKGreaterThan2Bound:
    # k >= 3 samples kept at N <= 9 so the 4^N sweep stays fast.
    SAMPLED = [
        GeArConfig(6, 1, 1),   # k=5
        GeArConfig(6, 2, 1, allow_partial=True),   # k=3, partial tail
        GeArConfig(7, 2, 1, allow_partial=True),   # k=3, partial tail
        GeArConfig(8, 2, 2),   # k=3
        GeArConfig(8, 1, 3),   # k=5
        GeArConfig(9, 2, 3),   # k=3
        GeArConfig(9, 3, 2, allow_partial=True),   # k=3
    ]

    @pytest.mark.parametrize("cfg", SAMPLED,
                             ids=lambda c: f"n{c.n}r{c.r}p{c.p}")
    def test_bound_never_exceeded(self, cfg):
        adder = GeArAdder(cfg)
        assert cfg.k > 2
        assert _exhaustive_max_ed(adder) <= adder.max_error_distance()

    def test_bound_is_strict_for_some_config(self):
        # Simultaneous misses in *every* window are not always reachable,
        # so for k>2 the bound can overshoot; GeAr(8,2,2) shows it does.
        adder = GeArAdder(GeArConfig(8, 2, 2))
        assert _exhaustive_max_ed(adder) < adder.max_error_distance()

    def test_exact_configs_report_zero(self):
        adder = GeArAdder(GeArConfig(8, 4, 4))  # k=1: exact
        assert adder.max_error_distance() == 0
        assert _exhaustive_max_ed(adder) == 0
