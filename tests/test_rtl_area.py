"""Unit tests for repro.rtl.area (LUT estimation) and repro.rtl.opt."""

import numpy as np
import pytest

from repro.rtl.area import estimate_luts, estimate_luts_fast
from repro.rtl.builders import build_gear, build_rca
from repro.rtl.gates import Op
from repro.rtl.netlist import Netlist
from repro.rtl.opt import optimize, strash, sweep
from repro.rtl.sim import simulate_bus


class TestEstimateLuts:
    def test_single_gate_is_one_lut(self):
        nl = Netlist("t")
        a = nl.add_input_bus("A", 2)
        out = nl.and_(a[0], a[1])
        nl.set_output_bus("S", [out])
        assert estimate_luts(nl) == 1

    def test_mergeable_chain_fits_one_lut(self):
        # Three chained 2-input gates over 4 leaves fit one 6-LUT.
        nl = Netlist("t")
        a = nl.add_input_bus("A", 4)
        x = nl.and_(a[0], a[1])
        y = nl.or_(x, a[2])
        z = nl.xor(y, a[3])
        nl.set_output_bus("S", [z])
        assert estimate_luts(nl, k=6) == 1

    def test_wide_support_needs_more_luts(self):
        nl = Netlist("t")
        a = nl.add_input_bus("A", 12)
        x = nl.and_(*a[:6])
        y = nl.and_(*a[6:])
        z = nl.or_(x, y)
        nl.set_output_bus("S", [z])
        # 12 leaves cannot fit one 6-LUT.
        assert estimate_luts(nl, k=6) >= 2

    def test_k4_needs_more_than_k6(self):
        nl = build_gear(12, 4, 4)
        assert estimate_luts(nl, k=4) >= estimate_luts(nl, k=6)

    def test_carry_absorption(self):
        nl = build_rca(8)
        absorbed = estimate_luts(nl, absorb_carry=True)
        explicit = estimate_luts(nl, absorb_carry=False)
        assert absorbed < explicit

    def test_rca_one_lut_per_bit(self):
        # Matches the paper's Table I: 16-bit RCA = 16 LUTs.
        assert estimate_luts(optimize(build_rca(16))) == 16

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            estimate_luts(build_rca(4), k=1)

    def test_fast_variant_close_to_fixed_point(self):
        for nl in (build_rca(8), build_gear(12, 4, 4)):
            slow = estimate_luts(nl)
            fast = estimate_luts_fast(nl)
            assert fast >= slow  # fast merge is never more aggressive
            assert fast <= 3 * max(slow, 1)


class TestStrash:
    def test_duplicate_gates_collapse(self):
        nl = Netlist("t")
        a = nl.add_input_bus("A", 2)
        x1 = nl.xor(a[0], a[1])
        x2 = nl.xor(a[1], a[0])  # commutative duplicate
        out = nl.and_(x1, x2)
        nl.set_output_bus("S", [out])
        hashed = strash(nl)
        ops = [g.op for g in hashed.logic_gates()]
        assert ops.count(Op.XOR) == 1

    def test_behaviour_preserved(self):
        nl = build_gear(10, 2, 4)
        hashed = strash(nl)
        rng = np.random.default_rng(0)
        a = rng.integers(0, 1 << 10, size=200, dtype=np.int64)
        b = rng.integers(0, 1 << 10, size=200, dtype=np.int64)
        np.testing.assert_array_equal(
            simulate_bus(nl, {"A": a, "B": b}, "S"),
            simulate_bus(hashed, {"A": a, "B": b}, "S"),
        )

    def test_aca1_shares_overlapping_terms(self):
        from repro.rtl.builders import build_aca1

        nl = build_aca1(16, 4)
        before = len(nl.logic_gates())
        after = len(strash(nl).logic_gates())
        assert after < before  # overlapping windows recompute p/g terms

    def test_group_tags_survive(self):
        nl = build_rca(4)
        hashed = strash(nl)
        assert any(g.group == "carry" for g in hashed.logic_gates())


class TestSweep:
    def test_dead_logic_removed(self):
        nl = Netlist("t")
        a = nl.add_input_bus("A", 2)
        live = nl.and_(a[0], a[1])
        nl.or_(a[0], a[1])  # dead
        nl.set_output_bus("S", [live])
        swept = sweep(nl)
        assert len(swept.logic_gates()) == 1

    def test_optimize_preserves_behaviour(self):
        nl = build_gear(12, 4, 4)
        opt = optimize(nl)
        rng = np.random.default_rng(1)
        a = rng.integers(0, 1 << 12, size=300, dtype=np.int64)
        b = rng.integers(0, 1 << 12, size=300, dtype=np.int64)
        np.testing.assert_array_equal(
            simulate_bus(nl, {"A": a, "B": b}, "S"),
            simulate_bus(opt, {"A": a, "B": b}, "S"),
        )
        np.testing.assert_array_equal(
            simulate_bus(nl, {"A": a, "B": b}, "ERR"),
            simulate_bus(opt, {"A": a, "B": b}, "ERR"),
        )

    def test_optimize_never_grows(self):
        for nl in (build_rca(8), build_gear(16, 4, 4)):
            assert len(optimize(nl).logic_gates()) <= len(nl.logic_gates())
