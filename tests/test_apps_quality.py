"""Unit tests for image-quality metrics."""

import math

import numpy as np
import pytest

from repro.apps.images import natural_image
from repro.apps.quality import (
    QualityReport,
    compare_images,
    global_ssim,
    mean_absolute_error,
    psnr,
)


class TestPsnr:
    def test_identical_is_infinite(self):
        img = natural_image(8, 8, seed=1)
        assert math.isinf(psnr(img, img))

    def test_known_value(self):
        ref = np.zeros((10, 10))
        cand = np.full((10, 10), 16.0)
        # MSE = 256 -> PSNR = 10·log10(255²/256) ≈ 24.05 dB
        assert psnr(ref, cand) == pytest.approx(24.0487, abs=1e-3)

    def test_more_noise_lower_psnr(self):
        img = natural_image(16, 16, seed=2).astype(np.int64)
        small = np.clip(img + 1, 0, 255)
        large = np.clip(img + 10, 0, 255)
        assert psnr(img, small) > psnr(img, large)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((2, 2)), np.zeros((3, 3)))


class TestSsim:
    def test_identical_is_one(self):
        img = natural_image(16, 16, seed=3)
        assert global_ssim(img, img) == pytest.approx(1.0)

    def test_degrades_with_noise(self):
        img = natural_image(32, 32, seed=4).astype(np.float64)
        rng = np.random.default_rng(0)
        noisy = img + rng.normal(0, 30, img.shape)
        assert global_ssim(img, noisy) < 0.95

    def test_bounded_above_by_one(self):
        a = natural_image(16, 16, seed=5)
        b = natural_image(16, 16, seed=6)
        assert global_ssim(a, b) <= 1.0


class TestCompareImages:
    def test_report_fields(self):
        ref = np.array([[10, 20], [30, 40]])
        cand = np.array([[10, 18], [30, 40]])
        report = compare_images(ref, cand)
        assert isinstance(report, QualityReport)
        assert report.mae == pytest.approx(0.5)
        assert report.max_abs_error == 2
        assert report.exact_fraction == pytest.approx(0.75)

    def test_mae_helper(self):
        assert mean_absolute_error(np.array([1.0, 2.0]), np.array([2.0, 4.0])) == 1.5

    def test_shape_checked(self):
        with pytest.raises(ValueError):
            compare_images(np.zeros((2, 2)), np.zeros((2, 3)))
