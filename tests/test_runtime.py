"""Unit tests for the runtime accuracy controller."""

import numpy as np
import pytest

from repro.analysis.runtime import AccuracyController, build_mode_ladder
from repro.utils.distributions import SparseOperands, UniformOperands


@pytest.fixture(scope="module")
def ladder():
    return build_mode_ladder(16, 2, [2, 4, 6, 8])


class TestModeLadder:
    def test_sorted_by_delay(self, ladder):
        delays = [m.delay_ns for m in ladder]
        assert delays == sorted(delays)

    def test_accuracy_anticorrelates_with_delay(self, ladder):
        errs = [m.error_probability for m in ladder]
        assert errs == sorted(errs, reverse=True)


class TestController:
    def test_validation(self, ladder):
        with pytest.raises(ValueError):
            AccuracyController([], 0.01)
        with pytest.raises(ValueError):
            AccuracyController(ladder, 1.5)
        with pytest.raises(ValueError):
            AccuracyController(ladder, 0.1, margin=1.0)
        ctl = AccuracyController(ladder, 0.1)
        with pytest.raises(ValueError):
            ctl.run(np.zeros(4, dtype=np.int64), np.zeros(5, dtype=np.int64))
        with pytest.raises(ValueError):
            ctl.run(np.zeros(4, dtype=np.int64), np.zeros(4, dtype=np.int64),
                    start_mode=9)

    def test_tight_budget_escalates_to_accurate_mode(self, ladder):
        a, b = UniformOperands(16).sample_pairs(40_000, seed=1)
        ctl = AccuracyController(ladder, error_budget=0.001, chunk=1024)
        trace = ctl.run(a, b, start_mode=0)
        # Must climb away from the fastest mode and end high on the ladder.
        assert trace.mode_per_chunk[-1] >= 2
        assert max(trace.mode_per_chunk) > 0

    def test_loose_budget_stays_fast(self, ladder):
        a, b = UniformOperands(16).sample_pairs(40_000, seed=2)
        ctl = AccuracyController(ladder, error_budget=0.9, chunk=1024)
        trace = ctl.run(a, b, start_mode=len(ladder) - 1)
        # With a huge budget the controller relaxes to the fastest mode.
        assert trace.mode_per_chunk[-1] == 0
        assert trace.mean_delay_ns < ladder[-1].delay_ns

    def test_sparse_data_allows_faster_mode(self, ladder):
        # Sparse operands raise few flags, so the controller stays fast even
        # under a moderately tight budget.
        dist = SparseOperands(16, one_density=0.15)
        a, b = dist.sample_pairs(40_000, seed=3)
        ctl = AccuracyController(ladder, error_budget=0.02, chunk=1024)
        sparse_trace = ctl.run(a, b, start_mode=0)
        ua, ub = UniformOperands(16).sample_pairs(40_000, seed=3)
        uniform_trace = ctl.run(ua, ub, start_mode=0)
        assert sparse_trace.mean_delay_ns <= uniform_trace.mean_delay_ns

    def test_trace_bookkeeping(self, ladder):
        a, b = UniformOperands(16).sample_pairs(10_000, seed=4)
        ctl = AccuracyController(ladder, error_budget=0.05, chunk=1000)
        trace = ctl.run(a, b)
        assert len(trace.mode_per_chunk) == 10
        assert len(trace.flag_rate_per_chunk) == 10
        assert 0.0 <= trace.error_rate <= 1.0
        assert trace.switches >= 0

    def test_flag_rate_bounds_error_rate(self, ladder):
        # Detection flags are a superset predictor of true errors.
        a, b = UniformOperands(16).sample_pairs(20_000, seed=5)
        ctl = AccuracyController(ladder, error_budget=0.05, chunk=20_000)
        trace = ctl.run(a, b, start_mode=1)
        assert trace.flag_rate_per_chunk[0] >= trace.error_rate - 1e-9


class TestControllerEdgeCases:
    def test_empty_operand_stream(self, ladder):
        ctl = AccuracyController(ladder, error_budget=0.05)
        trace = ctl.run(np.empty(0, dtype=np.int64),
                        np.empty(0, dtype=np.int64))
        assert trace.mode_per_chunk == []
        assert trace.flag_rate_per_chunk == []
        assert trace.error_rate == 0.0
        assert trace.mean_delay_ns == 0.0
        assert trace.switches == 0

    def test_zero_error_budget_pins_most_accurate_mode(self, ladder):
        # budget 0: any flagged chunk escalates; stepping down requires a
        # flag rate below margin*0 = 0, which never happens, so the
        # controller is a ratchet toward the slowest (most accurate) mode.
        a, b = UniformOperands(16).sample_pairs(30_000, seed=6)
        ctl = AccuracyController(ladder, error_budget=0.0, chunk=1024)
        trace = ctl.run(a, b, start_mode=0)
        assert trace.mode_per_chunk == sorted(trace.mode_per_chunk)
        assert trace.mode_per_chunk[-1] == len(ladder) - 1

    def test_single_mode_ladder_never_switches(self):
        ladder = build_mode_ladder(16, 4, [4])
        assert len(ladder) == 1
        a, b = UniformOperands(16).sample_pairs(20_000, seed=7)
        for budget in (0.0, 0.001, 0.9):
            trace = AccuracyController(ladder, budget, chunk=1024).run(a, b)
            assert trace.switches == 0
            assert set(trace.mode_per_chunk) == {0}
            assert trace.mean_delay_ns == pytest.approx(ladder[0].delay_ns)

    def test_always_satisfied_budget_stays_on_fastest_mode(self, ladder):
        # Zero operands raise no detection flags, so with any positive
        # budget the controller must never leave the fastest mode.
        n = 20_000
        a = np.zeros(n, dtype=np.int64)
        b = np.zeros(n, dtype=np.int64)
        ctl = AccuracyController(ladder, error_budget=0.01, chunk=1024)
        trace = ctl.run(a, b, start_mode=0)
        assert set(trace.mode_per_chunk) == {0}
        assert trace.switches == 0
        assert trace.error_rate == 0.0
        assert trace.mean_delay_ns == pytest.approx(ladder[0].delay_ns)

    def test_stream_shorter_than_chunk(self, ladder):
        a, b = UniformOperands(16).sample_pairs(100, seed=8)
        trace = AccuracyController(ladder, 0.05, chunk=1024).run(a, b)
        assert len(trace.mode_per_chunk) == 1
        assert 0.0 <= trace.flag_rate_per_chunk[0] <= 1.0
