"""The fingerprint-keyed kernel cache and its engine integration.

Kernels are memoised under ``compiled/v{COMPILE_VERSION}:<fingerprint>``
keys: byte-identical specs share one compiled function object, any spec
mutation recompiles, and cache traffic is visible through ``repro.obs``
counters.  The engine-facing tests pin that results from the ``compiled``
backend are identical across worker counts (each pool worker fills its
own process-local cache).
"""

import pytest

from repro import obs
from repro.engine import Engine, EvalRequest
from repro.rtl.builders import build_gear
from repro.rtl.compile import (
    COMPILE_VERSION,
    CompiledAdder,
    clear_kernel_cache,
    compiled_kernel,
    kernel_cache_size,
    kernel_key,
)
from repro.rtl.sim import simulate
from repro.spec.catalog import gear_spec
from repro.spec.ir import AdderSpec


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_kernel_cache()
    yield
    clear_kernel_cache()


def _spec():
    return gear_spec(8, 2, 2, allow_partial=True)


class TestKernelCache:
    def test_byte_identical_specs_share_one_kernel(self):
        spec = _spec()
        clone = AdderSpec.from_json(spec.to_json())
        assert clone is not spec
        assert clone.fingerprint() == spec.fingerprint()
        assert compiled_kernel(spec) is compiled_kernel(clone)
        assert kernel_cache_size() == 1

    def test_spec_and_derived_model_share_one_kernel(self):
        spec = _spec()
        assert compiled_kernel(spec) is compiled_kernel(spec.to_model())
        assert kernel_cache_size() == 1

    def test_mutation_invalidates(self):
        spec = _spec()
        first = compiled_kernel(spec)
        mutated = spec.renamed(spec.name + "_variant")
        second = compiled_kernel(mutated)
        assert first is not second
        assert kernel_cache_size() == 2

    def test_clear_kernel_cache(self):
        compiled_kernel(_spec())
        assert kernel_cache_size() == 1
        clear_kernel_cache()
        assert kernel_cache_size() == 0

    def test_cache_counters(self):
        spec = _spec()
        with obs.collecting() as col:
            compiled_kernel(spec)
            compiled_kernel(spec)
            compiled_kernel(spec)
        counters = col.snapshot().counters
        assert counters["rtl.compile.cache_misses"] == 1
        assert counters["rtl.compile.cache_hits"] == 2
        assert counters["rtl.compile.compiled"] == 1

    def test_kernel_key_is_version_tagged(self):
        spec = _spec()
        assert kernel_key(spec) == (
            f"compiled/v{COMPILE_VERSION}:{spec.fingerprint()}")

    def test_kernel_key_requires_a_fingerprint(self):
        with pytest.raises(TypeError, match="fingerprint"):
            kernel_key(object())

    def test_compiled_kernel_requires_a_netlist(self):
        class Fingerprinted:
            name = "ghost"

            def fingerprint(self):
                return "ghost/v1:x"

        with pytest.raises(ValueError, match="netlist"):
            compiled_kernel(Fingerprinted())


class TestCompiledAdderIdentity:
    def test_fingerprint_disjoint_from_model(self):
        model = _spec().to_model()
        proxy = CompiledAdder(model)
        assert proxy.fingerprint() == kernel_key(model)
        assert proxy.fingerprint() != model.fingerprint()

    def test_proxy_is_picklable(self):
        import pickle

        proxy = CompiledAdder(_spec().to_model())
        clone = pickle.loads(pickle.dumps(proxy))
        assert clone.width == proxy.width
        assert int(clone.add(3, 5)) == int(proxy.add(3, 5))


class TestEngineIntegration:
    def test_jobs_invariance(self):
        # Same shard plan, different worker counts: the compiled backend
        # must produce bit-identical stats (workers compile into their
        # own process caches).
        model = _spec().to_model()
        request = EvalRequest.exhaustive(model, backend="compiled")
        one = Engine(jobs=1, shard_samples=16384).evaluate(request)
        two = Engine(jobs=2, shard_samples=16384).evaluate(request)
        assert one.stats == two.stats

    def test_warm_cache_round_trip(self, tmp_path):
        model = _spec().to_model()
        request = EvalRequest.exhaustive(model, backend="compiled")
        engine = Engine(jobs=1, cache=tmp_path)
        cold = engine.evaluate(request)
        assert cold.shards_executed > 0
        warm = engine.evaluate(request)
        assert warm.shards_executed == 0
        assert warm.stats == cold.stats


class TestTopoMemoisation:
    def test_levels_computed_once_across_simulations(self):
        # The interpreter and the compiler both lean on the memoised
        # topological derivation: repeated simulation of one netlist
        # must run Kahn's algorithm exactly once.
        netlist = build_gear(8, 2, 2)
        with obs.collecting() as col:
            for _ in range(5):
                simulate(netlist, {"A": 3, "B": 9})
            netlist.topological_order()
            netlist.topological_levels()
        assert col.snapshot().counters["rtl.netlist.topo_computed"] == 1

    def test_mutation_resets_memo(self):
        netlist = build_gear(8, 2, 2)
        with obs.collecting() as col:
            netlist.topological_order()
            netlist.and_(netlist.const(1), netlist.const(0))
            netlist.topological_order()
        assert col.snapshot().counters["rtl.netlist.topo_computed"] == 2
