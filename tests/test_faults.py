"""Unit tests for stuck-at fault injection and coverage analysis."""

import numpy as np
import pytest

from repro.rtl.builders import build_gear, build_rca
from repro.rtl.faults import Fault, enumerate_faults, fault_simulation, inject_fault
from repro.rtl.netlist import Netlist
from repro.rtl.sim import simulate_bus


class TestFaultList:
    def test_two_faults_per_net(self):
        nl = build_rca(4)
        faults = enumerate_faults(nl)
        nets = {f.net for f in faults}
        assert len(faults) == 2 * len(nets)

    def test_constants_excluded(self):
        nl = Netlist("t")
        a = nl.add_input_bus("A", 1)
        nl.set_output_bus("S", [nl.or_(a[0], nl.const(0))])
        faults = enumerate_faults(nl)
        assert all(not f.net.startswith("const") for f in faults)

    def test_inputs_optional(self):
        nl = build_rca(4)
        with_inputs = enumerate_faults(nl, include_inputs=True)
        without = enumerate_faults(nl, include_inputs=False)
        assert len(with_inputs) == len(without) + 2 * 8

    def test_fault_validation(self):
        with pytest.raises(ValueError):
            Fault("x", 2)


class TestInjectFault:
    def test_stuck_input_changes_behaviour(self):
        nl = build_rca(4)
        faulty = inject_fault(nl, Fault("A[0]", 1))
        # With A[0] stuck at 1, adding 0 + 0 yields 1.
        assert int(simulate_bus(faulty, {"A": 0, "B": 0}, "S")) == 1
        # ...and A=1,B=0 is unaffected.
        assert int(simulate_bus(faulty, {"A": 1, "B": 0}, "S")) == 1

    def test_stuck_gate_output(self):
        nl = Netlist("t")
        a = nl.add_input_bus("A", 2)
        x = nl.and_(a[0], a[1])
        nl.set_output_bus("S", [x])
        faulty = inject_fault(nl, Fault(x, 1))
        for word in range(4):
            assert int(simulate_bus(faulty, {"A": word}, "S")) == 1

    def test_golden_behaviour_preserved_elsewhere(self):
        nl = build_rca(6)
        fault = enumerate_faults(nl, include_inputs=False)[5]
        faulty = inject_fault(nl, fault)
        # The faulty netlist still simulates (no structural breakage) and
        # has the same interface.
        rng = np.random.default_rng(0)
        a = rng.integers(0, 64, 100, dtype=np.int64)
        b = rng.integers(0, 64, 100, dtype=np.int64)
        out = simulate_bus(faulty, {"A": a, "B": b}, "S")
        assert out.shape == (100,)

    def test_unknown_net_rejected(self):
        with pytest.raises(KeyError):
            inject_fault(build_rca(2), Fault("ghost", 0))


class TestFaultSimulation:
    def test_rca_full_coverage(self):
        # RCA has no redundancy: every stuck-at fault is detectable.
        report = fault_simulation(build_rca(4), vectors=64, seed=1)
        assert report.coverage == 1.0
        assert not report.undetected

    def test_gear_has_redundancy(self):
        # Speculative windows recompute overlapping bits; some faults in
        # the discarded low results are invisible.
        report = fault_simulation(build_gear(8, 2, 2), vectors=256, seed=2)
        assert report.coverage < 1.0
        assert report.undetected

    def test_err_observability_positive(self):
        report = fault_simulation(build_gear(8, 2, 2), vectors=256, seed=3)
        assert 0.0 < report.err_observability <= 1.0

    def test_fault_subset(self):
        nl = build_rca(4)
        subset = enumerate_faults(nl)[:6]
        report = fault_simulation(nl, vectors=64, faults=subset)
        assert report.total == 6

    def test_more_vectors_never_lower_coverage(self):
        nl = build_gear(8, 2, 2)
        few = fault_simulation(nl, vectors=8, seed=4)
        many = fault_simulation(nl, vectors=512, seed=4)
        assert many.coverage >= few.coverage
