"""Property tests: TelemetryFrame merge is associative and commutative.

Mirrors the ``PartialStats`` merge properties in ``test_engine.py``: the
frame algebra is what makes telemetry independent of worker count and
task grouping, so the integer fields (counters, histogram bucket counts,
span/gauge call counts) must agree *exactly* under any merge order; the
float sums agree up to FP reassociation.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.aggregate import (
    GaugeStat,
    HistogramState,
    SpanStat,
    TelemetryFrame,
    merge_frames,
)

NAMES = st.sampled_from(["a", "b", "c", "d"])
BOUNDS = (0.1, 1.0, 10.0)

counters_st = st.dictionaries(NAMES, st.integers(0, 10**9), max_size=4)

gauges_st = st.dictionaries(
    NAMES,
    st.builds(
        lambda values: _fold_gauge(values),
        st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1,
                 max_size=5),
    ),
    max_size=4,
)


def _fold_gauge(values):
    stat = GaugeStat.single(values[0])
    for v in values[1:]:
        stat = stat.merge(GaugeStat.single(v))
    return stat


histograms_st = st.dictionaries(
    NAMES,
    st.builds(
        lambda counts, total: HistogramState(BOUNDS, tuple(counts), total),
        st.lists(st.integers(0, 1000), min_size=len(BOUNDS) + 1,
                 max_size=len(BOUNDS) + 1),
        st.floats(0, 1e6, allow_nan=False),
    ),
    max_size=4,
)

spans_st = st.dictionaries(
    NAMES,
    st.builds(
        lambda count, total, mx: SpanStat(count, total, mx),
        st.integers(1, 1000),
        st.floats(0, 1e3, allow_nan=False),
        st.floats(0, 1e3, allow_nan=False),
    ),
    max_size=4,
)

frames_st = st.builds(
    TelemetryFrame,
    counters=counters_st,
    gauges=gauges_st,
    histograms=histograms_st,
    spans=spans_st,
    dropped_events=st.integers(0, 100),
)


def assert_frames_equal(x: TelemetryFrame, y: TelemetryFrame) -> None:
    """Exact on every integer field, approx on float sums."""
    assert x.counters == y.counters
    assert x.dropped_events == y.dropped_events
    assert set(x.gauges) == set(y.gauges)
    for name, g in x.gauges.items():
        h = y.gauges[name]
        assert g.count == h.count
        assert g.min == h.min and g.max == h.max
        assert g.total == pytest.approx(h.total)
    assert set(x.histograms) == set(y.histograms)
    for name, a in x.histograms.items():
        b = y.histograms[name]
        assert a.bounds == b.bounds
        assert a.counts == b.counts  # exact: bucket counts are integers
        assert a.total == pytest.approx(b.total)
    assert set(x.spans) == set(y.spans)
    for name, s in x.spans.items():
        t = y.spans[name]
        assert s.count == t.count
        assert s.max_s == t.max_s
        assert s.total_s == pytest.approx(t.total_s)


@given(frames_st, frames_st)
def test_merge_is_commutative(f1, f2):
    assert_frames_equal(f1.merge(f2), f2.merge(f1))


@given(frames_st, frames_st, frames_st)
def test_merge_is_associative(f1, f2, f3):
    assert_frames_equal((f1.merge(f2)).merge(f3), f1.merge(f2.merge(f3)))


@given(frames_st)
def test_empty_is_identity(frame):
    assert_frames_equal(frame.merge(TelemetryFrame.empty()), frame)
    assert_frames_equal(TelemetryFrame.empty().merge(frame), frame)


@given(st.lists(frames_st, max_size=4))
def test_merge_frames_equals_pairwise_fold(frames):
    folded = merge_frames(frames)
    acc = TelemetryFrame.empty()
    for frame in frames:
        acc = acc.merge(frame)
    assert_frames_equal(folded, acc)


@given(frames_st)
def test_dict_round_trip_preserves_merge_identity(frame):
    assert_frames_equal(TelemetryFrame.from_dict(frame.to_dict()), frame)


def test_histogram_bound_mismatch_raises():
    a = HistogramState.zero((1.0, 2.0))
    b = HistogramState.zero((1.0, 3.0))
    with pytest.raises(ValueError, match="different bounds"):
        a.merge(b)


def test_histogram_shape_validation():
    with pytest.raises(ValueError, match="buckets"):
        HistogramState(bounds=(1.0,), counts=(0,), total=0.0)
    with pytest.raises(ValueError, match="sorted"):
        HistogramState.zero((2.0, 1.0))
