"""Unit tests for ETAIIM (ETAII with connected MSB carry chains)."""

import numpy as np
import pytest

from repro.adders.etaii import ErrorTolerantAdderII
from repro.adders.etaiim import ErrorTolerantAdderIIM
from tests.conftest import random_pairs


class TestEtaiimStructure:
    def test_connected_one_equals_etaii(self):
        m = ErrorTolerantAdderIIM(16, 8, connected=1)
        base = ErrorTolerantAdderII(16, 8)
        a, b = random_pairs(16, 3000, seed=1)
        np.testing.assert_array_equal(m.add(a, b), base.add(a, b))

    def test_all_connected_is_exact(self):
        m = ErrorTolerantAdderIIM(16, 8, connected=4)
        a, b = random_pairs(16, 1000, seed=2)
        np.testing.assert_array_equal(m.add(a, b), a + b)

    def test_more_connection_fewer_errors(self):
        a, b = random_pairs(16, 30000, seed=3)
        rates = []
        for connected in (1, 2, 3, 4):
            m = ErrorTolerantAdderIIM(16, 8, connected=connected)
            rates.append(float(np.mean(np.asarray(m.add(a, b)) != a + b)))
        assert rates == sorted(rates, reverse=True)
        assert rates[-1] == 0.0

    def test_msbs_protected(self):
        # With the top half connected, errors can only live in low bits.
        m = ErrorTolerantAdderIIM(16, 8, connected=3)
        a, b = random_pairs(16, 30000, seed=4)
        ed = np.abs(np.asarray(m.add(a, b)) - (a + b))
        assert ed.max() <= m.max_error_distance()
        # top window is speculative only at its base
        assert ed.max() <= 1 << 4

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ErrorTolerantAdderIIM(16, 7)
        with pytest.raises(ValueError):
            ErrorTolerantAdderIIM(15, 8)
        with pytest.raises(ValueError):
            ErrorTolerantAdderIIM(16, 8, connected=0)
        with pytest.raises(ValueError):
            ErrorTolerantAdderIIM(16, 8, connected=5)

    def test_analytic_error_probability_exact(self):
        # The window-geometry DP covers ETAIIM's fused segments exactly.
        from repro.metrics.exhaustive import exhaustive_error_probability

        for connected in (1, 2, 3, 4):
            m = ErrorTolerantAdderIIM(12, 6, connected=connected)
            assert m.error_probability() == pytest.approx(
                exhaustive_error_probability(m), abs=1e-12
            )

    def test_analytic_med_matches_exhaustive(self):
        from repro.metrics.exhaustive import exhaustive_stats

        m = ErrorTolerantAdderIIM(12, 6, connected=2)
        stats = exhaustive_stats(m)
        assert m.mean_error_distance() == pytest.approx(stats.med, rel=1e-9)

    def test_window_cover_contiguity(self):
        for connected in (1, 2, 3, 4):
            m = ErrorTolerantAdderIIM(24, 8, connected=connected)
            lows = [w.result_low for w in m.windows]
            highs = [w.result_high for w in m.windows]
            assert lows[0] == 0
            assert highs[-1] == 23
            for i in range(1, len(lows)):
                assert lows[i] == highs[i - 1] + 1
