"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# A slimmer default profile keeps the full suite fast while still giving
# each property meaningful coverage; CI can export HYPOTHESIS_PROFILE=thorough.
settings.register_profile(
    "default",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "thorough",
    max_examples=400,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("default")


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests that sample operands."""
    return np.random.default_rng(20150607)


def random_pairs(width: int, count: int, seed: int = 1):
    """Uniform operand pairs as int64 arrays."""
    gen = np.random.default_rng(seed)
    a = gen.integers(0, 1 << width, size=count, dtype=np.int64)
    b = gen.integers(0, 1 << width, size=count, dtype=np.int64)
    return a, b
