"""Unit tests: the worst-case kernel bounds are sound (never exceeded)."""

import numpy as np
import pytest

from repro.adders.etai import ErrorTolerantAdderI
from repro.apps.bounds import (
    box_sum_bound,
    expected_error_estimate,
    integral_row_bound,
    lpf_bound,
    sad_bound,
)
from repro.apps.boxfilter import box_filter_sums
from repro.apps.images import checkerboard_image, natural_image
from repro.apps.integral import integral_image_rows
from repro.apps.lpf import low_pass_filter
from repro.apps.sad import sad
from repro.core.gear import GeArAdder, GeArConfig


@pytest.fixture(scope="module")
def adder16():
    return GeArAdder(GeArConfig(16, 2, 2))  # deliberately error-prone


class TestIntegralBound:
    def test_measured_never_exceeds_bound(self, adder16):
        image = checkerboard_image(16, 64)  # worst-case-ish input
        exact = integral_image_rows(image)
        approx = integral_image_rows(image, adder16)
        worst = int((exact - approx).max())
        bound = integral_row_bound(adder16, 64)
        assert worst <= bound.worst_case

    def test_bound_grows_with_row_length(self, adder16):
        short = integral_row_bound(adder16, 10)
        long = integral_row_bound(adder16, 100)
        assert long.worst_case > short.worst_case

    def test_single_pixel_row(self, adder16):
        assert integral_row_bound(adder16, 1).worst_case == 0


class TestSadBound:
    def test_measured_never_exceeds_bound(self, adder16):
        a = natural_image(16, 16, seed=1)
        b = natural_image(16, 16, seed=2)
        measured = abs(sad(a, b) - sad(a, b, adder16))
        assert measured <= sad_bound(adder16, 256).worst_case


class TestLpfBound:
    def test_measured_never_exceeds_bound(self):
        adder = GeArAdder(GeArConfig(12, 2, 2))
        image = checkerboard_image(24, 24)
        exact = low_pass_filter(image)
        approx = low_pass_filter(image, adder)
        worst_out = int(np.abs(exact - approx).max())
        # bound is on the accumulator, outputs are >>4.
        assert worst_out <= lpf_bound(adder).worst_case // 16 + 1


class TestBoxBound:
    def test_measured_never_exceeds_bound(self):
        adder = GeArAdder(GeArConfig(20, 5, 5))
        image = natural_image(16, 16, seed=3)
        exact = box_filter_sums(image, 2)
        approx = box_filter_sums(image, 2, adder)
        worst = int(np.abs(exact - approx).max())
        assert worst <= box_sum_bound(adder, 16, 16).worst_case


class TestHelpers:
    def test_expected_estimate(self, adder16):
        bound = integral_row_bound(adder16, 100)
        estimate = expected_error_estimate(bound, 0.01)
        assert estimate is not None
        assert 0 < estimate < bound.worst_case
        assert expected_error_estimate(bound, None) is None

    def test_exact_adder_bound_is_zero(self):
        from repro.adders.rca import RippleCarryAdder

        assert integral_row_bound(RippleCarryAdder(16), 100).worst_case == 0

    def test_etai_has_bound(self):
        bound = sad_bound(ErrorTolerantAdderI(16, 8), 16)
        assert bound.worst_case > 0

    def test_adder_without_bound_rejected(self):
        from repro.adders.base import AdderModel

        class Opaque(AdderModel):
            def _add_impl(self, a, b):
                return a + b

        with pytest.raises(ValueError):
            integral_row_bound(Opaque(8, "opaque"), 10)

    def test_validation(self, adder16):
        with pytest.raises((ValueError, TypeError)):
            sad_bound(adder16, 0)
