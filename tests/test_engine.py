"""Tests for the sharded evaluation engine (repro.engine).

Covers the engine's contract end to end: deterministic shard planning,
bit-identical results at any worker count and chunking, exact associative
merging, the on-disk shard cache (hits, misses, invalidation), the three
evaluation modes against their direct-computation references, and the
deprecated wrapper / default-engine plumbing.
"""

import json
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adders.rca import RippleCarryAdder
from repro.core.gear import GeArAdder, GeArConfig
from repro.engine import (
    DEFAULT_SHARD_SAMPLES,
    Engine,
    EvalRequest,
    METRICS_VERSION,
    PartialStats,
    ShardCache,
    evaluate,
    fingerprint_adder,
    get_default_engine,
    merge_partials,
    plan_exhaustive,
    plan_monte_carlo,
    use_engine,
)
from repro.metrics.error_metrics import TABLE1_MAA_THRESHOLDS, compute_error_stats
from repro.utils.distributions import GaussianOperands, UniformOperands


@pytest.fixture()
def adder():
    return GeArAdder(GeArConfig(16, 4, 4))


@pytest.fixture()
def small_adder():
    return GeArAdder(GeArConfig(8, 2, 2))


class TestPlanner:
    def test_monte_carlo_plan_covers_samples(self):
        shards = plan_monte_carlo(100_000, seed=1, shard_samples=2048)
        assert sum(s.count for s in shards) == 100_000
        assert [s.index for s in shards] == list(range(len(shards)))

    def test_plan_is_independent_of_jobs_and_chunk(self):
        # The canonical plan depends only on (samples, seed, granularity).
        a = plan_monte_carlo(50_000, seed=3, shard_samples=2048)
        b = plan_monte_carlo(50_000, seed=3, shard_samples=2048)
        assert a == b

    def test_shard_streams_match_seedsequence_spawn(self):
        shards = plan_monte_carlo(10_000, seed=42, shard_samples=2048)
        spawned = np.random.SeedSequence(42).spawn(len(shards))
        for shard, child in zip(shards, spawned):
            got = np.random.default_rng(shard.seed_sequence()).integers(0, 1 << 30, 8)
            want = np.random.default_rng(child).integers(0, 1 << 30, 8)
            np.testing.assert_array_equal(got, want)

    def test_exhaustive_plan_covers_grid(self):
        shards = plan_exhaustive(8)
        assert sum(s.count for s in shards) == 256  # rows of the 2^8 grid


class TestDeterminism:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_monte_carlo_invariant_to_jobs(self, adder, jobs):
        ref = Engine(jobs=1, shard_samples=2048).evaluate(
            EvalRequest(adder=adder, samples=20_000, seed=7)
        )
        got = Engine(jobs=jobs, shard_samples=2048).evaluate(
            EvalRequest(adder=adder, samples=20_000, seed=7)
        )
        assert got.stats == ref.stats

    @settings(max_examples=12, deadline=None)
    @given(chunk=st.integers(min_value=1, max_value=200_000))
    def test_monte_carlo_invariant_to_chunk(self, chunk):
        # Property: `chunk` is an execution-batching hint and never changes
        # the result, whatever value a caller picks.
        adder = GeArAdder(GeArConfig(16, 4, 4))
        engine = Engine(jobs=1, shard_samples=2048)
        ref = engine.evaluate(EvalRequest(adder=adder, samples=16_000, seed=5))
        got = engine.evaluate(
            EvalRequest(adder=adder, samples=16_000, seed=5, chunk=chunk)
        )
        assert got.stats == ref.stats

    def test_exhaustive_invariant_to_jobs_and_chunk(self, small_adder):
        ref = Engine(jobs=1).evaluate(
            EvalRequest(adder=small_adder, mode="exhaustive")
        )
        par = Engine(jobs=2).evaluate(
            EvalRequest(adder=small_adder, mode="exhaustive", chunk=3)
        )
        assert par.stats == ref.stats

    def test_seed_none_draws_fresh_entropy(self, adder):
        engine = Engine(jobs=1)
        a = engine.evaluate(EvalRequest(adder=adder, samples=4096, seed=None))
        b = engine.evaluate(EvalRequest(adder=adder, samples=4096, seed=None))
        assert a.stats.error_rate != b.stats.error_rate


class TestModesAgainstReferences:
    def test_monte_carlo_matches_direct_compute(self, adder):
        # One shard ⇒ the engine's stream is exactly default_rng(SeedSequence(9)).
        result = Engine(jobs=1, shard_samples=1 << 14).evaluate(
            EvalRequest(adder=adder, samples=10_000, seed=9)
        )
        rng = np.random.default_rng(
            np.random.SeedSequence(np.random.SeedSequence(9).entropy,
                                   spawn_key=(0,))
        )
        a, b = UniformOperands(16).sample(10_000, rng)
        assert result.stats == compute_error_stats(adder, a, b)

    def test_exhaustive_matches_direct_compute(self, small_adder):
        values = np.arange(256, dtype=np.int64)
        a = np.repeat(values, 256)
        b = np.tile(values, 256)
        ref = compute_error_stats(small_adder, a, b)
        got = Engine(jobs=1).evaluate(
            EvalRequest(adder=small_adder, mode="exhaustive")
        )
        assert got.stats == ref

    def test_fixed_mode_matches_direct_compute(self, adder):
        rng = np.random.default_rng(3)
        exact = rng.integers(0, 1 << 16, size=5_000, dtype=np.int64)
        approx = exact - rng.integers(0, 4, size=5_000, dtype=np.int64)
        ref = compute_error_stats(adder, maa_thresholds=TABLE1_MAA_THRESHOLDS,
                                  exact_reference=exact, approx_values=approx)
        got = Engine(jobs=1).evaluate(
            EvalRequest(adder=adder, mode="fixed",
                        maa_thresholds=TABLE1_MAA_THRESHOLDS,
                        approx_values=approx, exact_reference=exact)
        )
        assert got.stats == ref

    def test_distribution_is_honoured(self, adder):
        uniform = Engine(jobs=1).evaluate(
            EvalRequest(adder=adder, samples=20_000, seed=4)
        )
        gaussian = Engine(jobs=1).evaluate(
            EvalRequest(adder=adder, samples=20_000, seed=4,
                        distribution=GaussianOperands(16))
        )
        assert uniform.stats.error_rate != gaussian.stats.error_rate

    def test_exact_adder_reports_zero_errors(self):
        result = Engine(jobs=1).evaluate(
            EvalRequest(adder=RippleCarryAdder(12), samples=8_000, seed=1)
        )
        assert result.stats.error_rate == 0.0
        assert result.stats.med == 0.0


class TestMerge:
    def test_merge_is_associative_and_matches_whole(self, adder):
        rng = np.random.default_rng(8)
        a = rng.integers(0, 1 << 16, size=9_000, dtype=np.int64)
        b = rng.integers(0, 1 << 16, size=9_000, dtype=np.int64)
        approx = np.asarray(adder.add(a, b))
        exact = a + b
        whole = PartialStats.from_arrays(approx, exact, adder.out_width,
                                         TABLE1_MAA_THRESHOLDS)
        parts = [
            PartialStats.from_arrays(approx[lo:hi], exact[lo:hi],
                                     adder.out_width, TABLE1_MAA_THRESHOLDS)
            for lo, hi in [(0, 1_000), (1_000, 5_000), (5_000, 9_000)]
        ]
        left = (parts[0].merge(parts[1])).merge(parts[2])
        right = parts[0].merge(parts[1].merge(parts[2]))
        for merged in (left, right):
            assert merged.samples == whole.samples
            assert merged.err_count == whole.err_count
            assert merged.max_ed == whole.max_ed
            assert merged.sum_ed == pytest.approx(whole.sum_ed)
            assert merged.maa_hits == whole.maa_hits

    def test_round_trips_through_json(self, adder):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 1 << 16, size=500, dtype=np.int64)
        b = rng.integers(0, 1 << 16, size=500, dtype=np.int64)
        part = PartialStats.from_arrays(np.asarray(adder.add(a, b)), a + b,
                                        adder.out_width, TABLE1_MAA_THRESHOLDS)
        restored = PartialStats.from_dict(json.loads(json.dumps(part.to_dict())))
        assert restored == part

    def test_merge_requires_consistent_thresholds(self, adder):
        rng = np.random.default_rng(5)
        a = rng.integers(0, 1 << 16, size=100, dtype=np.int64)
        b = rng.integers(0, 1 << 16, size=100, dtype=np.int64)
        approx, exact = np.asarray(adder.add(a, b)), a + b
        one = PartialStats.from_arrays(approx, exact, adder.out_width,
                                       TABLE1_MAA_THRESHOLDS)
        other = PartialStats.from_arrays(approx, exact, adder.out_width, (0.5,))
        with pytest.raises(ValueError):
            one.merge(other)


class TestCache:
    def test_cold_then_warm(self, adder, tmp_path):
        engine = Engine(jobs=1, shard_samples=2048, cache=tmp_path)
        request = EvalRequest(adder=adder, samples=10_000, seed=6)
        cold = engine.evaluate(request)
        assert cold.shards_cached == 0
        assert cold.shards_executed == cold.shards_total

        warm = engine.evaluate(request)
        assert warm.shards_executed == 0
        assert warm.shards_cached == warm.shards_total
        assert warm.stats == cold.stats
        assert warm.cache_hit_rate == 1.0

    def test_warm_cache_survives_new_engine(self, adder, tmp_path):
        request = EvalRequest(adder=adder, samples=10_000, seed=6)
        first = Engine(jobs=1, shard_samples=2048, cache=tmp_path).evaluate(request)
        fresh = Engine(jobs=2, shard_samples=2048, cache=tmp_path)
        second = fresh.evaluate(request)
        assert fresh.shards_executed == 0
        assert second.stats == first.stats

    def test_different_seed_misses(self, adder, tmp_path):
        engine = Engine(jobs=1, shard_samples=2048, cache=tmp_path)
        engine.evaluate(EvalRequest(adder=adder, samples=10_000, seed=6))
        engine.reset_counters()
        engine.evaluate(EvalRequest(adder=adder, samples=10_000, seed=7))
        assert engine.shards_cached == 0

    def test_adder_fingerprint_invalidates(self, tmp_path):
        # Same name/width, different window layout ⇒ different fingerprint
        # ⇒ no stale hits.
        a1 = GeArAdder(GeArConfig(16, 4, 4))
        a2 = GeArAdder(GeArConfig(16, 2, 6))
        assert fingerprint_adder(a1) != fingerprint_adder(a2)
        engine = Engine(jobs=1, shard_samples=2048, cache=tmp_path)
        engine.evaluate(EvalRequest(adder=a1, samples=10_000, seed=6))
        engine.reset_counters()
        engine.evaluate(EvalRequest(adder=a2, samples=10_000, seed=6))
        assert engine.shards_cached == 0

    def test_distribution_fingerprint_invalidates(self, adder, tmp_path):
        engine = Engine(jobs=1, shard_samples=2048, cache=tmp_path)
        engine.evaluate(EvalRequest(adder=adder, samples=10_000, seed=6))
        engine.reset_counters()
        engine.evaluate(EvalRequest(adder=adder, samples=10_000, seed=6,
                                    distribution=GaussianOperands(16)))
        assert engine.shards_cached == 0

    def test_metrics_version_invalidates(self, adder, tmp_path, monkeypatch):
        engine = Engine(jobs=1, shard_samples=2048, cache=tmp_path)
        request = EvalRequest(adder=adder, samples=10_000, seed=6)
        engine.evaluate(request)
        monkeypatch.setattr("repro.engine.api.METRICS_VERSION",
                            METRICS_VERSION + 1)
        engine.reset_counters()
        engine.evaluate(request)
        assert engine.shards_cached == 0

    def test_corrupt_entry_is_a_miss(self, adder, tmp_path):
        engine = Engine(jobs=1, shard_samples=2048, cache=tmp_path)
        request = EvalRequest(adder=adder, samples=10_000, seed=6)
        ref = engine.evaluate(request)
        for entry in tmp_path.glob("??/*.json"):
            entry.write_text("{broken")
        engine.reset_counters()
        again = engine.evaluate(request)
        assert engine.shards_cached == 0
        assert again.stats == ref.stats

    def test_seed_none_is_never_cached(self, adder, tmp_path):
        engine = Engine(jobs=1, cache=tmp_path)
        engine.evaluate(EvalRequest(adder=adder, samples=4096, seed=None))
        assert len(ShardCache(tmp_path)) == 0


class TestDefaultEngine:
    def test_use_engine_installs_and_restores(self):
        original = get_default_engine()
        scoped = Engine(jobs=1, shard_samples=4096)
        with use_engine(scoped):
            assert get_default_engine() is scoped
        assert get_default_engine() is original

    def test_module_level_evaluate_uses_default(self, adder):
        scoped = Engine(jobs=1, shard_samples=2048)
        with use_engine(scoped):
            result = evaluate(EvalRequest(adder=adder, samples=4096, seed=2))
        assert scoped.shards_executed > 0
        assert result.stats.samples == 4096


class TestMetricsSurface:
    def test_simulate_wrappers_are_gone(self):
        # The deprecated metrics.simulate aliases were deleted; the engine
        # is the only sampling entry point.
        with pytest.raises(ImportError):
            import repro.metrics.simulate  # noqa: F401

    def test_exhaustive_stats_emits_no_warnings(self, small_adder):
        from repro.metrics.exhaustive import exhaustive_stats

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            stats = exhaustive_stats(small_adder)
        assert stats.samples == 1 << 16


class TestEvalRequestValidation:
    def test_unknown_mode_rejected(self, adder):
        with pytest.raises(ValueError, match="mode"):
            EvalRequest(adder=adder, mode="telepathy")

    def test_monte_carlo_requires_samples(self, adder):
        with pytest.raises(ValueError, match="sample"):
            EvalRequest(adder=adder, mode="monte_carlo", samples=None)

    def test_fixed_requires_both_arrays(self, adder):
        with pytest.raises(ValueError, match="fixed"):
            EvalRequest(adder=adder, mode="fixed",
                        approx_values=np.arange(4), exact_reference=None)

    def test_result_json_is_deterministic_fields_only(self, adder):
        result = Engine(jobs=2, shard_samples=2048).evaluate(
            EvalRequest(adder=adder, samples=8_000, seed=1)
        )
        payload = result.to_json()
        assert "elapsed_s" not in payload
        assert "jobs" not in payload
        assert "shard_timings" not in payload
        assert payload["samples"] == 8_000


class TestResultProtocol:
    def test_experiment_result_is_a_list(self):
        from repro.experiments import run_fig1

        result = run_fig1()
        assert isinstance(result, list)
        assert result[0].r == 2 and result[-1].r == 4
        rows = result.to_rows()
        assert len(rows) == 10  # two panels × five architectures
        assert len(rows[0]) == len(result.headers)
        doc = result.to_json()
        assert doc["experiment"] == "fig1"
        assert json.dumps(doc)  # JSON-safe

    def test_grouped_result_is_a_mapping(self):
        from repro.experiments import run_fig7

        panels = run_fig7()
        assert isinstance(panels, dict)
        assert set(panels) == {2, 3, 4, 8}
        doc = panels.to_json()
        assert doc["headers"] == ["r", "p", "accuracy_pct", "gear", "gda"]
        assert all(row["r"] in panels for row in doc["rows"])

    def test_registry_runs_with_engine(self, tmp_path):
        from repro.experiments import EXPERIMENTS

        engine = Engine(jobs=1, cache=tmp_path)
        result = EXPERIMENTS["table3"].run(samples=2_000, seed=1, engine=engine)
        assert engine.shards_executed > 0
        assert result.to_json()["rows"][0]["samples"] == 2_000

    def test_sweep_measured_columns_deterministic(self):
        from repro.analysis.sweep import sweep_gear_configs

        kwargs = dict(r_values=[4], with_hardware=False, samples=4_000, seed=3)
        first = sweep_gear_configs(10, **kwargs)
        second = sweep_gear_configs(10, engine=Engine(jobs=2), **kwargs)
        assert [r.measured_error_rate for r in first] == \
            [r.measured_error_rate for r in second]
