"""Property tests: scalar vs NumPy code-path agreement (satellite of ISSUE 3).

:class:`~repro.adders.base.WindowedSpeculativeAdder` implements every
public method twice — a scalar branch for Python ints and a vectorised
branch for ndarrays.  Hypothesis draws random window geometries across all
windowed families (GeAr, ACA-I, ETAII, ETAIIM, GDA) and random operand
batches, and demands the two branches agree bit-for-bit on ``add``,
``error_distance`` and ``detection_flags``.
"""

import numpy as np
from hypothesis import given, strategies as st

from repro.adders.aca1 import AlmostCorrectAdder
from repro.adders.etaii import ErrorTolerantAdderII
from repro.adders.etaiim import ErrorTolerantAdderIIM
from repro.adders.gda import GracefullyDegradingAdder
from repro.core.gear import GeArAdder, GeArConfig


@st.composite
def gear_adders(draw):
    n = draw(st.integers(4, 14))
    r = draw(st.integers(1, n - 2))
    p = draw(st.integers(1, n - r - 1))
    partial = (n - r - p) % r != 0
    return GeArAdder(GeArConfig(n, r, p, allow_partial=partial))


@st.composite
def aca1_adders(draw):
    n = draw(st.integers(4, 14))
    return AlmostCorrectAdder(n, draw(st.integers(2, n)))


@st.composite
def etaii_adders(draw):
    n = draw(st.integers(4, 14))
    length = draw(st.integers(1, n // 2)) * 2
    return ErrorTolerantAdderII(n, length, allow_partial=True)


@st.composite
def etaiim_adders(draw):
    half = draw(st.integers(1, 4))
    segments = draw(st.integers(2, 5))
    connected = draw(st.integers(1, segments))
    return ErrorTolerantAdderIIM(half * segments, 2 * half, connected)


@st.composite
def gda_adders(draw):
    mb = draw(st.sampled_from([1, 2, 3, 4]))
    blocks = draw(st.integers(2, 4))
    width = mb * blocks
    # The hierarchical CLA wants M_C to be a whole number of blocks.
    mc = mb * draw(st.integers(1, blocks - 1))
    return GracefullyDegradingAdder(width, mb, mc)


windowed_adders = st.one_of(
    gear_adders(), aca1_adders(), etaii_adders(), etaiim_adders(), gda_adders()
)


@st.composite
def adder_and_operands(draw):
    adder = draw(windowed_adders)
    top = (1 << adder.width) - 1
    count = draw(st.integers(1, 12))
    pairs = draw(st.lists(
        st.tuples(st.integers(0, top), st.integers(0, top)),
        min_size=count, max_size=count))
    a = np.array([p[0] for p in pairs], dtype=np.int64)
    b = np.array([p[1] for p in pairs], dtype=np.int64)
    return adder, a, b


@given(adder_and_operands())
def test_add_scalar_matches_vector(case):
    adder, a, b = case
    batched = adder.add(a, b)
    assert isinstance(batched, np.ndarray)
    for i in range(a.size):
        scalar = adder.add(int(a[i]), int(b[i]))
        assert isinstance(scalar, int)
        assert scalar == int(batched[i]), adder.name


@given(adder_and_operands())
def test_error_distance_scalar_matches_vector(case):
    adder, a, b = case
    batched = adder.error_distance(a, b)
    for i in range(a.size):
        assert int(adder.error_distance(int(a[i]), int(b[i]))) \
            == int(batched[i]), adder.name


@given(adder_and_operands())
def test_detection_flags_scalar_matches_vector(case):
    adder, a, b = case
    batched = adder.detection_flags(a, b)
    for i in range(a.size):
        scalar = adder.detection_flags(int(a[i]), int(b[i]))
        assert len(scalar) == len(batched) == len(adder.windows)
        for win, (flag, flags_vec) in enumerate(zip(scalar, batched)):
            assert bool(flag) == bool(np.asarray(flags_vec)[i]), (
                f"{adder.name}: window {win} flag diverges at i={i}")


@given(adder_and_operands())
def test_flags_imply_error_and_window_zero_never_fires(case):
    # Cross-path semantic glue: window 0 is never speculative, and any
    # erroneous pair must raise at least one flag (§3.3 detection logic).
    adder, a, b = case
    flags = adder.detection_flags(a, b)
    assert not np.any(np.asarray(flags[0]))
    erred = np.asarray(adder.error_distance(a, b)) != 0
    fired = np.zeros(a.shape, dtype=bool)
    for flag in flags[1:]:
        fired |= np.asarray(flag).astype(bool)
    assert not np.any(erred & ~fired)
