"""End-to-end tests: the conformance runner and the ``gear verify`` CLI.

This is where ISSUE 3's headline acceptance lives: ``gear verify`` over
the *full* registry at N=8 must pass every layer for every adder, with
the behavioural layer proven exhaustively (all 2^16 operand pairs against
the gate-level netlist).
"""

import json

import pytest

from repro.cli import main
from repro.engine import Engine
from repro.verify import (
    LAYERS,
    ConformanceReport,
    LayerStatus,
    VerifyOptions,
    default_registry,
    verify_adder,
    verify_registry,
)


class TestVerifyOptions:
    def test_defaults(self):
        options = VerifyOptions()
        assert options.width == 8
        assert options.layers == LAYERS

    def test_rejects_unknown_layer(self):
        with pytest.raises(ValueError, match="unknown layers"):
            VerifyOptions(layers=("behavioural", "gate"))

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError, match="width"):
            VerifyOptions(width=0)


class TestFullRegistryAcceptance:
    """The ISSUE acceptance criterion, as a test."""

    def test_every_adder_passes_every_layer_at_n8(self):
        reports = verify_registry()
        assert len(reports) == len(default_registry())
        for report in reports:
            assert report.ok, (
                f"{report.key}: {[(r.layer, r.message) for r in report.layers]}"
            )
            behavioural = report.layer("behavioural")
            if behavioural.status is LayerStatus.PASS:
                # Proven, not sampled: all 2^16 pairs against the netlist.
                assert behavioural.exhaustive
                assert behavioural.vectors == 1 << 16
            else:
                # Only the purely-behavioural models may skip.
                assert behavioural.status is LayerStatus.SKIP
                assert report.key.startswith("eta")

    def test_results_identical_under_parallel_cached_engine(self, tmp_path):
        options = VerifyOptions(layers=("stats",))
        serial = verify_registry(["gear_r2p2", "csla"], options=options)
        parallel = verify_registry(
            ["gear_r2p2", "csla"], options=options,
            engine=Engine(jobs=2, cache=tmp_path / "shards"))
        assert [r.to_json() for r in serial] == [r.to_json() for r in parallel]


class TestRunner:
    def test_single_adder_report_shape(self):
        entry = default_registry()["gear_r1p3"]
        report = verify_adder(entry)
        assert isinstance(report, ConformanceReport)
        assert report.key == "gear_r1p3"
        assert report.width == 8
        assert report.fingerprint
        assert [r.layer for r in report.layers] == list(LAYERS)

    def test_layer_selection_and_order(self):
        entry = default_registry()["loa_half"]
        report = verify_adder(entry, VerifyOptions(layers=("vector", "stats")))
        assert [r.layer for r in report.layers] == ["vector", "stats"]
        assert report.layer("vector").status is LayerStatus.PASS
        with pytest.raises(KeyError):
            report.layer("behavioural")

    def test_unsupported_width_is_skipped(self):
        # gear_r2p4 needs width >= 8; at 6 the family drops out silently.
        reports = verify_registry(["gear_r2p4", "rca"],
                                  options=VerifyOptions(width=6))
        assert [r.key for r in reports] == ["rca"]

    def test_unknown_key_raises(self):
        with pytest.raises(ValueError, match="unknown adder"):
            verify_registry(["definitely_not_an_adder"])

    def test_json_round_trips(self):
        report = verify_adder(default_registry()["cska"])
        payload = json.loads(json.dumps(report.to_json()))
        assert payload["adder"] == "cska"
        assert payload["ok"] is True
        assert {layer["layer"] for layer in payload["layers"]} == set(LAYERS)


class TestCli:
    def test_two_adder_json_smoke(self, capsys):
        # Mirrors the CI verify-smoke job.
        code = main(["verify", "--adder", "rca", "--adder", "gear_r2p2",
                     "--json"])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert [entry["adder"] for entry in payload] == ["rca", "gear_r2p2"]
        assert all(entry["ok"] for entry in payload)

    def test_table_output(self, capsys):
        assert main(["verify", "--adder", "loa_half", "--adder", "etai_half",
                     "--layer", "stats", "--layer", "vector"]) == 0
        out = capsys.readouterr().out
        assert "loa_half" in out and "etai_half" in out
        assert "ok" in out

    def test_list_adders(self, capsys):
        assert main(["verify", "--list-adders"]) == 0
        out = capsys.readouterr().out
        for key in default_registry():
            assert key in out

    def test_unknown_adder_exits_2(self, capsys):
        assert main(["verify", "--adder", "nonesuch"]) == 2
        assert "unknown adder" in capsys.readouterr().err

    def test_no_supported_adder_exits_2(self, capsys):
        # gear_r2p4 is undefined below width 8 -> empty run -> exit 2.
        assert main(["verify", "--adder", "gear_r2p4", "--width", "6"]) == 2
        assert "no registered adder" in capsys.readouterr().err

    def test_failure_exits_1(self, capsys, monkeypatch):
        from repro.verify import runner as runner_module
        from repro.verify.report import LayerResult

        def broken_stats(model, **kwargs):
            return LayerResult("stats", LayerStatus.FAIL,
                               message="synthetic failure")

        monkeypatch.setattr(runner_module, "check_stats", broken_stats)
        assert main(["verify", "--adder", "rca", "--layer", "stats"]) == 1
        assert "synthetic failure" in capsys.readouterr().out

    def test_layer_flag_restricts_run(self, capsys):
        assert main(["verify", "--adder", "ksa", "--layer", "verilog",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [l["layer"] for l in payload[0]["layers"]] == ["verilog"]
