"""Unit tests for repro.rtl.sim (vectorised netlist simulation)."""

import numpy as np
import pytest

from repro.rtl.gates import Op
from repro.rtl.netlist import Netlist
from repro.rtl.sim import simulate, simulate_bus


def _gate_netlist(op: Op, n_inputs: int) -> Netlist:
    nl = Netlist("t")
    nets = nl.add_input_bus("A", n_inputs)
    out = nl.add_gate(op, tuple(nets))
    nl.set_output_bus("S", [out])
    return nl


class TestGateSemantics:
    @pytest.mark.parametrize(
        "op,fn",
        [
            (Op.AND, lambda a, b: a & b),
            (Op.OR, lambda a, b: a | b),
            (Op.XOR, lambda a, b: a ^ b),
            (Op.NAND, lambda a, b: 1 - (a & b)),
            (Op.NOR, lambda a, b: 1 - (a | b)),
            (Op.XNOR, lambda a, b: 1 - (a ^ b)),
        ],
    )
    def test_two_input_truth_tables(self, op, fn):
        nl = _gate_netlist(op, 2)
        for word in range(4):
            a, b = word & 1, word >> 1
            got = int(simulate_bus(nl, {"A": word}, "S"))
            assert got == fn(a, b), f"{op} failed for a={a} b={b}"

    @pytest.mark.parametrize("op", [Op.AND, Op.OR, Op.XOR])
    def test_variadic_reduction(self, op):
        nl = _gate_netlist(op, 5)
        for word in range(32):
            bits = [(word >> i) & 1 for i in range(5)]
            if op is Op.AND:
                want = int(all(bits))
            elif op is Op.OR:
                want = int(any(bits))
            else:
                want = sum(bits) & 1
            assert int(simulate_bus(nl, {"A": word}, "S")) == want

    def test_not_and_buf(self):
        nl = Netlist("t")
        a = nl.add_input_bus("A", 1)
        inv = nl.not_(a[0])
        buf = nl.add_gate(Op.BUF, (a[0],))
        nl.set_output_bus("S", [inv, buf])
        assert int(simulate_bus(nl, {"A": 0}, "S")) == 0b01
        assert int(simulate_bus(nl, {"A": 1}, "S")) == 0b10

    def test_mux(self):
        nl = Netlist("t")
        s = nl.add_input_bus("SEL", 1)
        d = nl.add_input_bus("D", 2)
        out = nl.mux(s[0], d[0], d[1])
        nl.set_output_bus("S", [out])
        # sel=0 -> d0, sel=1 -> d1
        assert int(simulate_bus(nl, {"SEL": 0, "D": 0b01}, "S")) == 1
        assert int(simulate_bus(nl, {"SEL": 1, "D": 0b01}, "S")) == 0
        assert int(simulate_bus(nl, {"SEL": 1, "D": 0b10}, "S")) == 1

    def test_constants(self):
        nl = Netlist("t")
        nl.add_input_bus("A", 1)
        nl.set_output_bus("S", [nl.const(0), nl.const(1)])
        assert int(simulate_bus(nl, {"A": 0}, "S")) == 0b10


class TestStimulusHandling:
    def test_vectorised_matches_scalar(self):
        nl = _gate_netlist(Op.XOR, 3)
        words = np.arange(8, dtype=np.int64)
        vec = simulate_bus(nl, {"A": words}, "S")
        for w in range(8):
            assert vec[w] == int(simulate_bus(nl, {"A": w}, "S"))

    def test_missing_bus_rejected(self):
        nl = _gate_netlist(Op.AND, 2)
        with pytest.raises(KeyError):
            simulate(nl, {})

    def test_unknown_bus_rejected(self):
        nl = _gate_netlist(Op.AND, 2)
        with pytest.raises(KeyError):
            simulate(nl, {"A": 0, "B": 0})

    def test_out_of_range_stimulus_rejected(self):
        nl = _gate_netlist(Op.AND, 2)
        with pytest.raises(ValueError):
            simulate(nl, {"A": 4})
        with pytest.raises(ValueError):
            simulate(nl, {"A": -1})

    def test_unknown_output_bus(self):
        nl = _gate_netlist(Op.AND, 2)
        with pytest.raises(KeyError):
            simulate_bus(nl, {"A": 0}, "Q")

    def test_broadcasting_two_buses(self):
        nl = Netlist("t")
        a = nl.add_input_bus("A", 4)
        b = nl.add_input_bus("B", 4)
        outs = [nl.xor(a[i], b[i]) for i in range(4)]
        nl.set_output_bus("S", outs)
        arr = np.array([0b0011, 0b0101], dtype=np.int64)
        got = simulate_bus(nl, {"A": arr, "B": 0b1111}, "S")
        np.testing.assert_array_equal(got, [0b1100, 0b1010])
