"""Unit tests for Verilog emission and parsing (round-trip equivalence)."""

import numpy as np
import pytest

from repro.rtl.builders import build_cla, build_gda, build_gear, build_loa, build_rca
from repro.rtl.gates import Op
from repro.rtl.netlist import Netlist
from repro.rtl.sim import simulate_bus
from repro.rtl.sta import FpgaDelayModel, critical_path_delay
from repro.rtl.verilog import to_verilog
from repro.rtl.verilog_parser import VerilogSyntaxError, parse_verilog
from tests.conftest import random_pairs


def _roundtrip_equivalent(netlist, width, buses=("S",), count=300, seed=9):
    parsed = parse_verilog(to_verilog(netlist))
    a, b = random_pairs(width, count, seed=seed)
    for bus in buses:
        np.testing.assert_array_equal(
            simulate_bus(netlist, {"A": a, "B": b}, bus),
            simulate_bus(parsed, {"A": a, "B": b}, bus),
        )
    return parsed


class TestEmission:
    def test_module_structure(self):
        src = to_verilog(build_rca(4))
        assert src.startswith("module rca")
        assert "endmodule" in src
        assert "input  [3:0] A" in src
        assert "output [4:0] S" in src

    def test_contains_assigns(self):
        src = to_verilog(build_rca(2))
        assert src.count("assign") >= 4

    def test_group_tags_emitted(self):
        src = to_verilog(build_rca(4))
        assert "// group:carry" in src

    def test_mux_and_constants(self):
        nl = Netlist("t")
        a = nl.add_input_bus("A", 2)
        m = nl.mux(a[0], nl.const(0), nl.const(1))
        nl.set_output_bus("S", [m])
        src = to_verilog(nl)
        assert "?" in src and "1'b0" in src and "1'b1" in src


class TestRoundTrip:
    @pytest.mark.parametrize("builder,width", [
        (lambda: build_rca(8), 8),
        (lambda: build_cla(6), 6),
        (lambda: build_gear(12, 4, 4), 12),
        (lambda: build_gda(8, 2, 4), 8),
        (lambda: build_loa(8, 3), 8),
    ])
    def test_functional_equivalence(self, builder, width):
        _roundtrip_equivalent(builder(), width)

    def test_err_bus_roundtrips(self):
        _roundtrip_equivalent(build_gear(12, 2, 6), 12, buses=("S", "ERR"))

    def test_group_tags_roundtrip(self):
        parsed = parse_verilog(to_verilog(build_rca(8)))
        assert any(g.group == "carry" for g in parsed.logic_gates())

    def test_timing_preserved_by_roundtrip(self):
        nl = build_gear(16, 4, 4)
        parsed = parse_verilog(to_verilog(nl))
        model = FpgaDelayModel()
        assert critical_path_delay(parsed, model, buses=["S"]) == pytest.approx(
            critical_path_delay(nl, model, buses=["S"])
        )

    def test_double_roundtrip_stable(self):
        src1 = to_verilog(build_gear(10, 2, 4))
        src2 = to_verilog(parse_verilog(src1))
        assert parse_verilog(src2).stats() == parse_verilog(src1).stats()


class TestParserExpressions:
    def _parse_expr_module(self, expr, width=4):
        src = (
            f"module t (\n  input  [{width - 1}:0] A,\n  output [0:0] S\n);\n"
            f"  wire w;\n  assign w = {expr};\n  assign S[0] = w;\nendmodule\n"
        )
        return parse_verilog(src)

    def test_precedence_and_over_xor(self):
        # a ^ b & c must parse as a ^ (b & c)
        nl = self._parse_expr_module("A[0] ^ A[1] & A[2]")
        for word in range(8):
            got = int(simulate_bus(nl, {"A": word}, "S"))
            a0, a1, a2 = word & 1, (word >> 1) & 1, (word >> 2) & 1
            assert got == a0 ^ (a1 & a2)

    def test_precedence_xor_over_or(self):
        nl = self._parse_expr_module("A[0] | A[1] ^ A[2]")
        for word in range(8):
            got = int(simulate_bus(nl, {"A": word}, "S"))
            a0, a1, a2 = word & 1, (word >> 1) & 1, (word >> 2) & 1
            assert got == a0 | (a1 ^ a2)

    def test_parentheses_override(self):
        nl = self._parse_expr_module("(A[0] | A[1]) & A[2]")
        for word in range(8):
            got = int(simulate_bus(nl, {"A": word}, "S"))
            a0, a1, a2 = word & 1, (word >> 1) & 1, (word >> 2) & 1
            assert got == (a0 | a1) & a2

    def test_ternary(self):
        nl = self._parse_expr_module("A[0] ? A[1] : A[2]")
        for word in range(8):
            got = int(simulate_bus(nl, {"A": word}, "S"))
            a0, a1, a2 = word & 1, (word >> 1) & 1, (word >> 2) & 1
            assert got == (a1 if a0 else a2)

    def test_double_negation(self):
        nl = self._parse_expr_module("~~A[0]")
        assert int(simulate_bus(nl, {"A": 1}, "S")) == 1
        assert int(simulate_bus(nl, {"A": 0}, "S")) == 0


class TestParserErrors:
    def test_reference_before_assignment(self):
        src = (
            "module t (\n  input  [0:0] A,\n  output [0:0] S\n);\n"
            "  wire w;\n  assign S[0] = w;\nendmodule\n"
        )
        with pytest.raises(VerilogSyntaxError):
            parse_verilog(src)

    def test_unassigned_output_bit(self):
        src = (
            "module t (\n  input  [0:0] A,\n  output [1:0] S\n);\n"
            "  assign S[0] = A[0];\nendmodule\n"
        )
        with pytest.raises(VerilogSyntaxError, match="never assigned"):
            parse_verilog(src)

    def test_double_assignment(self):
        src = (
            "module t (\n  input  [0:0] A,\n  output [0:0] S\n);\n"
            "  assign S[0] = A[0];\n  assign S[0] = A[0];\nendmodule\n"
        )
        with pytest.raises(VerilogSyntaxError, match="twice"):
            parse_verilog(src)

    def test_out_of_range_input_bit(self):
        src = (
            "module t (\n  input  [0:0] A,\n  output [0:0] S\n);\n"
            "  assign S[0] = A[3];\nendmodule\n"
        )
        with pytest.raises(VerilogSyntaxError):
            parse_verilog(src)

    def test_garbage_rejected(self):
        with pytest.raises(VerilogSyntaxError):
            parse_verilog("module t (@);")

    def test_trailing_tokens_rejected(self):
        src = (
            "module t (\n  input  [0:0] A,\n  output [0:0] S\n);\n"
            "  assign S[0] = A[0];\nendmodule\nmodule"
        )
        with pytest.raises(VerilogSyntaxError, match="trailing"):
            parse_verilog(src)

    def test_nonzero_range_base_rejected(self):
        src = "module t (\n  input  [4:1] A,\n  output [0:0] S\n);\nendmodule\n"
        with pytest.raises(VerilogSyntaxError, match="H:0"):
            parse_verilog(src)


class TestSourceLocations:
    def test_syntax_error_carries_line_and_column(self):
        src = (
            "module t (\n  input  [0:0] A,\n  output [0:0] S\n);\n"
            "  assign S[0] = w;\nendmodule\n"
        )
        with pytest.raises(VerilogSyntaxError, match=r"line 5, col 17") as exc:
            parse_verilog(src)
        assert exc.value.line == 5
        assert exc.value.column == 17

    def test_unexpected_character_located(self):
        with pytest.raises(VerilogSyntaxError, match="line 1, col 11"):
            parse_verilog("module t (@);")

    def test_every_net_gets_a_location(self):
        nl = build_rca(4)
        parsed = parse_verilog(to_verilog(nl))
        assert set(parsed.source_locations) == set(parsed.gates)

    def test_locations_point_at_statements(self):
        src = (
            "module t (input [1:0] A, input [1:0] B, output [1:0] S);\n"
            "  assign S[0] = A[0] ^ B[0];\n"
            "  assign S[1] = A[1] ^ B[1];\n"
            "endmodule\n"
        )
        nl = parse_verilog(src)
        lines = {nl.source_locations[net][0] for net in nl.output_nets()}
        assert lines == {2, 3}
        assert nl.source_locations["A[0]"][0] == 1
