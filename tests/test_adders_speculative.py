"""Unit tests for ACA-I, ACA-II, ETAII and their GeAr equivalence (§3.1)."""

import numpy as np
import pytest

from repro.adders import (
    AccuracyConfigurableAdder,
    AlmostCorrectAdder,
    ErrorTolerantAdderII,
)
from repro.core.gear import GeArAdder, GeArConfig
from tests.conftest import random_pairs


class TestAcaI:
    def test_equals_gear_r1(self):
        # §3.1: ACA-I == GeAr(N, 1, L-1).
        aca = AlmostCorrectAdder(16, 4)
        gear = GeArAdder(GeArConfig(16, 1, 3))
        a, b = random_pairs(16, 2000, seed=1)
        np.testing.assert_array_equal(aca.add(a, b), gear.add(a, b))

    def test_sub_adder_count(self):
        # One-bit shift: N - L + 1 sub-adders.
        aca = AlmostCorrectAdder(16, 4)
        assert len(aca.windows) == 16 - 4 + 1

    def test_full_length_window_exact(self):
        aca = AlmostCorrectAdder(8, 8)
        a, b = random_pairs(8, 500, seed=2)
        np.testing.assert_array_equal(aca.add(a, b), a + b)

    def test_error_probability_positive(self):
        assert 0 < AlmostCorrectAdder(16, 4).error_probability() < 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AlmostCorrectAdder(16, 1)
        with pytest.raises(ValueError):
            AlmostCorrectAdder(8, 9)


class TestAcaIIAndEtaII:
    def test_both_equal_gear_half_half(self):
        gear = GeArAdder(GeArConfig(16, 4, 4))
        aca2 = AccuracyConfigurableAdder(16, 8)
        etaii = ErrorTolerantAdderII(16, 8)
        a, b = random_pairs(16, 2000, seed=3)
        expected = np.asarray(gear.add(a, b))
        np.testing.assert_array_equal(aca2.add(a, b), expected)
        np.testing.assert_array_equal(etaii.add(a, b), expected)

    def test_same_error_probability(self):
        assert AccuracyConfigurableAdder(16, 8).error_probability() == \
            ErrorTolerantAdderII(16, 8).error_probability()

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError):
            AccuracyConfigurableAdder(16, 7)
        with pytest.raises(ValueError):
            ErrorTolerantAdderII(16, 7)

    def test_oversized_rejected(self):
        with pytest.raises(ValueError):
            AccuracyConfigurableAdder(8, 10)

    def test_longer_sub_adder_fewer_errors(self):
        a, b = random_pairs(16, 20000, seed=4)
        errs = []
        for l in (4, 8, 12):
            adder = AccuracyConfigurableAdder(16, l, allow_partial=True)
            errs.append(np.mean(np.asarray(adder.add(a, b)) != a + b))
        assert errs[0] > errs[1] > errs[2]

    def test_carry_chain_bounded_by_l(self):
        # ETAII's claim: max carry propagation = sub-adder length; a carry
        # generated exactly L bits below a result bit is invisible.
        adder = ErrorTolerantAdderII(16, 8)
        # generate at bit 0, propagate everywhere above
        a = 0xFFFF
        b = 0x0001
        approx = adder.add(a, b)
        assert approx != a + b  # long chain must break somewhere
