"""Tests for Kogge-Stone / carry-select / carry-skip adders and the GeAr
sub-adder style option (§4.4: the model is sub-adder agnostic)."""

import numpy as np
import pytest

from repro.adders import CarrySelectAdder, CarrySkipAdder, KoggeStoneAdder, RippleCarryAdder
from repro.core.gear import GeArAdder, GeArConfig
from repro.rtl.builders import build_gear
from repro.rtl.sim import simulate_bus
from repro.rtl.sta import UnitDelayModel, critical_path_delay
from repro.rtl.verilog import to_verilog
from repro.rtl.verilog_parser import parse_verilog
from repro.timing.fpga import characterize
from tests.conftest import random_pairs


class TestExactness:
    @pytest.mark.parametrize("make", [
        lambda: KoggeStoneAdder(16),
        lambda: CarrySelectAdder(16, 4),
        lambda: CarrySkipAdder(16, 4),
        lambda: CarrySelectAdder(13, 4),  # non-multiple width
        lambda: CarrySkipAdder(10, 3),
        lambda: KoggeStoneAdder(7),       # non-power-of-two width
    ])
    def test_netlist_exact(self, make):
        adder = make()
        nl = adder.build_netlist()
        a, b = random_pairs(adder.width, 500, seed=adder.width)
        np.testing.assert_array_equal(
            simulate_bus(nl, {"A": a, "B": b}, "S"), a + b
        )

    def test_exhaustive_small_kogge_stone(self):
        nl = KoggeStoneAdder(5).build_netlist()
        vals = np.arange(32, dtype=np.int64)
        a = np.repeat(vals, 32)
        b = np.tile(vals, 32)
        np.testing.assert_array_equal(
            simulate_bus(nl, {"A": a, "B": b}, "S"), a + b
        )


class TestStructure:
    def test_kogge_stone_log_depth(self):
        # Logic depth grows ~logarithmically, unlike RCA's linear chain.
        depth16 = critical_path_delay(
            KoggeStoneAdder(16).build_netlist(), UnitDelayModel(), buses=["S"])
        depth64 = critical_path_delay(
            KoggeStoneAdder(64).build_netlist(), UnitDelayModel(), buses=["S"])
        rca64 = critical_path_delay(
            RippleCarryAdder(64).build_netlist(), UnitDelayModel(), buses=["S"])
        assert depth64 <= depth16 + 4
        assert depth64 < rca64 / 3

    def test_fpga_prefers_carry_chain(self):
        # On the FPGA model, the prefix network loses to the carry chain —
        # the same §4.2 effect that penalises GDA.
        ksa = characterize(KoggeStoneAdder(16))
        rca = characterize(RippleCarryAdder(16))
        assert ksa.delay_ns > rca.delay_ns
        assert ksa.luts > rca.luts

    def test_carry_select_beats_rca_unit_depth(self):
        csla = critical_path_delay(
            CarrySelectAdder(32, 4).build_netlist(), UnitDelayModel(), buses=["S"])
        rca = critical_path_delay(
            RippleCarryAdder(32).build_netlist(), UnitDelayModel(), buses=["S"])
        assert csla < rca

    def test_verilog_roundtrip(self):
        for adder in (KoggeStoneAdder(8), CarrySelectAdder(8, 3),
                      CarrySkipAdder(8, 3)):
            nl = adder.build_netlist()
            parsed = parse_verilog(to_verilog(nl))
            a, b = random_pairs(8, 200, seed=1)
            np.testing.assert_array_equal(
                simulate_bus(parsed, {"A": a, "B": b}, "S"), a + b
            )


class TestGearSubAdderStyles:
    @pytest.mark.parametrize("style", ["rca", "cla"])
    def test_style_is_functionally_identical(self, style):
        adder = GeArAdder(GeArConfig(16, 4, 4))
        nl = build_gear(16, 4, 4, sub_adder=style)
        a, b = random_pairs(16, 600, seed=2)
        np.testing.assert_array_equal(
            simulate_bus(nl, {"A": a, "B": b}, "S"),
            np.asarray(adder.add(a, b)),
        )

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            build_gear(16, 4, 4, sub_adder="magic")

    def test_cla_subadder_shallower_but_fpga_slower(self):
        rca_nl = build_gear(16, 4, 4, sub_adder="rca")
        cla_nl = build_gear(16, 4, 4, sub_adder="cla")
        unit = UnitDelayModel()
        assert critical_path_delay(cla_nl, unit, buses=["S"]) < \
            critical_path_delay(rca_nl, unit, buses=["S"])
        from repro.timing.fpga import FPGA_DELAY_MODEL

        assert critical_path_delay(cla_nl, FPGA_DELAY_MODEL, buses=["S"]) > \
            critical_path_delay(rca_nl, FPGA_DELAY_MODEL, buses=["S"])
