"""Tests for the shard-cache size cap and oldest-first eviction."""

import os
import time

import pytest

from repro import obs
from repro.core.gear import GeArAdder, GeArConfig
from repro.engine import Engine, EvalRequest
from repro.engine.cache import ShardCache
from repro.engine.merge import PartialStats


def _partial(samples: int = 100) -> PartialStats:
    return PartialStats(samples=samples, err_count=1, sum_ed=2.0, sum_red=0.1,
                        sum_amp=90.0, sum_inf=80.0, max_ed=4, maa_hits=((0.9, 5),))


def _fill(cache: ShardCache, count: int, prefix: str = "aa") -> list:
    digests = [f"{prefix}{i:062d}" for i in range(count)]
    for digest in digests:
        cache.store(digest, _partial())
    return digests


def _age(cache: ShardCache, digests, start: float):
    """Give entries strictly increasing, well-separated mtimes."""
    for i, digest in enumerate(digests):
        os.utime(cache._path(digest), (start + i, start + i))


class TestPrune:
    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            ShardCache(tmp_path, max_bytes=-1)
        with pytest.raises(ValueError, match="size cap"):
            ShardCache(tmp_path).prune()

    def test_oldest_entries_evicted_first(self, tmp_path):
        writer = ShardCache(tmp_path)
        digests = _fill(writer, 6)
        _age(writer, digests, start=1_000_000.0)
        entry_bytes = writer.disk_usage()[1] // 6

        pruner = ShardCache(tmp_path)  # fresh process: nothing protected
        removed = pruner.prune(max_bytes=3 * entry_bytes)
        assert removed == 3
        survivors = set(pruner.digests())
        assert survivors == set(digests[3:])  # newest three kept
        assert pruner.disk_usage()[1] <= 3 * entry_bytes
        assert pruner.evictions == 3

    def test_current_run_entries_never_evicted(self, tmp_path):
        writer = ShardCache(tmp_path)
        old = _fill(writer, 3, prefix="aa")
        _age(writer, old, start=1_000_000.0)

        cache = ShardCache(tmp_path, max_bytes=0)
        new = [f"bb{i:062d}" for i in range(3)]
        for digest in new:
            cache.store(digest, _partial())
        # cap of 0 forces pruning on every store: all unprotected old
        # entries go, but this run's own shards all survive.
        survivors = set(cache.digests())
        assert set(new) <= survivors
        assert not (set(old) & survivors)

    def test_store_prunes_to_cap(self, tmp_path):
        probe = ShardCache(tmp_path)
        sample = [f"cc{i:062d}" for i in range(1)]
        probe.store(sample[0], _partial())
        entry_bytes = probe.disk_usage()[1]
        probe.clear()

        old_writer = ShardCache(tmp_path)
        old = _fill(old_writer, 8)
        _age(old_writer, old, start=1_000_000.0)

        cache = ShardCache(tmp_path, max_bytes=4 * entry_bytes)
        cache.store("dd" + "0" * 62, _partial())
        entries, total = cache.disk_usage()
        assert total <= 4 * entry_bytes
        assert "dd" + "0" * 62 in set(cache.digests())

    def test_prune_counts_into_obs(self, tmp_path):
        writer = ShardCache(tmp_path)
        digests = _fill(writer, 4)
        _age(writer, digests, start=1_000_000.0)
        with obs.collecting() as col:
            ShardCache(tmp_path).prune(max_bytes=0)
        assert col.snapshot().counters["engine.cache.evicted"] == 4

    def test_clear(self, tmp_path):
        cache = ShardCache(tmp_path)
        _fill(cache, 3)
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0
        assert cache.disk_usage() == (0, 0)
        assert cache.clear() == 0

    def test_digests_listing(self, tmp_path):
        cache = ShardCache(tmp_path)
        stored = set(_fill(cache, 3))
        assert set(cache.digests()) == stored
        assert set(ShardCache(tmp_path / "missing").digests()) == set()


class TestEngineWithCappedCache:
    def test_capped_cache_still_correct_and_warm(self, tmp_path):
        adder = GeArAdder(GeArConfig(12, 4, 4))
        request = EvalRequest(adder=adder, samples=40_000, seed=3)
        reference = Engine(jobs=1).evaluate(request).stats

        # A cap large enough for this run: results correct, cache warm.
        cache = ShardCache(tmp_path, max_bytes=1 << 20)
        cold = Engine(jobs=1, cache=cache)
        assert cold.evaluate(request).stats == reference

        warm = Engine(jobs=1, cache=ShardCache(tmp_path, max_bytes=1 << 20))
        assert warm.evaluate(request).stats == reference
        assert warm.shards_executed == 0

    def test_zero_cap_keeps_current_run_usable(self, tmp_path):
        adder = GeArAdder(GeArConfig(12, 4, 4))
        request = EvalRequest(adder=adder, samples=40_000, seed=3)
        cache = ShardCache(tmp_path, max_bytes=0)
        engine = Engine(jobs=1, cache=cache)
        first = engine.evaluate(request).stats
        # Same engine object re-evaluates: its own writes are protected,
        # so the rerun is served entirely from cache.
        rerun = engine.evaluate(request)
        assert rerun.stats == first
        assert rerun.shards_executed == 0
