"""Unit tests for switching-activity power estimation."""

import numpy as np
import pytest

from repro.adders import CarryLookaheadAdder, RippleCarryAdder
from repro.adders.etai import ErrorTolerantAdderI
from repro.core.gear import GeArAdder, GeArConfig
from repro.rtl.builders import build_rca
from repro.rtl.power import characterize_power, switching_activity


class TestSwitchingActivity:
    def test_constant_stimulus_zero_toggles(self):
        nl = build_rca(8)
        stim = {"A": np.full(10, 5, dtype=np.int64),
                "B": np.full(10, 9, dtype=np.int64)}
        report = switching_activity(nl, stim)
        assert report.total_toggles == 0
        assert report.energy_score == 0.0

    def test_alternating_inputs_toggle_inputs(self):
        nl = build_rca(4)
        stim = {"A": np.array([0b0000, 0b1111] * 8, dtype=np.int64),
                "B": np.zeros(16, dtype=np.int64)}
        report = switching_activity(nl, stim)
        # each A bit toggles on every transition
        assert report.toggles_per_net["A[0]"] == 15
        assert report.toggles_per_net["B[0]"] == 0
        assert report.total_toggles > 0

    def test_needs_two_vectors(self):
        nl = build_rca(4)
        with pytest.raises(ValueError):
            switching_activity(nl, {"A": np.array([1]), "B": np.array([1])})

    def test_mismatched_lengths_rejected(self):
        nl = build_rca(4)
        with pytest.raises(ValueError):
            switching_activity(nl, {"A": np.array([1, 2]),
                                    "B": np.array([1, 2, 3])})

    def test_energy_scales_with_activity(self):
        nl = build_rca(8)
        rng = np.random.default_rng(0)
        hot = {"A": rng.integers(0, 256, 500, dtype=np.int64),
               "B": rng.integers(0, 256, 500, dtype=np.int64)}
        lazy = {"A": hot["A"] & 0x0F, "B": hot["B"] & 0x0F}
        assert switching_activity(nl, hot).energy_score > \
            switching_activity(nl, lazy).energy_score


class TestCharacterizePower:
    def test_deterministic(self):
        adder = GeArAdder(GeArConfig(12, 4, 4))
        r1 = characterize_power(adder, samples=500, seed=1)
        r2 = characterize_power(adder, samples=500, seed=1)
        assert r1.energy_score == r2.energy_score

    def test_cla_costs_more_than_rca(self):
        # CLA's LUT trees toggle on large capacitance; the carry chain is
        # cheap — same story as the delay model.
        rca = characterize_power(RippleCarryAdder(16), samples=1500)
        cla = characterize_power(CarryLookaheadAdder(16), samples=1500)
        assert cla.energy_per_op > rca.energy_per_op

    def test_energy_grows_with_width(self):
        e8 = characterize_power(RippleCarryAdder(8), samples=1500).energy_per_op
        e16 = characterize_power(RippleCarryAdder(16), samples=1500).energy_per_op
        assert e16 > e8

    def test_behavioural_only_adder_rejected(self):
        with pytest.raises(ValueError):
            characterize_power(ErrorTolerantAdderI(8, 4))

    def test_report_properties(self):
        rep = characterize_power(RippleCarryAdder(8), samples=300)
        assert rep.vectors == 300
        assert 0.0 < rep.mean_toggle_rate < 1.0
        assert rep.energy_per_op > 0
