"""End-to-end tests for the CLI observability surface.

Covers the acceptance contract of ``repro.obs``: tracing must never
perturb stdout (stats stay byte-identical with tracing on or off), and
the merged telemetry counters must be identical at ``--jobs 1`` and
``--jobs 2`` — only durations may differ.
"""

import json

import pytest

from repro import obs
from repro.cli import main

SWEEP = ["sweep", "8", "--r", "2", "--no-hardware", "--samples", "20000",
         "--json"]


def _run(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestTraceFlag:
    def test_stdout_byte_identical_with_tracing(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        code, plain, _ = _run(capsys, SWEEP)
        assert code == 0
        code, traced, err = _run(capsys, SWEEP + ["--trace", str(trace)])
        assert code == 0
        assert traced == plain
        assert "telemetry report" in err
        assert trace.is_file()

    def test_trace_flag_accepted_before_subcommand(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        code, _, err = _run(capsys, ["--trace", str(trace), *SWEEP])
        assert code == 0
        assert trace.is_file()
        assert "telemetry report" in err

    def test_profile_reports_without_trace_file(self, capsys):
        code, _, err = _run(capsys, [*SWEEP, "--profile"])
        assert code == 0
        assert "engine.evaluate" in err
        assert "engine.shards.planned" in err

    def test_collector_restored_after_run(self, capsys, tmp_path):
        _run(capsys, [*SWEEP, "--trace", str(tmp_path / "t.jsonl")])
        assert obs.get_collector() is obs.NULL

    def test_trace_jsonl_parses_with_expected_counters(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        _run(capsys, [*SWEEP, "--trace", str(trace)])
        data = obs.read_trace(trace)
        counters = data.frame.counters
        assert counters["engine.shards.planned"] == \
            counters["engine.shards.executed"]
        assert counters["engine.shard.samples"] > 0
        assert data.frame.spans["engine.shard"].count == \
            counters["engine.shards.executed"]

    def test_jobs_invariant_counters_and_shard_count(self, capsys, tmp_path):
        t1, t2 = tmp_path / "j1.jsonl", tmp_path / "j2.jsonl"
        code, out1, _ = _run(capsys, [*SWEEP, "--jobs", "1",
                                      "--trace", str(t1)])
        assert code == 0
        code, out2, _ = _run(capsys, [*SWEEP, "--jobs", "2",
                                      "--trace", str(t2)])
        assert code == 0
        assert out1 == out2  # stats byte-identical at any jobs
        f1, f2 = obs.read_trace(t1).frame, obs.read_trace(t2).frame
        assert f1.counters == f2.counters
        assert f1.spans["engine.shard"].count == f2.spans["engine.shard"].count
        hist1 = f1.histograms["engine.shard.duration_s"]
        hist2 = f2.histograms["engine.shard.duration_s"]
        assert hist1.count == hist2.count

    def test_cache_counters_on_warm_rerun(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        cold_t, warm_t = tmp_path / "cold.jsonl", tmp_path / "warm.jsonl"
        argv = [*SWEEP, "--cache", str(cache)]
        _run(capsys, [*argv, "--trace", str(cold_t)])
        _run(capsys, [*argv, "--trace", str(warm_t)])
        cold = obs.read_trace(cold_t).frame.counters
        warm = obs.read_trace(warm_t).frame.counters
        assert cold["engine.cache.store"] == cold["engine.shards.planned"]
        assert cold["engine.cache.miss"] == cold["engine.cache.store"]
        assert warm["engine.cache.hit"] == warm["engine.shards.planned"]
        assert warm["engine.shards.executed"] == 0
        assert "engine.cache.store" not in warm

    def test_verify_layers_appear_in_trace(self, capsys, tmp_path):
        trace = tmp_path / "v.jsonl"
        code, _, _ = _run(capsys, ["verify", "--adder", "rca", "--width", "6",
                                   "--trace", str(trace)])
        assert code == 0
        frame = obs.read_trace(trace).frame
        spans = set(frame.spans)
        assert "verify.adder" in spans
        for layer in ("behavioural", "verilog", "stats", "vector"):
            assert f"verify.adder/verify.layer.{layer}" in spans
        assert frame.counters["verify.vectors"] > 0
        assert any(path.endswith("rtl.sim.simulate") for path in spans)


class TestObsReport:
    def test_report_renders_saved_trace(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        _run(capsys, [*SWEEP, "--trace", str(trace)])
        code, out, _ = _run(capsys, ["obs", "report", str(trace)])
        assert code == 0
        assert "telemetry report" in out
        assert "engine.shard" in out

    def test_report_json(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        _run(capsys, [*SWEEP, "--trace", str(trace)])
        code, out, _ = _run(capsys, ["obs", "report", str(trace), "--json"])
        assert code == 0
        payload = json.loads(out)
        assert "engine.evaluate" in payload["span_summary"]
        assert payload["counters"]["engine.requests"] > 0

    def test_report_missing_file_exits_2(self, capsys, tmp_path):
        code, _, err = _run(capsys, ["obs", "report",
                                     str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "error" in err


class TestCacheSubcommand:
    def test_stats_and_clear(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        _run(capsys, [*SWEEP, "--cache", str(cache)])
        code, out, _ = _run(capsys, ["cache", "stats", "--dir", str(cache),
                                     "--json"])
        assert code == 0
        payload = json.loads(out)
        assert payload["entries"] > 0
        assert payload["valid"] == payload["entries"]
        assert payload["corrupt"] == 0
        assert payload["bytes"] > 0

        code, out, _ = _run(capsys, ["cache", "clear", "--dir", str(cache)])
        assert code == 0
        assert "removed" in out
        code, out, _ = _run(capsys, ["cache", "stats", "--dir", str(cache),
                                     "--json"])
        assert json.loads(out)["entries"] == 0

    def test_stats_flags_corrupt_entries(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        _run(capsys, [*SWEEP, "--cache", str(cache)])
        victim = next(cache.glob("??/*.json"))
        victim.write_text("{corrupt")
        code, out, _ = _run(capsys, ["cache", "stats", "--dir", str(cache),
                                     "--json"])
        assert code == 1
        assert json.loads(out)["corrupt"] == 1

    def test_stats_text_output(self, capsys, tmp_path):
        code, out, _ = _run(capsys, ["cache", "stats", "--dir",
                                     str(tmp_path / "empty")])
        assert code == 0
        assert "entries     : 0" in out


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("gear ")
        import repro

        assert repro.__version__ in out
