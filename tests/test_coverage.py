"""Unit tests for §3.1 configuration coverage (GeAr subsumes the baselines)."""

import numpy as np
import pytest

from repro.adders import (
    AccuracyConfigurableAdder,
    AlmostCorrectAdder,
    ErrorTolerantAdderII,
)
from repro.core.coverage import (
    classify_config,
    gear_as_aca1,
    gear_as_aca2,
    gear_as_etaii,
    gear_covers_gda,
)
from repro.core.gear import GeArAdder, GeArConfig
from tests.conftest import random_pairs


class TestCoverageMappings:
    def test_aca1_mapping_parameters(self):
        cfg = gear_as_aca1(16, 4)
        assert (cfg.r, cfg.p, cfg.L) == (1, 3, 4)

    def test_aca1_functional_equivalence(self):
        cfg = gear_as_aca1(16, 4)
        gear = GeArAdder(cfg)
        aca = AlmostCorrectAdder(16, 4)
        a, b = random_pairs(16, 3000, seed=1)
        np.testing.assert_array_equal(gear.add(a, b), aca.add(a, b))

    def test_aca2_mapping(self):
        cfg = gear_as_aca2(16, 8)
        assert (cfg.r, cfg.p) == (4, 4)
        gear = GeArAdder(cfg)
        aca2 = AccuracyConfigurableAdder(16, 8)
        a, b = random_pairs(16, 3000, seed=2)
        np.testing.assert_array_equal(gear.add(a, b), aca2.add(a, b))

    def test_etaii_mapping(self):
        cfg = gear_as_etaii(16, 8)
        gear = GeArAdder(cfg)
        etaii = ErrorTolerantAdderII(16, 8)
        a, b = random_pairs(16, 3000, seed=3)
        np.testing.assert_array_equal(gear.add(a, b), etaii.add(a, b))

    def test_gda_parameter_mapping(self):
        cfg = gear_covers_gda(16, 4, 8)
        assert (cfg.r, cfg.p) == (4, 8)

    def test_invalid_aca_params(self):
        with pytest.raises(ValueError):
            gear_as_aca1(16, 1)
        with pytest.raises(ValueError):
            gear_as_aca2(16, 7)


class TestClassification:
    def test_aca1_point(self):
        matches = classify_config(GeArConfig(16, 1, 3))
        assert "ACA-I" in matches

    def test_half_half_point(self):
        matches = classify_config(GeArConfig(16, 4, 4))
        assert "ACA-II" in matches and "ETAII" in matches and "GDA" in matches

    def test_gda_only_multiple(self):
        matches = classify_config(GeArConfig(16, 4, 8))
        assert "GDA" in matches
        assert "ACA-II" not in matches

    def test_gear_only_point(self):
        matches = classify_config(GeArConfig(16, 4, 6, allow_partial=True))
        assert matches == ["GeAr-only"]

    def test_every_enumerated_config_classifies(self):
        from repro.core.configspace import enumerate_configs

        for cfg in enumerate_configs(12, allow_partial=True):
            assert classify_config(cfg)
