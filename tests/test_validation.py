"""Unit tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    check_in_range,
    check_nonneg_int,
    check_pos_int,
    check_prob,
)


class TestCheckPosInt:
    def test_accepts_positive(self):
        assert check_pos_int("x", 3) == 3

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError):
            check_pos_int("x", bad)

    @pytest.mark.parametrize("bad", [1.5, "3", None, True])
    def test_rejects_non_int(self, bad):
        with pytest.raises(TypeError):
            check_pos_int("x", bad)

    def test_error_message_names_argument(self):
        with pytest.raises(ValueError, match="myarg"):
            check_pos_int("myarg", -2)


class TestCheckNonnegInt:
    def test_accepts_zero(self):
        assert check_nonneg_int("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonneg_int("x", -1)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_nonneg_int("x", False)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("x", 0.0, 0.0, 1.0) == 0.0
        assert check_in_range("x", 1.0, 0.0, 1.0) == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range("x", 1.01, 0.0, 1.0)


class TestCheckProb:
    def test_accepts_probabilities(self):
        assert check_prob("p", 0.5) == 0.5

    @pytest.mark.parametrize("bad", [-0.001, 1.001])
    def test_rejects_outside(self, bad):
        with pytest.raises(ValueError):
            check_prob("p", bad)

    def test_converts_to_float(self):
        assert isinstance(check_prob("p", 1), float)
