"""Unit tests for the GeAr functional adder."""

import numpy as np
import pytest

from repro.core.gear import GeArAdder, GeArConfig
from tests.conftest import random_pairs


class TestPaperExamples:
    def test_fig3_example_error_case(self):
        # GeAr(12,4,4): a carry out of bit 3 that must propagate through
        # bits 4..7 (all propagating) is invisible to sub-adder 2.
        adder = GeArAdder(GeArConfig(12, 4, 4))
        a = 0b000011111111
        b = 0b000000000001
        exact = a + b  # 0b000100000000
        approx = adder.add(a, b)
        assert approx != exact
        assert exact - approx == 1 << 8  # missing carry into result field

    def test_no_error_when_prediction_generates(self):
        # If any prediction bit generates, the local carry is recreated.
        adder = GeArAdder(GeArConfig(12, 4, 4))
        a = 0b000000110000  # bits 4,5 set
        b = 0b000000110000
        assert adder.add(a, b) == a + b

    def test_first_sub_adder_result_bits_always_exact(self):
        # Eq. 2: the low L output bits come from an exact L-bit addition.
        adder = GeArAdder(GeArConfig(12, 4, 4))
        a, b = random_pairs(12, 5000, seed=1)
        low = np.asarray(adder.add(a, b)) & 0xFF
        np.testing.assert_array_equal(low, (a + b) & 0xFF)


class TestInvariants:
    @pytest.mark.parametrize("n,r,p", [(8, 2, 2), (12, 4, 4), (12, 2, 6),
                                       (16, 4, 8), (16, 2, 2)])
    def test_never_exceeds_exact(self, n, r, p):
        adder = GeArAdder(GeArConfig(n, r, p))
        a, b = random_pairs(n, 5000, seed=n + r)
        assert np.all(np.asarray(adder.add(a, b)) <= a + b)

    def test_commutative(self):
        adder = GeArAdder(GeArConfig(16, 4, 4))
        a, b = random_pairs(16, 3000, seed=2)
        np.testing.assert_array_equal(adder.add(a, b), adder.add(b, a))

    def test_zero_identity(self):
        adder = GeArAdder(GeArConfig(16, 4, 4))
        a, _ = random_pairs(16, 1000, seed=3)
        np.testing.assert_array_equal(adder.add(a, np.zeros_like(a)), a)

    def test_error_is_multiple_of_result_field_weight(self):
        # Every error is a sum of missed carries at window result bases.
        cfg = GeArConfig(12, 4, 4)
        adder = GeArAdder(cfg)
        a, b = random_pairs(12, 20000, seed=4)
        err = (a + b) - np.asarray(adder.add(a, b))
        assert set(np.unique(err)) <= {0, 1 << 8}

    def test_output_in_range(self):
        adder = GeArAdder(GeArConfig(16, 2, 2))
        a, b = random_pairs(16, 5000, seed=5)
        out = np.asarray(adder.add(a, b))
        assert out.min() >= 0
        assert out.max() < (1 << 17)

    def test_exact_config_is_exact(self):
        adder = GeArAdder(GeArConfig(8, 4, 4))
        assert adder.is_exact
        a, b = random_pairs(8, 1000, seed=6)
        np.testing.assert_array_equal(adder.add(a, b), a + b)
        assert adder.error_probability() == 0.0

    def test_partial_config_functional(self):
        adder = GeArAdder.from_params(20, 3, 7, allow_partial=True)
        a, b = random_pairs(20, 5000, seed=7)
        approx = np.asarray(adder.add(a, b))
        assert np.all(approx <= a + b)
        assert np.mean(approx != a + b) < 0.05

    def test_from_params_factory(self):
        adder = GeArAdder.from_params(12, 4, 4)
        assert adder.config == GeArConfig(12, 4, 4)

    def test_netlist_hook(self):
        nl = GeArAdder(GeArConfig(12, 4, 4)).build_netlist()
        assert nl is not None
        assert nl.input_buses == {"A": 12, "B": 12}


class TestAccuracyMonotonicity:
    def test_accuracy_improves_with_p(self):
        # Fig. 7's monotone curves, measured functionally.
        a, b = random_pairs(16, 30000, seed=8)
        rates = []
        for p in (2, 4, 6, 8, 10):
            strict = (16 - 2 - p) % 2 == 0
            adder = GeArAdder(GeArConfig(16, 2, p, allow_partial=not strict))
            rates.append(float(np.mean(np.asarray(adder.add(a, b)) != a + b)))
        assert rates == sorted(rates, reverse=True)
