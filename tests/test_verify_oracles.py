"""Oracle-level tests: the four layer checks, including fault injection.

The pass paths are covered indirectly by ``test_verify_runner_cli`` (which
drives the whole registry); here each oracle is also pushed into its FAIL
branch with a deliberately broken model, and — the acceptance criterion —
a single stuck-at gate fault injected via :mod:`repro.rtl.faults` must be
caught by the behavioural layer and reported with a *shrunk*
counterexample.
"""

import numpy as np
import pytest

from repro.rtl.faults import Fault, inject_fault
from repro.rtl.sim import simulate_bus
from repro.verify.oracles import (
    check_behavioural,
    check_stats,
    check_vector,
    check_verilog,
)
from repro.verify.registry import registry_adder
from repro.verify.report import LayerStatus
from repro.verify.vectors import operand_vectors


class _Wrapper:
    """Delegate to a real model, overriding selected methods per test."""

    def __init__(self, model):
        self._model = model

    def __getattr__(self, name):
        return getattr(self._model, name)


class _FaultyNetlist(_Wrapper):
    """A model whose netlist carries one injected stuck-at fault."""

    def __init__(self, model, fault):
        super().__init__(model)
        self._fault = fault

    def build_netlist(self):
        return inject_fault(self._model.build_netlist(), self._fault)


def _pick_detectable_fault(model, net_prefix="S"):
    """A stuck-at fault on a sum-output net that actually flips S."""
    netlist = model.build_netlist()
    vectors = operand_vectors(model.width)
    golden = simulate_bus(netlist, {"A": vectors.a, "B": vectors.b}, "S")
    for net in netlist.output_buses["S"]:
        for stuck_at in (0, 1):
            fault = Fault(net, stuck_at)
            faulty = inject_fault(netlist, fault)
            got = simulate_bus(faulty, {"A": vectors.a, "B": vectors.b}, "S")
            if np.any(got != golden):
                return fault
    raise AssertionError("no detectable single fault found")  # pragma: no cover


class TestFaultInjectionAcceptance:
    """ISSUE acceptance: an injected single-gate fault is detected and the
    reported counterexample is shrunk."""

    @pytest.mark.parametrize("key", ["rca", "gear_r2p2"])
    def test_single_stuck_at_fault_is_caught_and_shrunk(self, key):
        model = registry_adder(key, 8)
        fault = _pick_detectable_fault(model)
        faulty = _FaultyNetlist(model, fault)

        vectors = operand_vectors(8)  # 2^16 pairs: exhaustive
        result = check_behavioural(faulty, vectors)

        assert result.status is LayerStatus.FAIL
        assert result.exhaustive
        cex = result.counterexample
        assert cex is not None
        # The witness must still expose the fault...
        netlist = faulty.build_netlist()
        if result.details["bus"] == "S":
            assert int(model.add(cex.a, cex.b)) != int(
                simulate_bus(netlist, {"A": cex.a, "B": cex.b}, "S")[()])
        # ...and be shrunk: no width axis here (the fault lives in this
        # one netlist), but the operands must be 1-minimal — clearing any
        # single set bit of either operand makes the mismatch vanish.
        from repro.verify.oracles import _behavioural_predicate

        fails = _behavioural_predicate(faulty, netlist, result.details["bus"])
        assert fails(cex.a, cex.b)
        for bit in range(8):
            if (cex.a >> bit) & 1:
                assert not fails(cex.a & ~(1 << bit), cex.b)
            if (cex.b >> bit) & 1:
                assert not fails(cex.a, cex.b & ~(1 << bit))

    def test_fault_on_err_detector_is_caught(self):
        # Break the ERR bus instead of S: stuck-at-1 on the error flag.
        model = registry_adder("gear_r2p2", 8)
        netlist = model.build_netlist()
        err_net = netlist.output_buses["ERR"][0]
        faulty = _FaultyNetlist(model, Fault(err_net, 1))

        result = check_behavioural(faulty, operand_vectors(8))
        assert result.status is LayerStatus.FAIL
        assert result.details["bus"] == "ERR"
        # Stuck-at-1 ERR fires even on (0, 0): the shrinker floors out.
        assert (result.counterexample.a, result.counterexample.b) == (0, 0)


class TestBehaviouralOracle:
    def test_passes_on_healthy_model(self):
        result = check_behavioural(registry_adder("cla", 8), operand_vectors(8))
        assert result.status is LayerStatus.PASS
        assert result.exhaustive
        assert result.vectors == 1 << 16

    def test_skips_without_netlist(self):
        result = check_behavioural(registry_adder("etai_half", 8),
                                   operand_vectors(8))
        assert result.status is LayerStatus.SKIP

    def test_shrinks_across_widths_with_a_factory(self):
        # A behavioural bug present at every width shrinks down the
        # width axis when the oracle gets a family factory.
        class _OffByOneHigh(_Wrapper):
            def add(self, a, b):
                exact = self._model.add(a, b)
                top = np.asarray(a) >> (self.width - 1) & 1
                result = exact + top
                return result if isinstance(exact, np.ndarray) else int(result)

        def build(width):
            return _OffByOneHigh(registry_adder("rca", width))

        result = check_behavioural(build(8), operand_vectors(8),
                                   build=build, min_width=1)
        assert result.status is LayerStatus.FAIL
        cex = result.counterexample
        assert cex.width == 1
        assert (cex.a, cex.b) == (1, 0)


class TestVerilogOracle:
    def test_round_trip_passes(self):
        result = check_verilog(registry_adder("ksa", 8))
        assert result.status is LayerStatus.PASS
        assert result.exhaustive  # 16 input bits <= 22

    def test_skips_without_netlist(self):
        # etai is the one registry family left without a netlist model
        # (ETAIIM gained one when it became a compiled spec).
        assert check_verilog(
            registry_adder("etai_half", 8)).status is LayerStatus.SKIP

    def test_etaiim_gained_a_netlist(self):
        assert check_verilog(
            registry_adder("etaiim_l4c2", 8)).status is LayerStatus.PASS


class TestStatsOracle:
    def test_exhaustive_match(self):
        result = check_stats(registry_adder("gear_r2p2", 8))
        assert result.status is LayerStatus.PASS
        assert result.exhaustive
        assert result.details["measured_error_rate"] == pytest.approx(
            result.details["analytic_error_rate"], abs=1e-12)

    def test_exact_adder_measures_zero(self):
        result = check_stats(registry_adder("rca", 8))
        assert result.status is LayerStatus.PASS
        assert result.details["measured_error_rate"] == 0.0

    def test_sampled_regime_uses_wilson_interval(self):
        result = check_stats(registry_adder("gear_r2p4", 12),
                             exhaustive_width_cap=10, samples=20_000)
        assert result.status is LayerStatus.PASS
        assert not result.exhaustive
        low, high = result.details["wilson_interval"]
        assert low <= result.details["analytic_error_rate"] <= high

    def test_inflated_analytic_probability_fails(self):
        class _LyingModel(_Wrapper):
            def error_probability(self):
                return 0.9999

        result = check_stats(_LyingModel(registry_adder("gear_r2p2", 8)))
        assert result.status is LayerStatus.FAIL
        assert "error rate" in result.message

    def test_understated_max_ed_bound_fails(self):
        class _TightLiar(_Wrapper):
            def max_error_distance(self):
                return 1  # true max ED at this config is 64

        result = check_stats(_TightLiar(registry_adder("gear_r2p2", 8)))
        assert result.status is LayerStatus.FAIL
        assert "exceeds the" in result.message


class TestVectorOracle:
    def test_scalar_and_vector_paths_agree(self):
        result = check_vector(registry_adder("etaii_l4", 8),
                              operand_vectors(8), max_scalar=512)
        assert result.status is LayerStatus.PASS
        assert result.vectors == 512
        assert result.details["vectorised_over"] == 1 << 16

    def test_divergent_scalar_path_fails_and_shrinks(self):
        class _ScalarSkew(_Wrapper):
            def add(self, a, b):
                result = self._model.add(a, b)
                if isinstance(result, np.ndarray):
                    return result
                return int(result) + (1 if a & 0b100 else 0)

        def build(width):
            return _ScalarSkew(registry_adder("rca", width))

        result = check_vector(build(8), operand_vectors(8),
                              build=build, min_width=1)
        assert result.status is LayerStatus.FAIL
        assert result.details["method"] == "add"
        cex = result.counterexample
        assert (cex.width, cex.a, cex.b) == (3, 4, 0)
