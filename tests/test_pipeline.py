"""Unit tests for the pipeline simulation that validates Table IV."""

import pytest

from repro.core.gear import GeArAdder, GeArConfig
from repro.timing.pipeline import ModelComparison, compare_with_model, simulate_pipeline
from repro.utils.distributions import SparseOperands


class TestSimulatePipeline:
    def test_exact_adder_never_stalls(self):
        adder = GeArAdder(GeArConfig(8, 4, 4))  # k = 1
        run = simulate_pipeline(adder, 5000, seed=1)
        assert run.total_cycles == 5000
        assert run.stall_fraction == 0.0
        assert run.total_corrections == 0

    def test_cycle_accounting(self):
        adder = GeArAdder(GeArConfig(12, 4, 4))
        run = simulate_pipeline(adder, 50_000, seed=2)
        assert run.total_cycles == run.operations + run.total_corrections
        assert run.cycles_per_op >= 1.0

    def test_runtime_scaling(self):
        adder = GeArAdder(GeArConfig(12, 4, 4))
        run = simulate_pipeline(adder, 10_000, seed=3)
        assert run.runtime_seconds(2.0) == pytest.approx(
            run.total_cycles * 2e-9
        )

    def test_stall_rate_tracks_error_probability(self):
        adder = GeArAdder(GeArConfig(12, 4, 4))  # k=2: one stall per error
        run = simulate_pipeline(adder, 200_000, seed=4)
        corrected_rate = run.corrected_operations / run.operations
        assert corrected_rate == pytest.approx(adder.error_probability(),
                                               abs=2e-3)

    def test_sparse_stream_stalls_less(self):
        adder = GeArAdder(GeArConfig(16, 2, 2))
        uniform = simulate_pipeline(adder, 50_000, seed=5)
        sparse = simulate_pipeline(
            adder, 50_000, seed=5,
            distribution=SparseOperands(16, one_density=0.2),
        )
        assert sparse.stall_fraction < uniform.stall_fraction

    def test_selective_enable_reduces_stalls(self):
        adder = GeArAdder(GeArConfig(12, 2, 6))
        full = simulate_pipeline(adder, 50_000, seed=6)
        msb = simulate_pipeline(adder, 50_000, seed=6,
                                enabled=[False, True])
        assert msb.total_cycles <= full.total_cycles


class TestModelComparison:
    @pytest.mark.parametrize("n,r,p", [(12, 4, 4), (20, 5, 5), (16, 2, 2)])
    def test_measurement_within_paper_envelope(self, n, r, p):
        ops = 150_000
        adder = GeArAdder(GeArConfig(n, r, p))
        cmp = compare_with_model(adder, operations=ops, seed=7)
        # Allow Monte-Carlo noise on the measurement (5 sigma of the
        # per-addition stall indicator); for k=2 the envelope has zero
        # width so this slack is what the test actually exercises.
        p_err = adder.error_probability()
        sigma = (p_err * (1 - p_err) * (adder.config.k - 1) ** 2 / ops) ** 0.5
        assert cmp.predicted_best - 5 * sigma <= cmp.measured_cycles_per_op \
            <= cmp.predicted_worst + 5 * sigma, cmp

    def test_k2_measurement_equals_best_scenario(self):
        # With k = 2 every erroneous addition costs exactly one extra
        # cycle, so the measurement converges to the 'best' scenario.
        adder = GeArAdder(GeArConfig(12, 4, 4))
        cmp = compare_with_model(adder, operations=400_000, seed=8)
        assert cmp.measured_cycles_per_op == pytest.approx(
            cmp.predicted_best, abs=1e-3
        )

    def test_scenarios_ordered(self):
        adder = GeArAdder(GeArConfig(16, 2, 2))
        cmp = compare_with_model(adder, operations=20_000, seed=9)
        assert cmp.predicted_best <= cmp.predicted_average <= cmp.predicted_worst

    def test_envelope_property(self):
        good = ModelComparison(1.05, 1.0, 1.1, 1.2)
        assert good.within_envelope
        bad = ModelComparison(1.5, 1.0, 1.1, 1.2)
        assert not bad.within_envelope
