"""Integration tests: every table/figure experiment runs and reproduces the
paper's qualitative claims."""

import numpy as np
import pytest

from repro.experiments import (
    run_correction_policy_ablation,
    run_distribution_sensitivity_ablation,
    run_fig1,
    run_fig7,
    run_fig8,
    run_fig9,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    render_fig1,
    render_fig7,
    render_fig8,
    render_fig9,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)


@pytest.fixture(scope="module")
def table1_rows():
    from repro.experiments.table1 import default_table1_image

    return run_table1(default_table1_image(rows=24, seed=42))


@pytest.fixture(scope="module")
def table2_rows():
    return run_table2()


class TestFig1:
    def test_gear_offers_most_configs(self):
        for panel in run_fig1():
            assert panel.counts["GeAr"] > panel.counts["GDA"]
            assert panel.counts["GDA"] > panel.counts["ACA-II"]

    def test_render(self):
        assert "R=2" in render_fig1()


class TestFig7:
    def test_panels_present(self):
        panels = run_fig7()
        assert set(panels) == {2, 3, 4, 8}

    def test_accuracy_monotone_and_gda_subset(self):
        for r, points in run_fig7().items():
            accs = [pt.accuracy_pct for pt in points]
            assert accs == sorted(accs)
            gda_ps = {pt.p for pt in points if pt.gda}
            assert all(p % r == 0 for p in gda_ps)
            assert len(gda_ps) < len(points)

    def test_paper_quoted_values(self):
        # §4.1: (R=2, P=2) ≈ 51 %, (R=2, P=6) ≈ 97 %, (R=4, P=4) ≈ 94 %.
        panels = run_fig7()
        acc = {(pt.r, pt.p): pt.accuracy_pct for pts in panels.values()
               for pt in pts}
        assert acc[(2, 2)] == pytest.approx(52.2, abs=2.0)
        assert acc[(2, 6)] == pytest.approx(97.0, abs=1.0)
        assert acc[(4, 4)] == pytest.approx(94.0, abs=1.5)

    def test_render(self):
        assert "R=8" in render_fig7()


class TestTable2AndFig8:
    def test_ned_matches_paper_on_reference_entries(self, table2_rows):
        # 6/8 Table II NED entries match the paper's normalisation exactly.
        expected = {
            (1, 3): 0.0585, (1, 4): 0.0273, (1, 5): 0.0117, (1, 6): 0.0039,
            (2, 2): 0.1171, (2, 4): 0.0234,
        }
        for row in table2_rows:
            if (row.r, row.p) in expected:
                assert row.ned_paper_convention == pytest.approx(
                    expected[(row.r, row.p)], abs=2e-3
                ), (row.architecture, row.r, row.p)

    def test_gda_and_gear_share_ned(self, table2_rows):
        gda = {(r.r, r.p): r.med for r in table2_rows if r.architecture == "GDA"}
        gear = {(r.r, r.p): r.med for r in table2_rows if r.architecture == "GeAr"}
        for key in gda:
            assert gda[key] == pytest.approx(gear[key], rel=1e-9)

    def test_gda_never_faster(self, table2_rows):
        gda = {(r.r, r.p): r for r in table2_rows if r.architecture == "GDA"}
        gear = {(r.r, r.p): r for r in table2_rows if r.architecture == "GeAr"}
        for key in gda:
            assert gda[key].delay_ns >= gear[key].delay_ns

    def test_fig8_gear_wins_every_config(self, table2_rows):
        for pt in run_fig8(table2_rows):
            assert pt.gear_wins

    def test_renders(self, table2_rows):
        assert "GDA" in render_table2(table2_rows)
        assert "GeAr" in render_fig8(run_fig8(table2_rows))


class TestTable3:
    def test_analytic_matches_paper_to_printed_digits(self):
        rows = run_table3(samples=10_000)
        for row in rows:
            assert row.analytic_pct == pytest.approx(
                row.paper_analytic_pct, abs=5e-5 * 100
            )

    def test_simulation_consistent_with_model(self):
        rows = run_table3(samples=50_000)
        for row in rows:
            sigma_pct = 100 * np.sqrt(
                max(row.analytic_pct / 100, 1e-9) / 50_000
            )
            assert abs(row.simulated_pct - row.analytic_pct) < \
                max(5 * sigma_pct, 0.02)

    def test_render(self):
        assert "Table III" in render_table3(run_table3(samples=2000))


class TestTable4:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table4()

    def test_paper_timing_columns_reproduced(self, rows):
        from repro.paperdata import TABLE4_GEAR

        for row in rows:
            if row.r is None or row.paper_timing is None:
                continue
            ref = TABLE4_GEAR[(row.r, row.p)]
            assert row.paper_timing.approximate_s == pytest.approx(
                ref["approx_s"], rel=1e-4)
            assert row.paper_timing.worst_s == pytest.approx(
                ref["worst_s"], rel=1e-4)

    def test_gear_beats_rca(self, rows):
        rca = next(r for r in rows if r.name == "RCA")
        for row in rows:
            if row.name.startswith("GeAr"):
                assert row.timing.approximate_s < rca.timing.approximate_s

    def test_gda_slowest(self, rows):
        rca = next(r for r in rows if r.name == "RCA")
        for row in rows:
            if row.name.startswith("GDA"):
                assert row.delay_ns > rca.delay_ns

    def test_render(self, rows):
        assert "Table IV" in render_table4(rows)


class TestTable1:
    def test_rca_row_perfect(self, table1_rows):
        rca = next(r for r in table1_rows if r.name == "RCA")
        assert rca.stats.med == 0.0
        assert rca.stats.maa(1.0) == 100.0

    def test_accuracy_improves_with_p(self, table1_rows):
        meds = {r.name: r.stats.med for r in table1_rows}
        assert meds["GeAr(4,2)"] > meds["GeAr(4,4)"] > meds["GeAr(4,6)"] \
            > meds["GeAr(4,8)"]

    def test_gda_gear_equivalences(self, table1_rows):
        by_name = {r.name: r for r in table1_rows}
        # Table I: GDA(4,4) == ACA-II == ETAII == GeAr(4,4) accuracy columns.
        group = ["GDA(4,4)", "ACA-II", "ETAII", "GeAr(4,4)"]
        meds = [by_name[n].stats.med for n in group]
        assert max(meds) == pytest.approx(min(meds), rel=1e-9)
        # GDA(4,8) == GeAr(4,8)
        assert by_name["GDA(4,8)"].stats.med == pytest.approx(
            by_name["GeAr(4,8)"].stats.med, rel=1e-9)

    def test_maa_curves_monotone(self, table1_rows):
        for row in table1_rows:
            curve = [row.stats.maa(t) for t in (1.0, 0.975, 0.95, 0.925, 0.90)]
            assert curve == sorted(curve)

    def test_delay_ordering(self, table1_rows):
        by_name = {r.name: r for r in table1_rows}
        assert by_name["GeAr(4,4)"].delay_ns < by_name["RCA"].delay_ns
        assert by_name["GDA(4,8)"].delay_ns > by_name["RCA"].delay_ns

    def test_render(self, table1_rows):
        out = render_table1(table1_rows)
        assert "MAA100" in out and "GeAr(4,8)" in out


class TestFig9:
    @pytest.fixture(scope="class")
    def panels(self):
        return run_fig9()

    def test_all_applications_present(self, panels):
        assert set(panels) == {"image_integral", "sad", "lpf"}

    def test_gear_beats_rca_everywhere(self, panels):
        for rows in panels.values():
            rca = next(r for r in rows if r.adder == "RCA")
            gear = next(r for r in rows if r.adder == "GeAr")
            assert gear.timing.approximate_s < rca.timing.approximate_s
            assert gear.timing.worst_s < rca.timing.worst_s * 1.1

    def test_gda_slowest_everywhere(self, panels):
        for rows in panels.values():
            gda = next(r for r in rows if r.adder == "GDA")
            assert gda.delay_ns == max(r.delay_ns for r in rows)

    def test_render(self, panels):
        assert "image_integral" in render_fig9(panels)


class TestAblations:
    def test_model_exact_for_uniform(self):
        rows = run_distribution_sensitivity_ablation(
            configs=[(16, 2, 2), (16, 4, 4)], samples=50_000
        )
        for row in rows:
            assert row.model_is_exact_for_uniform
            assert abs(row.measured["uniform"] - row.model) < 0.01

    def test_distribution_drift_direction(self):
        rows = run_distribution_sensitivity_ablation(
            configs=[(16, 2, 2)], samples=50_000
        )
        row = rows[0]
        # Sparse operands propagate less -> fewer errors than the model.
        assert row.measured["sparse(0.25)"] < row.model

    def test_correction_policy_tradeoff(self):
        rows = run_correction_policy_ablation(samples=20_000)
        neds = [r.residual_ned for r in rows]
        cycles = [r.mean_cycles for r in rows]
        assert neds == sorted(neds, reverse=True)
        assert cycles == sorted(cycles)
        assert rows[-1].residual_error_rate == 0.0
