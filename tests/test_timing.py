"""Unit tests for the FPGA characterisation and the Table-IV timing model."""

import pytest

from repro.adders import (
    AccuracyConfigurableAdder,
    AlmostCorrectAdder,
    CarryLookaheadAdder,
    GracefullyDegradingAdder,
    RippleCarryAdder,
)
from repro.adders.etai import ErrorTolerantAdderI
from repro.core.gear import GeArAdder, GeArConfig
from repro.paperdata import TABLE4_GEAR, TABLE4_OTHERS
from repro.timing.fpga import characterize, characterize_netlist
from repro.timing.latency import (
    FULL_HD_PIXELS,
    correction_cycle_counts,
    execution_timings,
)


class TestCharacterize:
    def test_rca16_matches_paper_lut_count(self):
        char = characterize(RippleCarryAdder(16))
        assert char.luts == 16  # Table I: RCA = 16 LUTs

    def test_rca16_delay_near_paper(self):
        char = characterize(RippleCarryAdder(16))
        assert char.delay_ns == pytest.approx(1.365, abs=0.25)

    def test_delay_ordering_table1(self):
        # GeAr <= ACA-II < RCA < GDA — the §4.2 ordering.
        gear = characterize(GeArAdder(GeArConfig(16, 4, 4)))
        aca2 = characterize(AccuracyConfigurableAdder(16, 8))
        rca = characterize(RippleCarryAdder(16))
        gda = characterize(GracefullyDegradingAdder(16, 4, 8))
        assert gear.delay_ns <= aca2.delay_ns <= rca.delay_ns < gda.delay_ns

    def test_area_ordering_table1(self):
        # RCA smallest; ACA-I pays for its overlapping windows; GDA for CLA.
        rca = characterize(RippleCarryAdder(16))
        gear = characterize(GeArAdder(GeArConfig(16, 4, 4)))
        gda = characterize(GracefullyDegradingAdder(16, 4, 8))
        assert rca.luts <= gear.luts <= gda.luts

    def test_cla_uses_more_luts_than_rca(self):
        assert characterize(CarryLookaheadAdder(12)).luts > \
            characterize(RippleCarryAdder(12)).luts

    def test_behavioural_only_adder_raises(self):
        with pytest.raises(ValueError):
            characterize(ErrorTolerantAdderI(8, 4))

    def test_netlist_characterisation_fields(self):
        adder = GeArAdder(GeArConfig(12, 4, 4))
        netlist = adder.build_netlist()
        char = characterize_netlist(netlist, name="x")
        assert char.name == "x"
        assert char.delay_ns > 0
        assert char.luts > 0
        assert char.gates > 0
        assert char.logic_depth >= 1
        assert char.delay_seconds == pytest.approx(char.delay_ns * 1e-9)
        assert char.delay_area_product() == pytest.approx(char.delay_ns * char.luts)

    def test_gear_delay_grows_with_l(self):
        delays = []
        for p in (2, 6, 10):
            strict = (16 - 2 - p) % 2 == 0
            adder = GeArAdder(GeArConfig(16, 2, p, allow_partial=not strict))
            delays.append(characterize(adder).delay_ns)
        assert delays == sorted(delays)


class TestExecutionTimings:
    def test_table4_reproduced_from_paper_inputs(self):
        # Feeding the paper's delay & probability through our timing model
        # must reproduce the paper's four time columns digit-for-digit.
        for (r, p), ref in TABLE4_GEAR.items():
            cfg = GeArConfig(20, r, p, allow_partial=(20 - r - p) % r != 0)
            t = execution_timings("x", ref["delay_ns"], ref["p_err"], cfg.k)
            assert t.approximate_s == pytest.approx(ref["approx_s"], rel=1e-4)
            assert t.best_s == pytest.approx(ref["best_s"], rel=1e-4)
            assert t.average_s == pytest.approx(ref["average_s"], rel=1e-4)
            assert t.worst_s == pytest.approx(ref["worst_s"], rel=1e-4)

    def test_rca_times_equal_everywhere(self):
        ref = TABLE4_OTHERS["RCA"]
        t = execution_timings("RCA", ref["delay_ns"], 0.0, 1)
        assert t.approximate_s == t.best_s == t.average_s == t.worst_s
        assert t.approximate_s == pytest.approx(2.830464e-3, rel=1e-4)

    def test_scenario_ordering(self):
        t = execution_timings("x", 1.0, 0.05, 5)
        assert t.approximate_s < t.best_s < t.average_s < t.worst_s

    def test_cycle_counts(self):
        counts = correction_cycle_counts(6)
        assert counts == {"best": 1.0, "average": 3.0, "worst": 5.0}

    def test_full_hd_constant(self):
        assert FULL_HD_PIXELS == 1920 * 1080

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            execution_timings("x", -1.0, 0.1, 2)
        with pytest.raises(ValueError):
            execution_timings("x", 1.0, 1.5, 2)
        with pytest.raises(ValueError):
            execution_timings("x", 1.0, 0.1, 0)

    def test_unknown_scenario(self):
        t = execution_timings("x", 1.0, 0.1, 3)
        with pytest.raises(KeyError):
            t.corrected_s("median")
