"""Tests for the netlist lint framework (repro.rtl.lint / lint_rules).

Each built-in rule gets at least one positive test (a seeded defect the
rule must flag) and one negative test (a clean netlist it must not flag).
Defects are seeded by mutating ``Netlist.gates`` directly — the public
constructors enforce the very invariants lint exists to check.
"""

import dataclasses
import json

import pytest

from repro.rtl.builders import build_cla, build_rca
from repro.rtl.gates import Gate, Op
from repro.rtl.lint import (
    Diagnostic,
    LintReport,
    Severity,
    builder_matrix,
    get_rule,
    lint_netlist,
    lint_verilog,
    registered_rules,
)
from repro.rtl.netlist import Netlist
from repro.rtl.opt import optimize, strash, sweep
from repro.rtl.verilog import to_verilog


def rule_ids(report: LintReport) -> set:
    return {d.rule for d in report.diagnostics}


def adder(width: int = 4) -> Netlist:
    return build_rca(width)


# --------------------------------------------------------------------- #
# Framework
# --------------------------------------------------------------------- #


class TestFramework:
    def test_severity_ordering_and_labels(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert Severity.ERROR.label == "error"
        assert Severity.from_label("warning") is Severity.WARNING
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.from_label("fatal")

    def test_registry_contains_documented_rules(self):
        ids = {r.id for r in registered_rules()}
        assert ids == {
            "combinational-loop",
            "undriven-net",
            "multiply-driven-net",
            "input-op-misuse",
            "dead-logic",
            "constant-fold",
            "duplicate-gate",
            "output-bus-shape",
            "net-name",
            "fanout-outlier",
            "group-label",
        }

    def test_get_rule_unknown(self):
        with pytest.raises(ValueError, match="unknown lint rule"):
            get_rule("no-such-rule")

    def test_suppress_validates_rule_ids(self):
        with pytest.raises(ValueError, match="unknown lint rule"):
            lint_netlist(adder(), suppress=["typo-rule"])

    def test_suppress_and_rules_selection(self):
        nl = adder()
        nl.add_gate(Op.AND, ("A[0]", "B[0]"))  # dead gate
        assert "dead-logic" in rule_ids(lint_netlist(nl))
        assert "dead-logic" not in rule_ids(
            lint_netlist(nl, suppress=["dead-logic"])
        )
        only = lint_netlist(nl, rules=["dead-logic"])
        assert only.rules_run == ("dead-logic",)

    def test_netlist_lint_method(self):
        report = adder().lint()
        assert isinstance(report, LintReport)
        assert report.ok()

    def test_report_ok_thresholds(self):
        nl = adder()
        nl.add_gate(Op.AND, ("A[0]", "B[0]"))  # dead gate -> warning
        report = lint_netlist(nl)
        assert report.worst() is Severity.WARNING
        assert report.ok(fail_on=Severity.ERROR)
        assert not report.ok(fail_on=Severity.WARNING)
        assert not report.ok(fail_on=Severity.INFO)

    def test_diagnostic_to_dict_and_format(self):
        diag = Diagnostic(
            rule="dead-logic",
            severity=Severity.WARNING,
            message="gate is dead",
            net="n_7",
            location=(12, 3),
            data={"op": "and"},
        )
        d = diag.to_dict()
        assert d["rule"] == "dead-logic"
        assert d["severity"] == "warning"
        assert (d["line"], d["column"]) == (12, 3)
        assert d["data"] == {"op": "and"}
        text = diag.format()
        assert "warning[dead-logic]" in text
        assert "[n_7]" in text
        assert "line 12, col 3" in text

    def test_report_json_round_trips(self):
        nl = adder()
        nl.add_gate(Op.AND, ("A[0]", "B[0]"))
        report = lint_netlist(nl)
        payload = json.loads(report.to_json())
        assert payload["netlist"] == nl.name
        assert payload["counts"]["warning"] >= 1
        assert any(d["rule"] == "dead-logic" for d in payload["diagnostics"])

    def test_report_text_rendering(self):
        nl = adder()
        text = lint_netlist(nl).format_text()
        assert text.startswith(f"{nl.name}: clean")


# --------------------------------------------------------------------- #
# Rules: graph integrity
# --------------------------------------------------------------------- #


class TestCombinationalLoop:
    def test_detects_injected_cycle(self):
        nl = adder()
        nl.gates["loop_x"] = Gate("loop_x", Op.AND, ("loop_y", "A[0]"))
        nl.gates["loop_y"] = Gate("loop_y", Op.OR, ("loop_x", "B[0]"))
        diags = lint_netlist(nl).by_rule("combinational-loop")
        assert len(diags) == 1
        assert set(diags[0].data["nets"]) == {"loop_x", "loop_y"}
        assert diags[0].severity is Severity.ERROR

    def test_detects_self_loop(self):
        nl = adder()
        nl.gates["self"] = Gate("self", Op.NOT, ("self",))
        diags = lint_netlist(nl).by_rule("combinational-loop")
        assert any("self" in d.data["nets"] for d in diags)

    def test_clean_on_dag(self):
        assert not lint_netlist(adder()).by_rule("combinational-loop")


class TestUndrivenNet:
    def test_detects_undriven_gate_input(self):
        nl = adder()
        nl.gates["u"] = Gate("u", Op.AND, ("ghost", "A[0]"))
        diags = lint_netlist(nl).by_rule("undriven-net")
        assert any(d.net == "ghost" for d in diags)

    def test_detects_undriven_output_bit(self):
        nl = adder()
        nl.output_buses["S"][0] = "phantom"
        diags = lint_netlist(nl).by_rule("undriven-net")
        assert any(d.net == "phantom" and d.data["bus"] == "S" for d in diags)

    def test_clean_when_all_driven(self):
        assert not lint_netlist(adder()).by_rule("undriven-net")


class TestMultiplyDrivenNet:
    def test_detects_gate_on_input_bit(self):
        nl = adder()
        nl.gates["A[0]"] = Gate("A[0]", Op.AND, ("B[0]", "B[1]"))
        diags = lint_netlist(nl).by_rule("multiply-driven-net")
        assert [d.net for d in diags] == ["A[0]"]
        assert diags[0].severity is Severity.ERROR

    def test_clean_on_builder_output(self):
        assert not lint_netlist(adder()).by_rule("multiply-driven-net")


class TestInputOpMisuse:
    def test_detects_stray_input_gate(self):
        nl = adder()
        nl.gates["stray"] = Gate("stray", Op.INPUT, ())
        diags = lint_netlist(nl).by_rule("input-op-misuse")
        assert any(d.net == "stray" for d in diags)

    def test_detects_missing_declared_bit(self):
        nl = adder()
        del nl.gates["A[3]"]
        diags = lint_netlist(nl).by_rule("input-op-misuse")
        assert any(d.net == "A[3]" and d.data["bus"] == "A" for d in diags)

    def test_clean_on_builder_output(self):
        assert not lint_netlist(adder()).by_rule("input-op-misuse")


# --------------------------------------------------------------------- #
# Rules: redundant structure
# --------------------------------------------------------------------- #


class TestDeadLogic:
    def test_detects_unobservable_gate(self):
        nl = adder()
        dead = nl.add_gate(Op.XOR, ("A[1]", "B[1]"))
        diags = lint_netlist(nl).by_rule("dead-logic")
        assert [d.net for d in diags] == [dead]
        assert diags[0].severity is Severity.WARNING

    def test_agrees_with_sweep(self):
        nl = adder()
        nl.add_gate(Op.XOR, ("A[1]", "B[1]"))
        assert not lint_netlist(sweep(nl)).by_rule("dead-logic")

    def test_skipped_when_no_outputs(self):
        nl = Netlist("noout")
        nl.add_input_bus("A", 2)
        nl.add_gate(Op.NOT, ("A[0]",))
        report = lint_netlist(nl)
        # Everything is trivially dead with no outputs; that situation is
        # output-bus-shape's single finding, not one per gate.
        assert not report.by_rule("dead-logic")
        assert report.by_rule("output-bus-shape")

    def test_clean_on_builder_output(self):
        assert not lint_netlist(adder()).by_rule("dead-logic")


class TestConstantFold:
    def test_detects_all_constant_gate(self):
        nl = adder()
        c0, c1 = nl.const(0), nl.const(1)
        net = nl.add_gate(Op.AND, (c0, c1))
        diags = lint_netlist(nl).by_rule("constant-fold")
        assert [d.net for d in diags] == [net]
        assert diags[0].data["folds_to"] == 0

    def test_fold_values(self):
        nl = adder()
        c1 = nl.const(1)
        n_or = nl.add_gate(Op.OR, (nl.const(0), c1))
        n_xor = nl.add_gate(Op.XOR, (c1, c1))
        n_not = nl.add_gate(Op.NOT, (c1,))
        n_mux = nl.add_gate(Op.MUX, (c1, nl.const(0), c1))
        folds = {d.net: d.data["folds_to"]
                 for d in lint_netlist(nl).by_rule("constant-fold")}
        assert folds[n_or] == 1
        assert folds[n_xor] == 0
        assert folds[n_not] == 0
        assert folds[n_mux] == 1

    def test_clean_when_any_input_varies(self):
        nl = adder()
        nl.add_gate(Op.AND, (nl.const(1), "A[0]"))
        assert not lint_netlist(nl).by_rule("constant-fold")


class TestDuplicateGate:
    def test_detects_commuted_duplicate(self):
        nl = adder()
        first = nl.add_gate(Op.AND, ("A[0]", "B[0]"))
        second = nl.add_gate(Op.AND, ("B[0]", "A[0]"))  # commuted operands
        diags = lint_netlist(nl).by_rule("duplicate-gate")
        assert any(
            d.net == second and d.data["canonical"] == first for d in diags
        )
        assert all(d.severity is Severity.INFO for d in diags)

    def test_group_distinguishes_gates(self):
        nl = adder()
        nl.add_gate(Op.AND, ("A[0]", "B[0]"), group="x")
        nl.add_gate(Op.AND, ("A[0]", "B[0]"), group="y")
        assert not lint_netlist(nl).by_rule("duplicate-gate")

    def test_strash_removes_findings(self):
        nl = build_cla(8)  # CLA has genuine pre-strash sharing candidates
        assert lint_netlist(nl).by_rule("duplicate-gate")
        assert not lint_netlist(strash(nl)).by_rule("duplicate-gate")


# --------------------------------------------------------------------- #
# Rules: interface shape
# --------------------------------------------------------------------- #


class TestOutputBusShape:
    def test_detects_no_outputs(self):
        nl = Netlist("noout")
        nl.add_input_bus("A", 2)
        diags = lint_netlist(nl).by_rule("output-bus-shape")
        assert len(diags) == 1
        assert diags[0].severity is Severity.ERROR

    def test_detects_empty_bus(self):
        nl = adder()
        nl.output_buses["Z"] = []
        diags = lint_netlist(nl).by_rule("output-bus-shape")
        assert any(d.data.get("bus") == "Z" for d in diags)

    def test_detects_input_output_collision(self):
        nl = adder()
        nl.output_buses["A"] = [nl.output_buses["S"][0]]
        diags = lint_netlist(nl).by_rule("output-bus-shape")
        assert any("both as input and output" in d.message for d in diags)

    def test_detects_wrong_sum_width(self):
        nl = adder(8)
        nl.output_buses["S"] = nl.output_buses["S"][:4]
        diags = lint_netlist(nl).by_rule("output-bus-shape")
        assert len(diags) == 1
        assert diags[0].severity is Severity.WARNING
        assert diags[0].data["width"] == 4
        assert diags[0].data["operand_width"] == 8

    def test_clean_on_builder_output(self):
        assert not lint_netlist(adder()).by_rule("output-bus-shape")


class TestNetName:
    def test_detects_keyword_net(self):
        nl = adder()
        nl.add_gate(Op.AND, ("A[0]", "B[0]"), output="assign")
        diags = lint_netlist(nl).by_rule("net-name")
        assert any("keyword" in d.message and d.net == "assign" for d in diags)

    def test_detects_unemittable_net(self):
        nl = adder()
        nl.add_gate(Op.AND, ("A[0]", "B[0]"), output="bad-name")
        diags = lint_netlist(nl).by_rule("net-name")
        assert any(d.net == "bad-name" for d in diags)

    def test_detects_keyword_module_name(self):
        # "module" passes the identifier regex, so the constructor accepts
        # it — only lint knows it collides with a Verilog keyword.
        nl = Netlist("module")
        nl.set_output_bus("S", [nl.const(0)])
        diags = lint_netlist(nl).by_rule("net-name")
        assert any("module name" in d.message for d in diags)

    def test_bus_bit_names_are_exempt(self):
        assert not lint_netlist(adder()).by_rule("net-name")


class TestFanoutOutlier:
    def test_detects_high_fanout(self):
        nl = adder()
        hub = nl.add_gate(Op.AND, ("A[0]", "B[0]"))
        sinks = [nl.add_gate(Op.NOT, (hub,)) for _ in range(17)]
        nl.output_buses["S"] = sinks  # keep them observable
        diags = lint_netlist(nl).by_rule("fanout-outlier")
        assert [d.net for d in diags] == [hub]
        assert diags[0].data["fanout"] == 17
        assert diags[0].severity is Severity.INFO

    def test_clean_at_limit(self):
        nl = adder()
        hub = nl.add_gate(Op.AND, ("A[0]", "B[0]"))
        for _ in range(16):
            nl.add_gate(Op.NOT, (hub,))
        assert not lint_netlist(nl).by_rule("fanout-outlier")


class TestGroupLabel:
    def test_detects_group_on_source_gate(self):
        nl = adder()
        gate = nl.gates["A[0]"]
        nl.gates["A[0]"] = dataclasses.replace(gate, group="carry")
        diags = lint_netlist(nl).by_rule("group-label")
        assert any(d.net == "A[0]" and d.data["group"] == "carry"
                   for d in diags)

    def test_detects_whitespace_group(self):
        nl = adder()
        nl.add_gate(Op.AND, ("A[0]", "B[0]"), group="two words")
        diags = lint_netlist(nl).by_rule("group-label")
        assert any("whitespace" in d.message for d in diags)

    def test_clean_on_sane_groups(self):
        nl = adder()
        nl.add_gate(Op.AND, ("A[0]", "B[0]"), group="carry")
        assert not lint_netlist(nl).by_rule("group-label")


# --------------------------------------------------------------------- #
# Builder matrix and Verilog front end
# --------------------------------------------------------------------- #


class TestBuilderMatrix:
    def test_every_builder_is_warning_clean(self):
        for label, netlist in builder_matrix():
            report = lint_netlist(netlist)
            assert report.ok(fail_on=Severity.WARNING), (
                f"{label}:\n{report.format_text()}"
            )

    def test_optimized_builders_are_fully_clean(self):
        for label, netlist in builder_matrix():
            report = lint_netlist(optimize(netlist),
                                  suppress=["fanout-outlier"])
            assert report.ok(fail_on=Severity.INFO), (
                f"{label}:\n{report.format_text()}"
            )


class TestLintVerilog:
    def test_round_trip_is_clean(self):
        report = lint_verilog(to_verilog(optimize(build_rca(8))))
        assert report.ok(fail_on=Severity.INFO)

    def test_parsed_defect_has_source_location(self):
        source = "\n".join([
            "module m (input [3:0] A, input [3:0] B, output [3:0] S);",
            "  wire d;",
            "  assign d = A[0] & B[0];",
            "  assign S[0] = A[0] ^ B[0];",
            "  assign S[1] = A[1];",
            "  assign S[2] = A[2];",
            "  assign S[3] = A[3];",
            "endmodule",
            "",
        ])
        diags = lint_verilog(source).by_rule("dead-logic")
        assert len(diags) == 1
        assert diags[0].location == (3, 3)
        assert "line 3" in diags[0].format()
