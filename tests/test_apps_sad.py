"""Unit tests for the SAD / motion-estimation kernel."""

import numpy as np
import pytest

from repro.adders.rca import RippleCarryAdder
from repro.apps.images import moving_block_pair, natural_image
from repro.apps.sad import motion_search, sad, sad_map
from repro.core.gear import GeArAdder, GeArConfig


class TestSad:
    def test_identical_blocks_zero(self):
        block = natural_image(8, 8, seed=1)
        assert sad(block, block) == 0

    def test_exact_reference(self):
        a = natural_image(8, 8, seed=2)
        b = natural_image(8, 8, seed=3)
        assert sad(a, b) == int(np.abs(a - b).sum())

    def test_exact_adder_matches_reference(self):
        a = natural_image(16, 16, seed=4)
        b = natural_image(16, 16, seed=5)
        assert sad(a, b, RippleCarryAdder(16)) == sad(a, b)

    def test_approximate_below_exact(self):
        a = natural_image(16, 16, seed=6)
        b = natural_image(16, 16, seed=7)
        adder = GeArAdder(GeArConfig(16, 4, 4))
        assert sad(a, b, adder) <= sad(a, b)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            sad(np.zeros((4, 4)), np.zeros((4, 5)))

    def test_overflow_guard(self):
        a = np.full((64, 64), 255, dtype=np.int64)
        b = np.zeros((64, 64), dtype=np.int64)
        with pytest.raises(ValueError, match="overflow"):
            sad(a, b, RippleCarryAdder(16))


class TestSadMap:
    def test_zero_displacement_minimises_identical_frames(self):
        frame = natural_image(32, 32, seed=8)
        scores = sad_map(frame, frame, origin=(8, 8), block=8, search=3)
        assert scores[3, 3] == 0
        assert scores.min() == 0

    def test_out_of_frame_candidates_sentinel(self):
        frame = natural_image(16, 16, seed=9)
        scores = sad_map(frame, frame, origin=(0, 0), block=8, search=2)
        assert scores[0, 0] == np.iinfo(np.int64).max  # dy=-2, dx=-2

    def test_block_bounds_checked(self):
        frame = natural_image(8, 8, seed=10)
        with pytest.raises(ValueError):
            sad_map(frame, frame, origin=(4, 4), block=8, search=1)


class TestMotionSearch:
    def test_finds_known_shift_exact(self):
        ref, frame = moving_block_pair(48, 48, shift=(2, 3), seed=11)
        mv = motion_search(frame, ref, origin=(16, 16), block=16, search=4)
        assert mv == (2, 3)

    def test_accurate_gear_finds_same_vector(self):
        ref, frame = moving_block_pair(48, 48, shift=(2, 3), seed=12)
        adder = GeArAdder(GeArConfig(16, 4, 8))
        mv = motion_search(frame, ref, origin=(16, 16), block=16, search=4,
                           adder=adder)
        assert mv == (2, 3)

    def test_deterministic_tie_break(self):
        frame = np.zeros((16, 16), dtype=np.int64)
        mv = motion_search(frame, frame, origin=(4, 4), block=4, search=2)
        assert mv == (0, 0)  # all-zero scores: smallest displacement wins
