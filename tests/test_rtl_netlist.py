"""Unit tests for repro.rtl.gates and repro.rtl.netlist."""

import pytest

from repro.rtl.gates import Gate, Op
from repro.rtl.netlist import Netlist, bus_net


class TestGate:
    def test_arity_enforced_fixed(self):
        with pytest.raises(ValueError):
            Gate(output="x", op=Op.NOT, inputs=("a", "b"))

    def test_arity_enforced_variadic(self):
        with pytest.raises(ValueError):
            Gate(output="x", op=Op.AND, inputs=("a",))

    def test_mux_needs_three(self):
        with pytest.raises(ValueError):
            Gate(output="x", op=Op.MUX, inputs=("s", "a"))

    def test_source_classification(self):
        assert Gate(output="x", op=Op.INPUT).is_source
        assert Gate(output="y", op=Op.CONST0).is_source
        assert not Gate(output="z", op=Op.NOT, inputs=("x",)).is_source


class TestNetlistConstruction:
    def test_bus_net_naming(self):
        assert bus_net("A", 3) == "A[3]"

    def test_input_bus_creates_nets(self):
        nl = Netlist("t")
        nets = nl.add_input_bus("A", 4)
        assert nets == ["A[0]", "A[1]", "A[2]", "A[3]"]
        assert all(n in nl.gates for n in nets)

    def test_duplicate_input_bus_rejected(self):
        nl = Netlist("t")
        nl.add_input_bus("A", 2)
        with pytest.raises(ValueError):
            nl.add_input_bus("A", 2)

    def test_undriven_input_rejected(self):
        nl = Netlist("t")
        with pytest.raises(KeyError):
            nl.and_("nothere", "alsonothere")

    def test_double_drive_rejected(self):
        nl = Netlist("t")
        a = nl.add_input_bus("A", 1)
        nl.add_gate(Op.NOT, (a[0],), output="x")
        with pytest.raises(ValueError):
            nl.add_gate(Op.NOT, (a[0],), output="x")

    def test_const_shared(self):
        nl = Netlist("t")
        assert nl.const(1) == nl.const(1)
        assert nl.const(0) != nl.const(1)
        with pytest.raises(ValueError):
            nl.const(2)

    def test_invalid_name(self):
        with pytest.raises(ValueError):
            Netlist("bad name!")

    def test_leading_digit_name_rejected(self):
        # Regression: the old str.isalnum check accepted "1bad", which the
        # Verilog emitter turned into an illegal module name.
        with pytest.raises(ValueError, match="identifier"):
            Netlist("1bad")

    def test_non_ascii_name_rejected(self):
        with pytest.raises(ValueError, match="identifier"):
            Netlist("addér")

    def test_underscore_names_accepted(self):
        assert Netlist("_ok1").name == "_ok1"
        assert Netlist("ok_2_").name == "ok_2_"

    def test_output_bus_requires_driven_nets(self):
        nl = Netlist("t")
        with pytest.raises(KeyError):
            nl.set_output_bus("S", ["ghost"])

    def test_output_bus_must_be_nonempty(self):
        nl = Netlist("t")
        with pytest.raises(ValueError):
            nl.set_output_bus("S", [])

    def test_duplicate_output_bus_rejected(self):
        nl = Netlist("t")
        a = nl.add_input_bus("A", 1)
        nl.set_output_bus("S", a)
        with pytest.raises(ValueError):
            nl.set_output_bus("S", a)


class TestNetlistQueries:
    def _small(self):
        nl = Netlist("t")
        a = nl.add_input_bus("A", 2)
        x = nl.xor(a[0], a[1])
        y = nl.and_(a[0], x)
        nl.set_output_bus("S", [y])
        return nl, a, x, y

    def test_topological_order_sources_first(self):
        nl, a, x, y = self._small()
        order = [g.output for g in nl.topological_order()]
        assert order.index(a[0]) < order.index(x) < order.index(y)
        assert len(order) == len(nl.gates)

    def test_fanout_counts(self):
        nl, a, x, y = self._small()
        counts = nl.fanout_counts()
        assert counts[a[0]] == 2  # feeds xor and and
        assert counts[x] == 1
        assert counts[y] == 0

    def test_stats(self):
        nl, *_ = self._small()
        stats = nl.stats()
        assert stats["gates"] == 2
        assert stats["inputs"] == 2
        assert stats["outputs"] == 1
        assert stats["op_and"] == 1
        assert stats["op_xor"] == 1

    def test_half_adder_truth(self):
        from repro.rtl.sim import simulate

        nl = Netlist("t")
        a = nl.add_input_bus("A", 1)
        b = nl.add_input_bus("B", 1)
        s, c = nl.half_adder(a[0], b[0])
        nl.set_output_bus("S", [s, c])
        for av in (0, 1):
            for bv in (0, 1):
                vals = simulate(nl, {"A": av, "B": bv})
                assert int(vals[s]) == (av ^ bv)
                assert int(vals[c]) == (av & bv)

    def test_full_adder_truth(self):
        from repro.rtl.sim import simulate

        nl = Netlist("t")
        a = nl.add_input_bus("A", 1)
        b = nl.add_input_bus("B", 1)
        cin = nl.add_input_bus("C", 1)
        s, c = nl.full_adder(a[0], b[0], cin[0])
        nl.set_output_bus("S", [s, c])
        for av in (0, 1):
            for bv in (0, 1):
                for cv in (0, 1):
                    vals = simulate(nl, {"A": av, "B": bv, "C": cv})
                    total = av + bv + cv
                    assert int(vals[s]) == total & 1
                    assert int(vals[c]) == total >> 1

    def test_input_nets_helper(self):
        nl = Netlist("t")
        nl.add_input_bus("A", 3)
        assert nl.input_nets("A") == ["A[0]", "A[1]", "A[2]"]
