"""Unit tests for the LOA baseline [12]."""

import numpy as np
import pytest

from repro.adders.loa import LowerPartOrAdder
from tests.conftest import random_pairs


class TestLoa:
    def test_zero_approx_is_exact(self):
        adder = LowerPartOrAdder(8, 0)
        a, b = random_pairs(8, 500, seed=1)
        np.testing.assert_array_equal(adder.add(a, b), a + b)
        assert adder.is_exact

    def test_low_bits_are_or(self):
        adder = LowerPartOrAdder(8, 4)
        assert adder.add(0b0101, 0b0011) & 0xF == 0b0111

    def test_carry_in_from_top_approx_bit(self):
        adder = LowerPartOrAdder(8, 4)
        # both operands have bit 3 set -> carry into the exact part
        got = adder.add(0b00001000, 0b00001000)
        assert got >> 4 == 1

    def test_upper_part_exact_given_carry(self):
        adder = LowerPartOrAdder(8, 2)
        a, b = random_pairs(8, 5000, seed=2)
        approx = np.asarray(adder.add(a, b))
        cin = ((a >> 1) & (b >> 1)) & 1
        np.testing.assert_array_equal(approx >> 2, (a >> 2) + (b >> 2) + cin)

    def test_error_bounded(self):
        adder = LowerPartOrAdder(10, 5)
        a, b = random_pairs(10, 20000, seed=3)
        ed = np.abs(np.asarray(adder.add(a, b)) - (a + b))
        assert ed.max() <= adder.max_error_distance()

    def test_more_approx_bits_more_error(self):
        a, b = random_pairs(10, 20000, seed=4)
        meds = []
        for bits in (1, 3, 5, 7):
            adder = LowerPartOrAdder(10, bits)
            meds.append(float(np.mean(np.abs(np.asarray(adder.add(a, b)) - (a + b)))))
        assert meds == sorted(meds)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LowerPartOrAdder(8, 8)
        with pytest.raises(ValueError):
            LowerPartOrAdder(8, -1)
