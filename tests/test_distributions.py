"""Unit tests for repro.utils.distributions."""

import numpy as np
import pytest

from repro.utils.distributions import (
    ExponentialOperands,
    GaussianOperands,
    ImagePatchOperands,
    SparseOperands,
    UniformOperands,
)


class TestUniform:
    def test_range(self):
        a, b = UniformOperands(8).sample_pairs(5000, seed=1)
        assert a.min() >= 0 and a.max() <= 255
        assert b.min() >= 0 and b.max() <= 255

    def test_determinism(self):
        d = UniformOperands(12)
        a1, b1 = d.sample_pairs(100, seed=7)
        a2, b2 = d.sample_pairs(100, seed=7)
        np.testing.assert_array_equal(a1, a2)
        np.testing.assert_array_equal(b1, b2)

    def test_different_seeds_differ(self):
        d = UniformOperands(12)
        a1, _ = d.sample_pairs(100, seed=1)
        a2, _ = d.sample_pairs(100, seed=2)
        assert not np.array_equal(a1, a2)

    def test_bit_balance(self):
        # Every bit should be ~50% ones for uniform operands.
        a, _ = UniformOperands(10).sample_pairs(20000, seed=3)
        for i in range(10):
            density = np.mean((a >> i) & 1)
            assert 0.46 < density < 0.54

    def test_invalid_width(self):
        with pytest.raises((ValueError, TypeError)):
            UniformOperands(0)


class TestGaussian:
    def test_range_and_concentration(self):
        d = GaussianOperands(8, mean_fraction=0.5, std_fraction=0.1)
        a, b = d.sample_pairs(5000, seed=1)
        assert a.min() >= 0 and a.max() <= 255
        assert 100 < a.mean() < 155
        assert a.std() < 40

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GaussianOperands(8, mean_fraction=1.5)
        with pytest.raises(ValueError):
            GaussianOperands(8, std_fraction=0.0)


class TestExponential:
    def test_small_values_dominate(self):
        a, _ = ExponentialOperands(8, scale_fraction=0.05).sample_pairs(5000, seed=2)
        assert np.median(a) < 32

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            ExponentialOperands(8, scale_fraction=-1.0)


class TestSparse:
    def test_density_extremes(self):
        zeros, _ = SparseOperands(8, one_density=0.0).sample_pairs(100, seed=1)
        assert zeros.max() == 0
        ones, _ = SparseOperands(8, one_density=1.0).sample_pairs(100, seed=1)
        assert ones.min() == 255

    def test_half_density_is_uniform_like(self):
        a, _ = SparseOperands(8, one_density=0.5).sample_pairs(20000, seed=4)
        assert 110 < a.mean() < 145

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            SparseOperands(8, one_density=1.1)


class TestImagePatch:
    def test_samples_come_from_image(self):
        image = np.arange(64).reshape(8, 8)
        d = ImagePatchOperands(8, image)
        a, b = d.sample_pairs(500, seed=5)
        assert set(np.unique(a)) <= set(range(64))
        # b is always the right neighbour of a.
        np.testing.assert_array_equal(b, a + 1)

    def test_rejects_out_of_range_image(self):
        with pytest.raises(ValueError):
            ImagePatchOperands(4, np.array([[0, 255]]))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            ImagePatchOperands(8, np.arange(10))
