"""Unit tests for the per-bit-statistics error model."""

import numpy as np
import pytest

from repro.core.bitwise_model import (
    BitStatistics,
    error_probability_bitwise,
    estimate_bit_statistics,
    predict_error_rate,
    statistics_from_distribution,
)
from repro.core.error_model import error_probability_exact
from repro.core.gear import GeArAdder, GeArConfig
from repro.engine import EvalRequest, evaluate
from repro.utils.distributions import GaussianOperands, SparseOperands, UniformOperands


def _measured_error_rate(adder, samples, seed, distribution):
    request = EvalRequest(adder=adder, mode="monte_carlo", samples=samples,
                          seed=seed, distribution=distribution)
    return evaluate(request).stats.error_rate


class TestBitStatistics:
    def test_uniform_factory(self):
        stats = BitStatistics.uniform(8)
        assert stats.width == 8
        assert all(g == 0.25 for g in stats.generate)
        assert all(p == 0.5 for p in stats.propagate)

    def test_validation(self):
        with pytest.raises(ValueError):
            BitStatistics(generate=(0.9,), propagate=(0.5,))  # g+p > 1
        with pytest.raises(ValueError):
            BitStatistics(generate=(0.5, 0.5), propagate=(0.5,))
        with pytest.raises(ValueError):
            BitStatistics(generate=(-0.1,), propagate=(0.5,))

    def test_estimation_from_samples(self):
        a = np.array([0b11, 0b01, 0b10, 0b00], dtype=np.int64)
        b = np.array([0b11, 0b10, 0b10, 0b00], dtype=np.int64)
        stats = estimate_bit_statistics(a, b, 2)
        # bit 0: pairs (1,1),(1,0),(0,0),(0,0) -> g=1/4, p=1/4
        assert stats.generate[0] == pytest.approx(0.25)
        assert stats.propagate[0] == pytest.approx(0.25)

    def test_estimation_validates(self):
        with pytest.raises(ValueError):
            estimate_bit_statistics(np.array([1]), np.array([1, 2]), 4)

    def test_uniform_distribution_estimates_quarter_half(self):
        stats = statistics_from_distribution(UniformOperands(10), samples=200_000)
        for g, p in zip(stats.generate, stats.propagate):
            assert g == pytest.approx(0.25, abs=0.01)
            assert p == pytest.approx(0.5, abs=0.01)


class TestBitwiseProbability:
    def test_uniform_stats_reproduce_paper_model(self):
        for (n, r, p) in [(16, 2, 2), (16, 4, 4), (12, 4, 4), (20, 5, 5)]:
            cfg = GeArConfig(n, r, p)
            assert error_probability_bitwise(
                cfg, BitStatistics.uniform(n)
            ) == pytest.approx(error_probability_exact(cfg), abs=1e-12)

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            error_probability_bitwise(GeArConfig(16, 4, 4),
                                      BitStatistics.uniform(8))

    def test_exact_config_zero(self):
        assert error_probability_bitwise(
            GeArConfig(8, 4, 4), BitStatistics.uniform(8)
        ) == 0.0

    def test_zero_propagate_means_no_errors(self):
        # If no bit ever propagates, speculation cannot miss.
        stats = BitStatistics(generate=(0.5,) * 16, propagate=(0.0,) * 16)
        assert error_probability_bitwise(GeArConfig(16, 4, 4), stats) == 0.0

    def test_all_propagate_makes_error_generate_bound(self):
        # All-propagate operands never generate, so no carry ever exists.
        stats = BitStatistics(generate=(0.0,) * 16, propagate=(1.0,) * 16)
        assert error_probability_bitwise(GeArConfig(16, 4, 4), stats) == 0.0


class TestPredictions:
    @pytest.mark.parametrize("dist_factory,abs_tol", [
        (lambda: SparseOperands(16, one_density=0.25), 0.01),
        (lambda: SparseOperands(16, one_density=0.75), 0.01),
        (lambda: GaussianOperands(16), 0.015),
    ])
    def test_prediction_close_to_measurement(self, dist_factory, abs_tol):
        cfg = GeArConfig(16, 2, 2)
        dist = dist_factory()
        predicted = predict_error_rate(cfg, dist, samples=100_000, seed=5)
        measured = _measured_error_rate(
            GeArAdder(cfg), samples=100_000, seed=6, distribution=dist
        )
        assert predicted == pytest.approx(measured, abs=abs_tol)

    def test_prediction_beats_paper_model_on_sparse_data(self):
        from repro.core.error_model import error_probability

        cfg = GeArConfig(16, 2, 2)
        dist = SparseOperands(16, one_density=0.25)
        measured = _measured_error_rate(
            GeArAdder(cfg), samples=100_000, seed=7, distribution=dist
        )
        bitwise_gap = abs(predict_error_rate(cfg, dist, seed=8) - measured)
        paper_gap = abs(error_probability(cfg) - measured)
        assert bitwise_gap < paper_gap / 10
