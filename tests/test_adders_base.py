"""Unit tests for the AdderModel interface and windowed machinery."""

import numpy as np
import pytest

from repro.adders.base import (
    SpeculativeWindow,
    WindowedSpeculativeAdder,
    validate_window_cover,
)
from repro.adders.rca import RippleCarryAdder
from repro.adders.cla import CarryLookaheadAdder
from tests.conftest import random_pairs


class TestExactAdders:
    @pytest.mark.parametrize("cls", [RippleCarryAdder, CarryLookaheadAdder])
    def test_always_exact(self, cls):
        adder = cls(12)
        a, b = random_pairs(12, 1000, seed=2)
        np.testing.assert_array_equal(adder.add(a, b), a + b)
        assert adder.is_exact
        assert adder.error_probability() == 0.0

    def test_scalar_and_array_agree(self):
        adder = RippleCarryAdder(8)
        a, b = random_pairs(8, 50, seed=3)
        vec = np.asarray(adder.add(a, b))
        for i in range(50):
            assert adder.add(int(a[i]), int(b[i])) == vec[i]

    def test_out_width(self):
        assert RippleCarryAdder(16).out_width == 17


class TestOperandValidation:
    def setup_method(self):
        self.adder = RippleCarryAdder(8)

    def test_negative_scalar_rejected(self):
        with pytest.raises(ValueError):
            self.adder.add(-1, 0)

    def test_oversized_scalar_rejected(self):
        with pytest.raises(ValueError):
            self.adder.add(256, 0)

    def test_negative_array_rejected(self):
        with pytest.raises(ValueError):
            self.adder.add(np.array([-1]), np.array([0]))

    def test_float_array_rejected(self):
        with pytest.raises(TypeError):
            self.adder.add(np.array([1.0]), np.array([0]))

    def test_float_scalar_rejected(self):
        with pytest.raises(TypeError):
            self.adder.add(1.5, 0)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            self.adder.add(True, 0)

    def test_error_distance(self):
        assert self.adder.error_distance(3, 4) == 0


class TestSpeculativeWindow:
    def test_properties(self):
        w = SpeculativeWindow(low=4, high=11, result_low=8, result_high=11)
        assert w.length == 8
        assert w.prediction_bits == 4
        assert w.result_bits == 4

    def test_inconsistent_rejected(self):
        with pytest.raises(ValueError):
            SpeculativeWindow(low=4, high=3, result_low=4, result_high=3)
        with pytest.raises(ValueError):
            SpeculativeWindow(low=4, high=11, result_low=2, result_high=11)

    def test_cover_validation_gap(self):
        windows = [
            SpeculativeWindow(0, 3, 0, 3),
            SpeculativeWindow(2, 7, 6, 7),  # leaves bits 4..5 undriven
        ]
        with pytest.raises(ValueError):
            validate_window_cover(windows, 8)

    def test_cover_validation_short(self):
        windows = [SpeculativeWindow(0, 3, 0, 3)]
        with pytest.raises(ValueError):
            validate_window_cover(windows, 8)

    def test_cover_validation_overflow(self):
        windows = [SpeculativeWindow(0, 8, 0, 8)]
        with pytest.raises(ValueError):
            validate_window_cover(windows, 8)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            validate_window_cover([], 8)


class TestWindowedAdder:
    def _adder(self):
        # Hand-built GeAr(8,2,2)-equivalent windows.
        windows = [
            SpeculativeWindow(0, 3, 0, 3),
            SpeculativeWindow(2, 5, 4, 5),
            SpeculativeWindow(4, 7, 6, 7),
        ]
        return WindowedSpeculativeAdder(8, "hand", windows)

    def test_single_window_is_exact(self):
        adder = WindowedSpeculativeAdder(
            8, "exact", [SpeculativeWindow(0, 7, 0, 7)]
        )
        a, b = random_pairs(8, 200, seed=4)
        np.testing.assert_array_equal(adder.add(a, b), a + b)

    def test_never_exceeds_exact(self):
        adder = self._adder()
        a, b = random_pairs(8, 2000, seed=5)
        assert np.all(np.asarray(adder.add(a, b)) <= a + b)

    def test_max_error_distance_bounds_exhaustive_worst_case(self):
        adder = self._adder()
        bound = adder.max_error_distance()
        assert bound == (1 << 4) + (1 << 6)
        size = 256
        vals = np.arange(size, dtype=np.int64)
        a = np.repeat(vals, size)
        b = np.tile(vals, size)
        ed = (a + b) - np.asarray(adder.add(a, b))
        assert ed.min() >= 0
        assert ed.max() <= bound
        # Simultaneous misses wrap-cancel here, so the realised worst case
        # is a single top-window miss.
        assert ed.max() == 1 << 6

    def test_detection_flags_predict_errors(self):
        adder = self._adder()
        a, b = random_pairs(8, 2000, seed=6)
        flags = adder.detection_flags(a, b)
        any_flag = np.zeros(a.shape, dtype=bool)
        for f in flags[1:]:
            any_flag |= np.asarray(f).astype(bool)
        erroneous = np.asarray(adder.add(a, b)) != a + b
        # Every erroneous addition must raise at least one detector flag.
        assert np.all(any_flag[erroneous])

    def test_detection_flags_scalar(self):
        adder = self._adder()
        flags = adder.detection_flags(0b11111111, 0b00000001)
        assert flags[0] == 0
        assert all(isinstance(f, int) for f in flags)
