"""Unit tests for the greedy counterexample shrinker."""

import pytest

from repro.verify.shrink import (
    shrink_counterexample,
    shrink_operands,
    shrink_width,
)


class TestShrinkOperands:
    def test_requires_failing_start(self):
        with pytest.raises(ValueError):
            shrink_operands(lambda a, b: False, 5, 9)

    def test_minimises_to_smallest_witness(self):
        # Failure: bit 3 set in a AND bit 1 set in b.  Minimal: (8, 2).
        fails = lambda a, b: bool((a >> 3) & 1) and bool((b >> 1) & 1)
        assert shrink_operands(fails, 0b11111011, 0b1110111) == (8, 2)

    def test_always_failing_shrinks_to_zero(self):
        assert shrink_operands(lambda a, b: True, 123, 200) == (0, 0)

    def test_keeps_pair_failing(self):
        fails = lambda a, b: (a + b) % 7 == 3
        a, b = shrink_operands(fails, 57, 100)
        assert fails(a, b)
        assert a + b <= 157

    def test_halving_move_reduces_when_bit_clears_do_not(self):
        # Failure needs a >= 4: clearing the top bit of 4 (=0) passes, but
        # the halving candidates keep probing; final witness is minimal
        # under the move set.
        fails = lambda a, b: a >= 4
        a, b = shrink_operands(fails, 7, 3)
        assert a >= 4 and b == 0


class TestShrinkWidth:
    def test_finds_narrowest_failing_width(self):
        def probe(width):
            return (1, 1) if width >= 3 else None

        assert shrink_width(probe, 8) == (3, (1, 1))

    def test_skips_undefined_widths(self):
        def probe(width):
            if width % 2:
                raise ValueError("family undefined at odd widths")
            return (0, 1) if width >= 4 else None

        assert shrink_width(probe, 8) == (4, (0, 1))

    def test_falls_back_to_original_width(self):
        assert shrink_width(lambda w: None, 6) == (6, None)


class TestShrinkCounterexample:
    def test_two_axis_shrink(self):
        # Fails whenever bit 2 of a is set, at any width >= 3.
        def fails_at(width):
            if width < 3:
                return None
            return lambda a, b: bool((a >> 2) & 1)

        cex = shrink_counterexample(0b10110101, 0b1111, 8, fails_at)
        assert (cex.width, cex.a, cex.b) == (3, 4, 0)

    def test_sweeps_tiny_widths_for_fresh_witness(self):
        # The original pair (7, 0) masks to a passing pair at width 2, but
        # the exhaustive tiny-width sweep still finds the (2, 1) witness.
        def fails_at(width):
            if width < 2:
                return None
            return lambda a, b: a == 2 and b == 1

        cex = shrink_counterexample(7, 0, 8, fails_at)
        assert (cex.width, cex.a, cex.b) == (2, 2, 1)

    def test_detail_is_recorded(self):
        cex = shrink_counterexample(
            1, 0, 4, lambda w: (lambda a, b: a == 1), detail="unit")
        assert cex.detail == "unit"
        assert cex.to_json() == {"a": 1, "b": 0, "width": 1, "detail": "unit"}
