"""Unit tests for the Verilog testbench generator."""

import re

import pytest

from repro.rtl.builders import build_gear, build_rca
from repro.rtl.testbench import generate_testbench


class TestGenerateTestbench:
    def test_structure(self):
        tb = generate_testbench(build_rca(8), vectors=10)
        assert tb.startswith("`timescale")
        assert "module rca_tb;" in tb
        assert "rca dut (.A(a), .B(b), .S(s_dut));" in tb
        assert "endmodule" in tb
        assert "$finish;" in tb
        assert 'PASS' in tb and 'FAIL' in tb

    def test_vector_count(self):
        tb = generate_testbench(build_rca(8), vectors=25)
        checks = re.findall(r"^\s*check\(", tb, flags=re.M)
        # corners × 3 b-patterns + 25 random
        assert len(checks) >= 25 + 8

    def test_expected_values_are_true_sums(self):
        tb = generate_testbench(build_rca(4), vectors=5, seed=9)
        for match in re.finditer(
            r"check\(4'h([0-9a-f]+), 4'h([0-9a-f]+), 5'h([0-9a-f]+)\);", tb
        ):
            a, b, s = (int(g, 16) for g in match.groups())
            assert s == a + b

    def test_err_bus_included_for_gear(self):
        tb = generate_testbench(build_gear(12, 4, 4), vectors=5)
        assert "err_dut" in tb
        assert ".ERR(err_dut)" in tb

    def test_gear_expected_matches_model(self):
        from repro.core.gear import GeArAdder, GeArConfig

        adder = GeArAdder(GeArConfig(8, 2, 2))
        tb = generate_testbench(adder.build_netlist(), vectors=10, seed=3)
        pattern = r"check\(8'h([0-9a-f]+), 8'h([0-9a-f]+), (\d+)'h([0-9a-f]+), 9'h([0-9a-f]+)\);"
        found = 0
        for match in re.finditer(pattern, tb):
            a = int(match.group(1), 16)
            b = int(match.group(2), 16)
            s = int(match.group(5), 16)
            assert s == adder.add(a, b)
            found += 1
        assert found >= 10

    def test_custom_name(self):
        tb = generate_testbench(build_rca(4), vectors=2, tb_name="mytb")
        assert "module mytb;" in tb

    def test_requires_ab_buses(self):
        from repro.rtl.builders import build_gear_corrected

        with pytest.raises(ValueError):
            generate_testbench(build_gear_corrected(8, 2, 2))

    def test_vector_count_validated(self):
        with pytest.raises((ValueError, TypeError)):
            generate_testbench(build_rca(4), vectors=0)
