"""Tests for in-flight request coalescing (repro.serve.coalesce).

Covers the leader/follower contract (one computation per concurrent
key, shared payload, hit/miss accounting), key release after completion
and after failure, error propagation to every waiter, None-key bypass,
and cancellation of a follower leaving the shared computation alive.
"""

import asyncio

import pytest

from repro.serve.coalesce import Coalescer


def run(coro):
    return asyncio.run(coro)


def test_distinct_keys_compute_independently():
    async def scenario():
        coalescer = Coalescer()
        calls = []

        async def compute(tag):
            calls.append(tag)
            return tag

        r1, c1 = await coalescer.run("a", lambda: compute("a"))
        r2, c2 = await coalescer.run("b", lambda: compute("b"))
        assert (r1, r2) == ("a", "b")
        assert not c1 and not c2
        assert calls == ["a", "b"]
        assert coalescer.hits == 0
        assert coalescer.misses == 2

    run(scenario())


def test_concurrent_same_key_runs_once():
    async def scenario():
        coalescer = Coalescer()
        calls = 0
        gate = asyncio.Event()

        async def compute():
            nonlocal calls
            calls += 1
            await gate.wait()
            return "payload"

        tasks = [asyncio.ensure_future(coalescer.run("k", compute))
                 for _ in range(8)]
        await asyncio.sleep(0)  # let every waiter reach the coalescer
        assert coalescer.inflight == 1
        gate.set()
        results = await asyncio.gather(*tasks)
        assert calls == 1
        assert all(payload == "payload" for payload, _ in results)
        assert sum(1 for _, coalesced in results if coalesced) == 7
        assert coalescer.hits == 7
        assert coalescer.misses == 1
        assert coalescer.inflight == 0

    run(scenario())


def test_sequential_same_key_recomputes():
    """Coalescing is in-flight only — completion releases the key."""
    async def scenario():
        coalescer = Coalescer()
        calls = 0

        async def compute():
            nonlocal calls
            calls += 1
            return calls

        first, _ = await coalescer.run("k", compute)
        second, coalesced = await coalescer.run("k", compute)
        assert (first, second) == (1, 2)
        assert not coalesced

    run(scenario())


def test_none_key_always_computes():
    async def scenario():
        coalescer = Coalescer()
        calls = 0

        async def compute():
            nonlocal calls
            calls += 1
            return calls

        await asyncio.gather(coalescer.run(None, compute),
                             coalescer.run(None, compute))
        assert calls == 2
        assert coalescer.hits == 0

    run(scenario())


def test_failure_propagates_to_every_waiter_and_releases_key():
    async def scenario():
        coalescer = Coalescer()
        gate = asyncio.Event()

        async def boom():
            await gate.wait()
            raise RuntimeError("worker crashed")

        tasks = [asyncio.ensure_future(coalescer.run("k", boom))
                 for _ in range(3)]
        await asyncio.sleep(0)
        gate.set()
        results = await asyncio.gather(*tasks, return_exceptions=True)
        assert all(isinstance(r, RuntimeError) for r in results)
        assert coalescer.inflight == 0

        # a retry after the failure computes afresh
        async def ok():
            return "recovered"

        payload, coalesced = await coalescer.run("k", ok)
        assert payload == "recovered" and not coalesced

    run(scenario())


def test_cancelled_follower_does_not_kill_the_computation():
    async def scenario():
        coalescer = Coalescer()
        gate = asyncio.Event()

        async def compute():
            await gate.wait()
            return "done"

        leader = asyncio.ensure_future(coalescer.run("k", compute))
        await asyncio.sleep(0)
        follower = asyncio.ensure_future(coalescer.run("k", compute))
        await asyncio.sleep(0)
        follower.cancel()
        with pytest.raises(asyncio.CancelledError):
            await follower
        gate.set()
        payload, coalesced = await leader
        assert payload == "done" and not coalesced

    run(scenario())
