"""Unit tests for Wilson confidence intervals."""

import numpy as np
import pytest

from repro.metrics.confidence import (
    Interval,
    estimate_consistent_with,
    required_samples,
    wilson_interval,
)


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        iv = wilson_interval(30, 1000)
        assert 0.03 in iv

    def test_zero_successes(self):
        iv = wilson_interval(0, 100)
        assert iv.lower == 0.0
        assert iv.upper > 0.0  # zero observed != zero probability

    def test_all_successes(self):
        iv = wilson_interval(100, 100)
        assert iv.upper == 1.0
        assert iv.lower < 1.0

    def test_narrows_with_samples(self):
        narrow = wilson_interval(300, 10_000)
        wide = wilson_interval(3, 100)
        assert narrow.width < wide.width

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 4)
        with pytest.raises(ValueError):
            wilson_interval(1, 10, z=0)
        with pytest.raises((ValueError, TypeError)):
            wilson_interval(-1, 10)

    def test_coverage_simulation(self):
        # ~95 % of intervals must contain the true probability.
        rng = np.random.default_rng(1)
        p_true = 0.03
        hits = 0
        runs = 400
        for _ in range(runs):
            successes = rng.binomial(2000, p_true)
            if p_true in wilson_interval(int(successes), 2000):
                hits += 1
        assert hits / runs > 0.90


class TestConsistency:
    def test_table3_protocol_is_consistent(self):
        # The paper's (12,4,4) row: simulated 2.948 % over 10 000 patterns
        # vs model 2.9297 % — statistically indistinguishable.
        assert estimate_consistent_with(0.02948, 10_000, 0.029297)

    def test_detects_genuine_gaps(self):
        assert not estimate_consistent_with(0.05, 100_000, 0.029297)


class TestRequiredSamples:
    def test_small_probabilities_need_many_samples(self):
        n_small = required_samples(0.0018, 0.1)
        n_large = required_samples(0.03, 0.1)
        assert n_small > n_large
        assert n_small > 100_000  # why 10k patterns are noisy in Table III

    def test_precision_scaling(self):
        assert required_samples(0.03, 0.01) > required_samples(0.03, 0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            required_samples(0.0, 0.1)
        with pytest.raises(ValueError):
            required_samples(0.5, 1.5)
