"""SPEC_CATALOG is the single enumeration both registries derive from.

The historical bug class this file pins down: ``rtl.builders.build_named``
and ``verify/registry.py`` each kept their own hand-written family table,
and the two drifted (different keys, different parameter orderings).  Both
now *enumerate* :data:`repro.spec.catalog.SPEC_CATALOG`, so the sets must
stay identical — and each catalog family must produce the same hardware
whichever door it is reached through.
"""

import numpy as np
import pytest

from repro.rtl.builders import NAMED_BUILDERS, build_named
from repro.spec.catalog import SPEC_CATALOG, catalog_spec, spec_adder
from repro.verify.registry import DEFAULT_WIDTH, default_registry

#: Registry families the IR cannot express (mux-based selection, ETAI's
#: dropped low bits) — the only sanctioned difference between the two
#: enumerations.
NON_SPEC_REGISTRY_KEYS = {"csla", "cska", "etai_half"}

#: Builder aliases that take full parameter lists (e.g. ``gear 12 4 4``)
#: rather than a single width; they sit alongside the catalog keys.
PARAMETERISED_BUILDER_KEYS = {
    "rca", "cla", "ksa", "csla", "cska", "gear", "gear_cla",
    "gear_corrected", "aca1", "aca2", "etaii", "gda", "loa",
}


class TestNoNamingDrift:
    def test_every_catalog_family_is_a_named_builder(self):
        missing = set(SPEC_CATALOG) - set(NAMED_BUILDERS)
        assert not missing, f"builders missing catalog families: {missing}"

    def test_every_catalog_family_is_registered_for_conformance(self):
        missing = set(SPEC_CATALOG) - set(default_registry())
        assert not missing, f"registry missing catalog families: {missing}"

    def test_registry_is_catalog_plus_sanctioned_extras(self):
        assert set(default_registry()) == \
            set(SPEC_CATALOG) | NON_SPEC_REGISTRY_KEYS

    def test_builders_are_catalog_plus_parameterised_aliases(self):
        assert set(NAMED_BUILDERS) == \
            set(SPEC_CATALOG) | PARAMETERISED_BUILDER_KEYS

    def test_registry_descriptions_come_from_the_catalog(self):
        registry = default_registry()
        for key, family in SPEC_CATALOG.items():
            assert registry[key].description == family.description
            assert registry[key].min_width == family.min_width


class TestSameFamilySameHardware:
    @staticmethod
    def _structure(netlist):
        # Everything but the display name (legacy builders keep their
        # historical short names for byte-identical CLI output).
        return repr(sorted(
            (k, v) for k, v in vars(netlist).items() if k != "name"))

    @pytest.mark.parametrize("key", sorted(SPEC_CATALOG))
    def test_builder_and_registry_compile_the_same_netlist(self, key):
        width = max(DEFAULT_WIDTH, SPEC_CATALOG[key].min_width)
        via_builder = build_named(key, width)
        via_model = spec_adder(key, width).build_netlist()
        assert self._structure(via_builder) == self._structure(via_model)

    @pytest.mark.parametrize("key", sorted(SPEC_CATALOG))
    def test_registry_model_carries_the_catalog_fingerprint(self, key):
        width = max(DEFAULT_WIDTH, SPEC_CATALOG[key].min_width)
        model = default_registry()[key](width)
        assert model.fingerprint() == catalog_spec(key, width).fingerprint()


class TestCatalogErrors:
    def test_unknown_key_lists_alternatives(self):
        with pytest.raises(ValueError, match="unknown spec family"):
            catalog_spec("nope", 8)

    def test_below_min_width_raises(self):
        family = SPEC_CATALOG["hetero"]
        with pytest.raises(ValueError, match="needs width >="):
            family(family.min_width - 1)

    def test_models_behave_at_min_width(self):
        # Every family must actually work at its advertised floor.
        for key, family in SPEC_CATALOG.items():
            model = spec_adder(key, family.min_width)
            n = family.min_width
            a = np.arange(1 << min(n, 6), dtype=np.uint64) % (1 << n)
            exact = a + a[::-1]
            approx = model.add(a, a[::-1])
            assert np.all(approx <= exact), key
