"""The headline reproduction assertions: our models vs the paper's numbers.

Each test pins one quantitative claim of the paper to our implementation.
Analytic quantities must match to the paper's printed precision; synthesis
-dependent quantities (delay, LUTs) must match in ordering and rough ratio.
"""

import numpy as np
import pytest

from repro.core.error_model import error_probability
from repro.core.gear import GeArAdder, GeArConfig
from repro.paperdata import (
    TABLE2_GEAR,
    TABLE3_ERROR_PROBABILITY,
    TABLE4_GEAR,
    TABLE4_OTHERS,
)
from repro.timing.latency import execution_timings


class TestTable3Analytic:
    @pytest.mark.parametrize("key", list(TABLE3_ERROR_PROBABILITY))
    def test_error_probability_matches_printed_digits(self, key):
        n, r, p = key
        ref = TABLE3_ERROR_PROBABILITY[key]
        cfg = GeArConfig(n, r, p, allow_partial=(n - r - p) % r != 0)
        assert cfg.k == ref["k"]
        ours = error_probability(cfg) * 100
        assert ours == pytest.approx(ref["analytic_pct"], abs=5e-5 * 100)

    def test_paper_k_typo_documented(self):
        # Table III prints k=5 for (48,8,16); Eq. 1 gives 4.
        assert TABLE3_ERROR_PROBABILITY[(48, 8, 16)]["paper_k"] == 5
        assert GeArConfig(48, 8, 16).k == 4


class TestTable4Analytic:
    @pytest.mark.parametrize("key", list(TABLE4_GEAR))
    def test_gear_error_probabilities(self, key):
        r, p = key
        ref = TABLE4_GEAR[key]
        cfg = GeArConfig(20, r, p, allow_partial=(20 - r - p) % r != 0)
        assert error_probability(cfg) == pytest.approx(ref["p_err"], rel=1e-4)

    def test_baseline_probabilities(self):
        # ACA-I(L=10) == GeAr(1,9); ACA-II/ETAII(L=10) == GeAr(5,5).
        assert error_probability(GeArConfig(20, 1, 9)) == pytest.approx(
            TABLE4_OTHERS["ACA-I"]["p_err"], rel=1e-4)
        assert error_probability(GeArConfig(20, 5, 5)) == pytest.approx(
            TABLE4_OTHERS["ETAII"]["p_err"], rel=1e-4)

    @pytest.mark.parametrize("key", list(TABLE4_GEAR))
    def test_timing_columns(self, key):
        ref = TABLE4_GEAR[key]
        cfg = GeArConfig(20, key[0], key[1],
                         allow_partial=(20 - sum(key)) % key[0] != 0)
        timing = execution_timings("x", ref["delay_ns"], ref["p_err"], cfg.k)
        for ours, theirs in [
            (timing.approximate_s, ref["approx_s"]),
            (timing.best_s, ref["best_s"]),
            (timing.average_s, ref["average_s"]),
            (timing.worst_s, ref["worst_s"]),
        ]:
            assert ours == pytest.approx(theirs, rel=1e-4)


class TestTable2Analytic:
    def test_ned_paper_convention_reference_entries(self):
        # MED / 2^(N-R) reproduces the paper's NED for these entries.
        from repro.core.error_model import mean_error_distance_analytic

        matching = [(1, 3), (1, 4), (1, 5), (1, 6), (2, 2), (2, 4)]
        for (r, p) in matching:
            strict = (8 - r - p) % r == 0
            cfg = GeArConfig(8, r, p, allow_partial=not strict)
            ned = mean_error_distance_analytic(cfg) / 2 ** (8 - r)
            assert ned == pytest.approx(
                TABLE2_GEAR[(r, p)]["ned"], abs=2e-4
            ), (r, p)


class TestFig7QuotedNumbers:
    def test_section41_quotes(self):
        # "a 4 bit adder (R=2, P=2) -> 51 %", "(R=2, P=6) -> 97 %",
        # "(R=4, P=4) -> 94 %" — §4.1.
        acc = lambda r, p: (1 - error_probability(
            GeArConfig(16, r, p, allow_partial=(16 - r - p) % r != 0))) * 100
        assert acc(2, 2) == pytest.approx(52.2, abs=2.5)
        assert acc(2, 6) == pytest.approx(97.0, abs=1.0)
        assert acc(4, 4) == pytest.approx(94.0, abs=1.5)

    def test_higher_p_beats_same_l_higher_r(self):
        # §4.1: (R=2,P=6) more accurate than (R=4,P=4) at equal L=8.
        p26 = error_probability(GeArConfig(16, 2, 6))
        p44 = error_probability(GeArConfig(16, 4, 4))
        assert p26 < p44


class TestHardwareOrderings:
    def test_table1_delay_and_area_orderings(self):
        from repro.adders import (
            AccuracyConfigurableAdder,
            AlmostCorrectAdder,
            GracefullyDegradingAdder,
            RippleCarryAdder,
        )
        from repro.timing.fpga import characterize

        rca = characterize(RippleCarryAdder(16))
        aca1 = characterize(AlmostCorrectAdder(16, 8))
        aca2 = characterize(AccuracyConfigurableAdder(16, 8))
        gear = characterize(GeArAdder(GeArConfig(16, 4, 4)))
        gda = characterize(GracefullyDegradingAdder(16, 4, 8))

        # Delay: GeAr == ACA-II fastest; GDA slower than RCA (Table I).
        assert gear.delay_ns <= rca.delay_ns
        assert aca2.delay_ns <= rca.delay_ns
        assert gda.delay_ns > rca.delay_ns
        # Area: RCA minimal; GDA larger than GeAr (Table I).
        assert rca.luts <= gear.luts
        assert gda.luts > gear.luts
        # ACA-I pays area for overlap relative to GeAr(4,4) (Table I).
        assert aca1.luts >= gear.luts

    def test_gear_vs_gda_same_config_delay_ratio(self):
        # Table II: GDA(1,6) / GeAr(1,6) ≈ 2x delay.
        from repro.adders import GracefullyDegradingAdder
        from repro.timing.fpga import characterize

        gear = characterize(GeArAdder(GeArConfig(8, 1, 6)))
        gda = characterize(GracefullyDegradingAdder(8, 1, 6,
                                                    enforce_multiple=False))
        assert 1.3 < gda.delay_ns / gear.delay_ns < 4.0
