"""Unit tests for GeArConfig (§3.1, Eqs. 1-3)."""

import pytest

from repro.core.gear import GeArConfig


class TestEquationOne:
    @pytest.mark.parametrize("n,r,p,k", [
        (12, 4, 4, 2),   # Fig. 3
        (12, 2, 6, 3),   # Fig. 4
        (16, 4, 8, 2),   # Table III
        (32, 8, 8, 3),   # Table III
        (48, 8, 16, 4),  # Table III (the paper's k=5 is a typo)
        (20, 1, 9, 11),  # Table IV
        (20, 5, 5, 3),   # Table IV
    ])
    def test_sub_adder_count(self, n, r, p, k):
        assert GeArConfig(n, r, p).k == k

    @pytest.mark.parametrize("n,r,p,k", [
        (20, 3, 7, 5),  # Table IV rows with non-integer (N-L)/R
        (20, 6, 4, 3),
        (20, 7, 3, 3),
    ])
    def test_partial_mode_rounds_up(self, n, r, p, k):
        assert GeArConfig(n, r, p, allow_partial=True).k == k

    def test_strict_mode_rejects_nondivisible(self):
        with pytest.raises(ValueError, match="allow_partial"):
            GeArConfig(20, 3, 7)

    def test_l_exceeding_n_rejected(self):
        with pytest.raises(ValueError):
            GeArConfig(8, 4, 8)

    @pytest.mark.parametrize("n,r,p", [(0, 1, 1), (8, 0, 1), (8, 1, 0)])
    def test_nonpositive_params_rejected(self, n, r, p):
        with pytest.raises((ValueError, TypeError)):
            GeArConfig(n, r, p)

    def test_exact_configuration(self):
        cfg = GeArConfig(8, 4, 4)
        assert cfg.k == 1
        assert cfg.is_exact


class TestWindows:
    def test_fig3_windows(self):
        # Fig. 3: GeAr(12,4,4) — sub-adder 1 = [7:0], sub-adder 2 = [11:4]
        windows = GeArConfig(12, 4, 4).windows()
        assert len(windows) == 2
        first, second = windows
        assert (first.low, first.high) == (0, 7)
        assert (first.result_low, first.result_high) == (0, 7)
        assert (second.low, second.high) == (4, 11)
        assert (second.result_low, second.result_high) == (8, 11)
        assert second.prediction_bits == 4

    def test_fig4_windows(self):
        # Fig. 4: GeAr(12,2,6) — three 8-bit sub-adders.
        windows = GeArConfig(12, 2, 6).windows()
        assert len(windows) == 3
        assert [(w.low, w.high) for w in windows] == [(0, 7), (2, 9), (4, 11)]
        assert [w.result_bits for w in windows] == [8, 2, 2]

    def test_equation_three_general(self):
        # Eq. 3: sub-adder i covers [(R·i)+P-1 : R·(i-1)].
        cfg = GeArConfig(24, 4, 8)
        for i, w in enumerate(cfg.windows()[1:], start=2):
            assert w.low == cfg.r * (i - 1)
            assert w.high == cfg.r * i + cfg.p - 1
            assert w.result_low == cfg.r * (i - 1) + cfg.p

    def test_partial_last_window_anchored_at_top(self):
        cfg = GeArConfig(20, 3, 7, allow_partial=True)
        last = cfg.windows()[-1]
        assert last.high == 19
        assert last.length == cfg.L
        # Windows drive all 20 bits exactly once.
        total = sum(w.result_bits for w in cfg.windows())
        assert total == 20

    def test_windows_constant_length(self):
        for w in GeArConfig(32, 4, 4).windows():
            assert w.length == 8


class TestHelpers:
    def test_from_sub_adder_length(self):
        cfg = GeArConfig.from_sub_adder_length(16, 4, 8)
        assert (cfg.r, cfg.p) == (4, 4)
        with pytest.raises(ValueError):
            GeArConfig.from_sub_adder_length(16, 4, 4)

    def test_describe(self):
        text = GeArConfig(12, 4, 4).describe()
        assert "N=12" in text and "k=2" in text

    def test_equality_ignores_partial_flag(self):
        assert GeArConfig(16, 4, 4) == GeArConfig(16, 4, 4, allow_partial=True)

    def test_speculative_subadders(self):
        assert GeArConfig(12, 2, 6).speculative_subadders == 2
