"""Unit tests for repro.utils.bitvec."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitvec import (
    bit_length_of,
    bit_slice,
    bits_of,
    carry_chain_lengths,
    carry_into,
    concat_fields,
    from_bits,
    generate_propagate_kill,
    longest_carry_chain,
    mask,
    popcount,
    to_signed,
    to_unsigned,
)


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_small_widths(self):
        assert mask(1) == 1
        assert mask(4) == 0xF
        assert mask(16) == 0xFFFF

    def test_large_width(self):
        assert mask(128) == (1 << 128) - 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestBitsRoundtrip:
    @given(st.integers(min_value=0, max_value=(1 << 24) - 1))
    def test_roundtrip(self, value):
        assert from_bits(bits_of(value, 24)) == value

    def test_lsb_first(self):
        assert bits_of(0b0110, 4) == [0, 1, 1, 0]

    def test_array_shape(self):
        arr = np.array([1, 2, 3], dtype=np.int64)
        out = bits_of(arr, 4)
        assert out.shape == (3, 4)
        assert out[1].tolist() == [0, 1, 0, 0]

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            bits_of(3, 0)

    def test_from_bits_rejects_non_binary(self):
        with pytest.raises(ValueError):
            from_bits([0, 2, 1])


class TestBitSlice:
    def test_verilog_style(self):
        assert bit_slice(0b110101, 3, 1) == 0b010

    def test_single_bit(self):
        assert bit_slice(0b100, 2, 2) == 1

    def test_array(self):
        arr = np.array([0b1100, 0b0011], dtype=np.int64)
        np.testing.assert_array_equal(bit_slice(arr, 3, 2), [0b11, 0b00])

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            bit_slice(1, 0, 1)


class TestConcatFields:
    def test_basic(self):
        assert concat_fields([(0b11, 2), (0b01, 2)]) == 0b0111

    def test_masking(self):
        # Stray high bits must be masked before packing.
        assert concat_fields([(0xFF, 4), (0x1, 1)]) == 0b11111

    @given(st.integers(0, 255), st.integers(0, 15))
    def test_split_rejoin(self, low, high):
        packed = concat_fields([(low, 8), (high, 4)])
        assert packed & 0xFF == low
        assert packed >> 8 == high


class TestPopcount:
    @given(st.integers(min_value=0, max_value=(1 << 30) - 1))
    def test_matches_bin(self, value):
        assert popcount(value) == bin(value).count("1")

    def test_array(self):
        arr = np.array([0, 1, 3, 255], dtype=np.int64)
        np.testing.assert_array_equal(popcount(arr), [0, 1, 2, 8])


class TestSignedness:
    @given(st.integers(min_value=-128, max_value=127))
    def test_roundtrip_8bit(self, value):
        assert to_signed(to_unsigned(value, 8), 8) == value

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            to_unsigned(128, 8)

    def test_bit_length(self):
        assert bit_length_of(0) == 1
        assert bit_length_of(255) == 8
        with pytest.raises(ValueError):
            bit_length_of(-1)


class TestCarryAnalysis:
    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF), st.integers(1, 16))
    def test_carry_into_matches_arithmetic(self, a, b, pos):
        expected = ((a & mask(pos)) + (b & mask(pos))) >> pos
        assert carry_into(a, b, pos) == (expected & 1)

    def test_carry_into_position_zero_returns_cin(self):
        assert carry_into(5, 3, 0, carry_in=1) == 1
        assert carry_into(5, 3, 0) == 0

    def test_carry_into_array(self):
        a = np.array([0xFF, 0x00], dtype=np.int64)
        b = np.array([0x01, 0x01], dtype=np.int64)
        np.testing.assert_array_equal(carry_into(a, b, 8), [1, 0])

    def test_gpk_definitions(self):
        g, p, k = generate_propagate_kill(0b1100, 0b1010)
        assert g == 0b1000
        assert p == 0b0110
        assert k & 0xF == 0b0001

    def test_longest_chain_simple(self):
        # generate at bit 0, propagate through bits 1..3 -> chain of 4
        assert longest_carry_chain(0b0001, 0b1111, 4) == 4

    def test_longest_chain_zero(self):
        assert longest_carry_chain(0, 0, 8) == 0

    def test_longest_chain_array_matches_scalar(self):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 256, size=50, dtype=np.int64)
        b = rng.integers(0, 256, size=50, dtype=np.int64)
        vec = longest_carry_chain(a, b, 8)
        for i in range(50):
            assert vec[i] == longest_carry_chain(int(a[i]), int(b[i]), 8)

    def test_chain_lengths_partition(self):
        chains = carry_chain_lengths(0b0101, 0b0101, 4)
        assert chains == [1, 1]

    def test_chain_lengths_with_carry_in(self):
        # carry-in propagating through two bits
        assert carry_chain_lengths(0b11, 0b00, 2, carry_in=1) == [3]

    @given(st.integers(0, 0xFFF), st.integers(0, 0xFFF))
    def test_longest_equals_max_of_chain_lengths(self, a, b):
        chains = carry_chain_lengths(a, b, 12)
        assert longest_carry_chain(a, b, 12) == (max(chains) if chains else 0)
