"""Compiled bit-sliced kernels vs the gate interpreter: bit-equality.

The compiled simulator (:mod:`repro.rtl.compile`) must be *exactly*
equivalent to :func:`repro.rtl.sim.simulate_bus` — same sums, same error
flags, bit for bit.  Three layers of proof:

* exhaustive — every SPEC_CATALOG family at N=8, all 65536 operand
  pairs, every output bus,
* property-based — hypothesis-driven random operand batches across
  families at N ∈ {12, 16, 24, 32},
* end-to-end — the engine's ``compiled`` backend reproduces the sampling
  backend's ErrorStats exactly, and the packed-domain entry point
  (:meth:`CompiledKernel.run_packed`) agrees with :meth:`~CompiledKernel.run`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import EvalRequest, evaluate
from repro.rtl.compile import (
    compile_netlist,
    compiled_kernel,
    pack_operands,
    unpack_lanes,
)
from repro.rtl.sim import simulate_bus
from repro.spec.catalog import SPEC_CATALOG
from repro.verify import VerifyOptions, verify_registry

EXHAUSTIVE_WIDTH = 8

#: Widths of the hypothesis sweep — straddling one packed word's lane
#: boundary is impossible (operands, not width, fill lanes), so these
#: exercise deep carry chains instead.
PROPERTY_WIDTHS = (12, 16, 24, 32)


def _all_pairs(width):
    space = np.arange(1 << width, dtype=np.int64)
    a, b = np.meshgrid(space, space, indexing="ij")
    return a.ravel(), b.ravel()


# ---------------------------------------------------------------------------
# exhaustive equivalence at N=8
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("family", sorted(SPEC_CATALOG))
def test_exhaustive_bit_equality_n8(family):
    spec = SPEC_CATALOG[family](EXHAUSTIVE_WIDTH)
    netlist = spec.to_netlist()
    kernel = compile_netlist(netlist)
    a, b = _all_pairs(EXHAUSTIVE_WIDTH)
    stimulus = {"A": a, "B": b}
    outputs = kernel.run(stimulus)
    assert set(outputs) == set(netlist.output_buses)
    for bus in netlist.output_buses:
        np.testing.assert_array_equal(
            outputs[bus], simulate_bus(netlist, stimulus, bus),
            err_msg=f"{family}: compiled bus {bus} diverges from interpreter")


def test_scalar_stimulus_preserves_shape():
    spec = SPEC_CATALOG["gear_r2p2"](EXHAUSTIVE_WIDTH)
    netlist = spec.to_netlist()
    kernel = compile_netlist(netlist)
    out = kernel.run({"A": 3, "B": 5})["S"]
    assert out.shape == ()
    assert int(out) == int(simulate_bus(netlist, {"A": 3, "B": 5}, "S"))


def test_broadcast_shapes_match_interpreter():
    spec = SPEC_CATALOG["rca"](EXHAUSTIVE_WIDTH)
    netlist = spec.to_netlist()
    kernel = compile_netlist(netlist)
    a = np.arange(6, dtype=np.int64).reshape(2, 3)
    stimulus = {"A": a, "B": 7}
    out = kernel.run(stimulus)["S"]
    assert out.shape == (2, 3)
    np.testing.assert_array_equal(out, simulate_bus(netlist, stimulus, "S"))


# ---------------------------------------------------------------------------
# hypothesis property sweep at wider N
# ---------------------------------------------------------------------------

@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_random_batches_bit_equal(data):
    family = data.draw(st.sampled_from(sorted(SPEC_CATALOG)))
    width = data.draw(st.sampled_from(PROPERTY_WIDTHS))
    spec = SPEC_CATALOG[family](width)
    netlist = spec.to_netlist()
    kernel = compiled_kernel(spec)  # cache shares work across examples
    limit = (1 << width) - 1
    count = data.draw(st.integers(1, 80))
    a = np.array(data.draw(st.lists(st.integers(0, limit),
                                    min_size=count, max_size=count)),
                 dtype=np.int64)
    b = np.array(data.draw(st.lists(st.integers(0, limit),
                                    min_size=count, max_size=count)),
                 dtype=np.int64)
    stimulus = {"A": a, "B": b}
    outputs = kernel.run(stimulus)
    for bus in netlist.output_buses:
        np.testing.assert_array_equal(
            outputs[bus], simulate_bus(netlist, stimulus, bus))


# ---------------------------------------------------------------------------
# pack/unpack and the packed-domain entry point
# ---------------------------------------------------------------------------

@given(
    width=st.integers(1, 63),
    values=st.lists(st.integers(0, (1 << 63) - 1), min_size=1, max_size=200),
)
@settings(max_examples=60, deadline=None)
def test_pack_unpack_roundtrip(width, values):
    flat = np.array([v & ((1 << width) - 1) for v in values], dtype=np.int64)
    rows = pack_operands(flat, width)
    assert rows.shape == (width, -(-flat.size // 64))
    np.testing.assert_array_equal(unpack_lanes(list(rows), flat.size), flat)


def test_pack_operands_rejects_overwide_values():
    with pytest.raises(ValueError):
        pack_operands(np.array([4], dtype=np.int64), 2)
    with pytest.raises(ValueError):
        pack_operands(np.array([1], dtype=np.int64), 65)


def test_run_packed_consistent_with_run():
    spec = SPEC_CATALOG["etaiim_l4c2"](EXHAUSTIVE_WIDTH)
    netlist = spec.to_netlist()
    kernel = compile_netlist(netlist)
    rng = np.random.default_rng(11)
    stimulus = {
        bus: rng.integers(0, 1 << width, size=300, dtype=np.int64)
        for bus, width in netlist.input_buses.items()
    }
    plain = kernel.run(stimulus)
    packed = {bus: pack_operands(stimulus[bus], width)
              for bus, width in netlist.input_buses.items()}
    lanes = kernel.run_packed(packed)
    for bus in netlist.output_buses:
        np.testing.assert_array_equal(
            unpack_lanes(list(lanes[bus]), 300), plain[bus])


def test_run_validates_bus_names_and_ranges():
    kernel = compile_netlist(SPEC_CATALOG["rca"](4).to_netlist())
    with pytest.raises(KeyError):
        kernel.run({"A": 1})
    with pytest.raises(KeyError):
        kernel.run({"A": 1, "B": 2, "C": 3})
    with pytest.raises(ValueError):
        kernel.run({"A": 16, "B": 0})


# ---------------------------------------------------------------------------
# engine backend and conformance-oracle parity
# ---------------------------------------------------------------------------

def test_compiled_backend_matches_sampling_exhaustive():
    model = SPEC_CATALOG["gear_r2p2"](EXHAUSTIVE_WIDTH).to_model()
    sampled = evaluate(EvalRequest.exhaustive(model))
    compiled = evaluate(EvalRequest.exhaustive(model, backend="compiled"))
    assert compiled.stats == sampled.stats


def test_compiled_backend_matches_sampling_monte_carlo():
    model = SPEC_CATALOG["gda_b2c2"](12).to_model()
    sampled = evaluate(EvalRequest.monte_carlo(model, 4096, seed=13))
    compiled = evaluate(EvalRequest.monte_carlo(model, 4096, seed=13,
                                                backend="compiled"))
    assert compiled.stats == sampled.stats


def test_verify_compiled_layer_passes_exhaustively():
    reports = verify_registry(
        ["rca", "gear_r2p2"],
        options=VerifyOptions(width=EXHAUSTIVE_WIDTH, layers=("compiled",)))
    assert len(reports) == 2
    for report in reports:
        result = report.layer("compiled")
        assert result.status.label == "pass"
        assert result.exhaustive
        assert result.vectors == 1 << (2 * EXHAUSTIVE_WIDTH)
