"""Unit tests for the §3.2 error-probability model (Eqs. 4-7)."""

import numpy as np
import pytest

from repro.core.error_model import (
    ErrorEvent,
    error_events,
    error_probability,
    error_probability_brute,
    error_probability_exact,
    accuracy_percentage,
    max_error_distance,
    mean_error_distance_analytic,
    mean_error_distance_paper_model,
    mean_error_distance_upper_bound,
    normalized_error_distance_analytic,
)
from repro.core.gear import GeArAdder, GeArConfig
from repro.metrics.exhaustive import exhaustive_error_probability, exhaustive_stats


class TestErrorEvents:
    def test_event_count_is_r_times_k_minus_1(self):
        cfg = GeArConfig(16, 4, 4)  # k = 3
        assert len(error_events(cfg)) == cfg.r * (cfg.k - 1)

    def test_event_probability_eq5(self):
        # ρ[Z_m] = ρ[Gr]·ρ[Pr]^(L-m)
        cfg = GeArConfig(12, 4, 4)
        for event in error_events(cfg):
            assert event.probability == pytest.approx(
                0.25 * 0.5 ** (cfg.L - event.m)
            )

    def test_event_geometry(self):
        cfg = GeArConfig(12, 4, 4)
        events = error_events(cfg)
        # window 1: generate positions 0..3, spans reaching bit base+P-1 = 7
        assert [e.generate_pos for e in events] == [0, 1, 2, 3]
        assert all(e.propagate_high == 7 for e in events)
        assert all(e.propagate_low == e.generate_pos + 1 for e in events)

    def test_same_window_events_mutually_exclusive(self):
        cfg = GeArConfig(16, 4, 4)
        events = [e for e in error_events(cfg) if e.window == 1]
        for i, e1 in enumerate(events):
            for e2 in events[i + 1:]:
                assert e1.excludes(e2)

    def test_distant_windows_compatible(self):
        cfg = GeArConfig(32, 4, 4)  # spans end at 4s+3; window s+2 clears it
        events = error_events(cfg)
        e1 = next(e for e in events if e.window == 1 and e.m == 4)
        e4 = next(e for e in events if e.window == 4 and e.m == 4)
        assert not e1.excludes(e4)
        assert not e4.excludes(e1)

    def test_event_not_excluding_itself_semantics(self):
        e = ErrorEvent(window=1, m=1, generate_pos=0, propagate_low=1,
                       propagate_high=4)
        assert not e.excludes(e)


class TestInclusionExclusion:
    @pytest.mark.parametrize("n,r,p", [
        (12, 4, 4), (16, 4, 8), (16, 2, 2), (16, 2, 6), (12, 2, 2),
        (16, 1, 3), (10, 2, 4),
    ])
    def test_dp_matches_brute_force(self, n, r, p):
        cfg = GeArConfig(n, r, p, allow_partial=(n - r - p) % r != 0)
        assert error_probability(cfg) == pytest.approx(
            error_probability_brute(cfg), abs=1e-14
        )

    def test_brute_force_refuses_large(self):
        with pytest.raises(ValueError):
            error_probability_brute(GeArConfig(64, 2, 2))

    def test_exact_config_zero(self):
        assert error_probability(GeArConfig(8, 4, 4)) == 0.0
        assert error_probability_exact(GeArConfig(8, 4, 4)) == 0.0

    def test_probability_in_unit_interval(self):
        for p in range(1, 14):
            cfg = GeArConfig(16, 2, p, allow_partial=(14 - p) % 2 != 0)
            assert 0.0 <= error_probability(cfg) <= 1.0

    def test_monotone_in_p(self):
        probs = []
        for p in (2, 4, 6, 8, 10, 12):
            probs.append(error_probability(GeArConfig(16, 2, p)))
        assert probs == sorted(probs, reverse=True)

    def test_single_speculative_window_closed_form(self):
        # k=2: P(err) = Σ_m Gr·Pr^(L-m) exactly (no joint terms).
        cfg = GeArConfig(12, 4, 4)
        expected = sum(0.25 * 0.5 ** (8 - m) for m in range(1, 5))
        assert error_probability(cfg) == pytest.approx(expected)


class TestExactDP:
    @pytest.mark.parametrize("n,r,p", [
        (8, 1, 1), (8, 2, 2), (8, 1, 3), (8, 2, 4), (10, 2, 2), (10, 3, 3),
        (12, 4, 4), (9, 2, 3),
    ])
    def test_matches_exhaustive_enumeration(self, n, r, p):
        cfg = GeArConfig(n, r, p, allow_partial=(n - r - p) % r != 0)
        adder = GeArAdder(cfg)
        assert error_probability_exact(cfg) == pytest.approx(
            exhaustive_error_probability(adder), abs=1e-12
        )

    @pytest.mark.parametrize("n,r,p", [
        (16, 2, 2), (24, 2, 2), (16, 1, 1), (32, 4, 4), (16, 4, 8),
        (20, 5, 5),
    ])
    def test_paper_model_is_exact_for_uniform_operands(self, n, r, p):
        # Reproduction finding: the Eq. 5-7 event set is complete, so the
        # model equals the first-principles DP on every strict configuration.
        cfg = GeArConfig(n, r, p)
        assert error_probability_exact(cfg) == pytest.approx(
            error_probability(cfg), abs=1e-12
        )

    @pytest.mark.parametrize("n,r,p", [(20, 3, 7), (20, 6, 4), (20, 7, 3)])
    def test_paper_model_conservative_for_partial_configs(self, n, r, p):
        # With (N-L) % R != 0 the model scores a nominal full-R last window,
        # while the functional adder's anchored last window errs less.
        cfg = GeArConfig(n, r, p, allow_partial=True)
        assert error_probability(cfg) >= error_probability_exact(cfg)


class TestAccuracyPercentage:
    def test_complement_of_probability(self):
        cfg = GeArConfig(16, 4, 4)
        assert accuracy_percentage(cfg) == pytest.approx(
            (1 - error_probability(cfg)) * 100
        )

    def test_exact_flag_agrees_with_model(self):
        cfg = GeArConfig(16, 1, 1)
        assert accuracy_percentage(cfg, exact=True) == pytest.approx(
            accuracy_percentage(cfg)
        )


class TestErrorDistanceModels:
    @pytest.mark.parametrize("n,r,p", [
        (8, 1, 1), (8, 1, 2), (8, 2, 2), (8, 2, 4), (10, 2, 4), (12, 4, 4),
        (9, 1, 2),
    ])
    def test_analytic_med_matches_exhaustive(self, n, r, p):
        cfg = GeArConfig(n, r, p, allow_partial=(n - r - p) % r != 0)
        stats = exhaustive_stats(GeArAdder(cfg))
        assert mean_error_distance_analytic(cfg) == pytest.approx(
            stats.med, rel=1e-9
        )

    def test_upper_bound_dominates(self):
        for (n, r, p) in [(8, 1, 1), (12, 2, 2), (16, 4, 4)]:
            cfg = GeArConfig(n, r, p)
            assert mean_error_distance_upper_bound(cfg) >= \
                mean_error_distance_analytic(cfg) - 1e-12

    def test_paper_model_med_underestimates(self):
        cfg = GeArConfig(8, 1, 1)
        assert mean_error_distance_paper_model(cfg) <= \
            mean_error_distance_analytic(cfg) + 1e-12

    def test_max_error_distance_tight_for_k2(self):
        cfg = GeArConfig(12, 4, 4)  # k = 2: bound is achieved
        adder = GeArAdder(cfg)
        size = 1 << 12
        vals = np.arange(size, dtype=np.int64)
        worst = 0
        for start in range(0, size, 512):
            a = np.repeat(vals[start : start + 512], size)
            b = np.tile(vals, 512)
            worst = max(worst, int(((a + b) - np.asarray(adder.add(a, b))).max()))
        assert worst == max_error_distance(cfg)

    def test_max_error_distance_is_upper_bound_for_k3(self):
        cfg = GeArConfig(8, 2, 2)  # k = 3: wrap cancellation applies
        adder = GeArAdder(cfg)
        vals = np.arange(256, dtype=np.int64)
        a = np.repeat(vals, 256)
        b = np.tile(vals, 256)
        worst = int(((a + b) - np.asarray(adder.add(a, b))).max())
        assert worst <= max_error_distance(cfg)
        assert worst == 64  # single top-window miss

    def test_ned_in_unit_interval(self):
        for p in (1, 2, 4, 6):
            cfg = GeArConfig(8, 1, p)
            assert 0.0 <= normalized_error_distance_analytic(cfg) <= 1.0

    def test_ned_zero_for_exact(self):
        assert normalized_error_distance_analytic(GeArConfig(8, 4, 4)) == 0.0
