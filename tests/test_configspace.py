"""Unit tests for design-space enumeration (Fig. 1 / Fig. 7 machinery)."""

import pytest

from repro.core.configspace import (
    DesignPoint,
    count_configurations,
    enumerate_configs,
    enumerate_fixed_architecture_points,
    enumerate_gda_points,
    enumerate_gear_points,
)


class TestEnumerateConfigs:
    def test_strict_only_by_default(self):
        configs = enumerate_configs(16, r=4, allow_partial=False)
        assert all((16 - c.L) % c.r == 0 for c in configs)
        assert {c.p for c in configs} == {4, 8}

    def test_partial_expands_space(self):
        strict = enumerate_configs(16, r=4, allow_partial=False)
        full = enumerate_configs(16, r=4, allow_partial=True)
        assert len(full) > len(strict)
        assert {c.p for c in full} == set(range(1, 12))

    def test_exact_excluded_by_default(self):
        configs = enumerate_configs(16, r=4, allow_partial=True)
        assert all(not c.is_exact for c in configs)

    def test_exact_included_on_request(self):
        configs = enumerate_configs(16, r=4, allow_partial=True, include_exact=True)
        assert any(c.is_exact for c in configs)

    def test_all_r_values(self):
        configs = enumerate_configs(8, allow_partial=True)
        # r = 7 only admits p = 1, i.e. L = 8 = N (exact, excluded).
        assert {c.r for c in configs} == set(range(1, 7))

    def test_all_configs_constructible(self):
        for cfg in enumerate_configs(12, allow_partial=True):
            assert cfg.k >= 2
            assert cfg.L <= 12


class TestGearPoints:
    def test_full_p_range(self):
        points = enumerate_gear_points(16, 2)
        assert [pt.p for pt in points] == list(range(1, 14))

    def test_accuracy_monotone_in_p(self):
        accs = [pt.accuracy for pt in enumerate_gear_points(16, 2)]
        assert accs == sorted(accs)

    def test_accuracy_in_range(self):
        for pt in enumerate_gear_points(16, 4):
            assert 0.0 <= pt.accuracy <= 100.0


class TestGdaPoints:
    def test_only_multiples_of_r(self):
        points = enumerate_gda_points(16, 4)
        assert [pt.p for pt in points] == [4, 8]

    def test_r2_gives_half_of_gear(self):
        # Fig. 7(a) observation: GDA provides half the configurations.
        gear = enumerate_gear_points(16, 2)
        gda = enumerate_gda_points(16, 2)
        assert len(gda) == len(gear) // 2

    def test_accuracy_equals_gear_at_shared_points(self):
        gear = {pt.p: pt.accuracy for pt in enumerate_gear_points(16, 4)}
        for pt in enumerate_gda_points(16, 4):
            assert pt.accuracy == pytest.approx(gear[pt.p])


class TestFixedArchitectures:
    def test_single_point(self):
        points = enumerate_fixed_architecture_points(16, 4)
        assert len(points) == 1
        assert points[0].p == 4

    def test_oversized_r_empty(self):
        assert enumerate_fixed_architecture_points(16, 9) == []


class TestCounts:
    def test_fig1a_counts(self):
        # N=16, R=2 panel.
        assert count_configurations(16, "GeAr", 2) == 13
        assert count_configurations(16, "GDA", 2) == 6
        assert count_configurations(16, "ACA-II", 2) == 1
        assert count_configurations(16, "ETAII", 2) == 1
        assert count_configurations(16, "ACA-I", 2) == 0

    def test_fig1b_counts(self):
        # N=16, R=4 panel.
        assert count_configurations(16, "GeAr", 4) == 11
        assert count_configurations(16, "GDA", 4) == 2
        assert count_configurations(16, "ACA-II", 4) == 1

    def test_gear_dominates_everywhere(self):
        for r in (2, 3, 4, 8):
            gear = count_configurations(16, "GeAr", r)
            for arch in ("GDA", "ACA-II", "ETAII", "ACA-I"):
                assert gear >= count_configurations(16, arch, r)

    def test_unknown_architecture(self):
        with pytest.raises(ValueError):
            count_configurations(16, "FancyAdder", 2)

    def test_aca1_only_r1(self):
        assert count_configurations(16, "ACA-I", 1) == 1
