"""Graceful-shutdown tests for the serve daemon.

Runs ``gear serve`` as a real subprocess, sends SIGTERM, and pins the
shutdown contract: in-flight requests drain and are answered, the
telemetry trace is flushed as parseable JSONL, and the process exits 0.
The in-process variant covers drain-with-inflight behaviour without
subprocess latency.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.serve import ServeClient, ServeDaemon, start_background

pytestmark = pytest.mark.skipif(sys.platform == "win32",
                                reason="POSIX signals")


def _spawn_daemon(tmp_path, *extra):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", *extra, "serve", "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env)
    ready = proc.stdout.readline().strip()
    assert ready.startswith("serving on http://"), ready
    port = int(ready.split(":")[2].split(" ")[0].rstrip("/"))
    return proc, port


def test_sigterm_exits_zero(tmp_path):
    proc, port = _spawn_daemon(tmp_path)
    try:
        with ServeClient(port=port) as client:
            assert client.healthz()["status"] == "ok"
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()


def test_sigterm_flushes_parseable_trace(tmp_path):
    trace = tmp_path / "serve-trace.jsonl"
    proc, port = _spawn_daemon(tmp_path, "--trace", str(trace))
    try:
        with ServeClient(port=port) as client:
            client.eval({"adder": "gear_r2p2", "samples": 500, "seed": 1})
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()

    assert trace.exists()
    records = [json.loads(line) for line in
               trace.read_text().splitlines() if line.strip()]
    assert records, "trace is empty"
    # the daemon's aggregate (endpoint counters + worker engine counters)
    # reached the CLI's trace via the shutdown flush
    from repro.obs import read_trace

    frame = read_trace(trace).frame
    assert frame.counters.get("serve.eval.requests", 0) >= 1
    assert frame.counters.get("engine.requests", 0) >= 1


def test_sigterm_drains_inflight_request():
    daemon = ServeDaemon(port=0, workers=0, drain_timeout=30.0)
    thread = start_background(daemon)
    result = {}

    def slow_request():
        with ServeClient(port=daemon.port, timeout=60) as client:
            result["payload"] = client.eval(
                {"adder": "gear_r2p2", "samples": 400_000, "seed": 11})

    requester = threading.Thread(target=slow_request)
    requester.start()
    # let the request reach the daemon, then ask for shutdown mid-flight
    deadline = time.time() + 10
    while daemon.coalescer.inflight == 0 and time.time() < deadline:
        time.sleep(0.005)
    daemon.stop()
    requester.join(timeout=60)
    thread.join(timeout=60)
    assert not thread.is_alive()
    assert result["payload"]["samples"] == 400_000


def test_stop_is_idempotent():
    daemon = ServeDaemon(port=0, workers=0)
    thread = start_background(daemon)
    daemon.stop()
    daemon.stop()
    thread.join(timeout=30)
    assert not thread.is_alive()
