"""Registry integrity and fingerprint-collision safety.

The engine's shard cache keys on ``fingerprint()``: if two behaviourally
distinct adders ever shared one, the cache would silently serve the wrong
statistics.  These tests enumerate the full conformance registry (at
several widths) and prove that equal fingerprints imply identical
behaviour — and that the registry itself produces no collisions at all.
"""

import itertools

import numpy as np
import pytest

from repro.engine import fingerprint_adder
from repro.verify.registry import (
    DEFAULT_WIDTH,
    default_registry,
    registry_adder,
    select_entries,
)
from repro.verify.vectors import exhaustive_pairs

WIDTHS = (6, 8, 10)


def _buildable_models(width):
    models = []
    for key, entry in default_registry().items():
        if entry.supports(width):
            models.append((f"{key}@{width}", entry(width)))
    return models


class TestRegistry:
    def test_default_width_supports_everything(self):
        registry = default_registry()
        assert len(registry) >= 12
        for entry in registry.values():
            model = entry(DEFAULT_WIDTH)
            assert model.width == DEFAULT_WIDTH

    def test_min_width_is_enforced(self):
        for entry in default_registry().values():
            with pytest.raises(ValueError):
                entry(entry.min_width - 1)

    def test_supports_probes_without_raising(self):
        for entry in default_registry().values():
            for width in range(1, 12):
                assert isinstance(entry.supports(width), bool)

    def test_registry_adder_lookup(self):
        model = registry_adder("gear_r2p2", 8)
        assert model.width == 8
        with pytest.raises(ValueError, match="unknown adder"):
            registry_adder("nonesuch")

    def test_select_entries_validates_keys(self):
        assert len(select_entries(None)) == len(default_registry())
        assert [e.key for e in select_entries(["loa_half", "rca"])] == [
            "loa_half", "rca"]
        with pytest.raises(ValueError, match="unknown adder"):
            select_entries(["rca", "bogus"])


class TestFingerprintSafety:
    """No two behaviourally distinct adders may share a fingerprint."""

    @pytest.mark.parametrize("width", WIDTHS)
    def test_no_collisions_within_a_width(self, width):
        models = _buildable_models(width)
        fingerprints = {}
        for label, model in models:
            fp = fingerprint_adder(model)
            assert fp not in fingerprints, (
                f"{label} and {fingerprints[fp]} share fingerprint {fp!r}"
            )
            fingerprints[fp] = label

    def test_no_collisions_across_widths(self):
        seen = {}
        for width in WIDTHS:
            for label, model in _buildable_models(width):
                fp = fingerprint_adder(model)
                assert fp not in seen, f"{label} collides with {seen[fp]}"
                seen[fp] = label

    def test_equal_fingerprints_imply_equal_behaviour(self):
        """The cache-safety contract itself, proven exhaustively at N=6.

        Fingerprint equality must imply behavioural equality.  We check
        the contrapositive over every registry pair: exhaustively compare
        sums, and demand distinct fingerprints whenever any pair differs.
        (Behaviourally identical pairs — e.g. ETAII vs ACA-II — may share
        or split fingerprints freely; both are cache-safe.)
        """
        width = 6
        a, b = exhaustive_pairs(width)
        models = _buildable_models(width)
        sums = {label: np.asarray(m.add(a, b)) for label, m in models}
        for (l1, m1), (l2, m2) in itertools.combinations(models, 2):
            if fingerprint_adder(m1) == fingerprint_adder(m2):
                assert np.array_equal(sums[l1], sums[l2]), (
                    f"{l1} and {l2} share a fingerprint but disagree "
                    "behaviourally — the shard cache would serve wrong stats"
                )

    def test_same_family_different_config_differs(self):
        # Window geometry must reach the fingerprint (base.py extends the
        # default with the layout exactly for this).
        from repro.core.gear import GeArAdder

        fp1 = fingerprint_adder(GeArAdder.from_params(8, 2, 2))
        fp2 = fingerprint_adder(GeArAdder.from_params(8, 2, 4))
        assert fp1 != fp2

    def test_width_reaches_the_fingerprint(self):
        entry = default_registry()["etaii_l4"]
        assert fingerprint_adder(entry(6)) != fingerprint_adder(entry(8))
