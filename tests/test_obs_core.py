"""Unit tests for the obs collection API (repro.obs.core) and export."""

import json

import pytest

from repro import obs
from repro.obs.aggregate import (
    DURATION_BOUNDS,
    GaugeStat,
    HistogramState,
    TelemetryFrame,
)


class TestDisabledPath:
    def test_default_collector_is_null(self):
        assert obs.get_collector() is obs.NULL
        assert not obs.enabled()

    def test_null_operations_record_nothing(self):
        obs.count("x", 5)
        obs.gauge("g", 1.0)
        obs.observe("h", 0.5)
        with obs.span("a"):
            with obs.span("b"):
                pass
        obs.absorb(TelemetryFrame(counters={"x": 1}))
        assert obs.get_collector().snapshot().is_empty

    def test_null_span_is_reusable_singleton(self):
        assert obs.span("a") is obs.span("b")


class TestCollector:
    def test_counters_accumulate(self):
        with obs.collecting() as col:
            obs.count("hits")
            obs.count("hits", 2)
            obs.count("bytes", 100)
        frame = col.snapshot()
        assert frame.counters == {"hits": 3, "bytes": 100}

    def test_collecting_restores_previous_collector(self):
        assert obs.get_collector() is obs.NULL
        with pytest.raises(RuntimeError):
            with obs.collecting():
                assert obs.enabled()
                raise RuntimeError("boom")
        assert obs.get_collector() is obs.NULL

    def test_nested_spans_record_joined_paths(self):
        with obs.collecting() as col:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
                with obs.span("inner"):
                    pass
        frame = col.snapshot()
        assert frame.spans["outer"].count == 1
        assert frame.spans["outer/inner"].count == 2
        assert frame.spans["outer"].total_s >= frame.spans["outer/inner"].total_s

    def test_span_durations_are_positive_and_bounded_by_parent(self):
        with obs.collecting() as col:
            with obs.span("s"):
                sum(range(1000))
        stat = col.snapshot().spans["s"]
        assert stat.total_s > 0.0
        assert stat.max_s <= stat.total_s

    def test_gauge_folds_to_count_total_min_max(self):
        with obs.collecting() as col:
            for v in (0.5, 1.5, -0.5):
                obs.gauge("g", v)
        g = col.snapshot().gauges["g"]
        assert g == GaugeStat(count=3, total=1.5, min=-0.5, max=1.5)
        assert g.mean == pytest.approx(0.5)

    def test_histogram_buckets_and_identity_bounds(self):
        with obs.collecting() as col:
            obs.observe("d", 0.003, bounds=DURATION_BOUNDS)
            # later bounds argument is ignored: bounds are identity
            obs.observe("d", 5.0, bounds=(1.0, 2.0))
            obs.observe("d", 1e-9)
        hist = col.snapshot().histograms["d"]
        assert hist.bounds == DURATION_BOUNDS
        assert hist.count == 3
        assert hist.counts[0] == 1          # 1e-9 <= 1e-6
        assert hist.counts[-2] == 1         # 5.0 in (1, 10]
        assert hist.total == pytest.approx(5.003 + 1e-9)

    def test_histogram_exact_bound_lands_in_lower_bucket(self):
        hist = HistogramState.zero((1.0, 2.0)).observe(1.0)
        assert hist.counts == (1, 0, 0)

    def test_events_recorded_and_capped(self):
        with obs.collecting(events=True) as col:
            with obs.span("a"):
                pass
        assert col.events == ({"kind": "span", "path": "a",
                               "dur_s": col.events[0]["dur_s"]},)

        col = obs.Collector(events=True, max_events=2)
        for _ in range(5):
            col.record_span("s", 0.1)
        assert len(col.events) == 2
        assert col.snapshot().dropped_events == 3

    def test_absorb_folds_worker_frame(self):
        worker = obs.Collector()
        worker.count("engine.shard.samples", 100)
        worker.record_span("engine.shard", 0.25)
        with obs.collecting() as col:
            obs.count("engine.shard.samples", 50)
            obs.absorb(worker.snapshot())
            obs.absorb(None)  # tolerated: tracing off in the worker
        frame = col.snapshot()
        assert frame.counters["engine.shard.samples"] == 150
        assert frame.spans["engine.shard"].count == 1

    def test_api_calls_tally(self):
        col = obs.Collector()
        col.count("a")
        col.gauge("b", 1.0)
        col.observe("c", 1.0)
        col.record_span("d", 0.1)
        assert col.api_calls == 4


class TestExport:
    def test_trace_round_trip(self, tmp_path):
        with obs.collecting(events=True) as col:
            with obs.span("a"):
                obs.count("n", 7)
                obs.gauge("g", 2.0)
                obs.observe("h", 0.01)
        frame = col.snapshot()
        path = obs.write_trace(tmp_path / "t.jsonl", frame, col.events,
                               label="unit test")
        data = obs.read_trace(path)
        assert data.frame.to_dict() == frame.to_dict()
        assert data.labels == ("unit test",)
        assert len(data.events) == 1

    def test_trace_is_valid_jsonl_without_timestamps(self, tmp_path):
        with obs.collecting(events=True) as col:
            with obs.span("a"):
                pass
        path = obs.write_trace(tmp_path / "t.jsonl", col.snapshot(),
                               col.events)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[0]["record"] == "meta"
        assert records[-1]["record"] == "frame"
        for record in records:
            assert "time" not in record and "timestamp" not in record

    def test_concatenated_traces_fold(self, tmp_path):
        frame = TelemetryFrame(counters={"n": 2})
        p1 = obs.write_trace(tmp_path / "a.jsonl", frame)
        p2 = obs.write_trace(tmp_path / "b.jsonl", frame)
        combined = tmp_path / "c.jsonl"
        combined.write_text(p1.read_text() + p2.read_text())
        assert obs.read_trace(combined).frame.counters["n"] == 4

    def test_read_trace_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            obs.read_trace(bad)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="no frame record"):
            obs.read_trace(empty)
        wrong = tmp_path / "wrong.jsonl"
        wrong.write_text(json.dumps({"record": "meta", "format": "other"}))
        with pytest.raises(ValueError, match="not a repro-obs-trace"):
            obs.read_trace(wrong)

    def test_render_report_sections(self):
        with obs.collecting() as col:
            with obs.span("s"):
                obs.count("c", 1)
                obs.gauge("g", 3.0)
                obs.observe("h", 0.5)
        text = obs.render_report(col.snapshot())
        for section in ("spans", "counters", "gauges", "histograms"):
            assert section in text
        assert "(no telemetry recorded)" in obs.render_report(
            TelemetryFrame.empty())

    def test_report_to_json_has_span_summary(self):
        with obs.collecting() as col:
            with obs.span("s"):
                pass
        payload = obs.report_to_json(col.snapshot())
        assert payload["span_summary"]["s"]["calls"] == 1
        json.dumps(payload)  # JSON-safe
