"""Unit tests for the box-filter / variable-window stereo application."""

import numpy as np
import pytest

from repro.adders.rca import RippleCarryAdder
from repro.apps.boxfilter import (
    box_filter_mean,
    box_filter_sums,
    disparity_map,
    variable_window_cost,
)
from repro.apps.images import natural_image
from repro.core.gear import GeArAdder, GeArConfig


def _brute_box_sums(image, radius):
    rows, cols = image.shape
    out = np.zeros_like(image)
    for y in range(rows):
        for x in range(cols):
            y1, y2 = max(0, y - radius), min(rows - 1, y + radius)
            x1, x2 = max(0, x - radius), min(cols - 1, x + radius)
            out[y, x] = image[y1 : y2 + 1, x1 : x2 + 1].sum()
    return out


class TestBoxSums:
    def test_exact_matches_brute_force(self):
        image = natural_image(12, 14, seed=1)
        for radius in (0, 1, 2, 3):
            np.testing.assert_array_equal(
                box_filter_sums(image, radius), _brute_box_sums(image, radius)
            )

    def test_radius_zero_is_identity(self):
        image = natural_image(6, 6, seed=2)
        np.testing.assert_array_equal(box_filter_sums(image, 0), image)

    def test_exact_adder_matches_reference(self):
        image = natural_image(10, 10, seed=3)
        got = box_filter_sums(image, 2, RippleCarryAdder(20))
        np.testing.assert_array_equal(got, _brute_box_sums(image, 2))

    def test_accurate_config_keeps_boxes_tight(self):
        image = natural_image(16, 16, seed=4)
        adder = GeArAdder(GeArConfig(20, 4, 12))  # p(err) ~ 1e-4
        approx = box_filter_sums(image, 2, adder)
        exact = _brute_box_sums(image, 2)
        rel = np.abs(approx - exact) / np.maximum(exact, 1)
        assert rel.mean() < 0.02

    def test_corner_differencing_amplifies_relative_error(self):
        # Observation: box sums are *differences* of four large integral
        # values, so the integral stage's absolute errors are amplified
        # relative to the (much smaller) box sum — an aggressive config
        # that is fine for plain integrals is not fine for box filtering.
        image = natural_image(16, 16, seed=4)
        adder = GeArAdder(GeArConfig(20, 5, 5))
        box_rel = np.abs(
            box_filter_sums(image, 2, adder) - _brute_box_sums(image, 2)
        ) / np.maximum(_brute_box_sums(image, 2), 1)
        from repro.apps.integral import integral_image_2d

        integral_rel = np.abs(
            integral_image_2d(image, adder) - integral_image_2d(image)
        ) / np.maximum(integral_image_2d(image), 1)
        assert box_rel.mean() > 5 * integral_rel.mean()

    def test_input_validation(self):
        with pytest.raises(ValueError):
            box_filter_sums(np.arange(5), 1)
        with pytest.raises(ValueError):
            box_filter_sums(np.zeros((3, 3), dtype=np.int64), -1)


class TestBoxMean:
    def test_constant_image_fixed_point(self):
        image = np.full((9, 9), 40, dtype=np.int64)
        np.testing.assert_array_equal(box_filter_mean(image, 2), image)

    def test_mean_is_smoothing(self):
        image = natural_image(20, 20, seed=5)
        smoothed = box_filter_mean(image, 3)
        assert np.abs(np.diff(smoothed, axis=1)).mean() < \
            np.abs(np.diff(image, axis=1)).mean()


class TestStereo:
    def _pair(self, true_disp=3, seed=6):
        right = natural_image(24, 40, seed=seed)
        left = np.roll(right, true_disp, axis=1)
        return left, right

    def test_cost_minimal_at_true_disparity(self):
        left, right = self._pair(true_disp=3)
        interior = (slice(6, 18), slice(10, 34))
        at_true = variable_window_cost(left, right, 3, 2)[interior]
        at_wrong = variable_window_cost(left, right, 1, 2)[interior]
        assert at_true.mean() < at_wrong.mean()

    def test_exact_disparity_map_recovers_shift(self):
        left, right = self._pair(true_disp=3)
        disp = disparity_map(left, right, max_disparity=6, radius=2)
        interior = disp[6:18, 10:34]
        assert np.mean(interior == 3) > 0.9

    def test_approximate_disparity_close_to_exact(self):
        left, right = self._pair(true_disp=3, seed=7)
        adder = GeArAdder(GeArConfig(20, 4, 12))  # box-filter-safe config
        exact = disparity_map(left, right, max_disparity=6, radius=2)
        approx = disparity_map(left, right, max_disparity=6, radius=2,
                               adder=adder)
        interior = (slice(6, 18), slice(10, 34))
        agreement = np.mean(exact[interior] == approx[interior])
        assert agreement > 0.8

    def test_disparity_validation(self):
        left, right = self._pair()
        with pytest.raises(ValueError):
            variable_window_cost(left, right, -1, 2)
        with pytest.raises(ValueError):
            variable_window_cost(left, right[:, :-1], 1, 2)
