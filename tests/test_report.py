"""Unit tests for the reproduction-report generator."""

import pathlib

from repro.analysis.report import generate_report, write_report


class TestGenerateReport:
    def test_quick_report_contains_core_sections(self):
        text = generate_report(quick=True)
        assert text.startswith("# GeAr reproduction report")
        for heading in ("## Figure 1", "## Figure 7", "## Table 3", "## Table 4"):
            assert heading in text
        # Heavy sections and ablations skipped in quick mode.
        assert "## Table 1" not in text
        assert "Ablation" not in text

    def test_quick_report_reproduces_key_numbers(self):
        text = generate_report(quick=True)
        assert "2.9297" in text      # Table III row 1
        assert "0.004883" in text or "4.882" in text  # Table IV GeAr(1,9)

    def test_ablation_override(self):
        text = generate_report(quick=True, include_ablations=False)
        assert "Ablation" not in text

    def test_write_report(self, tmp_path):
        target = write_report(tmp_path / "sub" / "rep.md", quick=True)
        assert isinstance(target, pathlib.Path)
        assert target.exists()
        assert target.read_text().startswith("# GeAr reproduction report")
