"""Unit tests for the signed-arithmetic wrapper."""

import numpy as np
import pytest

from repro.adders.rca import RippleCarryAdder
from repro.core.gear import GeArAdder, GeArConfig
from repro.core.signed import SignedAdder


def _all_signed_pairs(width):
    lo, hi = -(1 << (width - 1)), (1 << (width - 1))
    vals = np.arange(lo, hi, dtype=np.int64)
    size = vals.size
    return np.repeat(vals, size), np.tile(vals, size)


class TestExactSigned:
    def test_exhaustive_exactness(self):
        signed = SignedAdder(RippleCarryAdder(8))
        a, b = _all_signed_pairs(8)
        np.testing.assert_array_equal(signed.add(a, b), a + b)

    def test_scalar_cases(self):
        signed = SignedAdder(RippleCarryAdder(8))
        assert signed.add(-128, -128) == -256
        assert signed.add(127, 127) == 254
        assert signed.add(-1, 1) == 0
        assert signed.add(0, 0) == 0

    def test_subtract(self):
        signed = SignedAdder(RippleCarryAdder(8))
        assert signed.subtract(100, 27) == 73
        assert signed.subtract(-100, 27) == -127
        assert signed.subtract(5, -5) == 10

    def test_subtract_min_value_rejected(self):
        signed = SignedAdder(RippleCarryAdder(8))
        with pytest.raises(ValueError):
            signed.subtract(0, -128)
        with pytest.raises(ValueError):
            signed.subtract(np.array([0]), np.array([-128]))


class TestApproximateSigned:
    def test_error_magnitude_matches_unsigned(self):
        # The sign fix-up is exact, so signed error magnitudes equal the
        # unsigned adder's on the corresponding bit patterns.
        adder = GeArAdder(GeArConfig(8, 2, 2))
        signed = SignedAdder(adder)
        a, b = _all_signed_pairs(8)
        signed_err = np.abs(np.asarray(signed.add(a, b)) - (a + b))
        au, bu = a & 0xFF, b & 0xFF
        unsigned_err = np.abs(np.asarray(adder.add(au, bu)) - (au + bu))
        np.testing.assert_array_equal(signed_err, unsigned_err)

    def test_error_distance_helper(self):
        signed = SignedAdder(GeArAdder(GeArConfig(8, 2, 2)))
        a, b = _all_signed_pairs(8)
        ed = signed.error_distance(a, b)
        assert ed.min() >= 0
        assert (ed > 0).any()

    def test_error_rate_matches_unsigned_model(self):
        adder = GeArAdder(GeArConfig(8, 2, 2))
        signed = SignedAdder(adder)
        a, b = _all_signed_pairs(8)
        rate = float(np.mean(np.asarray(signed.add(a, b)) != a + b))
        from repro.core.error_model import error_probability_exact

        assert rate == pytest.approx(error_probability_exact(adder.config))


class TestValidation:
    def test_range_checked(self):
        signed = SignedAdder(RippleCarryAdder(8))
        with pytest.raises(ValueError):
            signed.add(128, 0)
        with pytest.raises(ValueError):
            signed.add(0, -129)
        with pytest.raises(ValueError):
            signed.add(np.array([200]), np.array([0]))

    def test_type_checked(self):
        signed = SignedAdder(RippleCarryAdder(8))
        with pytest.raises(TypeError):
            signed.add(1.5, 0)
        with pytest.raises(TypeError):
            signed.add(np.array([0.5]), np.array([0]))
