"""Tests for the warm worker pool and cross-process telemetry merging.

The serve daemon absorbs one TelemetryFrame per request, shipped back
from whichever worker ran it (a thread for workers=0, a separate
process otherwise).  These tests pin the contract that makes /stats
trustworthy: worker frames survive the process boundary as dicts and
round-trip through ``TelemetryFrame.from_dict``, the daemon aggregate
absorbs them without touching the global collector, and — because
frames form a commutative monoid — the aggregate is independent of the
interleaving in which concurrent requests complete.  Quantiles over the
merged histograms (the /stats p50/p99 source) are covered last.
"""

import random

import pytest

from repro import obs
from repro.obs.aggregate import (
    DURATION_BOUNDS,
    HistogramState,
    TelemetryFrame,
    merge_frames,
)
from repro.serve.pool import WorkerPool, run_endpoint

EVAL_WIRE = {"adder": "gear_r2p2", "samples": 500, "seed": 3}


# ---------------------------------------------------------------------------
# run_endpoint: one request, one frame
# ---------------------------------------------------------------------------

def test_run_endpoint_returns_payload_and_frame():
    payload, frame_dict = run_endpoint("eval", EVAL_WIRE)
    assert payload["samples"] == 500
    frame = TelemetryFrame.from_dict(frame_dict)
    assert frame.counters.get("engine.requests") == 1
    assert any(path.startswith("serve.worker.eval") for path in frame.spans)


def test_run_endpoint_leaves_global_collector_untouched():
    with obs.collecting() as collector:
        run_endpoint("eval", EVAL_WIRE)
        outer = collector.snapshot()
    # the worker recorded into its private collector, not the global one
    assert "engine.requests" not in outer.counters


def test_run_endpoint_frames_are_per_request():
    _, frame_a = run_endpoint("eval", EVAL_WIRE)
    _, frame_b = run_endpoint("eval", dict(EVAL_WIRE, samples=700))
    assert TelemetryFrame.from_dict(frame_a).counters["engine.requests"] == 1
    assert TelemetryFrame.from_dict(frame_b).counters["engine.requests"] == 1


# ---------------------------------------------------------------------------
# WorkerPool: frames cross the execution boundary
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("workers", [0, 1])
def test_pool_ships_frames_across_boundary(workers):
    pool = WorkerPool(workers=workers)
    try:
        payload, frame_dict = pool.submit("eval", EVAL_WIRE).result(timeout=60)
    finally:
        pool.shutdown()
    assert payload["samples"] == 500
    frame = TelemetryFrame.from_dict(frame_dict)
    assert frame.counters["engine.requests"] == 1


def test_pool_process_results_match_thread_results():
    thread_pool = WorkerPool(workers=0)
    process_pool = WorkerPool(workers=1)
    try:
        thread_payload, _ = thread_pool.submit("eval", EVAL_WIRE).result(60)
        process_payload, _ = process_pool.submit("eval", EVAL_WIRE).result(60)
    finally:
        thread_pool.shutdown()
        process_pool.shutdown()
    assert thread_payload == process_payload


def test_absorbed_pool_frames_accumulate_in_aggregate():
    pool = WorkerPool(workers=0)
    aggregate = obs.Collector()
    try:
        for i in range(3):
            _, frame_dict = pool.submit(
                "eval", dict(EVAL_WIRE, seed=i)).result(60)
            aggregate.absorb(TelemetryFrame.from_dict(frame_dict))
    finally:
        pool.shutdown()
    assert aggregate.snapshot().counters["engine.requests"] == 3


# ---------------------------------------------------------------------------
# merge commutativity under concurrent interleavings
# ---------------------------------------------------------------------------

def _request_frames(count=6):
    pool = WorkerPool(workers=0)
    try:
        frames = []
        for i in range(count):
            endpoint = "verify" if i % 3 == 2 else "eval"
            wire = ({"adders": ["gear_r2p2"], "layers": ["behavioural"],
                     "width": 6} if endpoint == "verify"
                    else dict(EVAL_WIRE, seed=i))
            _, frame_dict = pool.submit(endpoint, wire).result(60)
            frames.append(TelemetryFrame.from_dict(frame_dict))
        return frames
    finally:
        pool.shutdown()


def test_frame_merge_is_order_independent():
    """Any completion interleaving yields the same /stats aggregate."""
    frames = _request_frames()
    reference = merge_frames(frames).to_dict()
    rng = random.Random(2015)
    for _ in range(5):
        shuffled = list(frames)
        rng.shuffle(shuffled)
        assert merge_frames(shuffled).to_dict() == reference


def test_absorb_matches_merge_frames():
    frames = _request_frames(4)
    collector = obs.Collector()
    for frame in reversed(frames):
        collector.absorb(frame)
    assert (collector.snapshot().to_dict()
            == merge_frames(frames).to_dict())


def test_interleaved_absorption_from_concurrent_pools():
    """Two collectors absorbing disjoint halves merge to the same total."""
    frames = _request_frames(6)
    left, right = obs.Collector(), obs.Collector()
    for i, frame in enumerate(frames):
        (left if i % 2 else right).absorb(frame)
    combined = left.snapshot().merge(right.snapshot())
    assert combined.to_dict() == merge_frames(frames).to_dict()


# ---------------------------------------------------------------------------
# histogram quantiles (the /stats p50/p99 source)
# ---------------------------------------------------------------------------

def _hist(values, bounds=DURATION_BOUNDS):
    state = HistogramState.zero(bounds)
    for value in values:
        state = state.observe(value)
    return state


def test_quantile_bounds_and_edges():
    hist = _hist([0.0005] * 50 + [0.3] * 50)
    # p50 falls in the bucket containing the 50th sample
    assert hist.quantile(0.5) >= 0.0005
    assert hist.quantile(0.0) > 0
    assert hist.quantile(1.0) >= 0.3


def test_quantile_empty_histogram_is_zero():
    assert HistogramState.zero(DURATION_BOUNDS).quantile(0.5) == 0.0


def test_quantile_rejects_out_of_range():
    with pytest.raises(ValueError):
        _hist([0.1]).quantile(1.5)


def test_quantile_is_conservative_upper_bound():
    values = [0.001, 0.002, 0.004, 0.008, 0.2]
    hist = _hist(values)
    for q, value in [(0.2, 0.001), (0.6, 0.004), (1.0, 0.2)]:
        assert hist.quantile(q) >= value


def test_quantile_stable_under_merge_order():
    a = _hist([0.001] * 30)
    b = _hist([0.05] * 10)
    c = _hist([0.4] * 10)
    assert (a.merge(b).merge(c).quantile(0.99)
            == c.merge(a.merge(b)).quantile(0.99))
    assert a.merge(b).merge(c).count == 50
