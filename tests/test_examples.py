"""Smoke tests: every example script runs to completion.

Examples double as integration tests of the public API — a broken import
or a renamed keyword surfaces here before a user hits it.  Output is
captured; scripts that write artefacts do so into the examples directory
(kept, as the repository ships them).
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    p for p in (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)
#: Examples whose full run is slow; still executed, with a looser timeout
#: budget communicated via smaller workloads inside the scripts themselves.
_IDS = [p.stem for p in EXAMPLES]


@pytest.mark.parametrize("script", EXAMPLES, ids=_IDS)
def test_example_runs(script, capsys, monkeypatch):
    # Examples must not depend on argv or cwd.
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_example_inventory():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "design_space_exploration",
        "image_pipeline",
        "error_correction_demo",
        "rtl_roundtrip",
        "rtl_verification_flow",
        "adaptive_accuracy",
        "approximate_multiplier",
        "stereo_matching",
    } <= names
