"""Unit tests for the §3.3 error detection/correction engine."""

import numpy as np
import pytest

from repro.adders.gda import GracefullyDegradingAdder
from repro.core.correction import ErrorCorrector
from repro.core.gear import GeArAdder, GeArConfig
from tests.conftest import random_pairs


def _exhaustive_pairs(width):
    size = 1 << width
    vals = np.arange(size, dtype=np.int64)
    return np.repeat(vals, size), np.tile(vals, size)


class TestFullCorrectionExactness:
    @pytest.mark.parametrize("n,r,p", [
        (8, 1, 1), (8, 2, 2), (8, 1, 3), (8, 2, 4), (10, 2, 2),
    ])
    def test_exhaustive_exactness(self, n, r, p):
        adder = GeArAdder(GeArConfig(n, r, p))
        a, b = _exhaustive_pairs(n)
        result = ErrorCorrector(adder).add(a, b)
        np.testing.assert_array_equal(result.value, a + b)

    def test_partial_config_exactness(self):
        adder = GeArAdder(GeArConfig(10, 3, 3, allow_partial=True))
        a, b = _exhaustive_pairs(10)
        result = ErrorCorrector(adder).add(a, b)
        np.testing.assert_array_equal(result.value, a + b)

    def test_gda_correction_exactness(self):
        adder = GracefullyDegradingAdder(8, 2, 2)
        a, b = _exhaustive_pairs(8)
        result = ErrorCorrector(adder).add(a, b)
        np.testing.assert_array_equal(result.value, a + b)

    def test_wide_config_random(self):
        adder = GeArAdder(GeArConfig(24, 4, 4))
        a, b = random_pairs(24, 50000, seed=1)
        result = ErrorCorrector(adder).add(a, b)
        np.testing.assert_array_equal(result.value, a + b)


class TestCycleAccounting:
    def test_error_free_addition_is_one_cycle(self):
        adder = GeArAdder(GeArConfig(12, 4, 4))
        result = ErrorCorrector(adder).add(3, 4)
        assert result.cycles == 1
        assert result.corrections == 0

    def test_single_error_two_cycles(self):
        # Fig. 5 discussion: one erroneous sub-adder -> 2 cycles.
        adder = GeArAdder(GeArConfig(12, 4, 4))
        result = ErrorCorrector(adder).add(0b000011111111, 0b000000000001)
        assert result.cycles == 2
        assert result.corrections == 1

    def test_fig6_worst_case_three_cycles(self):
        # Fig. 6: k=3, both speculative sub-adders wrong -> 3 cycles.
        adder = GeArAdder(GeArConfig(12, 2, 6))
        a, b = 0b111111111111, 0b000000000001
        result = ErrorCorrector(adder).add(a, b)
        assert result.value == a + b
        assert result.cycles == 3
        assert result.corrections == 2

    def test_cycles_bounded_by_k(self):
        cfg = GeArConfig(8, 1, 1)  # k = 7
        adder = GeArAdder(cfg)
        a, b = _exhaustive_pairs(8)
        result = ErrorCorrector(adder).add(a, b)
        assert int(np.max(result.cycles)) <= cfg.k
        assert ErrorCorrector(adder).max_cycles == cfg.k

    def test_mean_cycles_close_to_model(self):
        # E[cycles] = 1 + E[#corrections]; for k=2 this is 1 + p_err.
        cfg = GeArConfig(12, 4, 4)
        adder = GeArAdder(cfg)
        a, b = _exhaustive_pairs(12)
        result = ErrorCorrector(adder).add(a, b)
        mean_cycles = float(np.mean(result.cycles))
        assert mean_cycles == pytest.approx(1 + adder.error_probability(), abs=1e-9)


class TestSelectiveCorrection:
    def test_disabled_equals_plain_adder(self):
        adder = GeArAdder(GeArConfig(12, 2, 6))
        corrector = ErrorCorrector(adder, enabled=[False, False])
        a, b = random_pairs(12, 5000, seed=2)
        result = corrector.add(a, b)
        np.testing.assert_array_equal(result.value, np.asarray(adder.add(a, b)))
        assert int(np.max(result.cycles)) == 1

    def test_msb_only_removes_top_errors(self):
        adder = GeArAdder(GeArConfig(12, 2, 6))
        a, b = random_pairs(12, 20000, seed=3)
        full = np.asarray(ErrorCorrector(adder).add(a, b).value)
        msb = ErrorCorrector(adder, enabled=[False, True]).add(a, b)
        residual = np.abs(np.asarray(msb.value) - (a + b))
        # MSB window errors (weight 2^10) must be gone...
        assert residual.max() < (1 << 10)
        np.testing.assert_array_equal(full, a + b)

    def test_enabled_mask_length_checked(self):
        adder = GeArAdder(GeArConfig(12, 2, 6))
        with pytest.raises(ValueError):
            ErrorCorrector(adder, enabled=[True])

    def test_non_suffix_mask_can_hurt(self):
        # Reproduction finding: the §3.3 control signal is hazardous for
        # masks that enable a sub-adder but disable the one above it.
        # GeAr(11,3,1) partial, a=16, b=1008: correcting sub-adder 3 wraps
        # its all-ones field to zero and hands the carry to sub-adder 4,
        # which is disabled — the "corrected" result is *worse*.
        cfg = GeArConfig(11, 3, 1, allow_partial=True)
        adder = GeArAdder(cfg)
        a, b = 16, 1008
        plain_err = (a + b) - adder.add(a, b)
        bad_mask = [False, True, False]  # sub-adder 3 on, 4 off
        hurt = ErrorCorrector(adder, enabled=bad_mask).add(a, b)
        assert (a + b) - hurt.value > plain_err
        # The suffix-closed mask covering the same sub-adder is safe.
        safe_mask = [False, True, True]
        safe = ErrorCorrector(adder, enabled=safe_mask).add(a, b)
        assert 0 <= (a + b) - safe.value <= plain_err

    def test_partial_enable_never_worse_than_none(self):
        adder = GeArAdder(GeArConfig(16, 2, 2))
        a, b = random_pairs(16, 20000, seed=4)
        none = np.abs(np.asarray(adder.add(a, b)) - (a + b)).mean()
        spec = adder.config.k - 1
        for enabled_count in (1, 3, spec):
            mask = [i >= spec - enabled_count for i in range(spec)]
            res = ErrorCorrector(adder, enabled=mask).add(a, b)
            med = np.abs(np.asarray(res.value) - (a + b)).mean()
            assert med <= none + 1e-12


class TestInterface:
    def test_scalar_result_types(self):
        adder = GeArAdder(GeArConfig(12, 4, 4))
        result = ErrorCorrector(adder).add(100, 200)
        assert isinstance(result.value, int)
        assert isinstance(result.cycles, int)
        assert isinstance(result.corrections, int)

    def test_operand_validation(self):
        adder = GeArAdder(GeArConfig(8, 2, 2))
        with pytest.raises(ValueError):
            ErrorCorrector(adder).add(256, 0)

    def test_initial_flags_reported(self):
        adder = GeArAdder(GeArConfig(12, 4, 4))
        result = ErrorCorrector(adder).add(0b000011111111, 0b000000000001)
        assert result.initial_flags == 0b10  # flag of sub-adder index 1

    def test_broadcasting(self):
        adder = GeArAdder(GeArConfig(8, 2, 2))
        result = ErrorCorrector(adder).add(np.array([1, 2, 3]), 5)
        np.testing.assert_array_equal(result.value, [6, 7, 8])
