"""Unit tests for hierarchical Verilog emission and elaboration."""

import numpy as np
import pytest

from repro.core.gear import GeArAdder, GeArConfig
from repro.rtl.builders import build_gear
from repro.rtl.equivalence import check_equivalence
from repro.rtl.hierarchy import elaborate_hierarchical, emit_gear_hierarchical
from repro.rtl.sim import simulate_bus
from repro.rtl.verilog_parser import VerilogSyntaxError
from tests.conftest import random_pairs


class TestEmission:
    def test_module_structure(self):
        src = emit_gear_hierarchical(GeArConfig(12, 4, 4))
        assert src.count("endmodule") == 2  # one sub-adder + top
        assert "gear_h_12_4_4_sub8 u0" in src
        assert "gear_h_12_4_4_sub8 u1" in src
        assert ".A(A[7:0])" in src
        assert ".A(A[11:4])" in src

    def test_one_submodule_per_distinct_length(self):
        # Partial configs have a same-length anchored last window.
        src = emit_gear_hierarchical(GeArConfig(20, 3, 7, allow_partial=True))
        assert src.count("endmodule") == 2
        assert src.count("u4 (") == 1  # five instances u0..u4

    def test_err_flags_emitted(self):
        src = emit_gear_hierarchical(GeArConfig(12, 2, 6))
        assert "output [1:0] ERR" in src
        assert "assign ERR[1]" in src

    def test_custom_name(self):
        src = emit_gear_hierarchical(GeArConfig(8, 2, 2), name="mytop")
        assert "module mytop (" in src


class TestElaboration:
    @pytest.mark.parametrize("n,r,p", [(8, 2, 2), (12, 4, 4), (12, 2, 6),
                                       (16, 4, 8)])
    def test_matches_behavioural(self, n, r, p):
        netlist = elaborate_hierarchical(
            emit_gear_hierarchical(GeArConfig(n, r, p))
        )
        adder = GeArAdder(GeArConfig(n, r, p))
        a, b = random_pairs(n, 2000, seed=n)
        np.testing.assert_array_equal(
            simulate_bus(netlist, {"A": a, "B": b}, "S"),
            np.asarray(adder.add(a, b)),
        )

    def test_equivalent_to_flat_netlist_exhaustively(self):
        cfg = GeArConfig(10, 2, 4)
        flat = build_gear(10, 2, 4)
        hier = elaborate_hierarchical(emit_gear_hierarchical(cfg))
        report = check_equivalence(hier, flat)
        assert report.equivalent and report.exhaustive

    def test_partial_config(self):
        cfg = GeArConfig(20, 3, 7, allow_partial=True)
        netlist = elaborate_hierarchical(emit_gear_hierarchical(cfg))
        adder = GeArAdder(cfg)
        a, b = random_pairs(20, 2000, seed=9)
        np.testing.assert_array_equal(
            simulate_bus(netlist, {"A": a, "B": b}, "S"),
            np.asarray(adder.add(a, b)),
        )

    def test_err_bus_matches_flat(self):
        cfg = GeArConfig(12, 2, 6)
        hier = elaborate_hierarchical(emit_gear_hierarchical(cfg))
        flat = build_gear(12, 2, 6)
        a, b = random_pairs(12, 3000, seed=4)
        np.testing.assert_array_equal(
            simulate_bus(hier, {"A": a, "B": b}, "ERR"),
            simulate_bus(flat, {"A": a, "B": b}, "ERR"),
        )

    def test_top_selection(self):
        src = emit_gear_hierarchical(GeArConfig(8, 2, 2), name="thetop")
        netlist = elaborate_hierarchical(src, top="thetop")
        assert netlist.name == "thetop"
        with pytest.raises(VerilogSyntaxError):
            elaborate_hierarchical(src, top="missing")

    def test_no_modules_rejected(self):
        with pytest.raises(VerilogSyntaxError):
            elaborate_hierarchical("wire x;")

    def test_timing_close_to_flat(self):
        from repro.timing.fpga import characterize_netlist

        cfg = GeArConfig(16, 4, 4)
        hier = characterize_netlist(
            elaborate_hierarchical(emit_gear_hierarchical(cfg)), name="hier"
        )
        flat = characterize_netlist(build_gear(16, 4, 4), name="flat")
        assert hier.delay_ns == pytest.approx(flat.delay_ns, abs=0.1)
        assert abs(hier.luts - flat.luts) <= 4
