"""Tests for the pluggable backend layer (repro.engine.backends).

Covers the registry contract, explicit and ``auto`` backend resolution,
the analytic backend's exactness through the public ``evaluate`` path,
cache-key disjointness between backends, determinism across worker
counts, and the removed legacy request spellings (which now raise a
pointed TypeError).
"""

import pytest

from repro.core.gear import GeArAdder, GeArConfig
from repro.engine import (
    BACKENDS,
    AnalyticUnsupported,
    Engine,
    EvalRequest,
    evaluate,
    register_backend,
    resolve_backend,
)
from repro.metrics.exhaustive import exhaustive_stats
from repro.utils.distributions import GaussianOperands, SparseOperands


@pytest.fixture()
def adder():
    return GeArAdder(GeArConfig(8, 2, 2))


# ---------------------------------------------------------------------------
# registry and resolution
# ---------------------------------------------------------------------------

def test_registry_contains_both_builtin_backends():
    assert set(BACKENDS) >= {"sampling", "analytic"}
    for backend in BACKENDS.values():
        assert callable(backend.supports)
        assert callable(backend.evaluate)


def test_register_backend_rejects_auto_name():
    class Fake:
        name = "auto"

        def supports(self, request):
            return True

        def evaluate(self, request, engine):
            raise NotImplementedError

    with pytest.raises(ValueError):
        register_backend(Fake())


def test_unknown_backend_name_rejected_at_request_build(adder):
    with pytest.raises(ValueError, match="unknown backend"):
        EvalRequest.exhaustive(adder, backend="quantum")


def test_auto_resolves_to_analytic_for_block_based(adder):
    request = EvalRequest.exhaustive(adder, backend="auto")
    assert resolve_backend(request).name == "analytic"


def test_auto_falls_back_to_sampling(adder):
    request = EvalRequest.monte_carlo(
        adder, 100, distribution=GaussianOperands(8), backend="auto")
    assert resolve_backend(request).name == "sampling"


def test_explicit_analytic_unsupported_raises(adder):
    request = EvalRequest.monte_carlo(
        adder, 100, distribution=GaussianOperands(8), backend="analytic")
    with pytest.raises(AnalyticUnsupported):
        evaluate(request)


# ---------------------------------------------------------------------------
# analytic answers through the public evaluate() path
# ---------------------------------------------------------------------------

def test_analytic_exhaustive_matches_simulation(adder):
    result = evaluate(EvalRequest.exhaustive(adder, backend="analytic"))
    reference = exhaustive_stats(adder)
    assert result.stats.samples == 0
    assert result.stats.error_rate == pytest.approx(reference.error_rate,
                                                    abs=1e-12)
    assert result.stats.med == pytest.approx(reference.med, abs=1e-9)
    assert result.stats.max_ed_observed == reference.max_ed_observed


def test_analytic_monte_carlo_uses_distribution_profile(adder):
    sparse = evaluate(EvalRequest.monte_carlo(
        adder, 100, distribution=SparseOperands(8, one_density=0.1),
        backend="analytic"))
    uniform = evaluate(EvalRequest.exhaustive(adder, backend="analytic"))
    # sparse operands rarely carry: far fewer speculative misses
    assert sparse.stats.error_rate < uniform.stats.error_rate


def test_analytic_identical_across_jobs(adder):
    request = EvalRequest.exhaustive(adder, backend="analytic")
    one = Engine(jobs=1).evaluate(request)
    two = Engine(jobs=2).evaluate(request)
    assert one.to_json() == two.to_json()


# ---------------------------------------------------------------------------
# cache-key disjointness and analytic caching
# ---------------------------------------------------------------------------

def test_warm_sampling_cache_not_served_to_analytic(adder, tmp_path):
    engine = Engine(jobs=1, cache=tmp_path)
    sampled = engine.evaluate(EvalRequest.exhaustive(adder))
    assert sampled.shards_executed > 0

    analytic = engine.evaluate(EvalRequest.exhaustive(adder,
                                                      backend="analytic"))
    # nothing from the sampled run may answer the analytic request
    assert analytic.shards_cached == 0
    assert analytic.shards_executed == 1
    assert analytic.stats.samples == 0

    warm = engine.evaluate(EvalRequest.exhaustive(adder, backend="analytic"))
    assert warm.shards_cached == 1
    assert warm.shards_executed == 0
    assert warm.stats == analytic.stats

    # and the analytic entry did not poison the sampling key either
    resampled = engine.evaluate(EvalRequest.exhaustive(adder))
    assert resampled.stats == sampled.stats
    assert resampled.stats.samples > 0


# ---------------------------------------------------------------------------
# constructor classmethods and removed legacy spellings
# ---------------------------------------------------------------------------

def test_classmethods_build_equivalent_requests(adder):
    assert EvalRequest.monte_carlo(adder, 500, seed=7) == EvalRequest(
        adder=adder, mode="monte_carlo", samples=500, seed=7)
    assert EvalRequest.exhaustive(adder) == EvalRequest(
        adder=adder, mode="exhaustive")


def test_engine_monte_carlo_removed(adder):
    engine = Engine(jobs=1)
    with pytest.raises(TypeError, match="EvalRequest.monte_carlo"):
        engine.monte_carlo(adder, samples=1000, seed=3)


def test_engine_exhaustive_removed(adder):
    engine = Engine(jobs=1)
    with pytest.raises(TypeError, match="EvalRequest.exhaustive"):
        engine.exhaustive(adder)
