"""Property tests for the AdderSpec IR: round-trips and fingerprints.

The ISSUE acceptance for the spec layer is a *proof-shaped* guarantee:
``AdderSpec.from_json(spec.to_json()) == spec`` for arbitrary valid
specs, and the fingerprint is a total, stable function of the geometry
(equal specs → equal fingerprints; renames change the fingerprint but
never the sums).  Hypothesis sweeps the catalog generators over random
geometries so the properties hold for every family at once.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spec import AdderSpec, WindowSpec
from repro.spec.catalog import (
    SPEC_CATALOG,
    aca1_spec,
    aca2_spec,
    etaii_spec,
    etaiim_spec,
    exact_spec,
    gda_spec,
    gear_spec,
    hetero_spec,
    loa_spec,
)


@st.composite
def gear_geometries(draw):
    """Random (n, r, p) with at least one speculative sub-adder."""
    n = draw(st.sampled_from([8, 12, 16]))
    r = draw(st.integers(1, n // 2))
    p = draw(st.integers(1, n - r - 1))
    strict = (n - r - p) % r == 0
    return n, r, p, not strict


@st.composite
def catalog_specs(draw):
    """A random spec from a random family's generator."""
    kind = draw(st.sampled_from(
        ["gear", "aca1", "aca2", "etaii", "etaiim", "gda", "loa", "exact",
         "hetero"]))
    n = draw(st.sampled_from([8, 12, 16]))
    if kind == "gear":
        n, r, p, partial = draw(gear_geometries())
        return gear_spec(n, r, p, allow_partial=partial)
    if kind == "aca1":
        return aca1_spec(n, draw(st.integers(2, n - 1)))
    if kind == "aca2":
        l = draw(st.sampled_from([l for l in range(2, n, 2)
                                  if (n - l) % (l // 2) == 0]))
        return aca2_spec(n, l)
    if kind == "etaii":
        l = draw(st.sampled_from([l for l in range(2, n, 2)
                                  if (n - l) % (l // 2) == 0]))
        return etaii_spec(n, l)
    if kind == "etaiim":
        return etaiim_spec(n, 4, connected=draw(st.integers(2, 3)))
    if kind == "gda":
        mb = draw(st.sampled_from([m for m in (1, 2, 4) if n % m == 0]))
        mc = draw(st.sampled_from([c for c in (mb, 2 * mb, 4 * mb)
                                   if c < n]))
        return gda_spec(n, mb, mc)
    if kind == "loa":
        return loa_spec(n, draw(st.integers(0, n - 1)))
    if kind == "hetero":
        return hetero_spec(n)
    return exact_spec(n, draw(st.sampled_from(["rca", "cla", "ksa"])))


class TestJsonRoundTrip:
    @given(catalog_specs())
    @settings(max_examples=200, deadline=None)
    def test_from_json_inverts_to_json(self, spec):
        assert AdderSpec.from_json(spec.to_json()) == spec

    @given(catalog_specs())
    @settings(max_examples=50, deadline=None)
    def test_round_trip_preserves_fingerprint(self, spec):
        assert AdderSpec.from_json(spec.to_json()).fingerprint() == \
            spec.fingerprint()

    @given(catalog_specs())
    @settings(max_examples=50, deadline=None)
    def test_dict_round_trip_is_plain_json(self, spec):
        # to_dict must be JSON-serialisable with stdlib json alone.
        data = json.loads(json.dumps(spec.to_dict()))
        assert AdderSpec.from_dict(data) == spec

    def test_unknown_fields_rejected(self):
        data = exact_spec(8).to_dict()
        data["frobnicate"] = 1
        with pytest.raises(ValueError, match="unknown spec fields"):
            AdderSpec.from_dict(data)

    def test_future_version_rejected(self):
        data = exact_spec(8).to_dict()
        data["version"] = 99
        with pytest.raises(ValueError, match="unsupported spec version"):
            AdderSpec.from_dict(data)

    def test_non_object_json_rejected(self):
        with pytest.raises(ValueError, match="must be an object"):
            AdderSpec.from_json("[1, 2, 3]")


class TestFingerprint:
    @given(gear_geometries())
    @settings(max_examples=100, deadline=None)
    def test_fingerprint_is_deterministic(self, geom):
        n, r, p, partial = geom
        one = gear_spec(n, r, p, allow_partial=partial)
        two = gear_spec(n, r, p, allow_partial=partial)
        assert one == two
        assert one.fingerprint() == two.fingerprint()

    @given(catalog_specs())
    @settings(max_examples=50, deadline=None)
    def test_rename_changes_fingerprint_not_geometry(self, spec):
        other = spec.renamed(spec.name + "_alias")
        assert other.fingerprint() != spec.fingerprint()
        assert other.windows == spec.windows
        assert other.to_windows() == spec.to_windows()

    def test_catalog_fingerprints_distinct_at_common_width(self):
        width = 16
        prints = {}
        for key, family in SPEC_CATALOG.items():
            fp = family(width).fingerprint()
            assert fp not in prints, f"{key} collides with {prints[fp]}"
            prints[fp] = key

    def test_fingerprint_encodes_every_window_field(self):
        base = hetero_spec(8)
        # Perturbing the sub-adder architecture or the detect flag must
        # perturb the fingerprint even though name/width/coverage agree.
        w = base.windows[0]
        rearched = AdderSpec(
            name=base.name, width=base.width,
            windows=(WindowSpec(w.low, w.high, w.result_low, w.result_high,
                                "rca", w.pred),) + base.windows[1:],
            truncation=base.truncation, error_detect=base.error_detect)
        gear = gear_spec(8, 2, 2)
        undetected = AdderSpec(
            name=gear.name, width=gear.width, windows=gear.windows,
            truncation=gear.truncation, error_detect=False)
        prints = {base.fingerprint(), rearched.fingerprint(),
                  gear.fingerprint(), undetected.fingerprint()}
        assert len(prints) == 4


class TestValidation:
    def test_windows_must_cover_the_word(self):
        with pytest.raises(ValueError):
            AdderSpec(name="gap", width=8, windows=(
                WindowSpec(0, 3, 0, 3, "rca", "fused"),
                WindowSpec(5, 7, 5, 7, "rca", "fused"),
            ))

    def test_generator_predictors_require_rca(self):
        with pytest.raises(ValueError, match="rca"):
            AdderSpec(name="bad", width=8, windows=(
                WindowSpec(0, 3, 0, 3, "rca", "fused"),
                WindowSpec(2, 7, 4, 7, "cla", "gen_rca"),
            ))

    def test_truncation_below_first_window(self):
        with pytest.raises(ValueError):
            AdderSpec(name="bad", width=8, truncation=6, windows=(
                WindowSpec(4, 7, 4, 7, "rca", "fused"),
            ))
