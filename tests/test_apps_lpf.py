"""Unit tests for the low-pass filter kernel."""

import numpy as np
import pytest

from repro.adders.rca import RippleCarryAdder
from repro.apps.images import gradient_image, natural_image
from repro.apps.lpf import binomial_kernel_3x3, low_pass_filter
from repro.core.gear import GeArAdder, GeArConfig


class TestKernel:
    def test_binomial_weights(self):
        kernel = binomial_kernel_3x3()
        np.testing.assert_array_equal(
            kernel, [[1, 2, 1], [2, 4, 2], [1, 2, 1]]
        )
        assert kernel.sum() == 16


class TestExactFilter:
    def test_constant_image_unchanged(self):
        img = np.full((8, 8), 77, dtype=np.int64)
        np.testing.assert_array_equal(low_pass_filter(img), img)

    def test_matches_direct_convolution(self):
        img = natural_image(12, 12, seed=1)
        got = low_pass_filter(img)
        kernel = binomial_kernel_3x3()
        padded = np.pad(img, 1, mode="edge")
        rows, cols = img.shape
        expected = np.zeros_like(img)
        for y in range(rows):
            for x in range(cols):
                expected[y, x] = (padded[y : y + 3, x : x + 3] * kernel).sum() >> 4
        np.testing.assert_array_equal(got, expected)

    def test_output_range(self):
        img = natural_image(16, 16, seed=2)
        out = low_pass_filter(img)
        assert out.min() >= 0 and out.max() <= 255

    def test_smooths_high_frequency(self):
        img = natural_image(32, 32, seed=3)
        out = low_pass_filter(img)
        assert np.abs(np.diff(out, axis=1)).mean() <= \
            np.abs(np.diff(img, axis=1)).mean()


class TestApproximateFilter:
    def test_exact_adder_matches_reference(self):
        img = gradient_image(16, 16, seed=4)
        np.testing.assert_array_equal(
            low_pass_filter(img, RippleCarryAdder(12)), low_pass_filter(img)
        )

    def test_gear_output_close(self):
        img = gradient_image(32, 32, seed=5)
        adder = GeArAdder(GeArConfig(12, 4, 4))
        exact = low_pass_filter(img)
        approx = low_pass_filter(img, adder)
        assert np.abs(exact - approx).mean() < 16.0
        assert np.all(approx <= exact)

    def test_width_guard(self):
        img = gradient_image(8, 8, seed=6)
        with pytest.raises(ValueError, match="accumulator"):
            low_pass_filter(img, RippleCarryAdder(8))

    def test_input_validation(self):
        with pytest.raises(ValueError):
            low_pass_filter(np.arange(4))
        with pytest.raises(ValueError):
            low_pass_filter(np.array([[300]]))
        with pytest.raises(ValueError):
            low_pass_filter(np.zeros((0, 0), dtype=np.int64))
