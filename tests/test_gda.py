"""Unit tests for the GDA baseline [13]."""

import numpy as np
import pytest

from repro.adders.gda import GracefullyDegradingAdder
from repro.core.gear import GeArAdder, GeArConfig
from repro.metrics.exhaustive import exhaustive_stats
from tests.conftest import random_pairs


class TestGdaStructure:
    def test_block_windows(self):
        gda = GracefullyDegradingAdder(8, 2, 4)
        assert len(gda.windows) == 4
        # First block exact, others predict over mc bits (clamped at 0).
        assert gda.windows[0].prediction_bits == 0
        assert gda.windows[1].prediction_bits == 2  # clamped: base 2 - mc 4
        assert gda.windows[2].prediction_bits == 4
        assert gda.windows[3].prediction_bits == 4

    def test_width_divisibility_enforced(self):
        with pytest.raises(ValueError):
            GracefullyDegradingAdder(10, 4, 4)

    def test_mc_range_enforced(self):
        with pytest.raises(ValueError):
            GracefullyDegradingAdder(8, 2, 0)
        with pytest.raises(ValueError):
            GracefullyDegradingAdder(8, 2, 7)

    def test_multiple_constraint(self):
        # GDA's hierarchical CLA restricts M_C to multiples of M_B (§1).
        with pytest.raises(ValueError):
            GracefullyDegradingAdder(8, 2, 3)
        # ... unless explicitly overridden for exploration.
        GracefullyDegradingAdder(8, 2, 3, enforce_multiple=False)


class TestGdaBehaviour:
    def test_never_exceeds_exact(self):
        gda = GracefullyDegradingAdder(8, 2, 2)
        a, b = random_pairs(8, 5000, seed=1)
        assert np.all(np.asarray(gda.add(a, b)) <= a + b)

    def test_deeper_prediction_more_accurate(self):
        a, b = random_pairs(8, 20000, seed=2)
        rates = []
        for mc in (1, 2, 4, 6):
            gda = GracefullyDegradingAdder(8, 1, mc, enforce_multiple=False)
            rates.append(float(np.mean(np.asarray(gda.add(a, b)) != a + b)))
        assert rates == sorted(rates, reverse=True)

    def test_error_probability_uses_gear_model(self):
        gda = GracefullyDegradingAdder(16, 4, 4)
        gear = GeArAdder(GeArConfig(16, 4, 4))
        assert gda.error_probability() == gear.error_probability()

    def test_window_dp_gives_true_gda_probability(self):
        # GDA's own geometry (blocks near the bottom see all lower bits)
        # errs slightly less than the GeAr-parameter mapping predicts; the
        # generic window DP computes the true value.
        from repro.core.error_model import error_probability_windows
        from repro.metrics.exhaustive import exhaustive_error_probability

        gda = GracefullyDegradingAdder(8, 2, 4)
        true_prob = error_probability_windows(gda.windows, 8)
        assert true_prob == pytest.approx(
            exhaustive_error_probability(gda), abs=1e-12
        )
        # The §4.4 mapping (paper model at R=M_B, P=M_C) is conservative.
        assert gda.error_probability() >= true_prob

    def test_same_med_as_gear_at_equal_params(self):
        # The paper's Table II: identical NED columns for GDA and GeAr.
        gda = exhaustive_stats(GracefullyDegradingAdder(8, 2, 4))
        strict = (8 - 2 - 4) % 2 == 0
        gear = exhaustive_stats(GeArAdder(GeArConfig(8, 2, 4, allow_partial=not strict)))
        assert gda.med == pytest.approx(gear.med)

    def test_netlist_uses_cla_prediction(self):
        # GDA's netlist must be slower than GeAr's at the same parameters —
        # the paper's central delay observation (§4.2).
        from repro.timing.fpga import characterize

        gda = characterize(GracefullyDegradingAdder(8, 2, 4))
        gear = characterize(GeArAdder(GeArConfig(8, 2, 4)))
        assert gda.delay_ns > gear.delay_ns
