"""Unit tests for the netlist equivalence checker."""

import pytest

from repro.rtl.builders import (
    build_cla,
    build_gear,
    build_kogge_stone,
    build_rca,
)
from repro.rtl.equivalence import check_equivalence
from repro.rtl.gates import Op
from repro.rtl.netlist import Netlist
from repro.rtl.opt import optimize
from repro.rtl.verilog import to_verilog
from repro.rtl.verilog_parser import parse_verilog


class TestExhaustiveRegime:
    def test_rca_equals_cla_proof(self):
        report = check_equivalence(build_rca(8), build_cla(8))
        assert report.equivalent
        assert report.exhaustive
        assert report.vectors_checked == 1 << 16

    def test_rca_equals_kogge_stone(self):
        report = check_equivalence(build_rca(10), build_kogge_stone(10))
        assert report.equivalent and report.exhaustive

    def test_gear_roundtrip_proof(self):
        nl = build_gear(10, 2, 4)
        parsed = parse_verilog(to_verilog(nl))
        report = check_equivalence(nl, parsed)
        assert report.equivalent and report.exhaustive

    def test_optimize_preserves_function(self):
        nl = build_gear(9, 1, 3, allow_partial=True)
        report = check_equivalence(nl, optimize(nl))
        assert report.equivalent

    def test_detects_mismatch_with_counterexample(self):
        good = build_rca(6)
        bad = Netlist("bad")
        a = bad.add_input_bus("A", 6)
        b = bad.add_input_bus("B", 6)
        from repro.rtl.builders import _ripple_chain

        sums, cout = _ripple_chain(bad, a, b)
        sums[3] = bad.not_(sums[3])  # corrupt one sum bit
        bad.set_output_bus("S", sums + [cout])
        report = check_equivalence(good, bad)
        assert not report.equivalent
        assert report.mismatched_bus == "S"
        assert report.counterexample is not None
        # The counterexample must actually demonstrate the difference.
        from repro.rtl.sim import simulate_bus

        cex = report.counterexample
        assert int(simulate_bus(good, cex, "S")) != int(simulate_bus(bad, cex, "S"))


class TestRandomRegime:
    def test_wide_adders_random_pass(self):
        report = check_equivalence(build_rca(16), build_cla(16),
                                   random_vectors=5000)
        assert report.equivalent
        assert not report.exhaustive
        assert report.vectors_checked >= 5000

    def test_wide_mismatch_found(self):
        good = build_rca(16)
        bad = Netlist("bad16")
        a = bad.add_input_bus("A", 16)
        b = bad.add_input_bus("B", 16)
        from repro.rtl.builders import _ripple_chain

        sums, cout = _ripple_chain(bad, a, b)
        sums[15] = bad.not_(sums[15])
        bad.set_output_bus("S", sums + [cout])
        report = check_equivalence(good, bad, random_vectors=5000)
        assert not report.equivalent

    def test_corner_catches_stuck_lsb(self):
        # A bug visible only at all-zero inputs is caught by the corner set
        # even before random vectors.
        good = build_rca(16)
        bad = Netlist("stuck")
        a = bad.add_input_bus("A", 16)
        b = bad.add_input_bus("B", 16)
        from repro.rtl.builders import _ripple_chain

        sums, cout = _ripple_chain(bad, a, b)
        sums[0] = bad.or_(sums[0], bad.const(1))  # S[0] stuck at 1
        bad.set_output_bus("S", sums + [cout])
        report = check_equivalence(good, bad, random_vectors=10)
        assert not report.equivalent


class TestInterfaceValidation:
    def test_different_inputs_rejected(self):
        with pytest.raises(ValueError):
            check_equivalence(build_rca(8), build_rca(9))

    def test_no_shared_outputs_rejected(self):
        nl = Netlist("odd")
        a = nl.add_input_bus("A", 2)
        b = nl.add_input_bus("B", 2)
        nl.set_output_bus("Q", [nl.and_(a[0], b[0])])
        with pytest.raises(ValueError):
            check_equivalence(build_rca(2), nl)

    def test_only_shared_buses_compared(self):
        # GeAr has an extra ERR bus; comparing against plain RCA-sum-only
        # netlist uses bus S only... here: gear vs gear-without-ERR.
        with_err = build_gear(8, 2, 2, with_error_detect=True)
        without = build_gear(8, 2, 2, with_error_detect=False)
        report = check_equivalence(with_err, without)
        assert report.equivalent
