"""Unit tests for ETAI (accurate/inaccurate split adder of [9])."""

import numpy as np
import pytest

from repro.adders.etai import ErrorTolerantAdderI
from tests.conftest import random_pairs


class TestEtaiSemantics:
    def test_zero_split_is_exact(self):
        adder = ErrorTolerantAdderI(8, 0)
        a, b = random_pairs(8, 500, seed=1)
        np.testing.assert_array_equal(adder.add(a, b), a + b)

    def test_upper_part_never_sees_lower_carry(self):
        adder = ErrorTolerantAdderI(8, 4)
        # Lower parts sum to 30 (carry in exact addition); ETAI drops it.
        assert adder.add(0x0F, 0x0F) >> 4 == 0

    def test_xor_until_first_double_one(self):
        adder = ErrorTolerantAdderI(8, 4)
        # lower: a=0b0101, b=0b0010 -> no double ones -> plain XOR
        assert adder.add(0b0101, 0b0010) & 0xF == 0b0111

    def test_forcing_from_double_one_down(self):
        adder = ErrorTolerantAdderI(8, 4)
        # lower: a=0b0110, b=0b0100 -> double one at bit 2 -> bits 2..0 = 1
        got = adder.add(0b0110, 0b0100) & 0xF
        assert got & 0b0111 == 0b0111
        # bit 3 is above the first double-one: plain XOR = 0
        assert (got >> 3) & 1 == 0

    def test_scalar_matches_array(self):
        adder = ErrorTolerantAdderI(10, 5)
        a, b = random_pairs(10, 300, seed=2)
        vec = np.asarray(adder.add(a, b))
        for i in range(0, 300, 17):
            assert adder.add(int(a[i]), int(b[i])) == vec[i]

    def test_small_inputs_err_often(self):
        # The documented ETAI weakness: small operands live entirely in the
        # inaccurate part, so relative error is large.
        adder = ErrorTolerantAdderI(16, 8)
        a, b = random_pairs(8, 5000, seed=3)  # values < 256
        approx = np.asarray(adder.add(a, b))
        err_rate = np.mean(approx != a + b)
        assert err_rate > 0.3

    def test_error_bounded(self):
        adder = ErrorTolerantAdderI(8, 4)
        a, b = random_pairs(8, 20000, seed=4)
        ed = np.abs(np.asarray(adder.add(a, b)) - (a + b))
        assert ed.max() <= adder.max_error_distance()

    def test_invalid_split(self):
        with pytest.raises(ValueError):
            ErrorTolerantAdderI(8, 8)
        with pytest.raises(ValueError):
            ErrorTolerantAdderI(8, -1)

    def test_not_exact_flag(self):
        assert not ErrorTolerantAdderI(8, 4).is_exact
