"""Unit tests for repro.metrics.error_metrics."""

import numpy as np
import pytest

from repro.adders.rca import RippleCarryAdder
from repro.core.gear import GeArAdder, GeArConfig
from repro.metrics.error_metrics import (
    TABLE1_MAA_THRESHOLDS,
    acceptance_probability,
    accuracy_amplitude,
    accuracy_information,
    compute_error_stats,
    error_distances,
)
from tests.conftest import random_pairs


class TestAccuracyAmplitude:
    def test_perfect(self):
        acc = accuracy_amplitude(np.array([10, 20]), np.array([10, 20]))
        np.testing.assert_allclose(acc, [1.0, 1.0])

    def test_half_off(self):
        acc = accuracy_amplitude(np.array([5]), np.array([10]))
        np.testing.assert_allclose(acc, [0.5])

    def test_zero_exact_conventions(self):
        acc = accuracy_amplitude(np.array([0, 3]), np.array([0, 0]))
        np.testing.assert_allclose(acc, [1.0, 0.0])

    def test_clamped_to_unit_interval(self):
        acc = accuracy_amplitude(np.array([100]), np.array([10]))
        assert acc[0] == 0.0


class TestAccuracyInformation:
    def test_identical_is_one(self):
        acc = accuracy_information(np.array([0b1010]), np.array([0b1010]), 4)
        np.testing.assert_allclose(acc, [1.0])

    def test_counts_wrong_bits(self):
        acc = accuracy_information(np.array([0b1010]), np.array([0b1000]), 4)
        np.testing.assert_allclose(acc, [0.75])

    def test_all_wrong(self):
        acc = accuracy_information(np.array([0b1111]), np.array([0b0000]), 4)
        np.testing.assert_allclose(acc, [0.0])


class TestAcceptance:
    def test_basic(self):
        acc = np.array([1.0, 0.9, 0.8, 0.99])
        assert acceptance_probability(acc, 0.95) == pytest.approx(50.0)

    def test_threshold_bounds(self):
        with pytest.raises(ValueError):
            acceptance_probability(np.array([1.0]), 1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            acceptance_probability(np.array([]), 0.5)

    def test_float_dust_tolerated(self):
        acc = np.array([0.95 - 1e-14])
        assert acceptance_probability(acc, 0.95) == 100.0


class TestComputeErrorStats:
    def test_exact_adder_stats(self):
        adder = RippleCarryAdder(8)
        a, b = random_pairs(8, 1000, seed=1)
        stats = compute_error_stats(adder, a, b)
        assert stats.error_rate == 0.0
        assert stats.med == 0.0
        assert stats.ned == 0.0
        assert stats.acc_amp_avg == 1.0
        assert stats.acc_inf_avg == 1.0
        assert stats.maa(1.0) == 100.0

    def test_gear_stats_match_model(self):
        cfg = GeArConfig(12, 4, 4)
        adder = GeArAdder(cfg)
        a, b = random_pairs(12, 200_000, seed=2)
        stats = compute_error_stats(adder, a, b)
        assert stats.error_rate == pytest.approx(adder.error_probability(), abs=2e-3)
        assert stats.max_ed_bound == 256
        assert stats.max_ed_observed <= 256

    def test_maa_thresholds_monotone(self):
        adder = GeArAdder(GeArConfig(12, 2, 2))
        a, b = random_pairs(12, 50_000, seed=3)
        stats = compute_error_stats(adder, a, b)
        ordered = [stats.maa(t) for t in sorted(TABLE1_MAA_THRESHOLDS)]
        assert ordered == sorted(ordered, reverse=True)

    def test_override_mode(self):
        adder = RippleCarryAdder(8)
        stats = compute_error_stats(
            adder,
            exact_reference=np.array([10, 20, 30]),
            approx_values=np.array([10, 18, 30]),
        )
        assert stats.samples == 3
        assert stats.error_rate == pytest.approx(1 / 3)
        assert stats.med == pytest.approx(2 / 3)

    def test_override_requires_both_or_operands(self):
        adder = RippleCarryAdder(8)
        with pytest.raises(ValueError):
            compute_error_stats(adder, approx_values=np.array([1]))

    def test_mismatched_shapes_rejected(self):
        adder = RippleCarryAdder(8)
        with pytest.raises(ValueError):
            compute_error_stats(
                adder,
                exact_reference=np.array([1, 2]),
                approx_values=np.array([1]),
            )

    def test_empty_rejected(self):
        adder = RippleCarryAdder(8)
        with pytest.raises(ValueError):
            compute_error_stats(
                adder,
                exact_reference=np.array([], dtype=np.int64),
                approx_values=np.array([], dtype=np.int64),
            )

    def test_unknown_maa_threshold_raises(self):
        adder = RippleCarryAdder(8)
        a, b = random_pairs(8, 10, seed=4)
        stats = compute_error_stats(adder, a, b)
        with pytest.raises(KeyError):
            stats.maa(0.42)

    def test_error_distances_helper(self):
        adder = GeArAdder(GeArConfig(12, 4, 4))
        a = np.array([0b000011111111], dtype=np.int64)
        b = np.array([1], dtype=np.int64)
        np.testing.assert_array_equal(error_distances(adder, a, b), [256])
