"""Pareto analysis over swept configurations.

The design question the paper poses ("which adder meets my accuracy at the
least delay/area?") is a multi-objective selection problem; these helpers
extract the non-dominated frontier and answer threshold queries against it.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.analysis.sweep import SweepResult

#: Objective extractors: every objective is minimised.
Objective = Callable[[SweepResult], float]


def _default_objectives() -> Tuple[Objective, ...]:
    return (
        lambda r: r.error_probability,
        lambda r: r.delay_ns if r.delay_ns is not None else float("inf"),
        lambda r: float(r.luts) if r.luts is not None else float("inf"),
    )


def dominates(a: SweepResult, b: SweepResult,
              objectives: Optional[Sequence[Objective]] = None) -> bool:
    """True when ``a`` is at least as good as ``b`` everywhere and strictly
    better somewhere (all objectives minimised)."""
    objs = tuple(objectives) if objectives is not None else _default_objectives()
    no_worse = all(o(a) <= o(b) for o in objs)
    better = any(o(a) < o(b) for o in objs)
    return no_worse and better


def pareto_front(results: Sequence[SweepResult],
                 objectives: Optional[Sequence[Objective]] = None) -> List[SweepResult]:
    """Non-dominated subset of ``results``, in the original order."""
    objs = tuple(objectives) if objectives is not None else _default_objectives()
    front: List[SweepResult] = []
    for candidate in results:
        if not any(dominates(other, candidate, objs) for other in results):
            front.append(candidate)
    return front


def select_config(
    results: Sequence[SweepResult],
    min_accuracy_pct: float,
    cost: Optional[Objective] = None,
) -> Optional[SweepResult]:
    """Cheapest configuration meeting an accuracy requirement.

    Args:
        results: swept configurations.
        min_accuracy_pct: required probabilistic accuracy (0..100).
        cost: objective to minimise among qualifying configs; the default
            minimises delay with LUTs as tie-breaker (falling back to
            error probability when hardware numbers are missing).

    Returns:
        The best qualifying configuration, or ``None`` when nothing meets
        the requirement.
    """
    if not 0.0 <= min_accuracy_pct <= 100.0:
        raise ValueError(f"min_accuracy_pct must be in [0, 100], got {min_accuracy_pct}")

    def default_cost(r: SweepResult) -> float:
        if r.delay_ns is None:
            return 1e6 + r.error_probability
        return r.delay_ns + (r.luts or 0) * 1e-4

    cost_fn = cost or default_cost
    qualifying = [r for r in results if r.accuracy_pct >= min_accuracy_pct]
    if not qualifying:
        return None
    return min(qualifying, key=cost_fn)
