"""Plain-text table rendering for benches and the CLI.

Every benchmark prints the rows of its paper table/figure through this
module, so the output format is uniform and diffable run-to-run.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


class Table:
    """A simple column-aligned text table."""

    def __init__(self, headers: Sequence[str], title: Optional[str] = None) -> None:
        if not headers:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([_format_cell(c) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        sep = "-+-".join("-" * w for w in widths)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def _format_cell(cell: Cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        magnitude = abs(cell)
        if magnitude >= 1e4 or magnitude < 1e-3:
            return f"{cell:.4e}"
        return f"{cell:.4f}".rstrip("0").rstrip(".")
    return str(cell)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]],
                 title: Optional[str] = None) -> str:
    """One-shot helper: build and render a table."""
    table = Table(headers, title=title)
    for row in rows:
        table.add_row(*row)
    return table.render()
