"""CSV/JSON export of every reproduced experiment.

Plotting lives outside this library (no matplotlib dependency); these
exporters write the exact series each paper figure plots, and each table's
rows, as plain CSV so any tool can regenerate the visuals.  Since the
engine redesign every experiment also implements the unified result
protocol (``to_json()``), so ``export_all(..., fmt="json")`` — the CLI's
``gear export --json`` — writes the same artefacts as deterministic JSON
documents instead.

``export_all(directory)`` writes one file per artefact and returns the
paths; the CLI exposes it as ``gear export --dir out/``.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Dict, List, Optional, Sequence, Union

PathLike = Union[str, pathlib.Path]


def _write_csv(path: pathlib.Path, headers: Sequence[str],
               rows: Sequence[Sequence]) -> pathlib.Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return path


def export_fig1(directory: PathLike) -> pathlib.Path:
    from repro.experiments.fig1 import run_fig1

    rows: List[List] = []
    for panel in run_fig1():
        for arch, points in panel.points_per_architecture.items():
            for p in points:
                rows.append([panel.r, arch, p])
    return _write_csv(pathlib.Path(directory) / "fig1_design_space.csv",
                      ["R", "architecture", "P"], rows)


def export_fig7(directory: PathLike) -> pathlib.Path:
    from repro.experiments.fig7 import run_fig7

    rows: List[List] = []
    for r, points in run_fig7().items():
        for pt in points:
            rows.append([r, pt.p, f"{pt.accuracy_pct:.6f}",
                         int(pt.gear), int(pt.gda)])
    return _write_csv(pathlib.Path(directory) / "fig7_accuracy_vs_p.csv",
                      ["R", "P", "accuracy_pct", "gear", "gda"], rows)


def export_fig8(directory: PathLike) -> pathlib.Path:
    from repro.experiments.fig8 import run_fig8

    rows = [
        [pt.r, pt.p, f"{pt.gear_delay_ned:.6e}", f"{pt.gda_delay_ned:.6e}"]
        for pt in run_fig8()
    ]
    return _write_csv(pathlib.Path(directory) / "fig8_delay_ned.csv",
                      ["R", "P", "gear_delay_ned", "gda_delay_ned"], rows)


def export_fig9(directory: PathLike) -> pathlib.Path:
    from repro.experiments.fig9 import run_fig9

    rows: List[List] = []
    for app, app_rows in run_fig9().items():
        for row in app_rows:
            rows.append([
                app, row.adder, row.k, f"{row.delay_ns:.4f}",
                f"{row.error_probability:.8f}",
                f"{row.timing.approximate_s:.6e}",
                f"{row.timing.best_s:.6e}",
                f"{row.timing.average_s:.6e}",
                f"{row.timing.worst_s:.6e}",
            ])
    return _write_csv(
        pathlib.Path(directory) / "fig9_app_timing.csv",
        ["application", "adder", "k", "delay_ns", "p_err",
         "approx_s", "best_s", "average_s", "worst_s"],
        rows,
    )


def export_table1(directory: PathLike) -> pathlib.Path:
    from repro.experiments.table1 import run_table1

    rows: List[List] = []
    for row in run_table1():
        rows.append([
            row.name, f"{row.delay_ns:.4f}", row.luts,
            f"{row.stats.maa(1.0):.4f}", f"{row.stats.maa(0.975):.4f}",
            f"{row.stats.maa(0.95):.4f}", f"{row.stats.maa(0.925):.4f}",
            f"{row.stats.maa(0.90):.4f}", f"{row.stats.acc_amp_avg:.6f}",
            f"{row.stats.acc_inf_avg:.6f}", f"{row.stats.med:.4f}",
            f"{row.app_ned:.6f}", f"{row.delay_ned_product:.6e}",
        ])
    return _write_csv(
        pathlib.Path(directory) / "table1_image_integral.csv",
        ["adder", "delay_ns", "luts", "maa100", "maa97_5", "maa95",
         "maa92_5", "maa90", "acc_amp", "acc_inf", "med", "ned",
         "delay_ned"],
        rows,
    )


def export_table2(directory: PathLike) -> pathlib.Path:
    from repro.experiments.table2 import run_table2

    rows = [
        [row.architecture, row.r, row.p, f"{row.delay_ns:.4f}", row.luts,
         f"{row.med:.4f}", f"{row.ned_paper_convention:.6f}",
         f"{row.delay_ned_product:.6e}"]
        for row in run_table2()
    ]
    return _write_csv(
        pathlib.Path(directory) / "table2_gda_vs_gear.csv",
        ["architecture", "R", "P", "delay_ns", "luts", "med", "ned",
         "delay_ned"],
        rows,
    )


def export_table3(directory: PathLike) -> pathlib.Path:
    from repro.experiments.table3 import run_table3

    rows = [
        [row.n, row.r, row.p, row.k, f"{row.analytic_pct:.6f}",
         f"{row.exact_pct:.6f}", f"{row.simulated_pct:.6f}",
         row.paper_analytic_pct, row.paper_simulated_pct]
        for row in run_table3()
    ]
    return _write_csv(
        pathlib.Path(directory) / "table3_error_probability.csv",
        ["N", "R", "P", "k", "analytic_pct", "exact_pct", "simulated_pct",
         "paper_analytic_pct", "paper_simulated_pct"],
        rows,
    )


def export_table4(directory: PathLike) -> pathlib.Path:
    from repro.experiments.table4 import run_table4

    rows = [
        [row.name, row.k, f"{row.delay_ns:.4f}", row.paper_delay_ns,
         f"{row.error_probability:.8f}",
         f"{row.timing.approximate_s:.6e}", f"{row.timing.best_s:.6e}",
         f"{row.timing.average_s:.6e}", f"{row.timing.worst_s:.6e}"]
        for row in run_table4()
    ]
    return _write_csv(
        pathlib.Path(directory) / "table4_execution_time.csv",
        ["adder", "k", "delay_ns", "paper_delay_ns", "p_err", "approx_s",
         "best_s", "average_s", "worst_s"],
        rows,
    )


#: All exporters by artefact id.
EXPORTERS = {
    "fig1": export_fig1,
    "fig7": export_fig7,
    "fig8": export_fig8,
    "fig9": export_fig9,
    "table1": export_table1,
    "table2": export_table2,
    "table3": export_table3,
    "table4": export_table4,
}


def export_json(directory: PathLike, name: str, engine=None) -> pathlib.Path:
    """Write one artefact's unified ``to_json()`` document.

    JSON output is deterministic (the result protocol excludes timings and
    job counts), so a re-export at any ``--jobs`` is byte-identical.
    """
    from repro.experiments import EXPERIMENTS

    spec = EXPERIMENTS[name]
    result = spec.run(engine=engine)
    path = pathlib.Path(directory) / f"{name}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(result.to_json(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def export_all(directory: PathLike,
               artefacts: Optional[Sequence[str]] = None,
               fmt: str = "csv",
               engine=None) -> Dict[str, pathlib.Path]:
    """Write the requested artefacts (default: all) as CSV or JSON."""
    if fmt not in ("csv", "json"):
        raise ValueError(f"unknown export format: {fmt!r} (csv or json)")
    names = list(artefacts) if artefacts is not None else list(EXPORTERS)
    unknown = set(names) - set(EXPORTERS)
    if unknown:
        raise ValueError(f"unknown artefacts: {sorted(unknown)}")
    if fmt == "json":
        return {name: export_json(directory, name, engine=engine) for name in names}
    return {name: EXPORTERS[name](directory) for name in names}
