"""Carry-chain statistics — the quantitative version of the paper's §1.

Every speculative adder rests on one observation: *the longest carry
propagation chain of an N-bit addition is almost always much shorter than
N*.  This module makes the observation precise for i.i.d. uniform
operands:

* :func:`prob_longest_chain_at_most` — P(longest chain ≤ ℓ), by dynamic
  programming over per-bit generate/propagate/kill states,
* :func:`longest_chain_distribution` — the full PMF,
* :func:`expected_longest_chain` — E[longest chain] (≈ log2(N) + O(1),
  the classic Burks-Goldstine-von-Neumann result),
* :func:`required_chain_for_coverage` — the smallest ℓ such that a chain
  longer than ℓ occurs with probability at most ``miss_rate`` (how a
  designer picks a sub-adder length).

A *chain* here is a generate followed by consecutive propagates; a chain
of length ℓ starting at bit i disturbs bits up to i+ℓ-1.  An adder that
resolves carries over windows of ℓ bits computes exactly the additions
whose longest chain fits its windows — which is why these probabilities
track the speculative adders' accuracy so closely.
"""

from __future__ import annotations

from typing import Dict, List

from repro.utils.validation import check_pos_int


def prob_longest_chain_at_most(n: int, limit: int) -> float:
    """P(longest generate-propagate chain ≤ ``limit``) for N uniform bits.

    DP over bit positions with state = length of the active chain ending at
    the current bit (0 = no active chain); per bit, generate (1/4) starts a
    chain of length 1, propagate (1/2) extends an active chain, kill or
    non-propagate ends it.  Mass exceeding ``limit`` is absorbed into a
    failure state.
    """
    check_pos_int("n", n)
    if limit < 0:
        raise ValueError(f"limit must be non-negative, got {limit}")
    if limit >= n:
        return 1.0
    # state[j] = P(active chain length j, no chain > limit so far)
    state = [0.0] * (limit + 1)
    state[0] = 1.0
    for _ in range(n):
        nxt = [0.0] * (limit + 1)
        for j, mass in enumerate(state):
            if mass == 0.0:
                continue
            # generate: chain restarts at length 1
            if limit >= 1:
                nxt[1] += mass * 0.25
            # kill (1/4), or propagate with no active chain
            nxt[0] += mass * 0.25
            if j == 0:
                nxt[0] += mass * 0.5  # propagate without a chain
            elif j < limit:
                nxt[j + 1] += mass * 0.5  # propagate extends the chain
            # j == limit and propagate -> chain exceeds limit: drop mass
    # Note: `limit >= 1` always holds here (limit=0 handled below).
        state = nxt
    if limit == 0:
        # No generate anywhere: every bit kills or propagates-without-chain.
        return 0.75 ** n
    return sum(state)


def longest_chain_distribution(n: int) -> List[float]:
    """PMF of the longest chain length: entry ℓ is P(longest == ℓ)."""
    check_pos_int("n", n)
    cdf = [prob_longest_chain_at_most(n, limit) for limit in range(n + 1)]
    pmf = [cdf[0]] + [cdf[i] - cdf[i - 1] for i in range(1, n + 1)]
    return pmf


def expected_longest_chain(n: int) -> float:
    """E[longest chain] for an N-bit uniform addition."""
    pmf = longest_chain_distribution(n)
    return sum(length * p for length, p in enumerate(pmf))


def required_chain_for_coverage(n: int, miss_rate: float) -> int:
    """Smallest ℓ with P(longest chain > ℓ) ≤ ``miss_rate``.

    This is the designer's question behind every Fig. 7 curve: how long
    must the resolved window be so that unresolved chains are rarer than
    the application's error tolerance?
    """
    check_pos_int("n", n)
    if not 0.0 < miss_rate < 1.0:
        raise ValueError(f"miss_rate must be in (0, 1), got {miss_rate}")
    for limit in range(n + 1):
        if 1.0 - prob_longest_chain_at_most(n, limit) <= miss_rate:
            return limit
    return n


def chain_coverage_table(n: int, limits: List[int]) -> Dict[int, float]:
    """P(longest chain > ℓ) for each ℓ — the §1 motivation numbers."""
    return {
        limit: 1.0 - prob_longest_chain_at_most(n, limit) for limit in limits
    }
