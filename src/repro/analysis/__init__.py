"""Design-space sweeps, Pareto analysis, carry-chain statistics,
runtime accuracy management and table rendering."""

from repro.analysis.sweep import SweepResult, sweep_gear_configs, sweep_adder_family
from repro.analysis.pareto import pareto_front, dominates, select_config
from repro.analysis.tables import Table, format_table
from repro.analysis.carrychain import (
    chain_coverage_table,
    expected_longest_chain,
    longest_chain_distribution,
    prob_longest_chain_at_most,
    required_chain_for_coverage,
)
from repro.analysis.runtime import (
    AccuracyController,
    ControllerTrace,
    Mode,
    build_mode_ladder,
)
from repro.analysis.export import EXPORTERS, export_all
from repro.analysis.report import generate_report, write_report

__all__ = [
    "SweepResult",
    "sweep_gear_configs",
    "sweep_adder_family",
    "pareto_front",
    "dominates",
    "select_config",
    "Table",
    "format_table",
    "chain_coverage_table",
    "expected_longest_chain",
    "longest_chain_distribution",
    "prob_longest_chain_at_most",
    "required_chain_for_coverage",
    "AccuracyController",
    "ControllerTrace",
    "Mode",
    "build_mode_ladder",
    "EXPORTERS",
    "export_all",
    "generate_report",
    "write_report",
]
