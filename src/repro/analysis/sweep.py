"""Configuration sweeps combining accuracy, delay and area models.

A sweep evaluates every requested configuration with the analytic error
model plus the FPGA characterisation, yielding the rows that Figs. 1/7/8
and Tables I/II plot or tabulate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

from repro.adders.base import AdderModel
from repro.core.configspace import enumerate_configs
from repro.core.error_model import (
    error_probability,
    max_error_distance,
    mean_error_distance_analytic,
    normalized_error_distance_analytic,
)
from repro.core.gear import GeArAdder, GeArConfig
from repro.timing.fpga import AdderCharacterization, characterize


@dataclass(frozen=True)
class SweepResult:
    """One evaluated configuration of a sweep."""

    name: str
    r: int
    p: int
    k: int
    error_probability: float
    accuracy_pct: float
    med: float
    ned: float
    delay_ns: Optional[float]
    luts: Optional[int]

    @property
    def delay_ned_product(self) -> Optional[float]:
        """The paper's Delay × NED figure of merit (seconds × NED)."""
        if self.delay_ns is None:
            return None
        return self.delay_ns * 1e-9 * self.ned


def _characterize_quietly(adder: AdderModel) -> Optional[AdderCharacterization]:
    try:
        return characterize(adder)
    except ValueError:
        return None


def sweep_gear_configs(
    n: int,
    r_values: Optional[Sequence[int]] = None,
    allow_partial: bool = True,
    with_hardware: bool = True,
) -> List[SweepResult]:
    """Evaluate every GeAr configuration of width ``n`` (optionally per R).

    Args:
        n: operand width.
        r_values: restrict to these R values (None = all).
        allow_partial: include non-divisible configurations.
        with_hardware: also run netlist characterisation (slower).
    """
    configs: List[GeArConfig] = []
    if r_values is None:
        configs = enumerate_configs(n, allow_partial=allow_partial)
    else:
        for r in r_values:
            configs.extend(enumerate_configs(n, r=r, allow_partial=allow_partial))

    results: List[SweepResult] = []
    for cfg in configs:
        adder = GeArAdder(cfg)
        char = _characterize_quietly(adder) if with_hardware else None
        prob = error_probability(cfg)
        results.append(
            SweepResult(
                name=adder.name,
                r=cfg.r,
                p=cfg.p,
                k=cfg.k,
                error_probability=prob,
                accuracy_pct=(1.0 - prob) * 100.0,
                med=mean_error_distance_analytic(cfg),
                ned=normalized_error_distance_analytic(cfg),
                delay_ns=char.delay_ns if char else None,
                luts=char.luts if char else None,
            )
        )
    return results


def sweep_adder_family(
    adders: Iterable[AdderModel],
    med_fn: Optional[Callable[[AdderModel], float]] = None,
) -> List[SweepResult]:
    """Evaluate a heterogeneous family of adders into comparable rows.

    ``med_fn`` supplies a mean-error-distance estimate for adders without a
    GeAr-expressible config (e.g. a Monte-Carlo closure); when absent, MED
    and NED report as NaN for such adders.
    """
    results: List[SweepResult] = []
    for adder in adders:
        char = _characterize_quietly(adder)
        prob = adder.error_probability()
        cfg = getattr(adder, "config", None)
        if isinstance(cfg, GeArConfig):
            med = mean_error_distance_analytic(cfg)
            ned = normalized_error_distance_analytic(cfg)
            r, p, k = cfg.r, cfg.p, cfg.k
        else:
            med = med_fn(adder) if med_fn else float("nan")
            bound = getattr(adder, "max_error_distance", None)
            ned = med / bound() if (med_fn and callable(bound) and bound()) else float("nan")
            r = p = 0
            k = 1
        results.append(
            SweepResult(
                name=adder.name,
                r=r,
                p=p,
                k=k,
                error_probability=prob if prob is not None else float("nan"),
                accuracy_pct=(1.0 - prob) * 100.0 if prob is not None else float("nan"),
                med=med,
                ned=ned,
                delay_ns=char.delay_ns if char else None,
                luts=char.luts if char else None,
            )
        )
    return results
