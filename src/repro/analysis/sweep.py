"""Configuration sweeps combining accuracy, delay and area models.

A sweep evaluates every requested configuration with the analytic error
model plus the FPGA characterisation, yielding the rows that Figs. 1/7/8
and Tables I/II plot or tabulate.  When a ``samples`` budget is given the
sweep additionally measures each configuration by Monte-Carlo through
:mod:`repro.engine` — sharded, optionally parallel (``gear sweep
--jobs N``) and optionally cached (``--cache``), with results guaranteed
bit-identical at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

from repro.adders.base import AdderModel
from repro.core.configspace import enumerate_configs
from repro.core.error_model import (
    error_probability,
    mean_error_distance_analytic,
    normalized_error_distance_analytic,
)
from repro.core.gear import GeArAdder, GeArConfig
from repro.timing.fpga import AdderCharacterization, characterize

#: Default root seed for measured sweep columns (the paper's year).
SWEEP_SEED = 2015


@dataclass(frozen=True)
class SweepResult:
    """One evaluated configuration of a sweep.

    The ``measured_*`` fields are filled only when the sweep ran with a
    Monte-Carlo sample budget; they come from the evaluation engine and
    are deterministic for a given (samples, seed).
    """

    name: str
    r: int
    p: int
    k: int
    error_probability: float
    accuracy_pct: float
    med: float
    ned: float
    delay_ns: Optional[float]
    luts: Optional[int]
    measured_error_rate: Optional[float] = None
    measured_med: Optional[float] = None
    measured_ned: Optional[float] = None
    samples: Optional[int] = None

    @property
    def delay_ned_product(self) -> Optional[float]:
        """The paper's Delay × NED figure of merit (seconds × NED)."""
        if self.delay_ns is None:
            return None
        return self.delay_ns * 1e-9 * self.ned

    def to_json_row(self) -> dict:
        """JSON-safe row used by ``gear sweep --json``.

        Deliberately excludes execution details (jobs, timings) so output
        is byte-identical no matter how the sweep was scheduled.
        """
        return {
            "name": self.name,
            "r": self.r,
            "p": self.p,
            "k": self.k,
            "error_probability": self.error_probability,
            "accuracy_pct": self.accuracy_pct,
            "med": self.med,
            "ned": self.ned,
            "delay_ns": self.delay_ns,
            "luts": self.luts,
            "measured_error_rate": self.measured_error_rate,
            "measured_med": self.measured_med,
            "measured_ned": self.measured_ned,
            "samples": self.samples,
        }


def _characterize_quietly(adder: AdderModel) -> Optional[AdderCharacterization]:
    try:
        return characterize(adder)
    except ValueError:
        return None


def _measure(adder: AdderModel, samples: Optional[int], seed: Optional[int],
             engine, backend: str = "sampling") -> dict:
    """Engine-backed Monte-Carlo columns (empty when no budget given)."""
    if not samples:
        return {}
    from repro.engine import EvalRequest, evaluate

    stats = evaluate(
        EvalRequest.monte_carlo(adder, samples, seed=seed, backend=backend),
        engine=engine,
    ).stats
    return {
        "measured_error_rate": stats.error_rate,
        "measured_med": stats.med,
        "measured_ned": stats.ned,
        "samples": stats.samples,
    }


def sweep_gear_configs(
    n: int,
    r_values: Optional[Sequence[int]] = None,
    allow_partial: bool = True,
    with_hardware: bool = True,
    samples: Optional[int] = None,
    seed: Optional[int] = SWEEP_SEED,
    engine=None,
    backend: str = "sampling",
) -> List[SweepResult]:
    """Evaluate every GeAr configuration of width ``n`` (optionally per R).

    Args:
        n: operand width.
        r_values: restrict to these R values (None = all).
        allow_partial: include non-divisible configurations.
        with_hardware: also run netlist characterisation (slower).
        samples: when given, also measure each configuration through the
            engine (Monte-Carlo on the ``sampling`` backend; the exact
            PMF on ``analytic``, where the measured columns report
            ``samples`` as 0).
        seed: root seed for the measured columns.
        engine: :class:`repro.engine.Engine` override (None = default).
        backend: engine backend for the measured columns
            (``sampling`` / ``analytic`` / ``auto``).
    """
    configs: List[GeArConfig] = []
    if r_values is None:
        configs = enumerate_configs(n, allow_partial=allow_partial)
    else:
        for r in r_values:
            configs.extend(enumerate_configs(n, r=r, allow_partial=allow_partial))

    results: List[SweepResult] = []
    for cfg in configs:
        adder = GeArAdder(cfg)
        char = _characterize_quietly(adder) if with_hardware else None
        prob = error_probability(cfg)
        results.append(
            SweepResult(
                name=adder.name,
                r=cfg.r,
                p=cfg.p,
                k=cfg.k,
                error_probability=prob,
                accuracy_pct=(1.0 - prob) * 100.0,
                med=mean_error_distance_analytic(cfg),
                ned=normalized_error_distance_analytic(cfg),
                delay_ns=char.delay_ns if char else None,
                luts=char.luts if char else None,
                **_measure(adder, samples, seed, engine, backend),
            )
        )
    return results


def sweep_adder_family(
    adders: Iterable[AdderModel],
    med_fn: Optional[Callable[[AdderModel], float]] = None,
    samples: Optional[int] = None,
    seed: Optional[int] = SWEEP_SEED,
    engine=None,
    backend: str = "sampling",
) -> List[SweepResult]:
    """Evaluate a heterogeneous family of adders into comparable rows.

    ``med_fn`` supplies a mean-error-distance estimate for adders without a
    GeAr-expressible config (e.g. a Monte-Carlo closure); when absent, MED
    and NED report as NaN for such adders.  A ``samples`` budget adds
    engine-measured columns exactly as in :func:`sweep_gear_configs`.
    """
    results: List[SweepResult] = []
    for adder in adders:
        char = _characterize_quietly(adder)
        prob = adder.error_probability()
        cfg = getattr(adder, "config", None)
        if isinstance(cfg, GeArConfig):
            med = mean_error_distance_analytic(cfg)
            ned = normalized_error_distance_analytic(cfg)
            r, p, k = cfg.r, cfg.p, cfg.k
        else:
            med = med_fn(adder) if med_fn else float("nan")
            bound = getattr(adder, "max_error_distance", None)
            ned = med / bound() if (med_fn and callable(bound) and bound()) else float("nan")
            r = p = 0
            k = 1
        results.append(
            SweepResult(
                name=adder.name,
                r=r,
                p=p,
                k=k,
                error_probability=prob if prob is not None else float("nan"),
                accuracy_pct=(1.0 - prob) * 100.0 if prob is not None else float("nan"),
                med=med,
                ned=ned,
                delay_ns=char.delay_ns if char else None,
                luts=char.luts if char else None,
                **_measure(adder, samples, seed, engine, backend),
            )
        )
    return results


def sweep_to_json(results: Sequence[SweepResult], n: Optional[int] = None) -> dict:
    """Deterministic JSON document for a sweep (``gear sweep --json``)."""
    payload = {
        "experiment": "sweep",
        "rows": [res.to_json_row() for res in results],
    }
    if n is not None:
        payload["n"] = n
    return payload
