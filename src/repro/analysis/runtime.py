"""Runtime accuracy management over GeAr's approximation modes.

The paper's headline feature is *configurability*: one adder datapath, many
(R, P) approximation modes.  This module simulates the system-level use of
that knob — a controller that watches the §3.3 error-detection flags (free
in hardware) and moves along a delay-sorted ladder of modes to keep the
observed error rate inside a budget while spending as little delay as
possible.

The controller is deliberately simple (hysteresis on a windowed flag-rate
estimate); the point is to exercise the library's mode-switching story end
to end and to measure the budget/latency trade-off, not to propose a
control law.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro import obs
from repro.core.gear import GeArAdder, GeArConfig
from repro.timing.fpga import characterize
from repro.utils.validation import check_pos_int, check_prob


@dataclass(frozen=True)
class Mode:
    """One rung of the accuracy ladder."""

    config: GeArConfig
    adder: GeArAdder
    delay_ns: float
    error_probability: float


@dataclass
class ControllerTrace:
    """Outcome of a controlled run over an operand stream."""

    mode_per_chunk: List[int]
    flag_rate_per_chunk: List[float]
    error_rate: float
    mean_delay_ns: float
    switches: int
    modes: List[Mode] = field(repr=False, default_factory=list)


def build_mode_ladder(n: int, r: int, p_values: Sequence[int]) -> List[Mode]:
    """Delay-sorted GeAr modes for one resultant width R."""
    check_pos_int("n", n)
    modes: List[Mode] = []
    for p in p_values:
        strict = (n - r - p) % r == 0
        cfg = GeArConfig(n, r, p, allow_partial=not strict)
        adder = GeArAdder(cfg)
        modes.append(
            Mode(
                config=cfg,
                adder=adder,
                delay_ns=characterize(adder).delay_ns,
                error_probability=adder.error_probability(),
            )
        )
    modes.sort(key=lambda m: m.delay_ns)
    return modes


class AccuracyController:
    """Hysteresis controller over a mode ladder.

    Args:
        modes: delay-sorted ladder (fastest first), e.g. from
            :func:`build_mode_ladder`.
        error_budget: target upper bound on the per-addition error rate.
        chunk: additions evaluated between control decisions.
        margin: hysteresis factor — step down (faster) only when the
            observed rate is below ``margin * error_budget``.
    """

    def __init__(self, modes: Sequence[Mode], error_budget: float,
                 chunk: int = 1024, margin: float = 0.5) -> None:
        if not modes:
            raise ValueError("need at least one mode")
        check_prob("error_budget", error_budget)
        check_pos_int("chunk", chunk)
        if not 0.0 < margin < 1.0:
            raise ValueError(f"margin must be in (0, 1), got {margin}")
        self.modes = list(modes)
        self.error_budget = error_budget
        self.chunk = chunk
        self.margin = margin

    def run(self, a: np.ndarray, b: np.ndarray,
            start_mode: Optional[int] = None) -> ControllerTrace:
        """Process an operand stream, adapting the mode per chunk."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if a.shape != b.shape or a.ndim != 1:
            raise ValueError("operand streams must be equal-length 1-D arrays")

        index = start_mode if start_mode is not None else 0
        if not 0 <= index < len(self.modes):
            raise ValueError(f"start_mode {index} out of range")

        mode_log: List[int] = []
        rate_log: List[float] = []
        errors = 0
        delay_sum = 0.0
        switches = 0

        with obs.span("runtime.controller.run"):
            for lo in range(0, a.size, self.chunk):
                hi = min(lo + self.chunk, a.size)
                mode = self.modes[index]
                xa, xb = a[lo:hi], b[lo:hi]
                flags = mode.adder.detection_flags(xa, xb)
                flagged = np.zeros(xa.shape, dtype=bool)
                for f in flags[1:]:
                    flagged |= np.asarray(f).astype(bool)
                flag_rate = float(np.mean(flagged)) if xa.size else 0.0

                errors += int(np.count_nonzero(mode.adder.add(xa, xb) != xa + xb))
                delay_sum += mode.delay_ns * (hi - lo)
                mode_log.append(index)
                rate_log.append(flag_rate)
                obs.count("runtime.chunks")
                obs.gauge("runtime.flag_rate", flag_rate)

                # Control decision for the next chunk.
                new_index = index
                if flag_rate > self.error_budget and index + 1 < len(self.modes):
                    new_index = index + 1  # slower, more accurate
                elif flag_rate < self.margin * self.error_budget and index > 0:
                    new_index = index - 1  # faster, less accurate
                if new_index != index:
                    switches += 1
                    index = new_index
                    obs.count("runtime.switches")
                    obs.count("runtime.switch_up" if new_index > mode_log[-1]
                              else "runtime.switch_down")

        return ControllerTrace(
            mode_per_chunk=mode_log,
            flag_rate_per_chunk=rate_log,
            error_rate=errors / a.size if a.size else 0.0,
            mean_delay_ns=delay_sum / a.size if a.size else 0.0,
            switches=switches,
            modes=self.modes,
        )
