"""One-shot Markdown reproduction report.

``generate_report()`` runs every table/figure experiment plus the
ablations and renders a self-contained Markdown document — the artefact a
CI job would archive per commit to watch the reproduction for drift.
Heavier stages (Table I's kernel run, the ablations) can be skipped for a
quick smoke report.
"""

from __future__ import annotations

import io
import pathlib
import time
from typing import List, Optional, Union

PathLike = Union[str, pathlib.Path]

#: Fast artefacts always included.
CORE_SECTIONS = ("fig1", "fig7", "table3", "table4")
#: Heavier artefacts included unless quick=True.
FULL_SECTIONS = ("table2", "fig8", "table1", "fig9")


def _code_block(text: str) -> str:
    return "```\n" + text.rstrip("\n") + "\n```\n"


def generate_report(quick: bool = False,
                    include_ablations: Optional[bool] = None) -> str:
    """Build the reproduction report as a Markdown string.

    Args:
        quick: skip the synthesis-heavy artefacts (Tables I/II, Figs. 8/9)
            and the ablations.
        include_ablations: override the ablation default (run unless quick).
    """
    from repro import __version__, experiments

    run_ablations = (not quick) if include_ablations is None else include_ablations
    out = io.StringIO()
    started = time.time()

    out.write("# GeAr reproduction report\n\n")
    out.write(f"library version: {__version__}\n\n")
    out.write(
        "Regenerates the paper's evaluation artefacts from the current "
        "code. Analytic quantities must match the paper to printed "
        "precision; hardware quantities are compared by ordering (see "
        "EXPERIMENTS.md).\n\n"
    )

    sections: List[str] = list(CORE_SECTIONS)
    if not quick:
        sections += list(FULL_SECTIONS)
    for name in sections:
        render = getattr(experiments, f"render_{name}")
        title = name.replace("table", "Table ").replace("fig", "Figure ")
        out.write(f"## {title}\n\n")
        out.write(_code_block(render()))
        out.write("\n")

    if run_ablations:
        out.write("## Ablation — operand-distribution sensitivity\n\n")
        out.write(_code_block(
            experiments.render_distribution_sensitivity_ablation()
        ))
        out.write("\n## Ablation — selective correction\n\n")
        out.write(_code_block(experiments.render_correction_policy_ablation()))
        out.write("\n")

    elapsed = time.time() - started
    out.write(f"---\ngenerated in {elapsed:.1f} s\n")
    return out.getvalue()


def write_report(path: PathLike, quick: bool = False) -> pathlib.Path:
    """Generate and save the report; returns the written path."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(generate_report(quick=quick))
    return target
