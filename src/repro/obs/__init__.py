"""Observability subsystem: spans, metrics and cross-process telemetry.

``repro.obs`` is the library-wide answer to "where do time and work go":

* :mod:`repro.obs.core` — the collection API (hierarchical spans,
  counters, gauges, fixed-bucket histograms) with a no-op disabled path
  cheap enough to leave compiled into every hot loop,
* :mod:`repro.obs.aggregate` — :class:`TelemetryFrame`, the mergeable
  snapshot that engine pool workers ship back beside their
  ``PartialStats`` so telemetry survives ``ProcessPoolExecutor`` fan-out,
* :mod:`repro.obs.export` — the JSONL trace format and the text/JSON
  report behind ``gear --trace/--profile`` and ``gear obs report``.

See ``docs/obs.md`` for the instrumentation map and trace format.
"""

from repro.obs.aggregate import (
    DEFAULT_BOUNDS,
    DURATION_BOUNDS,
    SIZE_BOUNDS,
    GaugeStat,
    HistogramState,
    SpanStat,
    TelemetryFrame,
    merge_frames,
)
from repro.obs.core import (
    NULL,
    Collector,
    NullCollector,
    absorb,
    collecting,
    count,
    enabled,
    gauge,
    get_collector,
    observe,
    set_collector,
    span,
)
from repro.obs.export import (
    TraceData,
    read_trace,
    render_report,
    report_to_json,
    write_trace,
)

__all__ = [
    "DEFAULT_BOUNDS",
    "DURATION_BOUNDS",
    "SIZE_BOUNDS",
    "GaugeStat",
    "HistogramState",
    "SpanStat",
    "TelemetryFrame",
    "merge_frames",
    "NULL",
    "Collector",
    "NullCollector",
    "absorb",
    "collecting",
    "count",
    "enabled",
    "gauge",
    "get_collector",
    "observe",
    "set_collector",
    "span",
    "TraceData",
    "read_trace",
    "render_report",
    "report_to_json",
    "write_trace",
]
