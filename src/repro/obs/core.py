"""Collection API: spans, counters, gauges, histograms.

The module keeps one *active collector*.  By default it is
:data:`NULL` — a no-op singleton whose methods return immediately — so
instrumented hot paths pay only an attribute lookup and an empty call
when observability is off.  The CLI's ``--trace``/``--profile`` flags
(and tests) swap in a real :class:`Collector` via :func:`collecting`.

Instrumentation points call the module-level helpers::

    from repro import obs

    with obs.span("engine.evaluate"):
        obs.count("engine.shards.planned", len(shards))
        obs.gauge("runtime.flag_rate", rate)
        obs.observe("engine.shard.duration_s", dt, bounds=DURATION_BOUNDS)

Spans nest: a span entered while another is open records under the
joined path (``engine.evaluate/engine.shard``), giving a cheap
hierarchical profile without a tracing runtime.  Engine pool workers
construct a private ``Collector`` directly (the active one lives in the
parent process), snapshot it to a :class:`TelemetryFrame` and ship the
frame home with their results; the parent folds it in with
:func:`absorb`.  Recorded values never include wall-clock instants —
only durations — so two runs of the same workload differ only in the
duration fields.
"""

from __future__ import annotations

import contextlib
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs.aggregate import (
    DEFAULT_BOUNDS,
    GaugeStat,
    HistogramState,
    SpanStat,
    TelemetryFrame,
)

__all__ = [
    "NULL",
    "Collector",
    "NullCollector",
    "absorb",
    "collecting",
    "count",
    "enabled",
    "gauge",
    "get_collector",
    "observe",
    "set_collector",
    "span",
]

#: Events kept per collector before further ones are counted as dropped.
MAX_EVENTS = 200_000


class _NullSpan:
    """Reusable no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullCollector:
    """Disabled collector: every operation is a no-op.

    This is the module default; instrumented code never needs to test a
    flag before recording (though hot loops may still guard expensive
    *argument computation* behind :func:`enabled`).
    """

    __slots__ = ()

    enabled = False
    events: Tuple = ()

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def record_span(self, path: str, dur_s: float) -> None:
        pass

    def count(self, name: str, n: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float,
                bounds: Optional[Sequence[float]] = None) -> None:
        pass

    def absorb(self, frame: Optional[TelemetryFrame]) -> None:
        pass

    def snapshot(self) -> TelemetryFrame:
        return TelemetryFrame.empty()


#: The process-wide disabled collector.
NULL = NullCollector()


class _Span:
    """Live span handle: measures one ``with`` block into its collector."""

    __slots__ = ("_collector", "_name", "_t0")

    def __init__(self, collector: "Collector", name: str) -> None:
        self._collector = collector
        self._name = name

    def __enter__(self) -> "_Span":
        self._collector._stack.append(self._name)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        dur = time.perf_counter() - self._t0
        stack = self._collector._stack
        path = "/".join(stack)
        stack.pop()
        self._collector.record_span(path, dur)
        return False


class Collector(NullCollector):
    """Live telemetry collector.

    Args:
        events: also keep a per-span event log (for ``--trace`` JSONL);
            capped at ``max_events``, further events count as dropped.
        max_events: event-log bound.

    The collector tallies every public recording call in ``api_calls``
    so the overhead benchmark can convert an instrumented run's call
    volume into a disabled-path cost estimate.
    """

    __slots__ = ("_counters", "_gauges", "_histograms", "_spans", "_stack",
                 "_events", "_record_events", "_max_events",
                 "dropped_events", "api_calls")

    enabled = True

    def __init__(self, events: bool = False,
                 max_events: int = MAX_EVENTS) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, GaugeStat] = {}
        self._histograms: Dict[str, HistogramState] = {}
        self._spans: Dict[str, SpanStat] = {}
        self._stack: List[str] = []
        self._events: List[Dict] = []
        self._record_events = bool(events)
        self._max_events = int(max_events)
        self.dropped_events = 0
        self.api_calls = 0

    # -- recording ----------------------------------------------------------

    def span(self, name: str) -> _Span:
        return _Span(self, name)

    def record_span(self, path: str, dur_s: float) -> None:
        self.api_calls += 1
        stat = self._spans.get(path)
        if stat is None:
            self._spans[path] = SpanStat(1, dur_s, dur_s)
        else:
            self._spans[path] = SpanStat(stat.count + 1,
                                         stat.total_s + dur_s,
                                         max(stat.max_s, dur_s))
        if self._record_events:
            if len(self._events) < self._max_events:
                self._events.append(
                    {"kind": "span", "path": path, "dur_s": dur_s}
                )
            else:
                self.dropped_events += 1

    def count(self, name: str, n: int = 1) -> None:
        self.api_calls += 1
        self._counters[name] = self._counters.get(name, 0) + int(n)

    def gauge(self, name: str, value: float) -> None:
        self.api_calls += 1
        stat = self._gauges.get(name)
        point = GaugeStat.single(value)
        self._gauges[name] = point if stat is None else stat.merge(point)

    def observe(self, name: str, value: float,
                bounds: Optional[Sequence[float]] = None) -> None:
        """Add ``value`` to histogram ``name``.

        ``bounds`` fixes the bucket layout on the histogram's *first*
        observation; later calls reuse the existing layout (a differing
        ``bounds`` argument is ignored — bounds are identity, set once).
        """
        self.api_calls += 1
        hist = self._histograms.get(name)
        if hist is None:
            hist = HistogramState.zero(DEFAULT_BOUNDS if bounds is None
                                       else bounds)
        self._histograms[name] = hist.observe(value)

    # -- cross-process fold -------------------------------------------------

    def absorb(self, frame: Optional[TelemetryFrame]) -> None:
        """Fold a worker's frame into this collector's live state."""
        if frame is None:
            return
        self.api_calls += 1
        merged = self.snapshot().merge(frame)
        self._counters = dict(merged.counters)
        self._gauges = dict(merged.gauges)
        self._histograms = dict(merged.histograms)
        self._spans = dict(merged.spans)
        self.dropped_events = merged.dropped_events

    # -- output -------------------------------------------------------------

    @property
    def events(self) -> Tuple[Dict, ...]:
        return tuple(self._events)

    def snapshot(self) -> TelemetryFrame:
        """Immutable frame of everything recorded so far."""
        return TelemetryFrame(
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            histograms=dict(self._histograms),
            spans=dict(self._spans),
            dropped_events=self.dropped_events,
        )


# -- active-collector plumbing ----------------------------------------------

_active: NullCollector = NULL


def get_collector() -> NullCollector:
    """The currently active collector (:data:`NULL` when disabled)."""
    return _active


def set_collector(collector: Optional[NullCollector]) -> NullCollector:
    """Install ``collector`` (None = disable); returns the previous one."""
    global _active
    previous = _active
    _active = NULL if collector is None else collector
    return previous


@contextlib.contextmanager
def collecting(events: bool = False) -> Iterator[Collector]:
    """Scope a fresh live :class:`Collector` as the active one."""
    collector = Collector(events=events)
    previous = set_collector(collector)
    try:
        yield collector
    finally:
        set_collector(previous)


# -- module-level recording helpers (the instrumentation surface) -----------

def enabled() -> bool:
    """True when a live collector is active (guard expensive arguments)."""
    return _active.enabled


def span(name: str):
    """Context manager timing a block under the active collector."""
    return _active.span(name)


def count(name: str, n: int = 1) -> None:
    _active.count(name, n)


def gauge(name: str, value: float) -> None:
    _active.gauge(name, value)


def observe(name: str, value: float,
            bounds: Optional[Sequence[float]] = None) -> None:
    _active.observe(name, value, bounds)


def absorb(frame: Optional[TelemetryFrame]) -> None:
    _active.absorb(frame)
