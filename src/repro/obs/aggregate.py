"""Mergeable telemetry snapshots.

:class:`TelemetryFrame` is the cross-process currency of the observability
layer, deliberately mirroring :class:`repro.engine.merge.PartialStats`: a
frame holds raw counts and sums (never means or rates), so two frames
merge *exactly* — ``merge`` is associative and commutative for every
integer field, has an identity (:meth:`TelemetryFrame.empty`), and the
merged result is therefore independent of how work was grouped across
``ProcessPoolExecutor`` workers.  Engine workers return one frame per
task alongside their :class:`~repro.engine.merge.PartialStats`, and the
parent folds them into its live collector.

Four instrument families:

* **counters** — monotone integer sums (cache hits, shard counts, …).
* **gauges** — observed values folded to ``(count, total, min, max)``;
  the mean is derived at report time.  ``last`` is deliberately absent:
  it would not merge commutatively.
* **histograms** — fixed-bucket counts.  Bucket bounds are part of the
  histogram's identity; merging two histograms with different bounds is
  an error, not a resample.
* **spans** — per-path ``(count, total_s, max_s)`` duration aggregates.

Frames serialize to plain JSON-safe dicts (``to_dict``/``from_dict``) for
the trace file, and pickle as ordinary dataclasses for pool transport.
No wall-clock instants are ever stored — durations only.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple

__all__ = [
    "DEFAULT_BOUNDS",
    "DURATION_BOUNDS",
    "SIZE_BOUNDS",
    "GaugeStat",
    "HistogramState",
    "SpanStat",
    "TelemetryFrame",
    "merge_frames",
]

#: Default histogram bounds: powers of ten over a generic value range.
DEFAULT_BOUNDS: Tuple[float, ...] = tuple(10.0 ** e for e in range(-6, 7))

#: Bounds tuned for durations in seconds (1 µs .. 10 s).
DURATION_BOUNDS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0,
)

#: Bounds tuned for discrete set sizes (analytic PMF support, shard
#: counts, ...): powers of two up to the engine's support cap.
SIZE_BOUNDS: Tuple[float, ...] = tuple(float(1 << e) for e in range(0, 21, 2))


@dataclass(frozen=True)
class GaugeStat:
    """Order-independent aggregate of one gauge's observations."""

    count: int
    total: float
    min: float
    max: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "GaugeStat") -> "GaugeStat":
        return GaugeStat(
            count=self.count + other.count,
            total=self.total + other.total,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
        )

    @classmethod
    def single(cls, value: float) -> "GaugeStat":
        value = float(value)
        return cls(count=1, total=value, min=value, max=value)

    def to_list(self):
        return [self.count, self.total, self.min, self.max]

    @classmethod
    def from_list(cls, payload) -> "GaugeStat":
        count, total, lo, hi = payload
        return cls(int(count), float(total), float(lo), float(hi))


@dataclass(frozen=True)
class HistogramState:
    """Fixed-bucket histogram: ``counts[i]`` covers ``(bounds[i-1], bounds[i]]``.

    ``counts`` has ``len(bounds) + 1`` entries; the last bucket is the
    overflow (``> bounds[-1]``).  ``total`` is the raw sum of observed
    values (a float, so merged totals agree only up to FP reassociation;
    every count is exact).
    """

    bounds: Tuple[float, ...]
    counts: Tuple[int, ...]
    total: float

    def __post_init__(self) -> None:
        if len(self.counts) != len(self.bounds) + 1:
            raise ValueError(
                f"histogram needs {len(self.bounds) + 1} buckets, "
                f"got {len(self.counts)}"
            )

    @property
    def count(self) -> int:
        return sum(self.counts)

    @property
    def mean(self) -> float:
        n = self.count
        return self.total / n if n else 0.0

    @classmethod
    def zero(cls, bounds: Iterable[float]) -> "HistogramState":
        bounds = tuple(float(b) for b in bounds)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram bounds must be strictly sorted: {bounds}")
        return cls(bounds=bounds, counts=(0,) * (len(bounds) + 1), total=0.0)

    def observe(self, value: float) -> "HistogramState":
        value = float(value)
        bucket = bisect_right(self.bounds, value)
        # bisect_right puts value == bound in the *next* bucket; shift so a
        # bucket covers (lo, hi] and an exact bound lands in its own bucket.
        if bucket > 0 and value == self.bounds[bucket - 1]:
            bucket -= 1
        counts = list(self.counts)
        counts[bucket] += 1
        return HistogramState(self.bounds, tuple(counts), self.total + value)

    def quantile(self, q: float) -> float:
        """Conservative ``q``-quantile estimate from the bucket counts.

        Returns the *upper bound* of the bucket holding the q-th ranked
        observation, so the estimate never understates the true value by
        more than one bucket width.  The overflow bucket has no upper
        bound and yields ``inf``; an empty histogram yields ``0.0``.
        The serve daemon derives its per-endpoint p50/p99 latencies from
        this, which keeps quantiles mergeable across worker frames (the
        counts merge exactly; a stream of raw samples would not).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        n = self.count
        if n == 0:
            return 0.0
        target = max(1, math.ceil(q * n))
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= target:
                return self.bounds[i] if i < len(self.bounds) else math.inf
        return math.inf  # pragma: no cover - counts always reach target

    def merge(self, other: "HistogramState") -> "HistogramState":
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        return HistogramState(
            bounds=self.bounds,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            total=self.total + other.total,
        )

    def to_dict(self):
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
        }

    @classmethod
    def from_dict(cls, payload) -> "HistogramState":
        return cls(
            bounds=tuple(float(b) for b in payload["bounds"]),
            counts=tuple(int(c) for c in payload["counts"]),
            total=float(payload["total"]),
        )


@dataclass(frozen=True)
class SpanStat:
    """Duration aggregate of one span path."""

    count: int
    total_s: float
    max_s: float

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def merge(self, other: "SpanStat") -> "SpanStat":
        return SpanStat(
            count=self.count + other.count,
            total_s=self.total_s + other.total_s,
            max_s=max(self.max_s, other.max_s),
        )

    def to_list(self):
        return [self.count, self.total_s, self.max_s]

    @classmethod
    def from_list(cls, payload) -> "SpanStat":
        count, total_s, max_s = payload
        return cls(int(count), float(total_s), float(max_s))


def _merge_maps(mine: Mapping, theirs: Mapping, combine) -> Dict:
    merged = dict(mine)
    for key, value in theirs.items():
        present = merged.get(key)
        merged[key] = value if present is None else combine(present, value)
    return merged


@dataclass(frozen=True)
class TelemetryFrame:
    """One immutable snapshot of collected telemetry.

    Frames form a commutative monoid under :meth:`merge` (exactly for all
    integer fields, up to FP reassociation for float sums), with
    :meth:`empty` as the identity — the same algebraic contract as
    ``PartialStats``, and for the same reason: the folded result must not
    depend on worker count or task grouping.
    """

    counters: Mapping[str, int] = field(default_factory=dict)
    gauges: Mapping[str, GaugeStat] = field(default_factory=dict)
    histograms: Mapping[str, HistogramState] = field(default_factory=dict)
    spans: Mapping[str, SpanStat] = field(default_factory=dict)
    dropped_events: int = 0

    @classmethod
    def empty(cls) -> "TelemetryFrame":
        return cls()

    @property
    def is_empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms
                    or self.spans or self.dropped_events)

    def merge(self, other: "TelemetryFrame") -> "TelemetryFrame":
        """Associative, commutative combination of two frames."""
        return TelemetryFrame(
            counters=_merge_maps(self.counters, other.counters,
                                 lambda a, b: a + b),
            gauges=_merge_maps(self.gauges, other.gauges,
                               GaugeStat.merge),
            histograms=_merge_maps(self.histograms, other.histograms,
                                   HistogramState.merge),
            spans=_merge_maps(self.spans, other.spans, SpanStat.merge),
            dropped_events=self.dropped_events + other.dropped_events,
        )

    # -- serialization (JSONL trace records, cache-stats output) ------------

    def to_dict(self) -> Dict:
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k].to_list()
                       for k in sorted(self.gauges)},
            "histograms": {k: self.histograms[k].to_dict()
                           for k in sorted(self.histograms)},
            "spans": {k: self.spans[k].to_list() for k in sorted(self.spans)},
            "dropped_events": self.dropped_events,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TelemetryFrame":
        return cls(
            counters={str(k): int(v)
                      for k, v in payload.get("counters", {}).items()},
            gauges={str(k): GaugeStat.from_list(v)
                    for k, v in payload.get("gauges", {}).items()},
            histograms={str(k): HistogramState.from_dict(v)
                        for k, v in payload.get("histograms", {}).items()},
            spans={str(k): SpanStat.from_list(v)
                   for k, v in payload.get("spans", {}).items()},
            dropped_events=int(payload.get("dropped_events", 0)),
        )


def merge_frames(frames: Iterable[TelemetryFrame]) -> TelemetryFrame:
    """Left fold of frames (order irrelevant up to FP reassociation)."""
    acc = TelemetryFrame.empty()
    for frame in frames:
        acc = acc.merge(frame)
    return acc
