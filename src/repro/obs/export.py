"""Trace persistence and reporting.

A trace file is JSON Lines, one record per line, three record kinds::

    {"record": "meta",  "format": "repro-obs-trace", "version": 1, "label": ...}
    {"record": "event", "seq": 0, "kind": "span", "path": "...", "dur_s": ...}
    {"record": "frame", "frame": { ... TelemetryFrame.to_dict() ... }}

``meta`` is always first.  ``event`` records replay the span log in
completion order (present only when the collector kept events).  One or
more ``frame`` records carry merged telemetry; readers fold every frame
they find, so traces can be concatenated (``cat a.jsonl b.jsonl``) and
re-summarized with ``gear obs report``.  No record contains a wall-clock
timestamp — durations only — so two traces of the same deterministic
workload differ only in duration fields.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.aggregate import TelemetryFrame, merge_frames

__all__ = [
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "TraceData",
    "read_trace",
    "render_report",
    "report_to_json",
    "write_trace",
]

TRACE_FORMAT = "repro-obs-trace"
TRACE_VERSION = 1

PathLike = Union[str, pathlib.Path]


def write_trace(path: PathLike, frame: TelemetryFrame,
                events: Iterable[Dict] = (),
                label: Optional[str] = None) -> pathlib.Path:
    """Write one telemetry frame (plus its span event log) as JSONL."""
    path = pathlib.Path(path)
    if path.parent != pathlib.Path():
        path.parent.mkdir(parents=True, exist_ok=True)
    lines = [json.dumps({
        "record": "meta",
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "label": label,
    }, sort_keys=True)]
    for seq, event in enumerate(events):
        lines.append(json.dumps(
            {"record": "event", "seq": seq, **event}, sort_keys=True))
    lines.append(json.dumps({"record": "frame", "frame": frame.to_dict()},
                            sort_keys=True))
    path.write_text("\n".join(lines) + "\n")
    return path


@dataclass(frozen=True)
class TraceData:
    """Parsed trace: the folded frame plus the raw event records."""

    frame: TelemetryFrame
    events: Tuple[Dict, ...] = ()
    labels: Tuple[str, ...] = field(default_factory=tuple)


def read_trace(path: PathLike) -> TraceData:
    """Parse a JSONL trace, folding every frame record it contains."""
    frames: List[TelemetryFrame] = []
    events: List[Dict] = []
    labels: List[str] = []
    for lineno, line in enumerate(
            pathlib.Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
        kind = record.get("record")
        if kind == "meta":
            if record.get("format") != TRACE_FORMAT:
                raise ValueError(
                    f"{path}:{lineno}: not a {TRACE_FORMAT} file "
                    f"(format={record.get('format')!r})"
                )
            if record.get("label"):
                labels.append(str(record["label"]))
        elif kind == "frame":
            frames.append(TelemetryFrame.from_dict(record["frame"]))
        elif kind == "event":
            events.append(record)
        else:
            raise ValueError(f"{path}:{lineno}: unknown record kind {kind!r}")
    if not frames:
        raise ValueError(f"{path}: trace contains no frame record")
    return TraceData(frame=merge_frames(frames), events=tuple(events),
                     labels=tuple(labels))


# -- reporting ---------------------------------------------------------------

def _rows(headers, rows) -> str:
    widths = [len(h) for h in headers]
    rendered = [[str(cell) for cell in row] for row in rows]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(
            cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
            for i, cell in enumerate(cells)
        ).rstrip()
    return "\n".join([fmt(headers)] + [fmt(row) for row in rendered])


def _bucket_label(bounds, i) -> str:
    if i < len(bounds):
        return f"<={bounds[i]:g}"
    return f">{bounds[-1]:g}"


def render_report(frame: TelemetryFrame,
                  title: str = "telemetry report") -> str:
    """Human-readable per-span totals, counters, gauges and histograms."""
    out: List[str] = [title, "=" * len(title)]
    if frame.is_empty:
        out.append("(no telemetry recorded)")
        return "\n".join(out)

    if frame.spans:
        ordered = sorted(frame.spans.items(),
                         key=lambda kv: (-kv[1].total_s, kv[0]))
        out += ["", "spans", _rows(
            ["path", "calls", "total s", "mean s", "max s"],
            [[path, s.count, f"{s.total_s:.6f}", f"{s.mean_s:.6f}",
              f"{s.max_s:.6f}"] for path, s in ordered],
        )]
    if frame.counters:
        out += ["", "counters", _rows(
            ["name", "value"],
            [[name, frame.counters[name]] for name in sorted(frame.counters)],
        )]
    if frame.gauges:
        out += ["", "gauges", _rows(
            ["name", "n", "mean", "min", "max"],
            [[name, g.count, f"{g.mean:.6g}", f"{g.min:.6g}", f"{g.max:.6g}"]
             for name, g in sorted(frame.gauges.items())],
        )]
    if frame.histograms:
        out += ["", "histograms"]
        for name in sorted(frame.histograms):
            hist = frame.histograms[name]
            populated = [
                f"{_bucket_label(hist.bounds, i)}: {count}"
                for i, count in enumerate(hist.counts) if count
            ]
            out.append(f"{name}  n={hist.count}  mean={hist.mean:.6g}")
            out.append("  " + ("  ".join(populated) if populated
                               else "(empty)"))
    if frame.dropped_events:
        out += ["", f"dropped events: {frame.dropped_events}"]
    return "\n".join(out)


def report_to_json(frame: TelemetryFrame) -> Dict:
    """Machine-readable report: the frame dict plus derived per-span means."""
    payload = frame.to_dict()
    payload["span_summary"] = {
        path: {"calls": s.count, "total_s": s.total_s, "mean_s": s.mean_s,
               "max_s": s.max_s}
        for path, s in sorted(frame.spans.items())
    }
    return payload
