"""Sum of Absolute Differences kernel (Fig. 9b: N=16, L=8).

SAD is the similarity measure of block-based motion estimation: the
absolute pixel differences of two blocks are accumulated into one score.
A 16x16 block of 8-bit pixels sums to at most 256 · 255 < 2^16, which is
why the paper sizes this application at N=16.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.adders.base import AdderModel
from repro.utils.bitvec import mask


def sad(block_a: np.ndarray, block_b: np.ndarray,
        adder: Optional[AdderModel] = None) -> int:
    """SAD of two equally-shaped blocks, accumulated through ``adder``."""
    block_a = np.asarray(block_a, dtype=np.int64)
    block_b = np.asarray(block_b, dtype=np.int64)
    if block_a.shape != block_b.shape:
        raise ValueError(f"block shapes differ: {block_a.shape} vs {block_b.shape}")
    diffs = np.abs(block_a - block_b).ravel()
    if adder is None:
        return int(diffs.sum())
    if int(diffs.sum()) > mask(adder.width):
        raise ValueError(
            f"exact SAD {int(diffs.sum())} overflows the {adder.width}-bit adder"
        )
    acc = 0
    for d in diffs:
        acc = int(adder.add(acc, int(d)))
    return acc


def sad_map(frame: np.ndarray, reference: np.ndarray,
            origin: Tuple[int, int], block: int, search: int,
            adder: Optional[AdderModel] = None) -> np.ndarray:
    """SAD scores over a (2·search+1)^2 grid of candidate displacements.

    Args:
        frame: frame to search in.
        reference: frame providing the reference block.
        origin: top-left corner (row, col) of the reference block.
        block: block edge length.
        search: displacement radius.
        adder: approximate adder for the accumulations (None = exact).

    Returns:
        Array of shape (2·search+1, 2·search+1); entry [dy+search, dx+search]
        is the SAD at displacement (dy, dx).  Out-of-frame candidates get
        the maximum int64 sentinel.
    """
    frame = np.asarray(frame, dtype=np.int64)
    reference = np.asarray(reference, dtype=np.int64)
    r0, c0 = origin
    ref_block = reference[r0 : r0 + block, c0 : c0 + block]
    if ref_block.shape != (block, block):
        raise ValueError("reference block exceeds frame bounds")
    side = 2 * search + 1
    scores = np.full((side, side), np.iinfo(np.int64).max, dtype=np.int64)
    for dy in range(-search, search + 1):
        for dx in range(-search, search + 1):
            r, c = r0 + dy, c0 + dx
            if r < 0 or c < 0 or r + block > frame.shape[0] or c + block > frame.shape[1]:
                continue
            candidate = frame[r : r + block, c : c + block]
            scores[dy + search, dx + search] = sad(candidate, ref_block, adder)
    return scores


def motion_search(frame: np.ndarray, reference: np.ndarray,
                  origin: Tuple[int, int], block: int, search: int,
                  adder: Optional[AdderModel] = None) -> Tuple[int, int]:
    """Best displacement (dy, dx) minimising SAD — full search.

    Ties resolve to the smallest displacement magnitude, then row-major,
    so results are deterministic across adders.
    """
    scores = sad_map(frame, reference, origin, block, search, adder)
    best = None
    for dy in range(-search, search + 1):
        for dx in range(-search, search + 1):
            s = scores[dy + search, dx + search]
            key = (int(s), abs(dy) + abs(dx), dy, dx)
            if best is None or key < best[0]:
                best = (key, (dy, dx))
    assert best is not None
    return best[1]
