"""Application kernels from §4.4: Image Integral, SAD and Low-Pass Filter.

Each kernel accepts any :class:`~repro.adders.base.AdderModel`; passing
``None`` runs the exact reference.  Synthetic image generation replaces the
paper's (unspecified) test imagery — see DESIGN.md's substitution table.
"""

from repro.apps.images import (
    gradient_image,
    natural_image,
    checkerboard_image,
    moving_block_pair,
)
from repro.apps.integral import (
    integral_image_rows,
    integral_image_2d,
    accumulate,
    max_row_width,
)
from repro.apps.sad import sad, sad_map, motion_search
from repro.apps.lpf import binomial_kernel_3x3, low_pass_filter
from repro.apps.quality import psnr, mean_absolute_error, global_ssim, QualityReport, compare_images
from repro.apps.boxfilter import (
    box_filter_mean,
    box_filter_sums,
    disparity_map,
    variable_window_cost,
)

__all__ = [
    "gradient_image",
    "natural_image",
    "checkerboard_image",
    "moving_block_pair",
    "integral_image_rows",
    "integral_image_2d",
    "accumulate",
    "max_row_width",
    "sad",
    "sad_map",
    "motion_search",
    "binomial_kernel_3x3",
    "low_pass_filter",
    "psnr",
    "mean_absolute_error",
    "global_ssim",
    "QualityReport",
    "compare_images",
    "box_filter_mean",
    "box_filter_sums",
    "disparity_map",
    "variable_window_cost",
]
