"""Worst-case error bounds for the application kernels.

The error model gives *probabilities*; safety-style arguments need hard
bounds.  Because every windowed speculative adder under-approximates
(approx ≤ exact, each addition short by at most the adder's maximum error
distance D), the kernels' worst-case output errors follow from how many
approximate additions feed each output:

* prefix sums: output j accumulates j additions → error ≤ j·D,
* SAD over m pixels: m additions → error ≤ m·D,
* LPF taps: 8 accumulations → error ≤ 8·D (before the >>4, so ≤ D/2 after),
* box sums: four integral corners, each a (row + column) accumulation.

These bounds are loose (misses are rare and partially cancel) but *sound*:
the measured worst case can never exceed them, which tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.adders.base import AdderModel
from repro.utils.validation import check_nonneg_int, check_pos_int


def _max_ed(adder: AdderModel) -> int:
    if adder.is_exact:
        return 0
    bound = getattr(adder, "max_error_distance", None)
    if not callable(bound):
        raise ValueError(
            f"{adder.name} exposes no max_error_distance(); cannot bound"
        )
    return int(bound())


@dataclass(frozen=True)
class KernelBound:
    """A sound worst-case output-error bound for one kernel setup."""

    kernel: str
    adder_name: str
    per_addition: int
    additions: int

    @property
    def worst_case(self) -> int:
        return self.per_addition * self.additions


def integral_row_bound(adder: AdderModel, row_length: int) -> KernelBound:
    """Worst-case error of the *last* prefix-sum entry of a row.

    Entry j accumulates j approximate additions, each short by at most D,
    so the bound grows linearly along the row (tested against measurement).
    """
    check_pos_int("row_length", row_length)
    return KernelBound(
        kernel="integral_row",
        adder_name=adder.name,
        per_addition=_max_ed(adder),
        additions=row_length - 1 if row_length > 1 else 0,
    )


def sad_bound(adder: AdderModel, block_pixels: int) -> KernelBound:
    """Worst-case SAD error for a block of ``block_pixels`` pixels."""
    check_pos_int("block_pixels", block_pixels)
    return KernelBound(
        kernel="sad",
        adder_name=adder.name,
        per_addition=_max_ed(adder),
        additions=block_pixels,
    )


def lpf_bound(adder: AdderModel) -> KernelBound:
    """Worst-case error of the 3x3 binomial accumulator (before >>4)."""
    return KernelBound(
        kernel="lpf_accumulator",
        adder_name=adder.name,
        per_addition=_max_ed(adder),
        additions=8,  # nine taps, eight accumulations
    )


def box_sum_bound(adder: AdderModel, rows: int, cols: int) -> KernelBound:
    """Worst-case error of any box sum over an approximate 2-D integral.

    Each integral corner accumulates at most (cols-1) row additions plus
    (rows-1) column additions of row-pass values; the box combines four
    corners, so errors can add with either sign up to 4× a corner bound.
    """
    check_pos_int("rows", rows)
    check_pos_int("cols", cols)
    corner = (cols - 1) + (rows - 1)
    return KernelBound(
        kernel="box_sum",
        adder_name=adder.name,
        per_addition=_max_ed(adder),
        additions=4 * corner,
    )


def expected_error_estimate(bound: KernelBound,
                            miss_probability: Optional[float]) -> Optional[float]:
    """Crude expected-error companion to the worst case.

    Treats each addition as independently missing (probability = the
    adder's error probability) with mean magnitude ≈ D/2 when it does;
    useful as an order-of-magnitude sanity line next to the hard bound.
    """
    if miss_probability is None:
        return None
    return bound.additions * miss_probability * bound.per_addition / 2.0
