"""Low-pass filter kernel (Fig. 9c: N=12, L=8).

A separable 3x3 binomial smoothing filter, weights (1/16)·[1 2 1]ᵀ[1 2 1].
All weights are powers of two, so the weighted sum is a chain of shifted
additions: the accumulator peaks at 16 · 255 = 4080 < 2^12, which is why
the paper sizes this application at N=12.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.adders.base import AdderModel
from repro.utils.bitvec import mask

#: Binomial kernel weights as (dy, dx, left-shift) triples.
_TAPS = [
    (-1, -1, 0), (-1, 0, 1), (-1, 1, 0),
    (0, -1, 1), (0, 0, 2), (0, 1, 1),
    (1, -1, 0), (1, 0, 1), (1, 1, 0),
]


def binomial_kernel_3x3() -> np.ndarray:
    """The 3x3 binomial kernel (integer weights, sums to 16)."""
    kernel = np.zeros((3, 3), dtype=np.int64)
    for dy, dx, shift in _TAPS:
        kernel[dy + 1, dx + 1] = 1 << shift
    return kernel


def low_pass_filter(image: np.ndarray, adder: Optional[AdderModel] = None) -> np.ndarray:
    """3x3 binomial low-pass filter with adder-accumulated taps.

    Border handling: edge replication.  The 9 shifted taps are accumulated
    pairwise through ``adder``; the final >>4 normalisation is exact (it is
    a wire selection in hardware).

    Args:
        image: 2-D image with values in [0, 255].
        adder: approximate adder for the accumulation (None = exact).

    Returns:
        Filtered image, same shape, values in [0, 255].
    """
    image = np.asarray(image, dtype=np.int64)
    if image.ndim != 2:
        raise ValueError("low_pass_filter expects a 2-D image")
    if image.size == 0:
        raise ValueError("image is empty")
    if image.min() < 0 or image.max() > 255:
        raise ValueError("pixel values must be in [0, 255]")
    if adder is not None and mask(adder.width) < 16 * 255:
        raise ValueError(
            f"{adder.width}-bit adder cannot hold the kernel accumulator "
            f"(needs {(16 * 255).bit_length()} bits)"
        )

    rows, cols = image.shape
    padded = np.pad(image, 1, mode="edge")
    acc = np.zeros((rows, cols), dtype=np.int64)
    first = True
    for dy, dx, shift in _TAPS:
        tap = padded[dy + 1 : dy + 1 + rows, dx + 1 : dx + 1 + cols] << shift
        if first:
            acc = tap.copy()
            first = False
        elif adder is None:
            acc = acc + tap
        else:
            acc = np.asarray(adder.add(acc.ravel(), tap.ravel())).reshape(rows, cols)
    return acc >> 4
