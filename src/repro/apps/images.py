"""Deterministic synthetic test imagery.

The paper evaluates its kernels on full-HD images it does not ship.  These
generators produce seeded images with natural-image-like statistics
(smooth shading, local texture, sensor-style noise) so the application
benchmarks are reproducible end to end.  All images are 8-bit grayscale
(uint8-valued int64 arrays).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.validation import check_pos_int


def _finalize(image: np.ndarray) -> np.ndarray:
    return np.clip(np.rint(image), 0, 255).astype(np.int64)


def gradient_image(rows: int, cols: int, seed: int = 7) -> np.ndarray:
    """Diagonal gradient with sinusoidal texture and mild noise."""
    check_pos_int("rows", rows)
    check_pos_int("cols", cols)
    rng = np.random.default_rng(seed)
    y = np.linspace(0.0, 1.0, rows)[:, None]
    x = np.linspace(0.0, 1.0, cols)[None, :]
    base = 120.0 * (0.6 * x + 0.4 * y)
    texture = 40.0 * np.sin(2 * np.pi * 6 * x) * np.cos(2 * np.pi * 4 * y)
    noise = rng.normal(0.0, 6.0, size=(rows, cols))
    return _finalize(64.0 + base + texture + noise)


def natural_image(rows: int, cols: int, seed: int = 11, smoothing: int = 3) -> np.ndarray:
    """Spatially correlated random image (cascaded box filters on noise).

    The repeated 3x3 box filter turns white noise into the low-frequency,
    locally correlated structure typical of photographs, which is the
    statistic that matters for carry-chain behaviour in the kernels.
    """
    check_pos_int("rows", rows)
    check_pos_int("cols", cols)
    rng = np.random.default_rng(seed)
    img = rng.uniform(0.0, 255.0, size=(rows, cols))
    for _ in range(smoothing):
        padded = np.pad(img, 1, mode="edge")
        acc = np.zeros_like(img)
        for dy in (0, 1, 2):
            for dx in (0, 1, 2):
                acc += padded[dy : dy + rows, dx : dx + cols]
        img = acc / 9.0
    # Re-stretch the contrast the smoothing removed.
    lo, hi = img.min(), img.max()
    if hi > lo:
        img = (img - lo) / (hi - lo) * 255.0
    return _finalize(img)


def checkerboard_image(rows: int, cols: int, tile: int = 8,
                       low: int = 32, high: int = 224) -> np.ndarray:
    """High-contrast checkerboard — a worst-case for carry chains."""
    check_pos_int("rows", rows)
    check_pos_int("cols", cols)
    check_pos_int("tile", tile)
    if not 0 <= low < high <= 255:
        raise ValueError(f"need 0 <= low < high <= 255, got {low}, {high}")
    yy, xx = np.meshgrid(np.arange(rows) // tile, np.arange(cols) // tile,
                         indexing="ij")
    return np.where((yy + xx) % 2 == 0, low, high).astype(np.int64)


def moving_block_pair(rows: int, cols: int, shift: Tuple[int, int] = (2, 3),
                      seed: int = 23) -> Tuple[np.ndarray, np.ndarray]:
    """Two frames related by a global translation plus noise (SAD workload).

    Returns (reference frame, shifted frame).  The shift is circular so
    both frames keep full support; the known displacement lets the motion
    search example verify it finds the true motion vector.
    """
    frame = natural_image(rows, cols, seed=seed)
    dy, dx = shift
    moved = np.roll(frame, (dy, dx), axis=(0, 1))
    rng = np.random.default_rng(seed + 1)
    noisy = np.clip(moved + np.rint(rng.normal(0, 2.0, moved.shape)), 0, 255)
    return frame, noisy.astype(np.int64)
