"""Image Integral kernel (Table I at N=16, Table IV / Fig. 9 at N=20).

The 1-D image integral is the running prefix sum along each row — the
building block of Viola-Jones-style box filters and the fast variable
window stereo of [14].  Every output pixel accumulates all pixels to its
left, so approximation errors *compound*: this is why Table I's
application-level MED values dwarf the single-addition ones.

The adder width N must be large enough that the exact row sums fit
(the paper picks N=20 for full-HD rows: 1920 · 255 < 2^20); the kernel
validates this instead of silently wrapping.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.adders.base import AdderModel
from repro.utils.bitvec import mask


def max_row_width(adder_width: int, max_pixel: int = 255) -> int:
    """Longest row whose exact integral fits in ``adder_width`` bits."""
    return mask(adder_width) // max_pixel


def accumulate(values: np.ndarray, adder: Optional[AdderModel] = None) -> np.ndarray:
    """Running prefix sums of a 1-D sequence via repeated adder calls."""
    values = np.asarray(values, dtype=np.int64)
    if values.ndim != 1:
        raise ValueError("accumulate expects a 1-D sequence")
    if adder is None:
        return np.cumsum(values)
    out = np.empty_like(values)
    acc = 0
    for i, v in enumerate(values):
        acc = int(adder.add(acc, int(v)))
        out[i] = acc
    return out


def integral_image_rows(image: np.ndarray, adder: Optional[AdderModel] = None) -> np.ndarray:
    """1-D image integral: per-row prefix sums (the paper's kernel).

    Args:
        image: 2-D non-negative integer image.
        adder: approximate adder, or ``None`` for the exact reference.

    Raises:
        ValueError: when a row's exact integral would overflow the adder.
    """
    image = np.asarray(image, dtype=np.int64)
    if image.ndim != 2:
        raise ValueError("integral_image_rows expects a 2-D image")
    if image.min() < 0:
        raise ValueError("image must be non-negative")
    if adder is None:
        return np.cumsum(image, axis=1)
    worst = int(image.sum(axis=1).max())
    if worst > mask(adder.width):
        raise ValueError(
            f"row sums up to {worst} overflow the {adder.width}-bit adder; "
            f"use width >= {worst.bit_length()} or narrower tiles"
        )
    # Vectorise across rows: all row accumulators advance one column at a
    # time through the (vectorised) adder model.
    rows, cols = image.shape
    out = np.empty_like(image)
    acc = np.zeros(rows, dtype=np.int64)
    for c in range(cols):
        acc = np.asarray(adder.add(acc, image[:, c]))
        out[:, c] = acc
    return out


def integral_image_2d(image: np.ndarray, adder: Optional[AdderModel] = None) -> np.ndarray:
    """Full 2-D integral image: row pass followed by a column pass."""
    row_pass = integral_image_rows(image, adder)
    if adder is None:
        return np.cumsum(row_pass, axis=0)
    worst = int(row_pass[:, -1].sum())
    if worst > mask(adder.width):
        raise ValueError(
            f"column sums up to {worst} overflow the {adder.width}-bit adder"
        )
    rows, cols = row_pass.shape
    out = np.empty_like(row_pass)
    acc = np.zeros(cols, dtype=np.int64)
    for r in range(rows):
        acc = np.asarray(adder.add(acc, row_pass[r]))
        out[r] = acc
    return out
