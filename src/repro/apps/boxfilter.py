"""Box filtering via integral images — the paper's stereo use case [14].

Veksler's fast variable-window stereo (cited in §1 and §4.4 via the
integral image) computes arbitrary-size box sums in O(1) per pixel from a
2-D integral image:

    box(x1..x2, y1..y2) = I(y2,x2) - I(y1-1,x2) - I(y2,x1-1) + I(y1-1,x1-1)

When the integral image is built with an approximate adder, each box sum
inherits the accumulated error of its four corners.  The box-sum
combination itself is implemented exactly (subtraction hardware is not
part of the paper's study), so output error isolates the integral-stage
approximation — matching how [14]-style systems would deploy GeAr.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.adders.base import AdderModel
from repro.apps.integral import integral_image_2d
from repro.utils.validation import check_pos_int


def _padded_integral(image: np.ndarray, adder: Optional[AdderModel]) -> np.ndarray:
    """Integral image with a zero guard row/column for clean corner math."""
    integral = integral_image_2d(image, adder)
    padded = np.zeros(
        (integral.shape[0] + 1, integral.shape[1] + 1), dtype=np.int64
    )
    padded[1:, 1:] = integral
    return padded


def box_filter_sums(
    image: np.ndarray,
    radius: int,
    adder: Optional[AdderModel] = None,
) -> np.ndarray:
    """Sum of the (2·radius+1)² window around every pixel (edge-clipped).

    Args:
        image: 2-D non-negative integer image.
        radius: window radius (0 = identity).
        adder: approximate adder used to *build the integral image*;
            ``None`` computes the exact reference.

    Returns:
        Array of window sums, same shape as ``image``.
    """
    image = np.asarray(image, dtype=np.int64)
    if image.ndim != 2:
        raise ValueError("box_filter_sums expects a 2-D image")
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    rows, cols = image.shape
    integral = _padded_integral(image, adder)

    ys = np.arange(rows)
    xs = np.arange(cols)
    y1 = np.clip(ys - radius, 0, rows - 1)
    y2 = np.clip(ys + radius, 0, rows - 1)
    x1 = np.clip(xs - radius, 0, cols - 1)
    x2 = np.clip(xs + radius, 0, cols - 1)

    top = integral[y1, :]
    bottom = integral[y2 + 1, :]
    return (
        bottom[:, x2 + 1] - bottom[:, x1] - top[:, x2 + 1] + top[:, x1]
    )


def box_filter_mean(
    image: np.ndarray,
    radius: int,
    adder: Optional[AdderModel] = None,
) -> np.ndarray:
    """Mean filter from box sums (rounded down), edge-clipped windows."""
    image = np.asarray(image, dtype=np.int64)
    sums = box_filter_sums(image, radius, adder)
    rows, cols = image.shape
    ys = np.arange(rows)
    xs = np.arange(cols)
    heights = np.clip(ys + radius, 0, rows - 1) - np.clip(ys - radius, 0, rows - 1) + 1
    widths = np.clip(xs + radius, 0, cols - 1) - np.clip(xs - radius, 0, cols - 1) + 1
    areas = heights[:, None] * widths[None, :]
    return sums // areas


def variable_window_cost(
    left: np.ndarray,
    right: np.ndarray,
    disparity: int,
    radius: int,
    adder: Optional[AdderModel] = None,
) -> np.ndarray:
    """Aggregated absolute-difference cost for one stereo disparity.

    The [14] pipeline: shift the right image by ``disparity``, take
    per-pixel absolute differences, box-aggregate with the integral image.
    Returns the aggregated cost map (columns < ``disparity`` are invalid
    and set to the max sentinel).
    """
    left = np.asarray(left, dtype=np.int64)
    right = np.asarray(right, dtype=np.int64)
    if left.shape != right.shape:
        raise ValueError("stereo pair shapes differ")
    check_pos_int("radius", radius) if radius else None
    if disparity < 0 or disparity >= left.shape[1]:
        raise ValueError(f"disparity {disparity} out of range")
    diff = np.zeros_like(left)
    if disparity:
        diff[:, disparity:] = np.abs(left[:, disparity:] - right[:, :-disparity])
    else:
        diff = np.abs(left - right)
    cost = box_filter_sums(diff, radius, adder)
    if disparity:
        cost[:, :disparity] = np.iinfo(np.int64).max
    return cost


def disparity_map(
    left: np.ndarray,
    right: np.ndarray,
    max_disparity: int,
    radius: int,
    adder: Optional[AdderModel] = None,
) -> np.ndarray:
    """Winner-take-all stereo disparities over 0..max_disparity.

    A miniature but complete version of the variable-window stereo
    matcher the paper's integral-image application serves.
    """
    check_pos_int("max_disparity", max_disparity)
    best_cost: Optional[np.ndarray] = None
    best_disp = np.zeros_like(np.asarray(left, dtype=np.int64))
    for d in range(max_disparity + 1):
        cost = variable_window_cost(left, right, d, radius, adder)
        if best_cost is None:
            best_cost = cost
            continue
        better = cost < best_cost
        best_disp = np.where(better, d, best_disp)
        best_cost = np.where(better, cost, best_cost)
    return best_disp
