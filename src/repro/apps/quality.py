"""Output-quality metrics for the application kernels.

PSNR and a global (single-window) SSIM quantify how visible approximate
addition is in the kernel outputs — the "application resilience" argument
of the paper's introduction, made measurable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


def mean_absolute_error(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Mean |reference - candidate| over all pixels."""
    reference = np.asarray(reference, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    if reference.shape != candidate.shape:
        raise ValueError(f"shapes differ: {reference.shape} vs {candidate.shape}")
    return float(np.mean(np.abs(reference - candidate)))


def psnr(reference: np.ndarray, candidate: np.ndarray, peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB (inf for identical inputs)."""
    reference = np.asarray(reference, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    if reference.shape != candidate.shape:
        raise ValueError(f"shapes differ: {reference.shape} vs {candidate.shape}")
    mse = float(np.mean((reference - candidate) ** 2))
    if mse == 0.0:
        return math.inf
    return 10.0 * math.log10(peak * peak / mse)


def global_ssim(reference: np.ndarray, candidate: np.ndarray,
                peak: float = 255.0) -> float:
    """Single-window SSIM (luminance/contrast/structure over whole image)."""
    x = np.asarray(reference, dtype=np.float64)
    y = np.asarray(candidate, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shapes differ: {x.shape} vs {y.shape}")
    c1 = (0.01 * peak) ** 2
    c2 = (0.03 * peak) ** 2
    mx, my = x.mean(), y.mean()
    vx, vy = x.var(), y.var()
    cov = float(np.mean((x - mx) * (y - my)))
    return float(
        ((2 * mx * my + c1) * (2 * cov + c2))
        / ((mx * mx + my * my + c1) * (vx + vy + c2))
    )


@dataclass(frozen=True)
class QualityReport:
    """Quality summary of an approximate kernel output vs the exact one."""

    mae: float
    psnr_db: float
    ssim: float
    max_abs_error: int
    exact_fraction: float


def compare_images(reference: np.ndarray, candidate: np.ndarray,
                   peak: float = 255.0) -> QualityReport:
    """Compute every quality metric for a pair of kernel outputs."""
    ref = np.asarray(reference, dtype=np.int64)
    cand = np.asarray(candidate, dtype=np.int64)
    if ref.shape != cand.shape:
        raise ValueError(f"shapes differ: {ref.shape} vs {cand.shape}")
    diff = np.abs(ref - cand)
    return QualityReport(
        mae=mean_absolute_error(ref, cand),
        psnr_db=psnr(ref, cand, peak=peak),
        ssim=global_ssim(ref, cand, peak=peak),
        max_abs_error=int(diff.max()),
        exact_fraction=float(np.mean(diff == 0)),
    )
