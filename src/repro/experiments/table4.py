"""Table IV — delay, error probability and Image Integral execution times.

For the Image Integral application (N=20, 10-bit sub-adders, one addition
per full-HD pixel) every adder's runtime is *predicted* from its path
delay, its analytic error probability and its sub-adder count — the §4.4
claim that the error model replaces application simulation.

Delay columns come from our FPGA characterisation (paper: ISE on Virtex-6);
the paper's delays are carried alongside so the bench can verify that the
*paper's* delay column combined with our probability/timing model
reproduces the paper's time columns digit-for-digit, and that our delays
preserve the ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.adders import (
    AccuracyConfigurableAdder,
    AlmostCorrectAdder,
    ErrorTolerantAdderII,
    GracefullyDegradingAdder,
    RippleCarryAdder,
)
from repro.analysis.tables import format_table
from repro.core.error_model import error_probability
from repro.core.gear import GeArAdder, GeArConfig
from repro.experiments.result import ExperimentResult
from repro.paperdata import TABLE4_GEAR, TABLE4_OTHERS
from repro.timing.fpga import characterize
from repro.timing.latency import FULL_HD_PIXELS, ExecutionTiming, execution_timings

#: Application parameters (§4.4): Image Integral, N=20, L=10.
APP_WIDTH = 20
SUB_ADDER_LEN = 10

TABLE4_HEADERS = ("adder", "k", "delay_ns", "paper_delay_ns",
                  "error_probability", "approximate_s", "best_s",
                  "average_s", "worst_s")


@dataclass(frozen=True)
class Table4Row:
    name: str
    r: Optional[int]
    p: Optional[int]
    k: int
    delay_ns: float
    paper_delay_ns: Optional[float]
    error_probability: float
    timing: ExecutionTiming
    paper_timing: Optional[ExecutionTiming]


def _gear_rows(n_ops: int) -> List[Table4Row]:
    rows: List[Table4Row] = []
    for (r, p), ref in TABLE4_GEAR.items():
        cfg = GeArConfig(APP_WIDTH, r, p, allow_partial=(APP_WIDTH - r - p) % r != 0)
        adder = GeArAdder(cfg)
        char = characterize(adder)
        prob = error_probability(cfg)
        rows.append(
            Table4Row(
                name=f"GeAr({r},{p})",
                r=r,
                p=p,
                k=cfg.k,
                delay_ns=char.delay_ns,
                paper_delay_ns=ref["delay_ns"],
                error_probability=prob,
                timing=execution_timings(
                    f"GeAr({r},{p})", char.delay_ns, prob, cfg.k, n_ops=n_ops
                ),
                paper_timing=execution_timings(
                    f"GeAr({r},{p})/paper-delay", ref["delay_ns"], ref["p_err"],
                    cfg.k, n_ops=n_ops,
                ),
            )
        )
    return rows


def _baseline_rows(n_ops: int) -> List[Table4Row]:
    builders = {
        "ACA-I": lambda: AlmostCorrectAdder(APP_WIDTH, SUB_ADDER_LEN),
        "ACA-II": lambda: AccuracyConfigurableAdder(APP_WIDTH, SUB_ADDER_LEN),
        "ETAII": lambda: ErrorTolerantAdderII(APP_WIDTH, SUB_ADDER_LEN),
        "GDA(1,9)": lambda: GracefullyDegradingAdder(
            APP_WIDTH, 1, 9, enforce_multiple=False
        ),
        "GDA(2,8)": lambda: GracefullyDegradingAdder(APP_WIDTH, 2, 8),
        "GDA(5,5)": lambda: GracefullyDegradingAdder(APP_WIDTH, 5, 5),
        "RCA": lambda: RippleCarryAdder(APP_WIDTH),
    }
    rows: List[Table4Row] = []
    for name, make in builders.items():
        adder = make()
        ref = TABLE4_OTHERS[name]
        char = characterize(adder)
        prob = adder.error_probability()
        assert prob is not None
        k = len(adder.windows) if hasattr(adder, "windows") else 1
        rows.append(
            Table4Row(
                name=name,
                r=None,
                p=None,
                k=k,
                delay_ns=char.delay_ns,
                paper_delay_ns=ref["delay_ns"],
                error_probability=prob,
                timing=execution_timings(name, char.delay_ns, prob, k, n_ops=n_ops),
                paper_timing=execution_timings(
                    f"{name}/paper-delay", ref["delay_ns"], ref["p_err"],
                    int(ref["k"]), n_ops=n_ops,
                ),
            )
        )
    return rows


def _table4_row(row: Table4Row) -> dict:
    return {
        "adder": row.name,
        "k": row.k,
        "delay_ns": row.delay_ns,
        "paper_delay_ns": row.paper_delay_ns,
        "error_probability": row.error_probability,
        "approximate_s": row.timing.approximate_s,
        "best_s": row.timing.best_s,
        "average_s": row.timing.average_s,
        "worst_s": row.timing.worst_s,
    }


def run_table4(n_ops: int = FULL_HD_PIXELS) -> "ExperimentResult":
    """All Table IV rows: GeAr R=1..7 plus the baseline adders."""
    return ExperimentResult(
        "table4", TABLE4_HEADERS, _gear_rows(n_ops) + _baseline_rows(n_ops),
        _table4_row,
    )


def render_table4(rows: Optional[List[Table4Row]] = None) -> str:
    rows = rows if rows is not None else run_table4()
    return format_table(
        ["adder", "k", "delay ns", "paper ns", "p(err)",
         "approx s", "best s", "avg s", "worst s"],
        [
            (
                row.name,
                row.k,
                f"{row.delay_ns:.3f}",
                row.paper_delay_ns,
                f"{row.error_probability:.6f}",
                f"{row.timing.approximate_s:.6e}",
                f"{row.timing.best_s:.6e}",
                f"{row.timing.average_s:.6e}",
                f"{row.timing.worst_s:.6e}",
            )
            for row in rows
        ],
        title="Table IV — Image Integral execution-time prediction (full-HD)",
    )
