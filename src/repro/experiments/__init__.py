"""Reproduction of every table and figure in the paper's evaluation.

One module per artefact; each exposes a ``run_*`` function returning a
result container (:class:`~repro.experiments.result.ExperimentResult` or
:class:`~repro.experiments.result.GroupedExperimentResult` — still a
plain list/dict to old callers) plus a ``render_*`` helper that prints
the same rows the paper reports.  The :data:`EXPERIMENTS` registry maps
artefact names to their runner/renderer so the CLI's ``gear experiment``
subcommand and the exporter stay declarative.

The benchmark harness under ``benchmarks/`` wraps these functions in
pytest-benchmark; the CLI prints them directly.
"""

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.experiments.result import ExperimentResult, GroupedExperimentResult
from repro.experiments.fig1 import run_fig1, render_fig1
from repro.experiments.fig7 import run_fig7, render_fig7
from repro.experiments.fig8 import run_fig8, render_fig8
from repro.experiments.fig9 import run_fig9, render_fig9
from repro.experiments.table1 import run_table1, render_table1
from repro.experiments.table2 import run_table2, render_table2
from repro.experiments.table3 import run_table3, render_table3
from repro.experiments.table4 import run_table4, render_table4
from repro.experiments.ablation import (
    run_distribution_sensitivity_ablation,
    run_correction_policy_ablation,
    render_distribution_sensitivity_ablation,
    render_correction_policy_ablation,
)
from repro.experiments.sweep import run_sweep, render_sweep


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry binding a runner to its renderer and capabilities.

    ``accepts`` lists the runner keyword arguments the CLI may forward
    (``samples``/``seed`` for stochastic artefacts, ``engine`` for any
    artefact that evaluates through :mod:`repro.engine`, ``backend`` for
    runners that can answer on a non-default evaluation backend).
    """

    name: str
    runner: Callable[..., object]
    renderer: Callable[[object], str]
    description: str
    accepts: tuple = ()

    def run(self, *, samples: Optional[int] = None, seed: Optional[int] = None,
            engine=None, backend: Optional[str] = None):
        kwargs = {}
        if samples is not None and "samples" in self.accepts:
            kwargs["samples"] = samples
        if seed is not None and "seed" in self.accepts:
            kwargs["seed"] = seed
        if engine is not None and "engine" in self.accepts:
            kwargs["engine"] = engine
        if backend is not None and "backend" in self.accepts:
            kwargs["backend"] = backend
        return self.runner(**kwargs)


EXPERIMENTS: Dict[str, ExperimentSpec] = {
    spec.name: spec
    for spec in (
        ExperimentSpec("fig1", run_fig1, render_fig1,
                       "design-space configurability (N=16)"),
        ExperimentSpec("fig7", run_fig7, render_fig7,
                       "accuracy vs previous bits, four R panels"),
        ExperimentSpec("fig8", run_fig8, render_fig8,
                       "Delay×NED, GeAr vs GDA (8-bit)",
                       accepts=("engine",)),
        ExperimentSpec("fig9", run_fig9, render_fig9,
                       "execution-time prediction, three applications"),
        ExperimentSpec("table1", run_table1, render_table1,
                       "Image Integral accuracy comparison",
                       accepts=("engine",)),
        ExperimentSpec("table2", run_table2, render_table2,
                       "GDA vs GeAr exhaustive NED and hardware cost",
                       accepts=("engine",)),
        ExperimentSpec("table3", run_table3, render_table3,
                       "analytic vs simulated error probability",
                       accepts=("samples", "seed", "engine")),
        ExperimentSpec("table4", run_table4, render_table4,
                       "Image Integral execution-time table"),
        ExperimentSpec("ablation-distributions",
                       run_distribution_sensitivity_ablation,
                       render_distribution_sensitivity_ablation,
                       "model drift under non-uniform operand distributions",
                       accepts=("samples", "seed", "engine")),
        ExperimentSpec("ablation-correction",
                       run_correction_policy_ablation,
                       render_correction_policy_ablation,
                       "selective error-correction policy sweep",
                       accepts=("samples", "seed")),
        ExperimentSpec("sweep", run_sweep, render_sweep,
                       "GeAr accuracy sweep (backend demonstration, N=12)",
                       accepts=("samples", "seed", "engine", "backend")),
    )
}

__all__ = [
    "EXPERIMENTS",
    "ExperimentSpec",
    "ExperimentResult",
    "GroupedExperimentResult",
    "run_fig1",
    "render_fig1",
    "run_fig7",
    "render_fig7",
    "run_fig8",
    "render_fig8",
    "run_fig9",
    "render_fig9",
    "run_table1",
    "render_table1",
    "run_table2",
    "render_table2",
    "run_table3",
    "render_table3",
    "run_table4",
    "render_table4",
    "run_distribution_sensitivity_ablation",
    "run_correction_policy_ablation",
    "render_distribution_sensitivity_ablation",
    "render_correction_policy_ablation",
    "run_sweep",
    "render_sweep",
]
