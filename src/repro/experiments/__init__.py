"""Reproduction of every table and figure in the paper's evaluation.

One module per artefact; each exposes a ``run_*`` function returning
structured rows plus a ``render_*`` helper that prints the same rows the
paper reports.  The benchmark harness under ``benchmarks/`` wraps these
functions in pytest-benchmark; the CLI prints them directly.
"""

from repro.experiments.fig1 import run_fig1, render_fig1
from repro.experiments.fig7 import run_fig7, render_fig7
from repro.experiments.fig8 import run_fig8, render_fig8
from repro.experiments.fig9 import run_fig9, render_fig9
from repro.experiments.table1 import run_table1, render_table1
from repro.experiments.table2 import run_table2, render_table2
from repro.experiments.table3 import run_table3, render_table3
from repro.experiments.table4 import run_table4, render_table4
from repro.experiments.ablation import (
    run_distribution_sensitivity_ablation,
    run_correction_policy_ablation,
    render_distribution_sensitivity_ablation,
    render_correction_policy_ablation,
)

__all__ = [
    "run_fig1",
    "render_fig1",
    "run_fig7",
    "render_fig7",
    "run_fig8",
    "render_fig8",
    "run_fig9",
    "render_fig9",
    "run_table1",
    "render_table1",
    "run_table2",
    "render_table2",
    "run_table3",
    "render_table3",
    "run_table4",
    "render_table4",
    "run_distribution_sensitivity_ablation",
    "run_correction_policy_ablation",
    "render_distribution_sensitivity_ablation",
    "render_correction_policy_ablation",
]
