"""Engine-backed GeAr accuracy sweep as a registered experiment.

Not a paper artefact: this is the demonstration workload for the
pluggable evaluation backends.  It runs a small ``sweep_gear_configs``
with measured columns through :mod:`repro.engine`, so
``gear experiment sweep --backend analytic`` exercises the exact
error-PMF solver end to end and ``--jobs``/``--cache`` exercise the
sharded sampler — with ``--json`` output byte-identical across worker
counts and cache states for either backend.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.sweep import SWEEP_SEED, sweep_gear_configs
from repro.experiments.result import ExperimentResult

#: Operand width of the demonstration sweep (small enough that the
#: analytic PMF and a Monte-Carlo run both finish in seconds).
SWEEP_N = 12

#: Sub-adder widths swept (one R keeps the table readable).
SWEEP_R_VALUES = (4,)

#: Default Monte-Carlo budget for the measured columns.
DEFAULT_SWEEP_SAMPLES = 20_000

HEADERS = [
    "name", "r", "p", "k",
    "error_probability", "accuracy_pct", "med", "ned",
    "measured_error_rate", "measured_med", "measured_ned", "samples",
]


def run_sweep(samples: Optional[int] = None, seed: Optional[int] = None,
              engine=None, backend: str = "sampling") -> ExperimentResult:
    """Sweep every GeAr(N=12, R=4) configuration with measured columns."""
    results = sweep_gear_configs(
        SWEEP_N,
        r_values=SWEEP_R_VALUES,
        with_hardware=False,
        samples=samples if samples is not None else DEFAULT_SWEEP_SAMPLES,
        seed=seed if seed is not None else SWEEP_SEED,
        engine=engine,
        backend=backend,
    )

    def row_fn(res):
        row = res.to_json_row()
        return {h: row[h] for h in HEADERS}

    return ExperimentResult("sweep", HEADERS, results, row_fn)


def render_sweep(results: ExperimentResult) -> str:
    """Text table of the sweep rows."""
    from repro.analysis.tables import format_table

    def fmt(value):
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.6g}"
        return value

    rows = [tuple(fmt(cell) for cell in row) for row in results.to_rows()]
    return format_table(results.headers, rows,
                        title=f"GeAr N={SWEEP_N} accuracy sweep")
