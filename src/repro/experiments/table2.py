"""Table II — GDA vs GeAr for an 8-bit adder, plus Fig. 8's Delay×NED.

The paper's point: at identical (prediction, resultant) parameters the two
architectures have identical error behaviour, but GDA pays extra delay and
area for its carry-lookahead prediction units.  We reproduce every
(M_B, M_C) / (R, P) pair of the table with:

* NED measured by exhaustive simulation (8-bit → all 65 536 pairs exact),
* delay / LUTs from the FPGA characterisation of each *architecture's own*
  netlist (GDA's with genuine CLA predictors).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.adders.gda import GracefullyDegradingAdder
from repro.analysis.tables import format_table
from repro.core.gear import GeArAdder, GeArConfig
from repro.experiments.result import ExperimentResult
from repro.metrics.exhaustive import exhaustive_stats
from repro.paperdata import TABLE2_GDA, TABLE2_GEAR
from repro.timing.fpga import characterize

TABLE2_WIDTH = 8
#: The (M_B / R, M_C / P) pairs evaluated by the paper.
TABLE2_CONFIGS: Tuple[Tuple[int, int], ...] = (
    (1, 1), (1, 2), (1, 3), (1, 4), (1, 5), (1, 6), (2, 2), (2, 4),
)

TABLE2_HEADERS = ("architecture", "r", "p", "delay_ns", "paper_delay_ns",
                  "luts", "paper_luts", "med", "ned_paper_convention",
                  "paper_ned", "delay_ned")


@dataclass(frozen=True)
class Table2Row:
    architecture: str
    r: int
    p: int
    delay_ns: float
    luts: int
    med: float
    ned: float
    ned_paper_convention: float
    paper_delay_ns: Optional[float]
    paper_luts: Optional[int]
    paper_ned: Optional[float]

    @property
    def delay_ned_product(self) -> float:
        """Delay × NED under the paper's NED convention (MED / 2^{N-R})."""
        return self.delay_ns * 1e-9 * self.ned_paper_convention


def _make_row(architecture: str, adder, r: int, p: int, ref, engine=None) -> Table2Row:
    char = characterize(adder)
    stats = exhaustive_stats(adder, engine=engine)
    return Table2Row(
        architecture=architecture,
        r=r,
        p=p,
        delay_ns=char.delay_ns,
        luts=char.luts,
        med=stats.med,
        ned=stats.ned,
        ned_paper_convention=stats.med / 2 ** (TABLE2_WIDTH - r),
        paper_delay_ns=ref.get("delay_ns"),
        paper_luts=int(ref["luts"]) if "luts" in ref else None,
        paper_ned=ref.get("ned"),
    )


def _gda_row(r: int, p: int, engine=None) -> Table2Row:
    adder = GracefullyDegradingAdder(TABLE2_WIDTH, r, p, enforce_multiple=False)
    return _make_row("GDA", adder, r, p, TABLE2_GDA.get((r, p), {}), engine)


def _gear_row(r: int, p: int, engine=None) -> Table2Row:
    strict = (TABLE2_WIDTH - r - p) % r == 0
    adder = GeArAdder(GeArConfig(TABLE2_WIDTH, r, p, allow_partial=not strict))
    return _make_row("GeAr", adder, r, p, TABLE2_GEAR.get((r, p), {}), engine)


def _table2_row(row: Table2Row) -> dict:
    return {
        "architecture": row.architecture,
        "r": row.r,
        "p": row.p,
        "delay_ns": row.delay_ns,
        "paper_delay_ns": row.paper_delay_ns,
        "luts": row.luts,
        "paper_luts": row.paper_luts,
        "med": row.med,
        "ned_paper_convention": row.ned_paper_convention,
        "paper_ned": row.paper_ned,
        "delay_ned": row.delay_ned_product,
    }


def run_table2(configs: Tuple[Tuple[int, int], ...] = TABLE2_CONFIGS,
               engine=None) -> "ExperimentResult":
    """Every GDA and GeAr row of Table II."""
    rows: List[Table2Row] = []
    for r, p in configs:
        rows.append(_gda_row(r, p, engine))
    for r, p in configs:
        rows.append(_gear_row(r, p, engine))
    return ExperimentResult("table2", TABLE2_HEADERS, rows, _table2_row)


def render_table2(rows: Optional[List[Table2Row]] = None) -> str:
    rows = rows if rows is not None else run_table2()
    return format_table(
        ["arch", "(R,P)", "delay ns", "paper ns", "LUTs", "paper LUTs",
         "MED", "NED*", "paper NED", "Delay×NED"],
        [
            (
                row.architecture,
                f"({row.r},{row.p})",
                f"{row.delay_ns:.3f}",
                row.paper_delay_ns,
                row.luts,
                row.paper_luts,
                f"{row.med:.3f}",
                f"{row.ned_paper_convention:.4f}",
                row.paper_ned,
                f"{row.delay_ned_product:.4e}",
            )
            for row in rows
        ],
        title=(
            "Table II — GDA vs GeAr, 8-bit adders "
            "(NED* = MED / 2^(N-R), the paper's normalisation)"
        ),
    )
