"""Fig. 9 — execution-time comparison on three applications.

Panels: (a) Image Integral (N=20, L=10), (b) SAD (N=16, L=8),
(c) Low-Pass Filter (N=12, L=8).  For every adder family the runtime of a
full-HD frame is predicted from delay × error probability × sub-adder
count, exactly as Table IV does for the integral — the error-probability
model's headline use case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.adders import (
    AccuracyConfigurableAdder,
    AlmostCorrectAdder,
    ErrorTolerantAdderII,
    GracefullyDegradingAdder,
    RippleCarryAdder,
)
from repro.analysis.tables import format_table
from repro.core.error_model import error_probability
from repro.core.gear import GeArAdder, GeArConfig
from repro.experiments.result import GroupedExperimentResult
from repro.paperdata import APPLICATIONS
from repro.timing.fpga import characterize
from repro.timing.latency import FULL_HD_PIXELS, ExecutionTiming, execution_timings

FIG9_HEADERS = ("application", "adder", "k", "delay_ns", "error_probability",
                "approximate_s", "best_s", "average_s", "worst_s")


@dataclass(frozen=True)
class Fig9Row:
    application: str
    adder: str
    k: int
    delay_ns: float
    error_probability: float
    timing: ExecutionTiming


def _adders_for(n: int, l: int):
    half = l // 2
    mb2 = 2 if n % 2 == 0 else 1
    yield "ACA-I", AlmostCorrectAdder(n, l)
    yield "ACA-II", AccuracyConfigurableAdder(n, l, allow_partial=(n - l) % half != 0)
    yield "ETAII", ErrorTolerantAdderII(n, l, allow_partial=(n - l) % half != 0)
    yield "GDA", GracefullyDegradingAdder(n, mb2, l - mb2, enforce_multiple=False)
    strict = (n - l) % half == 0
    yield "GeAr", GeArAdder(GeArConfig(n, half, half, allow_partial=not strict))
    yield "RCA", RippleCarryAdder(n)


def _panel_row(_app: str, row: Fig9Row) -> dict:
    return {
        "application": row.application,
        "adder": row.adder,
        "k": row.k,
        "delay_ns": row.delay_ns,
        "error_probability": row.error_probability,
        "approximate_s": row.timing.approximate_s,
        "best_s": row.timing.best_s,
        "average_s": row.timing.average_s,
        "worst_s": row.timing.worst_s,
    }


def run_fig9(n_ops: int = FULL_HD_PIXELS) -> "GroupedExperimentResult":
    """Predicted timings per application panel."""
    panels: Dict[str, List[Fig9Row]] = {}
    for app, params in APPLICATIONS.items():
        n, l = params["n"], params["sub_adder_len"]
        rows: List[Fig9Row] = []
        for name, adder in _adders_for(n, l):
            char = characterize(adder)
            prob = adder.error_probability()
            assert prob is not None, f"{name} lacks an analytic error model"
            k = len(adder.windows) if hasattr(adder, "windows") else 1
            rows.append(
                Fig9Row(
                    application=app,
                    adder=name,
                    k=k,
                    delay_ns=char.delay_ns,
                    error_probability=prob,
                    timing=execution_timings(
                        f"{app}/{name}", char.delay_ns, prob, k, n_ops=n_ops
                    ),
                )
            )
        panels[app] = rows
    return GroupedExperimentResult("fig9", FIG9_HEADERS, panels, _panel_row)


def render_fig9(panels: Optional[Dict[str, List[Fig9Row]]] = None) -> str:
    panels = panels if panels is not None else run_fig9()
    blocks: List[str] = []
    for app, rows in panels.items():
        blocks.append(
            format_table(
                ["adder", "k", "delay ns", "p(err)", "approx s",
                 "best s", "avg s", "worst s"],
                [
                    (
                        row.adder,
                        row.k,
                        f"{row.delay_ns:.3f}",
                        f"{row.error_probability:.6f}",
                        f"{row.timing.approximate_s:.4e}",
                        f"{row.timing.best_s:.4e}",
                        f"{row.timing.average_s:.4e}",
                        f"{row.timing.worst_s:.4e}",
                    )
                    for row in rows
                ],
                title=f"Fig. 9 — {app}: predicted full-HD frame times",
            )
        )
    return "\n\n".join(blocks)
