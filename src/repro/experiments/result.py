"""Unified result containers for every experiment module.

Each ``run_*`` function historically returned a bare ``list`` of row
dataclasses (or a ``dict`` of panels for the multi-panel figures).  The
engine redesign unifies them: results still *are* lists/dicts — so every
existing caller keeps iterating, indexing and ``.items()``-ing them — but
they additionally implement the result protocol the CLI and exporter rely
on:

* ``to_rows()`` — flat list of cell tuples aligned with ``headers``,
* ``to_json()`` — ``{"experiment", "headers", "rows": [dict, ...]}``,
  deterministic (no timings, no job counts) so ``--json`` output is
  byte-identical however the evaluation was scheduled.

Modules describe their rows once with a ``row_fn`` mapping each item to a
dict keyed by ``headers`` (or a list of such dicts when one item expands
to several rows, as in Fig. 1's per-architecture breakdown).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Union

RowDict = Dict[str, object]
RowOrRows = Union[RowDict, List[RowDict]]


def _as_row_list(produced: RowOrRows) -> List[RowDict]:
    if isinstance(produced, dict):
        return [produced]
    return list(produced)


class ExperimentResult(list):
    """A list of experiment row objects implementing the result protocol.

    Subclasses ``list`` so the historical contract is intact: iteration,
    indexing (including negative), slicing, ``len`` and equality all see
    the original row dataclasses.
    """

    def __init__(
        self,
        name: str,
        headers: Sequence[str],
        items: Iterable[object],
        row_fn: Callable[[object], RowOrRows],
    ) -> None:
        super().__init__(items)
        self.name = name
        self.headers = list(headers)
        self._row_fn = row_fn

    def json_rows(self) -> List[RowDict]:
        """One JSON-safe dict per output row, keyed by ``headers``."""
        rows: List[RowDict] = []
        for item in self:
            rows.extend(_as_row_list(self._row_fn(item)))
        return rows

    def to_rows(self) -> List[tuple]:
        """Flat cell tuples aligned with ``headers``."""
        return [tuple(row.get(h) for h in self.headers) for row in self.json_rows()]

    def to_json(self) -> dict:
        """Deterministic JSON document for ``--json`` / ``gear export``."""
        return {
            "experiment": self.name,
            "headers": self.headers,
            "rows": self.json_rows(),
        }


class GroupedExperimentResult(dict):
    """A mapping of panel key → row list implementing the result protocol.

    Subclasses ``dict`` so multi-panel figures (Fig. 7's per-R panels,
    Fig. 9's per-application panels) keep their historical ``.items()`` /
    ``.values()`` / ``set(...)`` behaviour.  ``to_rows``/``to_json``
    flatten panels in insertion order; ``row_fn`` receives
    ``(group_key, item)`` so rows can embed their panel identity.
    """

    def __init__(
        self,
        name: str,
        headers: Sequence[str],
        groups: Mapping[object, Iterable[object]],
        row_fn: Callable[[object, object], RowOrRows],
        group_header: Optional[str] = None,
    ) -> None:
        super().__init__(groups)
        self.name = name
        self.headers = list(headers)
        if group_header is not None and group_header not in self.headers:
            self.headers = [group_header] + self.headers
        self._row_fn = row_fn
        self._group_header = group_header

    def json_rows(self) -> List[RowDict]:
        rows: List[RowDict] = []
        for key, items in self.items():
            for item in items:
                for row in _as_row_list(self._row_fn(key, item)):
                    if self._group_header is not None and self._group_header not in row:
                        row = {self._group_header: key, **row}
                    rows.append(row)
        return rows

    def to_rows(self) -> List[tuple]:
        return [tuple(row.get(h) for h in self.headers) for row in self.json_rows()]

    def to_json(self) -> dict:
        return {
            "experiment": self.name,
            "headers": self.headers,
            "rows": self.json_rows(),
        }
