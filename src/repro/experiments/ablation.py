"""Ablation studies on the paper's modelling assumptions and design choices.

1. **Model exactness and input-distribution sensitivity** (§3.2): our
   reproduction found that Eq. 5–7 is not an approximation but an *exact*
   formula for i.i.d. uniform operands — the independently derived DP
   (`error_probability_exact`) matches it to machine precision.  What the
   model *is* sensitive to is the uniform-operand assumption
   (ρ[Pr] = 1/2, ρ[Gr] = 1/4): this ablation measures the true error rate
   under Gaussian, exponential and sparse operand distributions and
   reports the drift from the model.

2. **Selective correction** (§3.3 error-control select): enabling the
   detector/corrector on only the most significant sub-adders trades
   residual error for bounded latency.  We sweep the enable mask from
   "none" to "all" on one configuration, measuring residual NED and mean
   cycle cost over random operands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.tables import format_table
from repro.core.correction import ErrorCorrector
from repro.core.bitwise_model import predict_error_rate
from repro.core.error_model import (
    error_probability,
    error_probability_exact,
    max_error_distance,
)
from repro.core.gear import GeArAdder, GeArConfig
from repro.experiments.result import ExperimentResult
from repro.utils.distributions import (
    ExponentialOperands,
    GaussianOperands,
    OperandDistribution,
    SparseOperands,
    UniformOperands,
)

#: Configurations for the distribution study.
DISTRIBUTION_CONFIGS: Tuple[Tuple[int, int, int], ...] = (
    (16, 2, 2), (16, 4, 4), (16, 2, 6), (20, 5, 5),
)


def _distributions(width: int) -> Dict[str, OperandDistribution]:
    return {
        "uniform": UniformOperands(width),
        "gaussian": GaussianOperands(width),
        "exponential": ExponentialOperands(width),
        "sparse(0.25)": SparseOperands(width, one_density=0.25),
        "dense(0.75)": SparseOperands(width, one_density=0.75),
    }


@dataclass(frozen=True)
class DistributionRow:
    n: int
    r: int
    p: int
    model: float
    exact_dp: float
    measured: Dict[str, float]
    bitwise_predicted: Dict[str, float]

    @property
    def model_is_exact_for_uniform(self) -> bool:
        return abs(self.model - self.exact_dp) < 1e-12


DISTRIBUTION_HEADERS = ("n", "r", "p", "model", "exact_dp", "measured",
                        "bitwise_predicted")


def _distribution_row(row: DistributionRow) -> dict:
    return {
        "n": row.n,
        "r": row.r,
        "p": row.p,
        "model": row.model,
        "exact_dp": row.exact_dp,
        "measured": dict(row.measured),
        "bitwise_predicted": dict(row.bitwise_predicted),
    }


def run_distribution_sensitivity_ablation(
    configs: Sequence[Tuple[int, int, int]] = DISTRIBUTION_CONFIGS,
    samples: int = 100_000,
    seed: int = 99,
    engine=None,
) -> "ExperimentResult":
    """Model exactness (uniform) and drift under non-uniform operands."""
    from repro.engine import EvalRequest, evaluate

    rows: List[DistributionRow] = []
    for n, r, p in configs:
        strict = (n - r - p) % r == 0
        cfg = GeArConfig(n, r, p, allow_partial=not strict)
        adder = GeArAdder(cfg)
        measured: Dict[str, float] = {}
        bitwise: Dict[str, float] = {}
        for name, dist in _distributions(n).items():
            measured[name] = evaluate(
                EvalRequest.monte_carlo(adder, samples, seed=seed,
                                        distribution=dist),
                engine=engine,
            ).stats.error_rate
            bitwise[name] = predict_error_rate(
                cfg, dist, samples=min(samples, 50_000), seed=seed + 1
            )
        rows.append(
            DistributionRow(
                n=n,
                r=r,
                p=p,
                model=error_probability(cfg),
                exact_dp=error_probability_exact(cfg),
                measured=measured,
                bitwise_predicted=bitwise,
            )
        )
    return ExperimentResult("ablation-distributions", DISTRIBUTION_HEADERS,
                            rows, _distribution_row)


def render_distribution_sensitivity_ablation(rows: Optional[List[DistributionRow]] = None) -> str:
    rows = rows if rows is not None else run_distribution_sensitivity_ablation()
    dist_names = list(rows[0].measured) if rows else []
    headers = ["(N,R,P)", "model", "exact DP"]
    for d in dist_names:
        headers.extend([f"{d} meas", f"{d} bitw"])
    body = []
    for r in rows:
        cells = [f"({r.n},{r.r},{r.p})", f"{r.model:.6f}", f"{r.exact_dp:.6f}"]
        for d in dist_names:
            cells.append(f"{r.measured[d]:.4f}")
            cells.append(f"{r.bitwise_predicted[d]:.4f}")
        body.append(tuple(cells))
    return format_table(
        headers,
        body,
        title=(
            "Ablation — §3.2 model vs measurement vs bitwise prediction "
            "per operand distribution"
        ),
    )


@dataclass(frozen=True)
class CorrectionPolicyRow:
    enabled_subadders: int
    residual_error_rate: float
    residual_ned: float
    mean_cycles: float
    max_cycles: int


CORRECTION_HEADERS = ("enabled_subadders", "residual_error_rate",
                      "residual_ned", "mean_cycles", "max_cycles")


def _correction_row(row: CorrectionPolicyRow) -> dict:
    return {
        "enabled_subadders": row.enabled_subadders,
        "residual_error_rate": row.residual_error_rate,
        "residual_ned": row.residual_ned,
        "mean_cycles": row.mean_cycles,
        "max_cycles": row.max_cycles,
    }


def run_correction_policy_ablation(
    n: int = 16,
    r: int = 2,
    p: int = 2,
    samples: int = 50_000,
    seed: int = 7,
) -> "ExperimentResult":
    """Sweep the §3.3 enable mask from MSB-first 0..k-1 enabled sub-adders.

    Enabling from the most significant sub-adder downward is the natural
    policy: MSB errors dominate the error distance, so the first enables
    buy the largest NED reductions.
    """
    strict = (n - r - p) % r == 0
    cfg = GeArConfig(n, r, p, allow_partial=not strict)
    adder = GeArAdder(cfg)
    dist = UniformOperands(n)
    a, b = dist.sample_pairs(samples, seed=seed)
    exact = a + b
    d_max = max_error_distance(cfg)

    rows: List[CorrectionPolicyRow] = []
    spec = cfg.k - 1
    for enabled_count in range(spec + 1):
        mask = [False] * spec
        for i in range(enabled_count):
            mask[spec - 1 - i] = True  # enable from the MSB side
        corrector = ErrorCorrector(adder, enabled=mask)
        result = corrector.add(a, b)
        errors = np.abs(np.asarray(result.value) - exact)
        cycles = np.asarray(result.cycles)
        rows.append(
            CorrectionPolicyRow(
                enabled_subadders=enabled_count,
                residual_error_rate=float(np.mean(errors > 0)),
                residual_ned=float(np.mean(errors)) / d_max,
                mean_cycles=float(np.mean(cycles)),
                max_cycles=int(cycles.max()),
            )
        )
    return ExperimentResult("ablation-correction", CORRECTION_HEADERS, rows,
                            _correction_row)


def render_correction_policy_ablation(
    rows: Optional[List[CorrectionPolicyRow]] = None,
) -> str:
    rows = rows if rows is not None else run_correction_policy_ablation()
    return format_table(
        ["enabled sub-adders", "residual err rate", "residual NED",
         "mean cycles", "max cycles"],
        [
            (
                r.enabled_subadders,
                f"{r.residual_error_rate:.6f}",
                f"{r.residual_ned:.6f}",
                f"{r.mean_cycles:.4f}",
                r.max_cycles,
            )
            for r in rows
        ],
        title="Ablation — selective error correction (§3.3 control signal)",
    )
