"""Table I — accuracy comparison on a 16-bit Image Integral kernel.

Protocol: run the 1-D image integral (per-row prefix sums) over an 8-bit
test image with each adder, then score the *application outputs* against
the exact integral: MAA acceptance at 100/97.5/95/92.5/90 %, average
ACC_amp and ACC_inf, MED, NED and Delay×NED.  Because every output pixel
accumulates all pixels to its left, single-addition errors compound —
which is why these MEDs are orders of magnitude above Table III's
single-addition probabilities.

The paper does not ship its image; we use a seeded synthetic image whose
rows are short enough that exact sums fit the 16-bit adders (DESIGN.md
substitution table).  Comparisons against the paper are therefore by
ordering and ratio, not absolute value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.adders import (
    AccuracyConfigurableAdder,
    AlmostCorrectAdder,
    ErrorTolerantAdderII,
    GracefullyDegradingAdder,
    RippleCarryAdder,
)
from repro.adders.base import AdderModel
from repro.analysis.tables import format_table
from repro.apps.images import natural_image
from repro.apps.integral import integral_image_rows, max_row_width
from repro.core.gear import GeArAdder, GeArConfig
from repro.experiments.result import ExperimentResult
from repro.metrics.error_metrics import TABLE1_MAA_THRESHOLDS, ErrorStats
from repro.paperdata import TABLE1
from repro.timing.fpga import characterize

TABLE1_WIDTH = 16
TABLE1_SUB_ADDER_LEN = 8

TABLE1_HEADERS = ("adder", "delay_ns", "luts", "maa_100", "maa_97_5",
                  "maa_95", "maa_92_5", "maa_90", "acc_amp", "acc_inf",
                  "med", "ned", "delay_ned")


def table1_adders() -> Dict[str, Callable[[], AdderModel]]:
    """The ten Table I columns as adder factories.

    Per §4.2: "ACA-I can only generate 1 bit result so for its
    configuration a 4 bit sub-adder is used"; ETAII and ACA-II use 8-bit
    windows producing 4 result bits; GDA uses M_B = 4 with M_C ∈ {4, 8}.
    """
    n, l = TABLE1_WIDTH, TABLE1_SUB_ADDER_LEN
    return {
        "RCA": lambda: RippleCarryAdder(n),
        "ACA-I": lambda: AlmostCorrectAdder(n, l // 2),
        "ETAII": lambda: ErrorTolerantAdderII(n, l),
        "ACA-II": lambda: AccuracyConfigurableAdder(n, l),
        "GDA(4,4)": lambda: GracefullyDegradingAdder(n, 4, 4),
        "GDA(4,8)": lambda: GracefullyDegradingAdder(n, 4, 8),
        "GeAr(4,2)": lambda: GeArAdder(GeArConfig(n, 4, 2, allow_partial=True)),
        "GeAr(4,4)": lambda: GeArAdder(GeArConfig(n, 4, 4)),
        "GeAr(4,6)": lambda: GeArAdder(GeArConfig(n, 4, 6, allow_partial=True)),
        "GeAr(4,8)": lambda: GeArAdder(GeArConfig(n, 4, 8)),
    }


@dataclass(frozen=True)
class Table1Row:
    name: str
    delay_ns: float
    luts: int
    stats: ErrorStats
    paper: Optional[Dict[str, float]]

    @property
    def app_ned(self) -> float:
        """Application-level NED.

        Output pixels are accumulated sums, so the single-addition maximum
        error distance is meaningless as a normaliser; we use the mean
        *relative* error distance per pixel (ED / exact), which is the
        normalisation consistent with the paper's Table I trends.
        """
        return self.stats.mred

    @property
    def delay_ned_product(self) -> float:
        return self.delay_ns * 1e-9 * self.app_ned


def default_table1_image(rows: int = 64, seed: int = 42) -> np.ndarray:
    """Seeded test image sized so exact row integrals fit 16 bits."""
    cols = max_row_width(TABLE1_WIDTH)  # 257 for 8-bit pixels
    return natural_image(rows, cols, seed=seed)


def _table1_row(row: Table1Row) -> dict:
    return {
        "adder": row.name,
        "delay_ns": row.delay_ns,
        "luts": row.luts,
        "maa_100": row.stats.maa(1.0),
        "maa_97_5": row.stats.maa(0.975),
        "maa_95": row.stats.maa(0.95),
        "maa_92_5": row.stats.maa(0.925),
        "maa_90": row.stats.maa(0.90),
        "acc_amp": row.stats.acc_amp_avg,
        "acc_inf": row.stats.acc_inf_avg,
        "med": row.stats.med,
        "ned": row.app_ned,
        "delay_ned": row.delay_ned_product,
    }


def run_table1(image: Optional[np.ndarray] = None, engine=None) -> "ExperimentResult":
    """Evaluate every Table I column on the Image Integral kernel.

    The application outputs are scored through the engine's ``fixed`` mode:
    the precomputed approximate/exact integral images are sharded, scored
    (in parallel when the engine has workers) and merged — numerically
    identical to the former direct ``compute_error_stats`` call.
    """
    from repro.engine import EvalRequest, evaluate

    image = image if image is not None else default_table1_image()
    exact = integral_image_rows(image)
    rows: List[Table1Row] = []
    for name, make in table1_adders().items():
        adder = make()
        char = characterize(adder)
        approx = integral_image_rows(image, adder)
        stats = evaluate(
            EvalRequest.fixed(
                adder,
                approx.ravel(),
                exact.ravel(),
                maa_thresholds=TABLE1_MAA_THRESHOLDS,
            ),
            engine=engine,
        ).stats
        rows.append(
            Table1Row(
                name=name,
                delay_ns=char.delay_ns,
                luts=char.luts,
                stats=stats,
                paper=TABLE1.get(name),
            )
        )
    return ExperimentResult("table1", TABLE1_HEADERS, rows, _table1_row)


def render_table1(rows: Optional[List[Table1Row]] = None) -> str:
    rows = rows if rows is not None else run_table1()
    return format_table(
        ["adder", "delay ns", "LUTs", "MAA100", "MAA97.5", "MAA95",
         "MAA92.5", "MAA90", "ACCamp", "ACCinf", "MED", "NED", "Delay×NED"],
        [
            (
                row.name,
                f"{row.delay_ns:.3f}",
                row.luts,
                f"{row.stats.maa(1.0):.2f}",
                f"{row.stats.maa(0.975):.2f}",
                f"{row.stats.maa(0.95):.2f}",
                f"{row.stats.maa(0.925):.2f}",
                f"{row.stats.maa(0.90):.2f}",
                f"{row.stats.acc_amp_avg:.4f}",
                f"{row.stats.acc_inf_avg:.4f}",
                f"{row.stats.med:.2f}",
                f"{row.app_ned:.4f}",
                f"{row.delay_ned_product:.4e}",
            )
            for row in rows
        ],
        title=(
            "Table I — 16-bit Image Integral accuracy comparison "
            "(NED = mean relative error per output pixel)"
        ),
    )
