"""Fig. 8 — Delay × NED of GeAr vs GDA per 8-bit configuration.

Directly derived from the Table II rows: for every shared (R, P) the GeAr
implementation should achieve the lower Delay×NED (identical NED, smaller
delay) — the figure's claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.tables import format_table
from repro.experiments.result import ExperimentResult
from repro.experiments.table2 import TABLE2_CONFIGS, Table2Row, run_table2

FIG8_HEADERS = ("r", "p", "gear_delay_ned", "gda_delay_ned", "gear_wins",
                "improvement")


@dataclass(frozen=True)
class Fig8Point:
    r: int
    p: int
    gear_delay_ned: float
    gda_delay_ned: float

    @property
    def gear_wins(self) -> bool:
        return self.gear_delay_ned <= self.gda_delay_ned

    @property
    def improvement(self) -> float:
        """GDA/GeAr Delay×NED ratio (>1 means GeAr is better)."""
        if self.gear_delay_ned == 0:
            return float("inf")
        return self.gda_delay_ned / self.gear_delay_ned


def _point_row(pt: Fig8Point) -> dict:
    return {
        "r": pt.r,
        "p": pt.p,
        "gear_delay_ned": pt.gear_delay_ned,
        "gda_delay_ned": pt.gda_delay_ned,
        "gear_wins": pt.gear_wins,
        "improvement": pt.improvement,
    }


def run_fig8(rows: Optional[List[Table2Row]] = None,
             engine=None) -> "ExperimentResult":
    rows = rows if rows is not None else run_table2(engine=engine)
    gda = {(r.r, r.p): r for r in rows if r.architecture == "GDA"}
    gear = {(r.r, r.p): r for r in rows if r.architecture == "GeAr"}
    points: List[Fig8Point] = []
    for key in TABLE2_CONFIGS:
        if key in gda and key in gear:
            points.append(
                Fig8Point(
                    r=key[0],
                    p=key[1],
                    gear_delay_ned=gear[key].delay_ned_product,
                    gda_delay_ned=gda[key].delay_ned_product,
                )
            )
    return ExperimentResult("fig8", FIG8_HEADERS, points, _point_row)


def render_fig8(points: Optional[List[Fig8Point]] = None) -> str:
    points = points if points is not None else run_fig8()
    return format_table(
        ["(R,P)", "GeAr Delay×NED", "GDA Delay×NED", "GeAr wins", "GDA/GeAr"],
        [
            (
                f"({pt.r},{pt.p})",
                f"{pt.gear_delay_ned:.4e}",
                f"{pt.gda_delay_ned:.4e}",
                pt.gear_wins,
                f"{pt.improvement:.2f}x",
            )
            for pt in points
        ],
        title="Fig. 8 — Delay × NED, GeAr vs GDA (8-bit)",
    )
