"""Fig. 7 — probabilistic accuracy vs prediction bits, N=16, R ∈ {2,3,4,8}.

For each resultant width R, sweep the previous-bit count P from 1 until
the sub-adder spans the whole word, computing each configuration's
accuracy percentage from the error model.  GDA can only realise the points
whose P is a multiple of the sub-adder block length, which is the design
-space gap the figure visualises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.core.configspace import enumerate_gda_points, enumerate_gear_points
from repro.experiments.result import GroupedExperimentResult

#: The paper's four panels.
FIG7_R_VALUES = (2, 3, 4, 8)
FIG7_WIDTH = 16

FIG7_HEADERS = ("r", "p", "accuracy_pct", "gear", "gda")


@dataclass(frozen=True)
class Fig7Point:
    r: int
    p: int
    accuracy_pct: float
    gear: bool
    gda: bool


def _point_row(_r: int, pt: Fig7Point) -> dict:
    return {
        "r": pt.r,
        "p": pt.p,
        "accuracy_pct": pt.accuracy_pct,
        "gear": pt.gear,
        "gda": pt.gda,
    }


def run_fig7(n: int = FIG7_WIDTH,
             r_values: Sequence[int] = FIG7_R_VALUES) -> "GroupedExperimentResult":
    """Accuracy series per panel (one entry per R value)."""
    panels: Dict[int, List[Fig7Point]] = {}
    for r in r_values:
        gear = {pt.p: pt for pt in enumerate_gear_points(n, r, include_exact=True)}
        gda = {pt.p for pt in enumerate_gda_points(n, r, include_exact=True)}
        points = [
            Fig7Point(r=r, p=p, accuracy_pct=pt.accuracy, gear=True, gda=p in gda)
            for p, pt in sorted(gear.items())
        ]
        panels[r] = points
    return GroupedExperimentResult("fig7", FIG7_HEADERS, panels, _point_row)


def render_fig7(panels: Optional[Dict[int, List[Fig7Point]]] = None) -> str:
    panels = panels if panels is not None else run_fig7()
    blocks: List[str] = []
    for r, points in panels.items():
        blocks.append(
            format_table(
                ["P", "accuracy %", "GeAr", "GDA"],
                [(pt.p, f"{pt.accuracy_pct:.4f}", pt.gear, pt.gda) for pt in points],
                title=f"Fig. 7 — N=16, R={r}: accuracy vs previous bits",
            )
        )
    return "\n\n".join(blocks)
