"""Fig. 1 — design-space comparison of ETAII, ACA-II, GDA and GeAr.

For N=16 and R ∈ {2, 4}, the figure varies the carry-prediction depth from
1 to N-R and marks which architectures can realise each point.  ACA-II and
ETAII offer exactly one point (P = R); GDA offers the multiples of R;
GeAr offers every P.  Each point carries its model accuracy, so the
summary counts reproduce the "sparse design space" observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.core.configspace import (
    count_configurations,
    enumerate_fixed_architecture_points,
    enumerate_gda_points,
    enumerate_gear_points,
)
from repro.experiments.result import ExperimentResult

FIG1_WIDTH = 16
FIG1_R_VALUES = (2, 4)
ARCHITECTURES = ("GeAr", "GDA", "ACA-II", "ETAII", "ACA-I")

FIG1_HEADERS = ("r", "architecture", "configs", "p_values")


@dataclass(frozen=True)
class Fig1Panel:
    r: int
    points_per_architecture: Dict[str, List[int]]  # architecture -> sorted P list
    counts: Dict[str, int]


def _panel_rows(panel: Fig1Panel) -> List[dict]:
    return [
        {
            "r": panel.r,
            "architecture": arch,
            "configs": panel.counts[arch],
            "p_values": ",".join(str(p) for p in panel.points_per_architecture[arch]),
        }
        for arch in ARCHITECTURES
    ]


def run_fig1(n: int = FIG1_WIDTH,
             r_values: Sequence[int] = FIG1_R_VALUES) -> "ExperimentResult":
    panels: List[Fig1Panel] = []
    for r in r_values:
        points = {
            "GeAr": sorted(pt.p for pt in enumerate_gear_points(n, r)),
            "GDA": sorted(pt.p for pt in enumerate_gda_points(n, r)),
            "ACA-II": sorted(pt.p for pt in enumerate_fixed_architecture_points(n, r)),
            "ETAII": sorted(pt.p for pt in enumerate_fixed_architecture_points(n, r)),
            "ACA-I": [r] if r == 1 else [],
        }
        counts = {arch: count_configurations(n, arch, r) for arch in ARCHITECTURES}
        panels.append(Fig1Panel(r=r, points_per_architecture=points, counts=counts))
    return ExperimentResult("fig1", FIG1_HEADERS, panels, _panel_rows)


def render_fig1(panels: Optional[List[Fig1Panel]] = None) -> str:
    panels = panels if panels is not None else run_fig1()
    blocks: List[str] = []
    for panel in panels:
        rows = []
        for arch in ARCHITECTURES:
            pts = panel.points_per_architecture[arch]
            rows.append((arch, panel.counts[arch],
                         ",".join(str(p) for p in pts) or "-"))
        blocks.append(
            format_table(
                ["architecture", "#configs", "P values"],
                rows,
                title=f"Fig. 1 — N={FIG1_WIDTH}, R={panel.r}: configurability",
            )
        )
    return "\n\n".join(blocks)
