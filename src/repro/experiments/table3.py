"""Table III — analytic vs simulated error probability.

Protocol (§4.4): for each (N, R, P) configuration, compare the Eq. 5–7
probability against a 10 000-pattern uniform-operand simulation.  We add
two columns the paper could not print: the exact DP probability (our
untruncated model) and the paper's own reference values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.tables import format_table
from repro.core.error_model import error_probability, error_probability_exact
from repro.core.gear import GeArAdder, GeArConfig
from repro.experiments.result import ExperimentResult
from repro.paperdata import PAPER_SAMPLE_COUNT, TABLE3_ERROR_PROBABILITY

TABLE3_HEADERS = ("n", "r", "p", "k", "analytic_pct", "exact_pct",
                  "simulated_pct", "samples", "consistent",
                  "paper_analytic_pct", "paper_simulated_pct")


@dataclass(frozen=True)
class Table3Row:
    n: int
    r: int
    p: int
    k: int
    analytic_pct: float
    exact_pct: float
    simulated_pct: float
    samples: int
    paper_analytic_pct: Optional[float]
    paper_simulated_pct: Optional[float]

    @property
    def statistically_consistent(self) -> bool:
        """Does the simulated value's Wilson interval cover the model?"""
        from repro.metrics.confidence import estimate_consistent_with

        return estimate_consistent_with(
            self.simulated_pct / 100.0, self.samples, self.analytic_pct / 100.0
        )


def _table3_row(row: Table3Row) -> dict:
    return {
        "n": row.n,
        "r": row.r,
        "p": row.p,
        "k": row.k,
        "analytic_pct": row.analytic_pct,
        "exact_pct": row.exact_pct,
        "simulated_pct": row.simulated_pct,
        "samples": row.samples,
        "consistent": row.statistically_consistent,
        "paper_analytic_pct": row.paper_analytic_pct,
        "paper_simulated_pct": row.paper_simulated_pct,
    }


def run_table3(samples: int = PAPER_SAMPLE_COUNT, seed: int = 2015,
               engine=None) -> "ExperimentResult":
    """Reproduce Table III over the paper's four configurations."""
    from repro.engine import EvalRequest, evaluate

    rows: List[Table3Row] = []
    for (n, r, p), ref in TABLE3_ERROR_PROBABILITY.items():
        cfg = GeArConfig(n, r, p, allow_partial=(n - r - p) % r != 0)
        adder = GeArAdder(cfg)
        measured = evaluate(
            EvalRequest.monte_carlo(adder, samples, seed=seed),
            engine=engine,
        ).stats.error_rate
        rows.append(
            Table3Row(
                n=n,
                r=r,
                p=p,
                k=cfg.k,
                analytic_pct=error_probability(cfg) * 100.0,
                exact_pct=error_probability_exact(cfg) * 100.0,
                simulated_pct=measured * 100.0,
                samples=samples,
                paper_analytic_pct=ref.get("analytic_pct"),
                paper_simulated_pct=ref.get("simulated_pct"),
            )
        )
    return ExperimentResult("table3", TABLE3_HEADERS, rows, _table3_row)


def render_table3(rows: Optional[List[Table3Row]] = None) -> str:
    rows = rows if rows is not None else run_table3()
    return format_table(
        ["(N,R,P,k)", "model %", "exact-DP %", "simulated %", "consistent",
         "paper model %", "paper sim %"],
        [
            (
                f"({row.n},{row.r},{row.p},{row.k})",
                f"{row.analytic_pct:.4f}",
                f"{row.exact_pct:.4f}",
                f"{row.simulated_pct:.4f}",
                row.statistically_consistent,
                row.paper_analytic_pct,
                row.paper_simulated_pct,
            )
            for row in rows
        ],
        title=(
            "Table III — probability of error: model vs simulation "
            "(consistency = Wilson 95% interval covers the model)"
        ),
    )
