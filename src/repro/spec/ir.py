"""The declarative adder IR: one frozen description compiled into every layer.

The paper's central observation (§2, Eq. 1-3) is that GeAr, ACA-I/II,
ETAII and GDA are all *the same object* — an ordered layout of speculative
sub-adder windows over the operand word.  :class:`AdderSpec` freezes that
object into data:

* an ordered tuple of :class:`WindowSpec` (geometry + per-window sub-adder
  architecture + carry-prediction realisation),
* an optional LOA-style truncation (low bits reduced to OR gates),
* an error-detection flag (§3.3 ``ERR`` outputs in the compiled netlist).

One spec compiles into each layer of the library:

* :meth:`AdderSpec.to_model` — the behavioural/vectorised
  :class:`~repro.adders.base.AdderModel`,
* :meth:`AdderSpec.to_netlist` — the gate-level netlist, through the one
  generic window compiler :func:`repro.rtl.builders.build_spec`,
* :meth:`AdderSpec.to_error_terms` — the exact analytic EP/MED/max-ED
  terms over the window geometry,
* :meth:`AdderSpec.fingerprint` — the stable identity the engine's shard
  cache and the conformance registry key on.

Specs are JSON round-trippable (:meth:`AdderSpec.to_json` /
:meth:`AdderSpec.from_json`), so heterogeneous designs — per-window mixed
sub-adder lengths and architectures à la Farahmand et al.
(arXiv:2106.08800) — are plain data files, not code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from repro.adders.base import SpeculativeWindow, validate_window_cover
from repro.utils.validation import check_pos_int

#: IR schema version, embedded in JSON documents and fingerprints.
SPEC_VERSION = 1

#: Sub-adder architectures the window compiler knows how to build.
ARCHS = ("rca", "cla", "ksa")

#: Carry-prediction realisations.  ``fused`` folds the prediction bits into
#: the window's own sub-adder (GeAr/ACA style: one chain, low sums dropped);
#: ``gen_rca``/``gen_cla`` build a physically separate carry generator over
#: the prediction bits feeding a sum unit (ETAII's ripple generators, GDA's
#: lookahead predictors).  The choice never changes the computed sum — only
#: the hardware structure (and therefore area/delay, Table I/II).
PREDS = ("fused", "gen_rca", "gen_cla")

_GEN_PREDS = ("gen_rca", "gen_cla")


@dataclass(frozen=True)
class WindowSpec:
    """One sub-adder window of an :class:`AdderSpec`.

    The geometry fields mirror :class:`~repro.adders.base.SpeculativeWindow`
    (``low``/``high`` are the operand bits read, ``result_low``/
    ``result_high`` the sum bits driven; ``result_low - low`` is the
    carry-prediction depth).  ``arch`` selects the sub-adder implementation
    and ``pred`` how the prediction bits are realised in hardware.

    Constraints beyond the plain geometry:

    * ``high == result_high`` — a window never reads above the bits it
      drives (reading more would compile to dead logic),
    * ``pred != "fused"`` requires ``prediction_bits >= 1`` (a separate
      generator over zero bits is meaningless) and ``arch == "rca"`` (only
      the ripple sum unit accepts an external carry-in),
    * exact windows (``prediction_bits == 0``) are always ``fused``.
    """

    low: int
    high: int
    result_low: int
    result_high: int
    arch: str = "rca"
    pred: str = "fused"

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.result_low <= self.result_high <= self.high:
            raise ValueError(
                f"inconsistent window: low={self.low}, high={self.high}, "
                f"result=[{self.result_low}, {self.result_high}]"
            )
        if self.high != self.result_high:
            raise ValueError(
                f"window reads up to bit {self.high} but drives only up to "
                f"{self.result_high}; the extra bits would be dead logic"
            )
        if self.arch not in ARCHS:
            raise ValueError(f"unknown arch {self.arch!r}; use one of {ARCHS}")
        if self.pred not in PREDS:
            raise ValueError(f"unknown pred {self.pred!r}; use one of {PREDS}")
        if self.pred in _GEN_PREDS:
            if self.prediction_bits == 0:
                raise ValueError(
                    f"pred={self.pred!r} needs at least one prediction bit"
                )
            if self.arch != "rca":
                raise ValueError(
                    f"pred={self.pred!r} needs arch='rca': only the ripple "
                    "sum unit accepts the generator's carry-in"
                )

    # -- derived geometry (paper notation) ----------------------------------

    @property
    def length(self) -> int:
        """Operand bits the window reads (the sub-adder length L)."""
        return self.high - self.low + 1

    @property
    def prediction_bits(self) -> int:
        """Carry-prediction depth (paper's P; 0 for the first window)."""
        return self.result_low - self.low

    @property
    def result_bits(self) -> int:
        """Result bits the window contributes (paper's R)."""
        return self.result_high - self.result_low + 1

    def to_window(self) -> SpeculativeWindow:
        """The plain behavioural-geometry view of this window."""
        return SpeculativeWindow(self.low, self.high,
                                 self.result_low, self.result_high)

    def to_dict(self) -> Dict[str, Any]:
        return {"low": self.low, "high": self.high,
                "result_low": self.result_low,
                "result_high": self.result_high,
                "arch": self.arch, "pred": self.pred}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WindowSpec":
        known = {"low", "high", "result_low", "result_high", "arch", "pred"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown window fields {sorted(unknown)}")
        return cls(low=int(data["low"]), high=int(data["high"]),
                   result_low=int(data["result_low"]),
                   result_high=int(data["result_high"]),
                   arch=str(data.get("arch", "rca")),
                   pred=str(data.get("pred", "fused")))


@dataclass(frozen=True)
class ErrorTerms:
    """Analytic error terms of a spec, feeding the window-DP analytics.

    ``error_probability``/``mean_error_distance`` are *exact* for any
    truncation-free window layout (first-principles DP of
    :mod:`repro.core.error_model`); with truncation the OR-reduced low bits
    fall outside the carry-speculation model and both return ``None``.
    ``max_error_distance`` is always available as an upper bound.
    """

    width: int
    windows: Tuple[SpeculativeWindow, ...]
    truncation: int = 0

    def error_probability(self) -> Optional[float]:
        if self.truncation:
            return None
        from repro.core.error_model import error_probability_windows

        return error_probability_windows(self.windows, self.width)

    def mean_error_distance(self) -> Optional[float]:
        if self.truncation:
            return None
        from repro.core.error_model import mean_error_distance_windows

        return mean_error_distance_windows(self.windows, self.width)

    def max_error_distance(self) -> int:
        """Upper bound on ``|approx - exact|`` over all operand pairs.

        Each speculative window can miss an incoming carry worth
        ``2**result_low``; windows anchored at bit 0 of an untruncated word
        see every lower bit and cannot err.  With truncation the OR-reduced
        part contributes ``2**(t+1) - 1`` (wrong low sum bits plus the
        approximated carry into the exact part), and every speculative
        window can additionally miss (the carry into bit ``t`` is invisible
        to it).
        """
        t = self.truncation
        trunc_part = (1 << (t + 1)) - 1 if t else 0
        spec_part = sum(1 << w.result_low for w in self.windows[1:]
                        if w.low > 0 or t > 0)
        return trunc_part + spec_part


@dataclass(frozen=True)
class AdderSpec:
    """A complete declarative adder description (frozen, hashable).

    Attributes:
        name: identifier used for the compiled netlist module, the
            behavioural model and the fingerprint.  Must be a valid
            Verilog/netlist identifier.
        width: operand width N.
        windows: ordered window layout driving bits ``truncation..N-1``.
        truncation: LOA-style approximation — the low ``truncation`` sum
            bits are ``a | b`` and the carry into the window part is
            ``a & b`` of the top truncated bit.  0 disables.
        error_detect: compile the §3.3 ``ERR`` detection flags into the
            netlist (one AND of predicted-carry and previous carry-out per
            speculative window).  Requires a truncation-free, all-``fused``
            speculative layout.
    """

    name: str
    width: int
    windows: Tuple[WindowSpec, ...]
    truncation: int = 0
    error_detect: bool = False

    def __post_init__(self) -> None:
        check_pos_int("width", self.width)
        object.__setattr__(self, "windows", tuple(self.windows))
        if not all(isinstance(w, WindowSpec) for w in self.windows):
            raise TypeError("windows must be WindowSpec instances")
        if not self.name or not all(c.isalnum() or c == "_" for c in self.name):
            raise ValueError(
                f"spec name {self.name!r} is not a valid identifier"
            )
        t = self.truncation
        if not 0 <= t < self.width:
            raise ValueError(
                f"truncation must be in [0, {self.width}), got {t}"
            )
        if not self.windows:
            raise ValueError("at least one window is required")
        if min(w.low for w in self.windows) < t:
            raise ValueError(
                f"windows must not read below the truncation boundary {t}"
            )
        # The cover check runs in window coordinates shifted down by the
        # truncation, reusing the one validator every behavioural window
        # layout already goes through.
        validate_window_cover(
            [SpeculativeWindow(w.low - t, w.high - t,
                               w.result_low - t, w.result_high - t)
             for w in self.windows],
            self.width - t,
        )
        first = self.windows[0]
        if first.prediction_bits != 0:
            raise ValueError("the first window must not predict a carry")
        if t and first.arch != "rca":
            raise ValueError(
                "truncation feeds its carry into the first window, which "
                "must therefore be a ripple ('rca') sub-adder"
            )
        if self.error_detect:
            if t:
                raise ValueError("error_detect is incompatible with truncation")
            if len(self.windows) < 2:
                raise ValueError(
                    "error_detect needs at least one speculative window"
                )
            for i, w in enumerate(self.windows[1:], start=1):
                if w.pred != "fused" or w.prediction_bits < 1:
                    raise ValueError(
                        f"error_detect needs fused speculative windows with "
                        f"prediction bits (window {i} is {w.pred!r} with "
                        f"P={w.prediction_bits})"
                    )

    # -- identity -----------------------------------------------------------

    def fingerprint(self) -> str:
        """Stable identity for engine shard-cache keys and the registry.

        Includes the spec name: two families may share a geometry (ACA-II
        and a GeAr coverage point, §3.1) yet must stay distinguishable in
        registries; equal fingerprints still imply identical sums because
        the geometry fully determines behaviour.  Specs are immutable, so
        the string is built once and memoised.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        layout = ";".join(
            f"{w.low}.{w.high}.{w.result_low}.{w.result_high}.{w.arch}.{w.pred}"
            for w in self.windows
        )
        detect = 1 if self.error_detect else 0
        cached = (f"spec/v{SPEC_VERSION}:{self.name}:w{self.width}"
                  f":t{self.truncation}:d{detect}:[{layout}]")
        object.__setattr__(self, "_fingerprint", cached)
        return cached

    # -- (de)serialisation --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": SPEC_VERSION,
            "name": self.name,
            "width": self.width,
            "truncation": self.truncation,
            "error_detect": self.error_detect,
            "windows": [w.to_dict() for w in self.windows],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AdderSpec":
        version = int(data.get("version", SPEC_VERSION))
        if version != SPEC_VERSION:
            raise ValueError(
                f"unsupported spec version {version} (this library "
                f"understands version {SPEC_VERSION})"
            )
        known = {"version", "name", "width", "truncation", "error_detect",
                 "windows"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown spec fields {sorted(unknown)}")
        return cls(
            name=str(data["name"]),
            width=int(data["width"]),
            windows=tuple(WindowSpec.from_dict(w) for w in data["windows"]),
            truncation=int(data.get("truncation", 0)),
            error_detect=bool(data.get("error_detect", False)),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "AdderSpec":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("spec JSON must be an object")
        return cls.from_dict(data)

    def renamed(self, name: str) -> "AdderSpec":
        """The same spec under a different name (and fingerprint)."""
        return replace(self, name=name)

    # -- compilers ----------------------------------------------------------

    def to_model(self):
        """Behavioural/vectorised :class:`~repro.adders.base.AdderModel`."""
        from repro.spec.model import SpecAdder, TruncatedSpecAdder

        if self.truncation:
            return TruncatedSpecAdder(self)
        return SpecAdder(self)

    def to_netlist(self):
        """Gate-level :class:`~repro.rtl.netlist.Netlist` of this spec."""
        from repro.rtl.builders import build_spec

        return build_spec(self)

    def to_error_terms(self) -> ErrorTerms:
        """Analytic EP/MED/max-ED terms over the window geometry."""
        return ErrorTerms(width=self.width, windows=self.to_windows(),
                          truncation=self.truncation)

    def to_error_pmf(self, one_density: float = 0.5):
        """Exact signed error PMF of this spec.

        ``one_density`` is the probability that any operand bit is one
        (bits independent, both operands i.i.d. — 0.5 reproduces the
        uniform-operand setting).  Returns an
        :class:`~repro.engine.analytic.ErrorPMF`; EP/MED/max-ED taken
        from it agree with :meth:`to_error_terms` where the closed-form
        terms exist, and remain exact where they do not (e.g. truncated
        specs).
        """
        from repro.engine.analytic import error_pmf

        return error_pmf(self.width, self.to_windows(),
                         truncation=self.truncation,
                         bit_one=(float(one_density),) * self.width)

    def to_windows(self) -> Tuple[SpeculativeWindow, ...]:
        """The behavioural window layout (absolute bit coordinates)."""
        return tuple(w.to_window() for w in self.windows)

    @property
    def is_exact(self) -> bool:
        """True when the spec can never err (single full window, no OR part)."""
        return (self.truncation == 0 and len(self.windows) == 1
                and self.windows[0].low == 0)

    def describe(self) -> str:
        """Compact human-readable summary for CLI listings."""
        parts = []
        if self.truncation:
            parts.append(f"or[0:{self.truncation - 1}]")
        for w in self.windows:
            tag = w.arch if w.pred == "fused" else f"{w.arch}+{w.pred}"
            parts.append(f"[{w.low}:{w.high}]->[{w.result_low}:{w.result_high}]{tag}")
        detect = " +err" if self.error_detect else ""
        return f"{self.name}: N={self.width} {' '.join(parts)}{detect}"
