"""The declarative adder IR: one frozen description compiled into every layer.

The paper's central observation (§2, Eq. 1-3) is that GeAr, ACA-I/II,
ETAII and GDA are all *the same object* — an ordered layout of speculative
sub-adder windows over the operand word.  :class:`AdderSpec` freezes that
object into data:

* an ordered tuple of :class:`WindowSpec` (geometry + per-window sub-adder
  architecture + carry-prediction realisation).  Since version 2 a window
  has a ``kind``: ``speculative`` windows predict their carry-in,
  ``static`` windows carry a fixed gate-level approximation of the low
  bits (LOA's OR reduction, HOERAA's OR-plus-half-adder) instead,
* an optional LOA-style truncation (low bits reduced to OR gates — the
  version-1 spelling of a ``static``/``or`` window, kept for
  compatibility),
* an error-detection flag (§3.3 ``ERR`` outputs in the compiled netlist),
* an optional :class:`RectifySpec` stage (version 2): a declared
  post-correction that adds each enabled window's §3.3 flag back at its
  ``result_low``, generalising :class:`repro.core.correction.ErrorCorrector`
  into a pipeline stage with its own gate-level latency/area contribution.

One spec compiles into each layer of the library:

* :meth:`AdderSpec.to_model` — the behavioural/vectorised
  :class:`~repro.adders.base.AdderModel`,
* :meth:`AdderSpec.to_netlist` — the gate-level netlist, through the one
  generic window compiler :func:`repro.rtl.builders.build_spec`,
* :meth:`AdderSpec.to_error_terms` — the exact analytic EP/MED/max-ED
  terms over the window geometry,
* :meth:`AdderSpec.fingerprint` — the stable identity the engine's shard
  cache and the conformance registry key on.  Specs that use no
  version-2 feature keep their byte-identical ``spec/v1:`` fingerprint
  across the version bump; static windows and rectify stages mint
  disjoint ``spec/v2:`` keys.

Specs are JSON round-trippable (:meth:`AdderSpec.to_json` /
:meth:`AdderSpec.from_json`); version-1 documents migrate forward
transparently.  See ``docs/spec.md`` for the field reference.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from repro.adders.base import SpeculativeWindow, validate_window_cover
from repro.utils.validation import check_pos_int

#: IR schema version, embedded in JSON documents and fingerprints.  A spec
#: only stamps (and fingerprints) version 2 when it uses a version-2
#: feature, so unchanged version-1 shapes keep their cache identity.
SPEC_VERSION = 2

#: Document versions :meth:`AdderSpec.from_dict` understands.
SUPPORTED_SPEC_VERSIONS = (1, 2)

#: Window kinds.  ``speculative`` windows compute a sub-adder sum with a
#: (possibly empty) carry prediction; ``static`` windows replace their bits
#: with a fixed gate-level approximation and exist only as the first
#: window of a spec.
KINDS = ("speculative", "static")

#: Fixed approximations a static window can carry.  ``or`` is LOA's rule
#: (every sum bit is ``a | b``); ``hoeraa`` keeps OR for all but the top
#: static bit, which becomes a half-adder sum ``a ^ b`` (Balasubramanian &
#: Maskell's HOERAA).  Both feed ``a & b`` of the top static bit into the
#: window part as its carry-in.
STATIC_APPROX = ("or", "hoeraa")

#: Rectification realisations.  ``ripple`` adds the flag word with a sparse
#: ripple chain from the lowest enabled tap to the sum MSB.
RECTIFY_KINDS = ("ripple",)

#: Sub-adder architectures the window compiler knows how to build.
ARCHS = ("rca", "cla", "ksa")

#: Carry-prediction realisations.  ``fused`` folds the prediction bits into
#: the window's own sub-adder (GeAr/ACA style: one chain, low sums dropped);
#: ``gen_rca``/``gen_cla`` build a physically separate carry generator over
#: the prediction bits feeding a sum unit (ETAII's ripple generators, GDA's
#: lookahead predictors).  The choice never changes the computed sum — only
#: the hardware structure (and therefore area/delay, Table I/II).
PREDS = ("fused", "gen_rca", "gen_cla")

_GEN_PREDS = ("gen_rca", "gen_cla")


@dataclass(frozen=True)
class WindowSpec:
    """One window of an :class:`AdderSpec`.

    The geometry fields mirror :class:`~repro.adders.base.SpeculativeWindow`
    (``low``/``high`` are the operand bits read, ``result_low``/
    ``result_high`` the sum bits driven; ``result_low - low`` is the
    carry-prediction depth).  ``arch`` selects the sub-adder implementation
    and ``pred`` how the prediction bits are realised in hardware.

    ``kind`` distinguishes ordinary ``speculative`` windows from ``static``
    ones: a static window drives exactly the bits it reads with the fixed
    approximation named by ``approx`` and has no sub-adder at all.

    Constraints beyond the plain geometry:

    * ``high == result_high`` — a window never reads above the bits it
      drives (reading more would compile to dead logic),
    * ``pred != "fused"`` requires ``prediction_bits >= 1`` (a separate
      generator over zero bits is meaningless) and ``arch == "rca"`` (only
      the ripple sum unit accepts an external carry-in),
    * exact windows (``prediction_bits == 0``) are always ``fused``,
    * static windows have ``prediction_bits == 0``, a valid ``approx`` and
      default ``arch``/``pred`` (there is no sub-adder to configure);
      speculative windows must leave ``approx`` unset.
    """

    low: int
    high: int
    result_low: int
    result_high: int
    arch: str = "rca"
    pred: str = "fused"
    kind: str = "speculative"
    approx: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.result_low <= self.result_high <= self.high:
            raise ValueError(
                f"inconsistent window: low={self.low}, high={self.high}, "
                f"result=[{self.result_low}, {self.result_high}]"
            )
        if self.high != self.result_high:
            raise ValueError(
                f"window reads up to bit {self.high} but drives only up to "
                f"{self.result_high}; the extra bits would be dead logic"
            )
        if self.kind not in KINDS:
            raise ValueError(f"unknown window kind {self.kind!r}; "
                             f"use one of {KINDS}")
        if self.arch not in ARCHS:
            raise ValueError(f"unknown arch {self.arch!r}; use one of {ARCHS}")
        if self.pred not in PREDS:
            raise ValueError(f"unknown pred {self.pred!r}; use one of {PREDS}")
        if self.kind == "static":
            if self.approx not in STATIC_APPROX:
                raise ValueError(
                    f"unknown static approximation {self.approx!r}; "
                    f"use one of {STATIC_APPROX}"
                )
            if self.prediction_bits:
                raise ValueError(
                    "a static window drives exactly the bits it reads; "
                    "result_low must equal low"
                )
            if self.arch != "rca" or self.pred != "fused":
                raise ValueError(
                    "a static window has no sub-adder; leave arch and pred "
                    "at their defaults"
                )
        elif self.approx is not None:
            raise ValueError(
                f"approx={self.approx!r} applies only to kind='static' windows"
            )
        if self.pred in _GEN_PREDS:
            if self.prediction_bits == 0:
                raise ValueError(
                    f"pred={self.pred!r} needs at least one prediction bit"
                )
            if self.arch != "rca":
                raise ValueError(
                    f"pred={self.pred!r} needs arch='rca': only the ripple "
                    "sum unit accepts the generator's carry-in"
                )

    # -- derived geometry (paper notation) ----------------------------------

    @property
    def length(self) -> int:
        """Operand bits the window reads (the sub-adder length L)."""
        return self.high - self.low + 1

    @property
    def prediction_bits(self) -> int:
        """Carry-prediction depth (paper's P; 0 for the first window)."""
        return self.result_low - self.low

    @property
    def result_bits(self) -> int:
        """Result bits the window contributes (paper's R)."""
        return self.result_high - self.result_low + 1

    @property
    def is_static(self) -> bool:
        """True for a fixed-approximation (non-speculative) window."""
        return self.kind == "static"

    def to_window(self) -> SpeculativeWindow:
        """The plain behavioural-geometry view of this window."""
        return SpeculativeWindow(self.low, self.high,
                                 self.result_low, self.result_high)

    def to_dict(self) -> Dict[str, Any]:
        data = {"low": self.low, "high": self.high,
                "result_low": self.result_low,
                "result_high": self.result_high,
                "arch": self.arch, "pred": self.pred}
        if self.kind != "speculative":
            data["kind"] = self.kind
            data["approx"] = self.approx
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WindowSpec":
        known = {"low", "high", "result_low", "result_high", "arch", "pred",
                 "kind", "approx"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown window fields {sorted(unknown)}")
        approx = data.get("approx")
        return cls(low=int(data["low"]), high=int(data["high"]),
                   result_low=int(data["result_low"]),
                   result_high=int(data["result_high"]),
                   arch=str(data.get("arch", "rca")),
                   pred=str(data.get("pred", "fused")),
                   kind=str(data.get("kind", "speculative")),
                   approx=None if approx is None else str(approx))


@dataclass(frozen=True)
class RectifySpec:
    """A declared post-correction stage fed by the §3.3 ``ERR`` flags.

    Rectification adds each enabled window's detection flag back into the
    sum at that window's ``result_low`` — exactly the repair
    :class:`repro.core.correction.ErrorCorrector` performs behaviourally,
    but declared in the IR so the netlist compiler emits it as a pipeline
    stage (a sparse ripple increment with its own latency and area) and
    the analytic DP models it exactly.

    ``enabled`` names the rectified speculative window indices (``1`` is
    the first window that can err); ``None`` rectifies every speculative
    window, which provably makes an ``error_detect`` spec exact.
    """

    kind: str = "ripple"
    enabled: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in RECTIFY_KINDS:
            raise ValueError(f"unknown rectify kind {self.kind!r}; "
                             f"use one of {RECTIFY_KINDS}")
        if self.enabled is not None:
            object.__setattr__(
                self, "enabled", tuple(int(i) for i in self.enabled))

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind}
        if self.enabled is not None:
            data["enabled"] = list(self.enabled)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RectifySpec":
        known = {"kind", "enabled"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown rectify fields {sorted(unknown)}")
        enabled = data.get("enabled")
        return cls(kind=str(data.get("kind", "ripple")),
                   enabled=None if enabled is None
                   else tuple(int(i) for i in enabled))


@dataclass(frozen=True)
class ErrorTerms:
    """Analytic error terms of a spec, feeding the window-DP analytics.

    ``error_probability``/``mean_error_distance`` are *exact* for any
    plain speculative window layout (first-principles DP of
    :mod:`repro.core.error_model`); with a static/OR-reduced low part or a
    rectify stage the closed forms do not apply and both return ``None``
    (the full PMF of :mod:`repro.engine.analytic` stays exact there).
    ``max_error_distance`` is always available as an upper bound.
    """

    width: int
    windows: Tuple[SpeculativeWindow, ...]
    truncation: int = 0
    static_kind: Optional[str] = None
    rectified: Tuple[int, ...] = ()

    def error_probability(self) -> Optional[float]:
        if self.truncation or self.rectified:
            return None
        from repro.core.error_model import error_probability_windows

        return error_probability_windows(self.windows, self.width)

    def mean_error_distance(self) -> Optional[float]:
        if self.truncation or self.rectified:
            return None
        from repro.core.error_model import mean_error_distance_windows

        return mean_error_distance_windows(self.windows, self.width)

    def max_error_distance(self) -> int:
        """Upper bound on ``|approx - exact|`` over all operand pairs.

        Each speculative window can miss an incoming carry worth
        ``2**result_low``; windows anchored at bit 0 of an untruncated word
        see every lower bit and cannot err, and *rectified* windows repair
        their own miss exactly (the flag fires precisely on the missed
        carry) so they contribute nothing either.  An OR-reduced low part
        contributes ``2**(t+1) - 1`` (wrong low sum bits plus the
        approximated carry into the exact part); HOERAA's half-adder top
        bit cancels the boundary terms, leaving at most ``2**t - 1``.
        """
        t = self.truncation
        if t and self.static_kind == "hoeraa":
            trunc_part = (1 << t) - 1
        elif t:
            trunc_part = (1 << (t + 1)) - 1
        else:
            trunc_part = 0
        rect = set(self.rectified)
        spec_part = sum(1 << w.result_low
                        for i, w in enumerate(self.windows[1:], start=1)
                        if (w.low > 0 or t > 0) and i not in rect)
        return trunc_part + spec_part


@dataclass(frozen=True)
class AdderSpec:
    """A complete declarative adder description (frozen, hashable).

    Attributes:
        name: identifier used for the compiled netlist module, the
            behavioural model and the fingerprint.  Must be a valid
            Verilog/netlist identifier.
        width: operand width N.
        windows: ordered window layout driving bits ``truncation..N-1``.
            A ``static`` window may appear only first, anchors at bit 0,
            and replaces ``truncation`` (the two spellings are mutually
            exclusive).
        truncation: LOA-style approximation — the low ``truncation`` sum
            bits are ``a | b`` and the carry into the window part is
            ``a & b`` of the top truncated bit.  0 disables.
        error_detect: compile the §3.3 ``ERR`` detection flags into the
            netlist (one AND of predicted-carry and previous carry-out per
            speculative window).  Requires a truncation-free, static-free,
            all-``fused`` speculative layout.
        rectify: optional declared post-correction stage adding enabled
            windows' flags back into the sum (requires ``error_detect``).
    """

    name: str
    width: int
    windows: Tuple[WindowSpec, ...]
    truncation: int = 0
    error_detect: bool = False
    rectify: Optional[RectifySpec] = None

    def __post_init__(self) -> None:
        check_pos_int("width", self.width)
        object.__setattr__(self, "windows", tuple(self.windows))
        if not all(isinstance(w, WindowSpec) for w in self.windows):
            raise TypeError("windows must be WindowSpec instances")
        if not self.name or not all(c.isalnum() or c == "_" for c in self.name):
            raise ValueError(
                f"spec name {self.name!r} is not a valid identifier"
            )
        t = self.truncation
        if not 0 <= t < self.width:
            raise ValueError(
                f"truncation must be in [0, {self.width}), got {t}"
            )
        if not self.windows:
            raise ValueError("at least one window is required")
        if any(w.is_static for w in self.windows[1:]):
            raise ValueError(
                "only the first window may be static (it is the fixed "
                "approximation of the low bits)"
            )
        static = self.windows[0] if self.windows[0].is_static else None
        if static is not None:
            if t:
                raise ValueError(
                    "a static window and truncation both approximate the "
                    "low bits; declare one or the other"
                )
            if static.low != 0:
                raise ValueError("a static window must start at bit 0")
            if len(self.windows) < 2:
                raise ValueError(
                    "a static window needs at least one speculative window "
                    "above it"
                )
        # Validation of the speculative body runs in window coordinates
        # shifted down by the approximated low part (truncation or static
        # window), reusing the one validator every behavioural window
        # layout already goes through.
        body = self.windows[1:] if static else self.windows
        boundary = static.length if static else t
        if min(w.low for w in body) < boundary:
            where = "static" if static else "truncation"
            raise ValueError(
                f"windows must not read below the {where} boundary {boundary}"
            )
        validate_window_cover(
            [SpeculativeWindow(w.low - boundary, w.high - boundary,
                               w.result_low - boundary,
                               w.result_high - boundary)
             for w in body],
            self.width - boundary,
        )
        first = body[0]
        if first.prediction_bits != 0:
            raise ValueError("the first window must not predict a carry")
        if boundary and first.arch != "rca":
            raise ValueError(
                "the approximated low part feeds its carry into the first "
                "window, which must therefore be a ripple ('rca') sub-adder"
            )
        if self.error_detect:
            if t:
                raise ValueError("error_detect is incompatible with truncation")
            if static is not None:
                raise ValueError(
                    "error_detect is incompatible with a static low part "
                    "(an OR-reduced window has no carry-out to check)"
                )
            if len(self.windows) < 2:
                raise ValueError(
                    "error_detect needs at least one speculative window"
                )
            for i, w in enumerate(self.windows[1:], start=1):
                if w.pred != "fused" or w.prediction_bits < 1:
                    raise ValueError(
                        f"error_detect needs fused speculative windows with "
                        f"prediction bits (window {i} is {w.pred!r} with "
                        f"P={w.prediction_bits})"
                    )
        if self.rectify is not None:
            if not isinstance(self.rectify, RectifySpec):
                raise TypeError("rectify must be a RectifySpec")
            if not self.error_detect:
                raise ValueError(
                    "rectify consumes the §3.3 flags; it requires "
                    "error_detect=True"
                )
            enabled = self.rectify.enabled
            if enabled is not None:
                k = len(self.windows)
                if (not enabled
                        or tuple(sorted(set(enabled))) != tuple(enabled)
                        or not all(1 <= i < k for i in enabled)):
                    raise ValueError(
                        f"rectify.enabled must be a non-empty strictly "
                        f"increasing tuple of speculative window indices in "
                        f"[1, {k - 1}], got {enabled!r}"
                    )

    # -- identity -----------------------------------------------------------

    def fingerprint(self) -> str:
        """Stable identity for engine shard-cache keys and the registry.

        Includes the spec name: two families may share a geometry (ACA-II
        and a GeAr coverage point, §3.1) yet must stay distinguishable in
        registries; equal fingerprints still imply identical sums because
        the geometry fully determines behaviour.  Specs are immutable, so
        the string is built once and memoised.

        Version-1 shapes keep the byte-identical ``spec/v1:`` string they
        had before the IR bump (shard-cache hits survive); any spec using
        a static window or a rectify stage mints a disjoint ``spec/v2:``
        key (``static`` is not a valid arch, and the ``:r[...]`` suffix
        never appears on v1 strings).
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        layout = ";".join(
            f"{w.low}.{w.high}.{w.result_low}.{w.result_high}"
            + (f".static.{w.approx}" if w.is_static
               else f".{w.arch}.{w.pred}")
            for w in self.windows
        )
        detect = 1 if self.error_detect else 0
        version = 2 if self.uses_v2 else 1
        rect = ""
        if self.rectify is not None:
            taps = ",".join(str(i) for i in self.rectified_windows())
            rect = f":r[{self.rectify.kind}:{taps}]"
        cached = (f"spec/v{version}:{self.name}:w{self.width}"
                  f":t{self.truncation}:d{detect}:[{layout}]{rect}")
        object.__setattr__(self, "_fingerprint", cached)
        return cached

    # -- (de)serialisation --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "version": 2 if self.uses_v2 else 1,
            "name": self.name,
            "width": self.width,
            "truncation": self.truncation,
            "error_detect": self.error_detect,
            "windows": [w.to_dict() for w in self.windows],
        }
        if self.rectify is not None:
            data["rectify"] = self.rectify.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AdderSpec":
        version = int(data.get("version", SPEC_VERSION))
        if version not in SUPPORTED_SPEC_VERSIONS:
            known_versions = " and ".join(map(str, SUPPORTED_SPEC_VERSIONS))
            raise ValueError(
                f"unsupported spec version {version} (this library "
                f"understands versions {known_versions})"
            )
        known = {"version", "name", "width", "truncation", "error_detect",
                 "windows", "rectify"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown spec fields {sorted(unknown)}")
        windows = []
        for i, wd in enumerate(data["windows"]):
            try:
                windows.append(WindowSpec.from_dict(wd))
            except (TypeError, ValueError) as exc:
                raise ValueError(f"window {i}: {exc}") from None
        rectify = None
        if data.get("rectify") is not None:
            try:
                rectify = RectifySpec.from_dict(data["rectify"])
            except (TypeError, ValueError) as exc:
                raise ValueError(f"rectify: {exc}") from None
        if version == 1 and (rectify is not None
                             or any(w.is_static for w in windows)):
            raise ValueError(
                'version 1 documents cannot declare static windows or a '
                'rectify stage; set "version": 2'
            )
        return cls(
            name=str(data["name"]),
            width=int(data["width"]),
            windows=tuple(windows),
            truncation=int(data.get("truncation", 0)),
            error_detect=bool(data.get("error_detect", False)),
            rectify=rectify,
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "AdderSpec":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("spec JSON must be an object")
        return cls.from_dict(data)

    def renamed(self, name: str) -> "AdderSpec":
        """The same spec under a different name (and fingerprint)."""
        return replace(self, name=name)

    # -- derived structure --------------------------------------------------

    @property
    def static_window(self) -> Optional[WindowSpec]:
        """The fixed low-part window, or ``None`` for plain layouts."""
        first = self.windows[0]
        return first if first.is_static else None

    @property
    def uses_v2(self) -> bool:
        """True when the spec needs a version-2 document/fingerprint."""
        return self.static_window is not None or self.rectify is not None

    def rectified_windows(self) -> Tuple[int, ...]:
        """Resolved indices of the rectified windows (empty if none)."""
        if self.rectify is None:
            return ()
        if self.rectify.enabled is not None:
            return self.rectify.enabled
        return tuple(range(1, len(self.windows)))

    def stage_tag(self) -> str:
        """Compact stage/kind tag for CLI listings.

        One of ``exact``/``windowed``/``truncated``/``static:<approx>``,
        with ``+err`` and ``+rect`` suffixes for the detection and
        rectification stages.
        """
        static = self.static_window
        if static is not None:
            tag = f"static:{static.approx}"
        elif self.truncation:
            tag = "truncated"
        elif self.is_exact:
            tag = "exact"
        else:
            tag = "windowed"
        if self.error_detect:
            tag += "+err"
        if self.rectify is not None:
            tag += "+rect"
        return tag

    # -- compilers ----------------------------------------------------------

    def to_model(self):
        """Behavioural/vectorised :class:`~repro.adders.base.AdderModel`."""
        from repro.spec.model import (RectifiedSpecAdder, SpecAdder,
                                      StaticSpecAdder)

        if self.rectify is not None:
            return RectifiedSpecAdder(self)
        if self.truncation or self.static_window is not None:
            return StaticSpecAdder(self)
        return SpecAdder(self)

    def to_netlist(self):
        """Gate-level :class:`~repro.rtl.netlist.Netlist` of this spec."""
        from repro.rtl.builders import build_spec

        return build_spec(self)

    def to_error_terms(self) -> ErrorTerms:
        """Analytic EP/MED/max-ED terms over the window geometry."""
        static = self.static_window
        if static is not None:
            return ErrorTerms(width=self.width,
                              windows=self.to_windows()[1:],
                              truncation=static.length,
                              static_kind=static.approx)
        return ErrorTerms(width=self.width, windows=self.to_windows(),
                          truncation=self.truncation,
                          static_kind="or" if self.truncation else None,
                          rectified=self.rectified_windows())

    def to_error_pmf(self, one_density: float = 0.5):
        """Exact signed error PMF of this spec.

        ``one_density`` is the probability that any operand bit is one
        (bits independent, both operands i.i.d. — 0.5 reproduces the
        uniform-operand setting).  Returns an
        :class:`~repro.engine.analytic.ErrorPMF`; EP/MED/max-ED taken
        from it agree with :meth:`to_error_terms` where the closed-form
        terms exist, and remain exact where they do not (truncated,
        static and rectified specs).
        """
        from repro.engine.analytic import error_pmf

        profile = (float(one_density),) * self.width
        static = self.static_window
        if static is not None:
            return error_pmf(self.width, self.to_windows()[1:],
                             truncation=static.length,
                             static_kind=static.approx,
                             bit_one=profile)
        return error_pmf(self.width, self.to_windows(),
                         truncation=self.truncation,
                         rectified=self.rectified_windows(),
                         bit_one=profile)

    def to_windows(self) -> Tuple[SpeculativeWindow, ...]:
        """The behavioural window layout (absolute bit coordinates)."""
        return tuple(w.to_window() for w in self.windows)

    @property
    def is_exact(self) -> bool:
        """True when the spec can never err (single full window, no OR part)."""
        return (self.truncation == 0 and len(self.windows) == 1
                and self.windows[0].low == 0
                and not self.windows[0].is_static)

    def describe(self) -> str:
        """Compact human-readable summary for CLI listings."""
        parts = []
        if self.truncation:
            parts.append(f"or[0:{self.truncation - 1}]")
        for w in self.windows:
            if w.is_static:
                parts.append(f"{w.approx}[{w.low}:{w.high}]")
                continue
            tag = w.arch if w.pred == "fused" else f"{w.arch}+{w.pred}"
            parts.append(f"[{w.low}:{w.high}]->[{w.result_low}:{w.result_high}]{tag}")
        detect = " +err" if self.error_detect else ""
        rect = ""
        if self.rectify is not None:
            taps = ",".join(str(i) for i in self.rectified_windows())
            rect = f" +rect[{taps}]"
        return f"{self.name}: N={self.width} {' '.join(parts)}{detect}{rect}"
