"""Behavioural models compiled from :class:`~repro.spec.ir.AdderSpec`.

:class:`SpecAdder` covers every plain speculative spec by riding the
shared :class:`~repro.adders.base.WindowedSpeculativeAdder` machinery —
the vectorised windowed sum, §3.3 detection flags, and the exact
window-DP analytics — so a heterogeneous layout needs zero
family-specific code.  :class:`StaticSpecAdder` adds the fixed low part
(LOA's OR truncation or a version-2 static window, including HOERAA's
half-adder top bit); :class:`RectifiedSpecAdder` applies the declared
rectification stage on top of the speculative sum.

All of them delegate ``build_netlist``/``fingerprint`` back to the spec,
so the behavioural, gate-level and analytic layers of one spec always
agree on identity and structure.
"""

from __future__ import annotations

from repro.adders.base import AdderModel, IntLike, WindowedSpeculativeAdder
from repro.spec.ir import AdderSpec
from repro.utils.bitvec import mask


def _uniform_pmf(model):
    """The spec's exact uniform-operand PMF, memoised on the model."""
    pmf = getattr(model, "_uniform_pmf_cache", None)
    if pmf is None:
        pmf = model.spec.to_error_pmf()
        model._uniform_pmf_cache = pmf
    return pmf


class SpecAdder(WindowedSpeculativeAdder):
    """The behavioural model of a plain speculative :class:`AdderSpec`."""

    def __init__(self, spec: AdderSpec) -> None:
        if spec.truncation or spec.static_window is not None:
            raise ValueError(
                "SpecAdder models plain speculative specs; "
                "use StaticSpecAdder (or spec.to_model())"
            )
        self.spec = spec
        super().__init__(spec.width, spec.name, spec.to_windows())

    @property
    def is_exact(self) -> bool:
        return self.spec.is_exact

    def error_probability(self) -> float:
        """Exact window-DP error probability from the spec's terms."""
        ep = self.spec.to_error_terms().error_probability()
        assert ep is not None  # plain speculative by construction
        return ep

    def mean_error_distance(self) -> float:
        med = self.spec.to_error_terms().mean_error_distance()
        assert med is not None
        return med

    def max_error_distance(self) -> int:
        return self.spec.to_error_terms().max_error_distance()

    def build_netlist(self):
        return self.spec.to_netlist()

    def fingerprint(self) -> str:
        return self.spec.fingerprint()


class RectifiedSpecAdder(SpecAdder):
    """A spec adder with its declared rectification stage applied.

    The rectified sum adds each enabled window's §3.3 flag back at that
    window's ``result_low`` (masked to the N+1 output bits, matching the
    netlist stage that discards the final ripple carry — which provably
    never fires: rectification only cancels negative miss errors, so the
    corrected sum never exceeds ``a + b``).  With every speculative
    window enabled the result is exact; with a subset, exactly the
    disabled windows' error events remain.

    EP/MED have no closed window-DP form under rectification, so they
    reduce the exact analytic PMF instead; max-ED comes from the spec's
    terms (enabled windows contribute nothing).
    """

    def __init__(self, spec: AdderSpec) -> None:
        if spec.rectify is None:
            raise ValueError("RectifiedSpecAdder needs a spec with a "
                             "rectify stage")
        super().__init__(spec)
        self._rectified = spec.rectified_windows()

    def _add_impl(self, a: IntLike, b: IntLike) -> IntLike:
        raw = super()._add_impl(a, b)
        flags = self.detection_flags(a, b)
        for i in self._rectified:
            raw = raw + (flags[i] << self.windows[i].result_low)
        return raw & mask(self.width + 1)

    def error_probability(self) -> float:
        return _uniform_pmf(self).error_rate

    def mean_error_distance(self) -> float:
        return _uniform_pmf(self).med


class StaticSpecAdder(AdderModel):
    """Behavioural model of a spec with a fixed (non-speculative) low part.

    Covers both spellings: version-1 ``truncation`` (the low ``t`` sum
    bits are ``a | b``) and version-2 static windows, where ``approx``
    picks the gate rule — ``or`` is the same LOA reduction, ``hoeraa``
    keeps OR below the top static bit and computes that bit as the
    half-adder sum ``a ^ b``.  Either way the speculative part receives
    ``a & b`` of the top static bit as carry-in (exactly the LOA rule of
    [12]).  Later windows speculate on raw operand bits only — the
    approximated carry at the boundary is invisible to them, matching
    the compiled hardware where predictors tap the operand inputs
    directly.

    Not a :class:`WindowedSpeculativeAdder`: the fixed part falls outside
    the carry-speculation error model, so the closed-form EP/MED
    analytics (and the §3.3 detection flags) are deliberately not
    exposed; the exact analytic PMF covers these specs instead.
    """

    def __init__(self, spec: AdderSpec) -> None:
        static = spec.static_window
        if not spec.truncation and static is None:
            raise ValueError("StaticSpecAdder needs a truncated spec or a "
                             "static window")
        self.spec = spec
        self.truncation = spec.truncation or static.length
        self.static_kind = "or" if spec.truncation else static.approx
        super().__init__(spec.width, spec.name)
        windows = spec.to_windows()
        self.windows = windows[1:] if static is not None else windows

    def _add_impl(self, a: IntLike, b: IntLike) -> IntLike:
        t = self.truncation
        result: IntLike = (a | b) & mask(t)
        if self.static_kind == "hoeraa":
            # HOERAA: the top static bit is a half-adder sum, not an OR.
            top = ((a ^ b) >> (t - 1)) & 1
            result = (result & mask(t - 1)) | (top << (t - 1))
        carry_in = (a >> (t - 1)) & (b >> (t - 1)) & 1
        local: IntLike = 0
        for i, w in enumerate(self.windows):
            wmask = mask(w.length)
            local = ((a >> w.low) & wmask) + ((b >> w.low) & wmask)
            if i == 0:
                local = local + carry_in
            field = (local >> w.prediction_bits) & mask(w.result_bits)
            result = result | (field << w.result_low)
        carry_out = (local >> self.windows[-1].length) & 1
        return result | (carry_out << self.width)

    def error_probability(self) -> float:
        return _uniform_pmf(self).error_rate

    def mean_error_distance(self) -> float:
        return _uniform_pmf(self).med

    def max_error_distance(self) -> int:
        return self.spec.to_error_terms().max_error_distance()

    def build_netlist(self):
        return self.spec.to_netlist()

    def fingerprint(self) -> str:
        return self.spec.fingerprint()


#: Backwards-compatible alias: before IR v2 the static low part existed
#: only as LOA truncation and the model class was named for it.
TruncatedSpecAdder = StaticSpecAdder
