"""Behavioural models compiled from :class:`~repro.spec.ir.AdderSpec`.

:class:`SpecAdder` covers every truncation-free spec by riding the shared
:class:`~repro.adders.base.WindowedSpeculativeAdder` machinery — the
vectorised windowed sum, §3.3 detection flags, and the exact window-DP
analytics — so a heterogeneous layout needs zero family-specific code.
:class:`TruncatedSpecAdder` adds the LOA-style OR-reduced low part.

Both delegate ``build_netlist``/``fingerprint`` back to the spec, so the
behavioural, gate-level and analytic layers of one spec always agree on
identity and structure.
"""

from __future__ import annotations

from repro.adders.base import AdderModel, IntLike, WindowedSpeculativeAdder
from repro.spec.ir import AdderSpec
from repro.utils.bitvec import mask


class SpecAdder(WindowedSpeculativeAdder):
    """The behavioural model of a truncation-free :class:`AdderSpec`."""

    def __init__(self, spec: AdderSpec) -> None:
        if spec.truncation:
            raise ValueError(
                "SpecAdder models truncation-free specs; "
                "use TruncatedSpecAdder (or spec.to_model())"
            )
        self.spec = spec
        super().__init__(spec.width, spec.name, spec.to_windows())

    @property
    def is_exact(self) -> bool:
        return self.spec.is_exact

    def error_probability(self) -> float:
        """Exact window-DP error probability from the spec's terms."""
        ep = self.spec.to_error_terms().error_probability()
        assert ep is not None  # truncation-free by construction
        return ep

    def mean_error_distance(self) -> float:
        med = self.spec.to_error_terms().mean_error_distance()
        assert med is not None
        return med

    def max_error_distance(self) -> int:
        return self.spec.to_error_terms().max_error_distance()

    def build_netlist(self):
        return self.spec.to_netlist()

    def fingerprint(self) -> str:
        return self.spec.fingerprint()


class TruncatedSpecAdder(AdderModel):
    """Behavioural model of a spec with LOA-style truncation.

    The low ``t`` sum bits are ``a | b``; the first window receives
    ``a & b`` of bit ``t-1`` as carry-in (exactly the LOA rule of [12]).
    Later windows speculate on raw operand bits only — the approximated
    carry at the truncation boundary is invisible to them, matching the
    compiled hardware where predictors tap the operand inputs directly.

    Not a :class:`WindowedSpeculativeAdder`: the OR part falls outside the
    carry-speculation error model, so the exact EP/MED analytics (and the
    §3.3 detection flags) are deliberately not exposed.
    """

    def __init__(self, spec: AdderSpec) -> None:
        if not spec.truncation:
            raise ValueError("TruncatedSpecAdder needs a truncated spec")
        self.spec = spec
        self.truncation = spec.truncation
        super().__init__(spec.width, spec.name)
        self.windows = spec.to_windows()

    def _add_impl(self, a: IntLike, b: IntLike) -> IntLike:
        t = self.truncation
        result: IntLike = (a | b) & mask(t)
        carry_in = (a >> (t - 1)) & (b >> (t - 1)) & 1
        local: IntLike = 0
        for i, w in enumerate(self.windows):
            wmask = mask(w.length)
            local = ((a >> w.low) & wmask) + ((b >> w.low) & wmask)
            if i == 0:
                local = local + carry_in
            field = (local >> w.prediction_bits) & mask(w.result_bits)
            result = result | (field << w.result_low)
        carry_out = (local >> self.windows[-1].length) & 1
        return result | (carry_out << self.width)

    def max_error_distance(self) -> int:
        return self.spec.to_error_terms().max_error_distance()

    def build_netlist(self):
        return self.spec.to_netlist()

    def fingerprint(self) -> str:
        return self.spec.fingerprint()
