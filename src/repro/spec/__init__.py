"""The declarative adder IR and its compilers.

One frozen, JSON-round-trippable :class:`AdderSpec` describes an adder —
window geometry, per-window sub-adder architecture, carry-prediction
style, optional LOA truncation — and compiles into every layer:
``to_model()`` (behavioural), ``to_netlist()`` (gate level, via the one
generic window compiler), ``to_error_terms()`` (exact analytics) and
``fingerprint()`` (engine cache / registry identity).  See ``docs/spec.md``.
"""

from repro.spec.catalog import (
    SPEC_CATALOG,
    SpecFamily,
    aca1_spec,
    aca2_spec,
    catalog_spec,
    cesa_rect_spec,
    etaii_spec,
    etaiim_spec,
    exact_spec,
    gda_spec,
    gear_spec,
    hetero_spec,
    hoeraa_spec,
    loa_spec,
    loa_static_spec,
    spec_adder,
)
from repro.spec.ir import (
    ARCHS,
    KINDS,
    PREDS,
    RECTIFY_KINDS,
    SPEC_VERSION,
    STATIC_APPROX,
    SUPPORTED_SPEC_VERSIONS,
    AdderSpec,
    ErrorTerms,
    RectifySpec,
    WindowSpec,
)
from repro.spec.model import (
    RectifiedSpecAdder,
    SpecAdder,
    StaticSpecAdder,
    TruncatedSpecAdder,
)

__all__ = [
    "ARCHS",
    "KINDS",
    "PREDS",
    "RECTIFY_KINDS",
    "SPEC_VERSION",
    "STATIC_APPROX",
    "SUPPORTED_SPEC_VERSIONS",
    "AdderSpec",
    "ErrorTerms",
    "RectifySpec",
    "WindowSpec",
    "RectifiedSpecAdder",
    "SpecAdder",
    "StaticSpecAdder",
    "TruncatedSpecAdder",
    "SPEC_CATALOG",
    "SpecFamily",
    "aca1_spec",
    "aca2_spec",
    "catalog_spec",
    "cesa_rect_spec",
    "etaii_spec",
    "etaiim_spec",
    "exact_spec",
    "gda_spec",
    "gear_spec",
    "hetero_spec",
    "hoeraa_spec",
    "loa_spec",
    "loa_static_spec",
    "spec_adder",
]
