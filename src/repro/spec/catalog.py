"""Spec constructors for every adder family, and the shared catalog.

Each ``*_spec`` function maps a family's historical parameters onto the
declarative IR — the §3.1 coverage relations turned into code exactly
once.  :data:`SPEC_CATALOG` is the single enumeration the netlist builder
registry (:data:`repro.rtl.builders.NAMED_BUILDERS`), the conformance
registry (:mod:`repro.verify.registry`) and the CLI all derive their
family lists from, so the layers can no longer drift apart.

Structural fidelity matters as much as function: ETAII compiles to
separate carry generators (``gen_rca``), GDA to lookahead predictors
(``gen_cla``), GeAr/ACA to fused windows — the distinctions that produce
the paper's Table I/II area and delay orderings.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

from repro.spec.ir import AdderSpec, RectifySpec, WindowSpec
from repro.utils.validation import check_pos_int


def exact_spec(width: int, arch: str = "rca",
               name: Optional[str] = None) -> AdderSpec:
    """An exact adder: one window spanning the whole word."""
    check_pos_int("width", width)
    return AdderSpec(
        name or f"{arch}_{width}", width,
        (WindowSpec(0, width - 1, 0, width - 1, arch=arch),),
    )


def gear_spec(n: int, r: int, p: int, allow_partial: bool = False,
              arch: str = "rca", error_detect: bool = True,
              name: Optional[str] = None) -> AdderSpec:
    """GeAr(N, R, P) per §3.1 — fused windows, §3.3 ERR flags by default."""
    # Lazy: adder classes import this module, and repro.core's package
    # __init__ pulls the multiplier, which needs those classes.
    from repro.core.gear import GeArConfig

    cfg = GeArConfig(n, r, p, allow_partial=allow_partial)
    windows = tuple(
        WindowSpec(w.low, w.high, w.result_low, w.result_high, arch=arch)
        for w in cfg.windows()
    )
    return AdderSpec(name or f"gear_{n}_{r}_{p}", n, windows,
                     error_detect=error_detect and cfg.k > 1)


def aca1_spec(n: int, sub_adder_len: int,
              name: Optional[str] = None) -> AdderSpec:
    """ACA-I [8] == GeAr(N, 1, L-1): one-bit-shifted overlapping windows."""
    if sub_adder_len < 2:
        raise ValueError("ACA-I needs sub_adder_len >= 2")
    if sub_adder_len > n:
        raise ValueError(
            f"sub_adder_len {sub_adder_len} exceeds operand width {n}"
        )
    return gear_spec(n, 1, sub_adder_len - 1,
                     name=name or f"aca1_{n}_{sub_adder_len}")


def aca2_spec(n: int, sub_adder_len: int, allow_partial: bool = False,
              name: Optional[str] = None) -> AdderSpec:
    """ACA-II [10] == GeAr(N, L/2, L/2) — the windows *are* the hardware."""
    if sub_adder_len % 2 != 0:
        raise ValueError("ACA-II needs an even sub-adder length")
    if sub_adder_len > n:
        raise ValueError(
            f"sub_adder_len {sub_adder_len} exceeds operand width {n}"
        )
    half = sub_adder_len // 2
    return gear_spec(n, half, half, allow_partial=allow_partial,
                     name=name or f"aca2_{n}_{sub_adder_len}")


def etaii_spec(n: int, sub_adder_len: int, allow_partial: bool = False,
               name: Optional[str] = None) -> AdderSpec:
    """ETAII [9] in its native structure: sum units + carry generators.

    Functionally equal to ACA-II (§3.1) but declared the way Zhu et al.
    build it: non-overlapping L/2-bit sum-unit windows, each with a
    physically separate ripple carry generator (``gen_rca``) over the L/2
    bits below — the duplication that costs ETAII its extra LUTs in
    Table I.  With ``allow_partial``, widths not divisible by the segment
    size anchor a final length-L window at the top of the word, mirroring
    GeAr's partial mode bit-for-bit.
    """
    if sub_adder_len % 2 != 0:
        raise ValueError("ETAII needs an even sub-adder length")
    if sub_adder_len > n:
        raise ValueError(
            f"sub_adder_len {sub_adder_len} exceeds operand width {n}"
        )
    half = sub_adder_len // 2
    segments, rem = divmod(n, half)
    if rem and not allow_partial:
        raise ValueError(
            f"ETAII needs N divisible by the segment size {half}, got {n}"
        )
    windows: List[WindowSpec] = [WindowSpec(0, half - 1, 0, half - 1)]
    for seg in range(1, segments):
        lo = (seg - 1) * half
        windows.append(WindowSpec(lo, lo + sub_adder_len - 1, lo + half,
                                  lo + sub_adder_len - 1, pred="gen_rca"))
    if rem:
        result_low = segments * half
        windows.append(WindowSpec(n - sub_adder_len, n - 1, result_low,
                                  n - 1, pred="gen_rca"))
    return AdderSpec(name or f"etaii_{n}_{sub_adder_len}", n, tuple(windows))


def etaiim_spec(n: int, sub_adder_len: int, connected: int = 2,
                name: Optional[str] = None) -> AdderSpec:
    """ETAIIM [9]: ETAII with the top ``connected`` segments' carry chains
    linked into one accurate block (its carry-in still generated over the
    L/2 bits below)."""
    if sub_adder_len % 2 != 0:
        raise ValueError("ETAIIM needs an even sub-adder length")
    half = sub_adder_len // 2
    if n % half != 0:
        raise ValueError(
            f"width {n} must be a multiple of the segment size {half}"
        )
    segments = n // half
    if not 1 <= connected <= segments:
        raise ValueError(
            f"connected must be in [1, {segments}], got {connected}"
        )
    plain = segments - connected
    spec_name = name or f"etaiim_{n}_{sub_adder_len}_{connected}"
    if plain == 0:
        # Every carry chain linked: one exact ripple block.
        return AdderSpec(spec_name, n, (WindowSpec(0, n - 1, 0, n - 1),))
    windows: List[WindowSpec] = [WindowSpec(0, half - 1, 0, half - 1)]
    for seg in range(1, plain):
        lo = (seg - 1) * half
        windows.append(WindowSpec(lo, lo + sub_adder_len - 1, lo + half,
                                  lo + sub_adder_len - 1, pred="gen_rca"))
    result_low = plain * half
    windows.append(WindowSpec(result_low - half, n - 1, result_low, n - 1,
                              pred="gen_rca"))
    return AdderSpec(spec_name, n, tuple(windows))


def gda_spec(n: int, mb: int, mc: int, enforce_multiple: bool = True,
             name: Optional[str] = None) -> AdderSpec:
    """GDA [13], uniform approximate mode: M_B-bit ripple blocks, each
    carry-in predicted by a carry-*lookahead* unit (``gen_cla``) over the
    M_C bits below the boundary — the CLA that costs GDA its delay
    (§4.2)."""
    check_pos_int("n", n)
    check_pos_int("mb", mb)
    check_pos_int("mc", mc)
    if n % mb != 0:
        raise ValueError(f"GDA needs width divisible by M_B: {n} % {mb} != 0")
    if mc > n - mb:
        raise ValueError(f"M_C must be in [1, {n - mb}], got {mc}")
    if enforce_multiple and mc % mb != 0:
        raise ValueError(
            f"GDA's hierarchical CLA needs M_C to be a multiple of M_B "
            f"(got M_C={mc}, M_B={mb}); pass enforce_multiple=False to override"
        )
    windows: List[WindowSpec] = []
    for base in range(0, n, mb):
        lo = max(0, base - mc)
        pred = "fused" if base == 0 else "gen_cla"
        windows.append(WindowSpec(lo, base + mb - 1, base, base + mb - 1,
                                  pred=pred))
    return AdderSpec(name or f"gda_{n}_{mb}_{mc}", n, tuple(windows))


def loa_spec(n: int, approx_bits: int,
             name: Optional[str] = None) -> AdderSpec:
    """LOA [12]: OR gates for the low bits, exact ripple part above."""
    check_pos_int("n", n)
    if not 0 <= approx_bits < n:
        raise ValueError(f"approx_bits must be in [0, {n}), got {approx_bits}")
    spec_name = name or f"loa_{n}_{approx_bits}"
    window = WindowSpec(approx_bits, n - 1, approx_bits, n - 1)
    return AdderSpec(spec_name, n, (window,), truncation=approx_bits)


def loa_static_spec(n: int, approx_bits: int,
                    name: Optional[str] = None) -> AdderSpec:
    """LOA declared through the IR v2 static-window spelling.

    Behaviourally the twin of :func:`loa_spec` (same OR rule, same carry
    into the exact part), but the approximated low bits are a first-class
    ``static`` window instead of the legacy ``truncation`` field — the
    form every other fixed low-part rule (HOERAA, ...) uses.
    """
    check_pos_int("n", n)
    if not 1 <= approx_bits < n:
        raise ValueError(f"approx_bits must be in [1, {n}), got {approx_bits}")
    windows = (
        WindowSpec(0, approx_bits - 1, 0, approx_bits - 1,
                   kind="static", approx="or"),
        WindowSpec(approx_bits, n - 1, approx_bits, n - 1),
    )
    return AdderSpec(name or f"loa_static_{n}_{approx_bits}", n, windows)


def hoeraa_spec(n: int, approx_bits: int,
                name: Optional[str] = None) -> AdderSpec:
    """HOERAA (Balasubramanian & Maskell): OR low bits, half-adder top.

    The low ``approx_bits - 1`` sum bits are ``a | b``; the top static
    bit is the half-adder sum ``a ^ b`` whose carry ``a & b`` feeds the
    exact ripple part above — confining the static error to the bits
    strictly below the boundary (|error| < ``2**(approx_bits-1)``),
    where LOA's plain OR rule can also miss the boundary carry itself.
    """
    check_pos_int("n", n)
    if not 1 <= approx_bits < n:
        raise ValueError(f"approx_bits must be in [1, {n}), got {approx_bits}")
    windows = (
        WindowSpec(0, approx_bits - 1, 0, approx_bits - 1,
                   kind="static", approx="hoeraa"),
        WindowSpec(approx_bits, n - 1, approx_bits, n - 1),
    )
    return AdderSpec(name or f"hoeraa_{n}_{approx_bits}", n, windows)


def cesa_rect_spec(n: int, r: int = 2, p: int = 2,
                   name: Optional[str] = None) -> AdderSpec:
    """A carry-estimating speculative adder with partial rectification.

    GeAr(N, R, P) geometry with the §3.3 flags compiled in, plus an IR v2
    ``rectify`` stage that adds the flags of the *top half* of the
    speculative windows back into the sum (à la Bhattacharjya et al.,
    arXiv 2008.11591: spend the correction hardware where a missed carry
    costs the most).  The untouched low windows keep their error events,
    so the family still exercises the full analytic DP.
    """
    base = gear_spec(n, r, p, allow_partial=True, error_detect=True)
    k = len(base.windows)
    if k < 2:
        raise ValueError(
            f"cesa_rect needs a speculative window to rectify; "
            f"GeAr({n}, {r}, {p}) has only one window"
        )
    spec_count = k - 1
    enabled = tuple(range(k - (spec_count + 1) // 2, k))
    return replace(base, name=name or f"cesa_rect_{n}_{r}_{p}",
                   rectify=RectifySpec(kind="ripple", enabled=enabled))


#: Result-chunk cycle of the heterogeneous family: (result bits, sub-adder
#: architecture, prediction realisation, prediction depth).  Mixes every
#: arch and every prediction style the compiler supports, so one family
#: exercises the whole IR with zero family-specific code.
_HETERO_CHUNKS = (
    (2, "cla", "fused", 2),
    (3, "rca", "gen_rca", 2),
    (2, "ksa", "fused", 1),
    (3, "rca", "gen_cla", 2),
)


def hetero_spec(n: int, name: Optional[str] = None) -> AdderSpec:
    """A heterogeneous block-based adder à la Farahmand et al.
    (arXiv:2106.08800): per-window mixed sub-adder lengths, architectures
    and carry-prediction styles, expressed purely as data."""
    if n < 6:
        raise ValueError(f"the heterogeneous family needs width >= 6, got {n}")
    windows: List[WindowSpec] = [WindowSpec(0, 2, 0, 2, arch="ksa")]
    cursor = 3
    chunk = 0
    while cursor < n:
        result_bits, arch, pred, depth = _HETERO_CHUNKS[chunk % len(_HETERO_CHUNKS)]
        chunk += 1
        result_high = min(cursor + result_bits - 1, n - 1)
        p = min(depth, cursor)
        windows.append(WindowSpec(cursor - p, result_high, cursor,
                                  result_high, arch=arch, pred=pred))
        cursor = result_high + 1
    return AdderSpec(name or f"hetero_{n}", n, tuple(windows))


@dataclass(frozen=True)
class SpecFamily:
    """One catalog entry: a named, width-parameterised spec constructor."""

    key: str
    description: str
    spec: Callable[[int], AdderSpec]
    min_width: int = 2

    def __call__(self, width: int) -> AdderSpec:
        if width < self.min_width:
            raise ValueError(
                f"{self.key} needs width >= {self.min_width}, got {width}"
            )
        return self.spec(width)


def _catalog_entries() -> List[SpecFamily]:
    return [
        SpecFamily("rca", "exact ripple-carry baseline",
                   lambda w: exact_spec(w, "rca"), min_width=1),
        SpecFamily("cla", "exact carry-lookahead baseline",
                   lambda w: exact_spec(w, "cla"), min_width=1),
        SpecFamily("ksa", "exact Kogge-Stone parallel prefix",
                   lambda w: exact_spec(w, "ksa"), min_width=1),
        SpecFamily("gear_r1p3", "GeAr(N, 1, 3) — ACA-I coverage point",
                   lambda w: gear_spec(w, 1, 3, allow_partial=True),
                   min_width=5),
        SpecFamily("gear_r2p2", "GeAr(N, 2, 2) — ETAII/ACA-II point",
                   lambda w: gear_spec(w, 2, 2, allow_partial=True),
                   min_width=6),
        SpecFamily("gear_r2p4", "GeAr(N, 2, 4) — deeper prediction",
                   lambda w: gear_spec(w, 2, 4, allow_partial=True),
                   min_width=8),
        SpecFamily("cesa_rect", "GeAr(N, 2, 2) + rectified top windows",
                   lambda w: cesa_rect_spec(w, 2, 2), min_width=6),
        SpecFamily("aca1_l4", "ACA-I with L=4 sub-adders",
                   lambda w: aca1_spec(w, 4), min_width=5),
        SpecFamily("aca2_l4", "ACA-II with L=4 sub-adders",
                   lambda w: aca2_spec(w, 4), min_width=6),
        SpecFamily("etaii_l4", "ETAII with L=4 windows",
                   lambda w: etaii_spec(w, 4), min_width=6),
        SpecFamily("etaiim_l4c2", "ETAIIM, L=4, two merged top segments",
                   lambda w: etaiim_spec(w, 4, 2), min_width=6),
        SpecFamily("gda_b2c2", "GDA with M_B=2, M_C=2",
                   lambda w: gda_spec(w, 2, 2), min_width=4),
        SpecFamily("loa_half", "LOA, lower half approximated",
                   lambda w: loa_spec(w, w // 2), min_width=2),
        SpecFamily("loa_static", "LOA as an IR v2 static window",
                   lambda w: loa_static_spec(w, w // 2), min_width=2),
        SpecFamily("hoeraa", "HOERAA: OR low part, half-adder top bit",
                   lambda w: hoeraa_spec(w, w // 2), min_width=2),
        SpecFamily("hetero", "heterogeneous mixed-architecture windows",
                   hetero_spec, min_width=6),
    ]


def _build_catalog() -> Dict[str, SpecFamily]:
    catalog: Dict[str, SpecFamily] = {}
    for entry in _catalog_entries():
        if entry.key in catalog:  # pragma: no cover - defensive
            raise ValueError(f"duplicate catalog key {entry.key!r}")
        catalog[entry.key] = entry
    return catalog


#: The one shared family enumeration (key-ordered, read-only by convention).
SPEC_CATALOG: Dict[str, SpecFamily] = _build_catalog()


def catalog_spec(key: str, width: int) -> AdderSpec:
    """Resolve a catalog family to its spec at ``width``."""
    try:
        family = SPEC_CATALOG[key]
    except KeyError:
        raise ValueError(
            f"unknown spec family {key!r}; known: "
            f"{', '.join(sorted(SPEC_CATALOG))}"
        ) from None
    return family(width)


def spec_adder(key: str, width: int):
    """Build the behavioural model of a catalog family at ``width``."""
    return catalog_spec(key, width).to_model()
