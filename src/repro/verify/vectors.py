"""Stimulus generation for the differential layers.

Two regimes, chosen by the size of the joint operand space:

* **exhaustive** — every ``(a, b)`` pair when ``2·N <= max_exhaustive_bits``
  (the default cap of 20 bits means ~1M pairs, comfortably vectorised);
  a layer fed this set is *proven*, not sampled.
* **sampled** — directed corner vectors (carry-chain stressors, alternating
  patterns, window-boundary hits) plus seeded uniform pairs.

Both regimes return plain ``int64`` arrays so all four layers consume the
same stimulus verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.utils.bitvec import mask

#: Joint input bits at or below which the full space is enumerated.
MAX_EXHAUSTIVE_BITS = 20

#: Default random pair count for the sampled regime.
DEFAULT_RANDOM_VECTORS = 20_000


@dataclass(frozen=True)
class VectorSet:
    """A batch of operand pairs plus its provenance."""

    a: np.ndarray
    b: np.ndarray
    exhaustive: bool

    @property
    def count(self) -> int:
        return int(self.a.size)


def exhaustive_pairs(width: int) -> Tuple[np.ndarray, np.ndarray]:
    """All ``2^(2N)`` operand pairs of an N-bit adder."""
    values = np.arange(1 << width, dtype=np.int64)
    return np.repeat(values, 1 << width), np.tile(values, 1 << width)


def corner_operands(width: int) -> List[int]:
    """Directed single-operand corner values (0, extremes, bit patterns)."""
    top = mask(width)
    alt = sum(1 << i for i in range(0, width, 2))
    corners = {0, 1, top, top - 1, top >> 1, alt, top ^ alt}
    for i in range(width):
        corners.update({1 << i, (1 << i) - 1, top ^ (1 << i)})
    return sorted(corners)


def directed_pairs(width: int) -> Tuple[np.ndarray, np.ndarray]:
    """Carry-stressing operand pairs every speculative adder must survive.

    Covers the full cross product of the corner values — ``(2^i - 1, 1)``
    style pairs in particular fire the longest carry chains, which is where
    behavioural and gate-level models of windowed adders diverge first.
    """
    corners = np.array(corner_operands(width), dtype=np.int64)
    a = np.repeat(corners, corners.size)
    b = np.tile(corners, corners.size)
    return a, b


def sampled_pairs(width: int, random_vectors: int,
                  seed: int) -> Tuple[np.ndarray, np.ndarray]:
    """Directed corners followed by seeded uniform pairs."""
    a_dir, b_dir = directed_pairs(width)
    rng = np.random.default_rng(seed)
    a_rnd = rng.integers(0, 1 << width, size=random_vectors, dtype=np.int64)
    b_rnd = rng.integers(0, 1 << width, size=random_vectors, dtype=np.int64)
    return (np.concatenate([a_dir, a_rnd]), np.concatenate([b_dir, b_rnd]))


def operand_vectors(width: int,
                    max_exhaustive_bits: int = MAX_EXHAUSTIVE_BITS,
                    random_vectors: int = DEFAULT_RANDOM_VECTORS,
                    seed: int = 2015) -> VectorSet:
    """The canonical stimulus set for one adder width."""
    if 2 * width <= max_exhaustive_bits:
        a, b = exhaustive_pairs(width)
        return VectorSet(a=a, b=b, exhaustive=True)
    a, b = sampled_pairs(width, random_vectors, seed)
    return VectorSet(a=a, b=b, exhaustive=False)
