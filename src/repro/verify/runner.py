"""Conformance run orchestration.

:func:`verify_adder` runs the requested layers for one registry entry;
:func:`verify_registry` sweeps a selection (default: everything) and
returns one :class:`~repro.verify.report.ConformanceReport` per adder.

Parallelism and caching ride on :class:`repro.engine.Engine`: the stats
layer evaluates through the engine, so ``jobs``/``cache`` settings give
multi-process shard execution and warm-start reuse exactly as every other
evaluation in the library.  The stimulus set is shared across the
behavioural and vector layers of one adder, so each run simulates a given
input space once per layer, not once per sub-check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro import obs
from repro.engine import fingerprint_adder
from repro.verify.oracles import (
    ANALYTIC_EXHAUSTIVE_WIDTH,
    MAX_SCALAR_PROBES,
    STATS_EXHAUSTIVE_WIDTH,
    check_analytic,
    check_behavioural,
    check_compiled,
    check_stats,
    check_vector,
    check_verilog,
)
from repro.verify.registry import (
    DEFAULT_WIDTH,
    RegisteredAdder,
    select_entries,
)
from repro.verify.report import LAYERS, ConformanceReport, LayerResult
from repro.verify.vectors import (
    DEFAULT_RANDOM_VECTORS,
    MAX_EXHAUSTIVE_BITS,
    operand_vectors,
)


@dataclass(frozen=True)
class VerifyOptions:
    """Tunables of one conformance run (defaults match the CI smoke job)."""

    width: int = DEFAULT_WIDTH
    layers: Sequence[str] = LAYERS
    seed: int = 2015
    samples: int = 50_000
    random_vectors: int = DEFAULT_RANDOM_VECTORS
    max_exhaustive_bits: int = MAX_EXHAUSTIVE_BITS
    stats_exhaustive_cap: int = STATS_EXHAUSTIVE_WIDTH
    analytic_exhaustive_cap: int = ANALYTIC_EXHAUSTIVE_WIDTH
    max_scalar: int = MAX_SCALAR_PROBES
    backend: str = "sampling"

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"width must be >= 1, got {self.width}")
        unknown = [layer for layer in self.layers if layer not in LAYERS]
        if unknown:
            raise ValueError(
                f"unknown layers {unknown}; expected a subset of {list(LAYERS)}"
            )
        object.__setattr__(self, "layers", tuple(self.layers))


def verify_adder(entry: RegisteredAdder,
                 options: Optional[VerifyOptions] = None,
                 engine=None) -> ConformanceReport:
    """Run the selected layers for one registered adder family."""
    options = options or VerifyOptions()
    with obs.span("verify.adder"):
        model = entry(options.width)
        vectors = operand_vectors(
            options.width,
            max_exhaustive_bits=options.max_exhaustive_bits,
            random_vectors=options.random_vectors,
            seed=options.seed,
        )
        obs.count("verify.adders")
        obs.count("verify.vectors", vectors.count)
        results: List[LayerResult] = []
        for layer in options.layers:
            with obs.span(f"verify.layer.{layer}"):
                if layer == "behavioural":
                    results.append(check_behavioural(
                        model, vectors, build=entry,
                        min_width=entry.min_width))
                elif layer == "verilog":
                    results.append(check_verilog(
                        model, build=entry, min_width=entry.min_width,
                        random_vectors=options.random_vectors,
                        seed=options.seed))
                elif layer == "stats":
                    results.append(check_stats(
                        model, engine=engine,
                        exhaustive_width_cap=options.stats_exhaustive_cap,
                        samples=options.samples, seed=options.seed,
                        backend=options.backend))
                elif layer == "analytic":
                    results.append(check_analytic(
                        model, engine=engine,
                        exhaustive_width_cap=options.analytic_exhaustive_cap))
                elif layer == "compiled":
                    results.append(check_compiled(
                        model, vectors, build=entry,
                        min_width=entry.min_width))
                else:
                    results.append(check_vector(
                        model, vectors, build=entry,
                        max_scalar=options.max_scalar,
                        min_width=entry.min_width))
    return ConformanceReport(
        key=entry.key,
        adder_name=model.name,
        width=options.width,
        fingerprint=fingerprint_adder(model),
        layers=results,
    )


def verify_registry(adders: Optional[Iterable[str]] = None,
                    options: Optional[VerifyOptions] = None,
                    engine=None) -> List[ConformanceReport]:
    """Run the conformance harness over a registry selection.

    Args:
        adders: registry keys to verify (None = the full registry).
        options: run tunables; ``VerifyOptions()`` when omitted.
        engine: :class:`repro.engine.Engine` used by the stats layer
            (None = the process default — serial, uncached).

    Entries whose family is undefined at the requested width (e.g. ETAII
    at an odd width) are skipped entirely rather than failing the run.
    """
    options = options or VerifyOptions()
    reports: List[ConformanceReport] = []
    for entry in select_entries(list(adders) if adders is not None else None):
        if not entry.supports(options.width):
            continue
        reports.append(verify_adder(entry, options=options, engine=engine))
    return reports


def verify_payload(adders: Optional[Iterable[str]] = None,
                   options: Optional[VerifyOptions] = None,
                   engine=None) -> dict:
    """JSON-safe conformance summary — the service-side verify runner.

    The :mod:`repro.serve` daemon answers ``POST /verify`` with exactly
    this document, so a served verify and ``gear verify --json`` derive
    from the same reports.
    """
    options = options or VerifyOptions()
    reports = verify_registry(adders, options=options, engine=engine)
    return {
        "ok": all(report.ok for report in reports),
        "width": options.width,
        "adders": [report.key for report in reports],
        "reports": [report.to_json() for report in reports],
    }
