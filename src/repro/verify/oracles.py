"""The six differential layer checks.

Each oracle compares two independent descriptions of the same adder and
returns a :class:`~repro.verify.report.LayerResult`:

* :func:`check_behavioural` — behavioural ``add()`` (and, where both sides
  model it, the §3.3 ``ERR`` detection flags) against gate-level netlist
  simulation,
* :func:`check_verilog` — the netlist against its emitted-then-re-parsed
  Verilog via :mod:`repro.rtl.equivalence`,
* :func:`check_compiled` — interpreted netlist simulation against the
  compiled bit-sliced kernel (:mod:`repro.rtl.compile`), exact
  bit-equality on every output bus,
* :func:`check_stats` — measured error statistics (through
  :mod:`repro.engine`, so sharding/caching/parallelism apply) against the
  analytic ``error_probability()`` / ``mean_error_distance()`` /
  ``max_error_distance()`` models, with confidence bounds in the sampled
  regime,
* :func:`check_analytic` — the exact error-PMF backend
  (:mod:`repro.engine.analytic`) against exhaustively measured
  statistics: EP/MED/max-ED must agree to ``ANALYTIC_TOL`` at widths up
  to the exhaustive cap (an equality proof over every operand pair);
  above the cap the PMF invariants and the closed-form window models are
  checked instead,
* :func:`check_vector` — the scalar and NumPy-vectorised ``_add_impl``
  paths against each other (plus ``error_distance`` and
  ``detection_flags`` where exposed).

On any mismatch the failing pair is greedily shrunk
(:mod:`repro.verify.shrink`) before it is reported.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.adders.base import AdderModel, WindowedSpeculativeAdder
from repro.metrics.confidence import wilson_interval
from repro.rtl.compile import compile_netlist
from repro.rtl.equivalence import check_equivalence
from repro.rtl.netlist import Netlist
from repro.rtl.sim import simulate_bus
from repro.rtl.verilog import to_verilog
from repro.rtl.verilog_parser import parse_verilog
from repro.verify.report import Counterexample, LayerResult, LayerStatus
from repro.verify.shrink import shrink_counterexample
from repro.verify.vectors import VectorSet

#: Builds one family member at a width (raises ValueError when undefined).
AdderFactory = Callable[[int], AdderModel]

#: z for the sampled-regime consistency interval.  Deliberately far out in
#: the tail (~1e-5 two-sided): the oracle must flag real model divergence,
#: not sampling noise, across a whole registry of adders per run.
CONFIDENCE_Z = 4.5

#: Width cap for measuring stats exhaustively (2^{2N} pairs).
STATS_EXHAUSTIVE_WIDTH = 10

#: Width cap for proving the analytic PMF against exhaustive statistics.
ANALYTIC_EXHAUSTIVE_WIDTH = 12

#: Relative/absolute tolerance for exhaustive-vs-analytic float compares.
ANALYTIC_TOL = 1e-9

#: Scalar invocations per adder in the scalar-vs-vector layer.
MAX_SCALAR_PROBES = 4096


def _flags_word(model: AdderModel, a, b) -> Optional[object]:
    """Pack ``detection_flags`` (entries 1..k-1) into an ERR-bus word."""
    flags_fn = getattr(model, "detection_flags", None)
    if not callable(flags_fn):
        return None
    flags = flags_fn(a, b)
    word = None
    for i, flag in enumerate(flags[1:]):
        contribution = (np.asarray(flag, dtype=np.int64) << i
                        if isinstance(flag, np.ndarray) else int(flag) << i)
        word = contribution if word is None else word | contribution
    return word


def _first_mismatch(expected: np.ndarray, got: np.ndarray) -> Optional[int]:
    bad = np.nonzero(np.asarray(expected) != np.asarray(got))[0]
    return int(bad[0]) if bad.size else None


def check_behavioural(model: AdderModel, vectors: VectorSet,
                      build: Optional[AdderFactory] = None,
                      min_width: int = 1) -> LayerResult:
    """Layer (a): behavioural ``add()`` vs gate-level netlist simulation."""
    netlist = model.build_netlist()
    if netlist is None:
        return LayerResult("behavioural", LayerStatus.SKIP,
                           message="adder has no gate-level netlist model")

    stimulus = {"A": vectors.a, "B": vectors.b}
    expected = np.asarray(model.add(vectors.a, vectors.b))
    got = simulate_bus(netlist, stimulus, "S")
    index = _first_mismatch(expected, got)
    bus = "S"
    if index is None and "ERR" in netlist.output_buses:
        flags = _flags_word(model, vectors.a, vectors.b)
        if flags is not None:
            index = _first_mismatch(np.asarray(flags),
                                    simulate_bus(netlist, stimulus, "ERR"))
            bus = "ERR"
    if index is None:
        return LayerResult("behavioural", LayerStatus.PASS,
                           exhaustive=vectors.exhaustive,
                           vectors=vectors.count)

    a0, b0 = int(vectors.a[index]), int(vectors.b[index])
    cex = _shrink_behavioural(model, build, a0, b0, bus, min_width)
    return LayerResult(
        "behavioural", LayerStatus.FAIL,
        exhaustive=vectors.exhaustive, vectors=vectors.count,
        message=f"behavioural add() and netlist bus {bus!r} disagree",
        counterexample=cex,
        details={"bus": bus},
    )


def _behavioural_predicate(model: AdderModel,
                           netlist: Netlist, bus: str):
    def fails(a: int, b: int) -> bool:
        if bus == "ERR":
            expected = _flags_word(model, a, b)
            if expected is None:
                return False
        else:
            expected = model.add(a, b)
        got = int(simulate_bus(netlist, {"A": a, "B": b}, bus)[()])
        return int(expected) != got

    return fails


def _shrink_behavioural(model: AdderModel, build: Optional[AdderFactory],
                        a: int, b: int, bus: str,
                        min_width: int) -> Counterexample:
    def fails_at(width: int):
        if width == model.width:
            candidate = model
        elif build is None:
            return None
        else:
            candidate = build(width)
        netlist = candidate.build_netlist()
        if netlist is None or bus not in netlist.output_buses:
            return None
        return _behavioural_predicate(candidate, netlist, bus)

    return shrink_counterexample(a, b, model.width, fails_at,
                                 min_width=min_width,
                                 detail=f"netlist bus {bus}")


def check_compiled(model: AdderModel, vectors: VectorSet,
                   build: Optional[AdderFactory] = None,
                   min_width: int = 1) -> LayerResult:
    """Layer: interpreted netlist simulation vs the compiled bit-sliced kernel.

    Exact bit-equality on *every* output bus between the gate-by-gate
    interpreter (:func:`repro.rtl.sim.simulate_bus`) and the straight-line
    word-level kernel (:mod:`repro.rtl.compile`) over the shared vector
    set — exhaustive at the default verify width, so the kernel compiler
    is proven, not sampled, for every registry family.
    """
    netlist = model.build_netlist()
    if netlist is None:
        return LayerResult("compiled", LayerStatus.SKIP,
                           message="adder has no gate-level netlist model")
    kernel = compile_netlist(netlist)
    stimulus = {"A": vectors.a, "B": vectors.b}
    outputs = kernel.run(stimulus)
    index = None
    bad_bus = ""
    for bus in sorted(netlist.output_buses):
        index = _first_mismatch(simulate_bus(netlist, stimulus, bus),
                                outputs[bus])
        if index is not None:
            bad_bus = bus
            break
    if index is None:
        return LayerResult(
            "compiled", LayerStatus.PASS,
            exhaustive=vectors.exhaustive, vectors=vectors.count,
            details={"gates": kernel.gate_count, "levels": kernel.levels,
                     "buses": sorted(netlist.output_buses)},
        )

    a0, b0 = int(vectors.a[index]), int(vectors.b[index])
    cex = _shrink_compiled(model, build, a0, b0, bad_bus, min_width)
    return LayerResult(
        "compiled", LayerStatus.FAIL,
        exhaustive=vectors.exhaustive, vectors=vectors.count,
        message=("interpreted and compiled netlist simulation disagree "
                 f"on bus {bad_bus!r}"),
        counterexample=cex,
        details={"bus": bad_bus},
    )


def _compiled_predicate(netlist: Netlist, bus: str):
    kernel = compile_netlist(netlist)

    def fails(a: int, b: int) -> bool:
        stimulus = {"A": a, "B": b}
        return (int(simulate_bus(netlist, stimulus, bus)[()])
                != int(kernel.run(stimulus)[bus][()]))

    return fails


def _shrink_compiled(model: AdderModel, build: Optional[AdderFactory],
                     a: int, b: int, bus: str,
                     min_width: int) -> Counterexample:
    def fails_at(width: int):
        if width == model.width:
            candidate = model
        elif build is None:
            return None
        else:
            candidate = build(width)
        netlist = candidate.build_netlist()
        if netlist is None or bus not in netlist.output_buses:
            return None
        return _compiled_predicate(netlist, bus)

    return shrink_counterexample(a, b, model.width, fails_at,
                                 min_width=min_width,
                                 detail=f"compiled kernel bus {bus}")


def check_verilog(model: AdderModel, build: Optional[AdderFactory] = None,
                  min_width: int = 1, max_exhaustive: int = 22,
                  random_vectors: int = 50_000,
                  seed: int = 2015) -> LayerResult:
    """Layer (b): netlist vs its Verilog emit→parse round-trip."""
    netlist = model.build_netlist()
    if netlist is None:
        return LayerResult("verilog", LayerStatus.SKIP,
                           message="adder has no gate-level netlist model")
    parsed = parse_verilog(to_verilog(netlist))
    report = check_equivalence(netlist, parsed,
                               max_exhaustive=max_exhaustive,
                               random_vectors=random_vectors, seed=seed)
    if report.equivalent:
        return LayerResult("verilog", LayerStatus.PASS,
                           exhaustive=report.exhaustive,
                           vectors=report.vectors_checked)

    raw = report.counterexample or {}
    cex = _shrink_verilog(model, build, int(raw.get("A", 0)),
                          int(raw.get("B", 0)), min_width)
    return LayerResult(
        "verilog", LayerStatus.FAIL,
        exhaustive=report.exhaustive, vectors=report.vectors_checked,
        message=("emitted Verilog re-parses to a non-equivalent netlist "
                 f"(bus {report.mismatched_bus!r})"),
        counterexample=cex,
        details={"bus": report.mismatched_bus},
    )


def _roundtrip_predicate(netlist: Netlist, parsed: Netlist):
    shared = sorted(set(netlist.output_buses) & set(parsed.output_buses))

    def fails(a: int, b: int) -> bool:
        stimulus = {"A": a, "B": b}
        return any(
            int(simulate_bus(netlist, stimulus, bus)[()])
            != int(simulate_bus(parsed, stimulus, bus)[()])
            for bus in shared
        )

    return fails


def _shrink_verilog(model: AdderModel, build: Optional[AdderFactory],
                    a: int, b: int, min_width: int) -> Counterexample:
    def fails_at(width: int):
        if width == model.width:
            candidate = model
        elif build is None:
            return None
        else:
            candidate = build(width)
        netlist = candidate.build_netlist()
        if netlist is None:
            return None
        return _roundtrip_predicate(netlist, parse_verilog(to_verilog(netlist)))

    return shrink_counterexample(a, b, model.width, fails_at,
                                 min_width=min_width, detail="verilog round-trip")


def check_stats(model: AdderModel, engine=None,
                exhaustive_width_cap: int = STATS_EXHAUSTIVE_WIDTH,
                samples: int = 50_000, seed: int = 2015,
                z: float = CONFIDENCE_Z,
                backend: str = "sampling") -> LayerResult:
    """Layer (c): measured error statistics vs the analytic models.

    Exhaustive through the engine when the width permits (equalities are
    then exact up to float tolerance); Monte-Carlo with a wide Wilson
    consistency interval otherwise.
    """
    from repro.engine import EvalRequest, evaluate

    exhaustive = model.width <= exhaustive_width_cap
    if exhaustive:
        request = EvalRequest.exhaustive(model, backend=backend)
    else:
        request = EvalRequest.monte_carlo(model, samples, seed=seed,
                                          backend=backend)
    stats = evaluate(request, engine=engine).stats
    # An analytic-backend answer (samples == 0) is the infinite-sample
    # limit: compare exactly even when the width is past the cap.
    exact = exhaustive or stats.samples == 0

    details: dict = {"mode": request.mode, "samples": stats.samples,
                     "measured_error_rate": stats.error_rate}
    failures: List[str] = []

    analytic_ep = model.error_probability()
    if analytic_ep is None:
        details["error_probability"] = "skip (no analytic model)"
    else:
        details["analytic_error_rate"] = analytic_ep
        if exact:
            if abs(stats.error_rate - analytic_ep) > ANALYTIC_TOL:
                failures.append(
                    f"measured error rate {stats.error_rate:.10f} != "
                    f"analytic {analytic_ep:.10f}")
        else:
            errors = int(round(stats.error_rate * stats.samples))
            interval = wilson_interval(errors, stats.samples, z=z)
            details["wilson_interval"] = [interval.lower, interval.upper]
            if analytic_ep not in interval:
                failures.append(
                    f"analytic error rate {analytic_ep:.8f} outside the "
                    f"[{interval.lower:.8f}, {interval.upper:.8f}] "
                    f"consistency interval (z={z})")

    mean_fn = getattr(model, "mean_error_distance", None)
    if callable(mean_fn) and exact:
        analytic_med = float(mean_fn())
        details["measured_med"] = stats.med
        details["analytic_med"] = analytic_med
        scale = max(1.0, abs(analytic_med))
        if abs(stats.med - analytic_med) > ANALYTIC_TOL * scale:
            failures.append(
                f"exhaustive MED {stats.med:.10f} != analytic "
                f"{analytic_med:.10f}")

    bound_fn = getattr(model, "max_error_distance", None)
    if callable(bound_fn):
        bound = int(bound_fn())
        details["max_ed_observed"] = stats.max_ed_observed
        details["max_ed_bound"] = bound
        if stats.max_ed_observed > bound:
            failures.append(
                f"observed max ED {stats.max_ed_observed} exceeds the "
                f"analytic bound {bound}")
        elif (exhaustive and isinstance(model, WindowedSpeculativeAdder)
              and len(model.windows) == 2 and model.windows[1].low > 0
              and stats.max_ed_observed != bound):
            # k = 2: the bound is documented tight — demand attainment.
            failures.append(
                f"k=2 max ED bound {bound} not attained "
                f"(observed {stats.max_ed_observed})")

    if model.is_exact and stats.error_rate != 0.0:
        failures.append(
            f"exact adder measured a nonzero error rate {stats.error_rate}")

    if failures:
        return LayerResult("stats", LayerStatus.FAIL, exhaustive=exhaustive,
                           vectors=stats.samples,
                           message="; ".join(failures), details=details)
    return LayerResult("stats", LayerStatus.PASS, exhaustive=exhaustive,
                       vectors=stats.samples, details=details)


def check_analytic(model: AdderModel, engine=None,
                   exhaustive_width_cap: int = ANALYTIC_EXHAUSTIVE_WIDTH
                   ) -> LayerResult:
    """Layer: the exact error-PMF backend vs exhaustively measured stats.

    For block-based adders the :mod:`repro.engine.analytic` DP claims the
    *full* signed error distribution.  At widths up to
    ``exhaustive_width_cap`` this oracle enumerates every operand pair
    through the sampling engine and demands EP, MED and max-ED agree to
    ``ANALYTIC_TOL`` — an equality proof over ``4**N`` patterns.  Above
    the cap it checks the PMF invariants (non-negative, sums to one,
    support within the max-ED bound) and the closed-form window models
    where they exist.  Adders without a block-based layout (overridden
    ``_add_impl`` and no spec) are skipped.
    """
    import math

    from repro.engine import EvalRequest, evaluate
    from repro.engine.analytic import (
        AnalyticUnsupported,
        adder_error_pmf,
        analytic_layout,
    )

    if analytic_layout(model) is None:
        return LayerResult(
            "analytic", LayerStatus.SKIP,
            message="adder is not a pure block-based windowed model")
    try:
        pmf = adder_error_pmf(model)
    except AnalyticUnsupported as exc:
        return LayerResult("analytic", LayerStatus.SKIP, message=str(exc))

    failures: List[str] = []
    total = math.fsum(pmf.probabilities)
    details: dict = {
        "support": len(pmf.support),
        "total_mass": total,
        "analytic_error_rate": pmf.error_rate,
        "analytic_med": pmf.med,
        "analytic_max_ed": pmf.max_abs,
    }
    if abs(total - 1.0) > ANALYTIC_TOL:
        failures.append(f"PMF mass {total!r} != 1")
    if any(p <= 0.0 for p in pmf.probabilities):
        failures.append("PMF carries non-positive probabilities")

    bound_fn = getattr(model, "max_error_distance", None)
    if callable(bound_fn):
        bound = int(bound_fn())
        details["max_ed_bound"] = bound
        if pmf.max_abs > bound:
            failures.append(f"PMF support reaches {pmf.max_abs}, beyond "
                            f"the analytic bound {bound}")

    exhaustive = model.width <= exhaustive_width_cap
    if exhaustive:
        stats = evaluate(EvalRequest.exhaustive(model), engine=engine).stats
        details["measured_error_rate"] = stats.error_rate
        details["measured_med"] = stats.med
        details["measured_max_ed"] = stats.max_ed_observed
        vectors = stats.samples
        if abs(pmf.error_rate - stats.error_rate) > ANALYTIC_TOL:
            failures.append(
                f"PMF error rate {pmf.error_rate:.12f} != exhaustive "
                f"{stats.error_rate:.12f}")
        scale = max(1.0, abs(stats.med))
        if abs(pmf.med - stats.med) > ANALYTIC_TOL * scale:
            failures.append(
                f"PMF MED {pmf.med:.12f} != exhaustive {stats.med:.12f}")
        if pmf.max_abs != stats.max_ed_observed:
            failures.append(
                f"PMF max ED {pmf.max_abs} != exhaustive "
                f"{stats.max_ed_observed}")
    else:
        vectors = len(pmf.support)
        ep_fn = model.error_probability()
        if ep_fn is not None and abs(pmf.error_rate - ep_fn) > ANALYTIC_TOL:
            failures.append(
                f"PMF error rate {pmf.error_rate:.12f} != closed-form "
                f"{ep_fn:.12f}")
        mean_fn = getattr(model, "mean_error_distance", None)
        try:
            closed_med = mean_fn() if callable(mean_fn) else None
        except (ArithmeticError, RuntimeError, ValueError):
            closed_med = None  # closed form undefined at this geometry
        if closed_med is not None:
            scale = max(1.0, abs(float(closed_med)))
            if abs(pmf.med - float(closed_med)) > ANALYTIC_TOL * scale:
                failures.append(
                    f"PMF MED {pmf.med:.12f} != closed-form "
                    f"{float(closed_med):.12f}")

    if failures:
        return LayerResult("analytic", LayerStatus.FAIL,
                           exhaustive=exhaustive, vectors=vectors,
                           message="; ".join(failures), details=details)
    return LayerResult("analytic", LayerStatus.PASS, exhaustive=exhaustive,
                       vectors=vectors, details=details)


def check_vector(model: AdderModel, vectors: VectorSet,
                 build: Optional[AdderFactory] = None,
                 max_scalar: int = MAX_SCALAR_PROBES,
                 min_width: int = 1) -> LayerResult:
    """Layer (d): scalar vs vectorised code paths of the same model.

    The vectorised path runs over the full stimulus; the scalar path is
    probed on an evenly-strided subset (``max_scalar`` pairs) since each
    probe is a Python-level call.  ``error_distance`` and
    ``detection_flags`` ride along wherever the model exposes them.
    """
    a_vec = np.asarray(model.add(vectors.a, vectors.b))
    ed_vec = np.asarray(model.error_distance(vectors.a, vectors.b))
    flags_vec = _flags_word(model, vectors.a, vectors.b)

    if vectors.count <= max_scalar:
        indices = np.arange(vectors.count)
    else:
        indices = np.unique(
            np.linspace(0, vectors.count - 1, max_scalar).astype(np.int64))
    probed = int(indices.size)
    exhaustive = vectors.exhaustive and probed == vectors.count

    mismatch: Optional[int] = None
    what = ""
    for i in indices:
        a0, b0 = int(vectors.a[i]), int(vectors.b[i])
        if int(model.add(a0, b0)) != int(a_vec[i]):
            mismatch, what = int(i), "add"
            break
        if int(model.error_distance(a0, b0)) != int(ed_vec[i]):
            mismatch, what = int(i), "error_distance"
            break
        if flags_vec is not None:
            if int(_flags_word(model, a0, b0)) != int(np.asarray(flags_vec)[i]):
                mismatch, what = int(i), "detection_flags"
                break

    if mismatch is None:
        return LayerResult("vector", LayerStatus.PASS, exhaustive=exhaustive,
                           vectors=probed,
                           details={"vectorised_over": vectors.count})

    a0, b0 = int(vectors.a[mismatch]), int(vectors.b[mismatch])
    cex = _shrink_vector(model, build, a0, b0, what, min_width)
    return LayerResult(
        "vector", LayerStatus.FAIL, exhaustive=exhaustive, vectors=probed,
        message=f"scalar and vectorised {what} paths disagree",
        counterexample=cex, details={"method": what},
    )


def _vector_predicate(model: AdderModel, what: str):
    def fails(a: int, b: int) -> bool:
        aa = np.array([a], dtype=np.int64)
        bb = np.array([b], dtype=np.int64)
        if what == "error_distance":
            return int(model.error_distance(a, b)) != int(
                model.error_distance(aa, bb)[0])
        if what == "detection_flags":
            scalar = _flags_word(model, a, b)
            batched = _flags_word(model, aa, bb)
            if scalar is None or batched is None:
                return False
            return int(scalar) != int(np.asarray(batched)[0])
        return int(model.add(a, b)) != int(model.add(aa, bb)[0])

    return fails


def _shrink_vector(model: AdderModel, build: Optional[AdderFactory],
                   a: int, b: int, what: str,
                   min_width: int) -> Counterexample:
    def fails_at(width: int):
        if width == model.width:
            candidate = model
        elif build is None:
            return None
        else:
            candidate = build(width)
        return _vector_predicate(candidate, what)

    return shrink_counterexample(a, b, model.width, fails_at,
                                 min_width=min_width,
                                 detail=f"scalar vs vector {what}")
