"""Result types of the conformance harness.

A conformance run produces one :class:`ConformanceReport` per adder, each
holding one :class:`LayerResult` per verified layer.  The layer vocabulary
is fixed (:data:`LAYERS`):

* ``behavioural`` — behavioural ``add()`` vs gate-level netlist simulation,
* ``verilog``     — netlist vs its Verilog emit→parse round-trip,
* ``stats``       — measured error statistics vs the analytic models,
* ``analytic``    — the exact error-PMF backend vs exhaustive statistics
  (a proof at small widths; PMF invariants above the exhaustive cap),
* ``compiled``    — interpreted netlist simulation vs the compiled
  bit-sliced kernel, exact bit-equality on every output bus,
* ``vector``      — scalar vs vectorised ``_add_impl`` code paths.

A layer that does not apply to an adder (e.g. ``behavioural`` for a model
without a netlist) reports ``SKIP`` — skips never fail a run, but they are
visible in the report so silent coverage gaps cannot hide.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

#: Canonical layer names, in verification order.
LAYERS = ("behavioural", "verilog", "stats", "analytic", "compiled",
          "vector")


class LayerStatus(enum.Enum):
    """Outcome of one layer check."""

    PASS = "pass"
    FAIL = "fail"
    SKIP = "skip"

    @property
    def label(self) -> str:
        return self.value


@dataclass(frozen=True)
class Counterexample:
    """A (shrunk) operand pair witnessing a layer disagreement.

    ``width`` may be smaller than the verified adder's width when the
    shrinker reproduced the failure on a narrower family member.
    """

    a: int
    b: int
    width: int
    detail: str = ""

    def to_json(self) -> dict:
        payload = {"a": self.a, "b": self.b, "width": self.width}
        if self.detail:
            payload["detail"] = self.detail
        return payload

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"a={self.a}, b={self.b} (width {self.width})"


@dataclass(frozen=True)
class LayerResult:
    """Outcome of one differential check on one adder.

    Attributes:
        layer: one of :data:`LAYERS`.
        status: pass / fail / skip.
        exhaustive: True when every input pattern of the joint space was
            checked (the result is then a proof, not a sample).
        vectors: input patterns exercised.
        message: human-readable explanation (why it failed / was skipped).
        counterexample: shrunk witness for failures, when one exists.
        details: layer-specific scalar facts (measured vs analytic values,
            sub-checks performed, ...); must stay JSON-safe.
    """

    layer: str
    status: LayerStatus
    exhaustive: bool = False
    vectors: int = 0
    message: str = ""
    counterexample: Optional[Counterexample] = None
    details: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.layer not in LAYERS:
            raise ValueError(f"unknown layer {self.layer!r}; expected one of {LAYERS}")

    def to_json(self) -> dict:
        payload: Dict[str, object] = {
            "layer": self.layer,
            "status": self.status.label,
            "exhaustive": self.exhaustive,
            "vectors": self.vectors,
        }
        if self.message:
            payload["message"] = self.message
        if self.counterexample is not None:
            payload["counterexample"] = self.counterexample.to_json()
        if self.details:
            payload["details"] = dict(self.details)
        return payload


@dataclass(frozen=True)
class ConformanceReport:
    """All layer results for one registered adder."""

    key: str
    adder_name: str
    width: int
    fingerprint: str
    layers: List[LayerResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no layer failed (skips do not fail a report)."""
        return all(r.status is not LayerStatus.FAIL for r in self.layers)

    @property
    def failed_layers(self) -> List[LayerResult]:
        return [r for r in self.layers if r.status is LayerStatus.FAIL]

    def layer(self, name: str) -> LayerResult:
        for result in self.layers:
            if result.layer == name:
                return result
        raise KeyError(f"report for {self.key!r} has no layer {name!r}")

    def to_json(self) -> dict:
        return {
            "adder": self.key,
            "name": self.adder_name,
            "width": self.width,
            "fingerprint": self.fingerprint,
            "ok": self.ok,
            "layers": [r.to_json() for r in self.layers],
        }


def summarize(reports: Sequence[ConformanceReport]) -> str:
    """Text table over a batch of reports (the CLI's default rendering)."""
    from repro.analysis.tables import format_table

    rows = []
    for report in reports:
        cells = [report.key, report.width]
        for layer in LAYERS:
            try:
                result = report.layer(layer)
            except KeyError:
                cells.append("-")
                continue
            mark = {LayerStatus.PASS: "ok", LayerStatus.FAIL: "FAIL",
                    LayerStatus.SKIP: "skip"}[result.status]
            if result.status is LayerStatus.PASS and result.exhaustive:
                mark = "ok*"
            cells.append(mark)
        cells.append("ok" if report.ok else "FAIL")
        rows.append(tuple(cells))
    table = format_table(
        ["adder", "N", *LAYERS, "verdict"], rows,
        title="cross-layer conformance (* = exhaustive proof)",
    )
    failures = [r for r in reports if not r.ok]
    if not failures:
        return table
    lines = [table, ""]
    for report in failures:
        for result in report.failed_layers:
            line = f"FAIL {report.key} [{result.layer}]: {result.message}"
            if result.counterexample is not None:
                line += f" — counterexample {result.counterexample}"
            lines.append(line)
    return "\n".join(lines)
