"""The conformance model registry: every adder the harness verifies.

Each entry names a *configuration family* — a factory that builds the
adder at any requested operand width.  Families (rather than fixed
instances) are what make counterexample shrinking possible: when a layer
disagrees at width N, the shrinker rebuilds the same family at smaller
widths to find the narrowest member that still exhibits the divergence.

Spec-expressible families are not listed here by hand: the registry
enumerates :data:`repro.spec.catalog.SPEC_CATALOG` — the same enumeration
the netlist builder registry derives its named builders from — and builds
each family's behavioural model with ``spec.to_model()``.  Only adders
the IR cannot express (mux-based carry-select/skip, ETAI's bit-dropping
low half) are registered as bespoke classes.  That makes naming drift
between ``build_named`` and this registry structurally impossible.

Widths at which a family is undefined (ETAII needs an even width, GeAr
needs ``L <= N``, ...) simply raise :class:`ValueError` from the factory;
callers probe with :meth:`RegisteredAdder.supports`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.adders import (
    AdderModel,
    CarrySelectAdder,
    CarrySkipAdder,
    ErrorTolerantAdderI,
)
from repro.spec.catalog import SPEC_CATALOG, SpecFamily

#: Default operand width for registry-wide conformance runs.  Small enough
#: that the behavioural-vs-netlist layer is an exhaustive proof (2^16
#: joint patterns per adder), wide enough that every family has k >= 2
#: speculative structure where it matters.
DEFAULT_WIDTH = 8


@dataclass(frozen=True)
class RegisteredAdder:
    """One conformance target: a named, width-parameterised adder family.

    ``kind`` is the family's stage tag for CLI listings — the spec's
    :meth:`~repro.spec.ir.AdderSpec.stage_tag` for catalog families
    (``exact``/``windowed``/``truncated``/``static:<approx>`` with
    ``+err``/``+rect`` suffixes), ``bespoke`` for hand-written models
    the IR cannot express.
    """

    key: str
    description: str
    build: Callable[[int], AdderModel]
    min_width: int = 2
    kind: str = "bespoke"

    def __call__(self, width: int) -> AdderModel:
        if width < self.min_width:
            raise ValueError(
                f"{self.key} needs width >= {self.min_width}, got {width}"
            )
        return self.build(width)

    def supports(self, width: int) -> bool:
        """Can this family be instantiated at ``width``?"""
        try:
            self(width)
        except (ValueError, TypeError):
            return False
        return True


def _from_spec_family(family: SpecFamily) -> RegisteredAdder:
    return RegisteredAdder(
        family.key,
        family.description,
        lambda w, _f=family: _f(w).to_model(),
        min_width=family.min_width,
        kind=family(family.min_width).stage_tag(),
    )


#: Families the spec IR cannot express, keyed by the catalog key they
#: should be listed after (keeping the historical registry ordering).
_EXTRA_ENTRIES = {
    "ksa": [
        RegisteredAdder("csla", "exact carry-select, 4-bit blocks",
                        lambda w: CarrySelectAdder(w, 4), min_width=1),
        RegisteredAdder("cska", "exact carry-skip, 4-bit blocks",
                        lambda w: CarrySkipAdder(w, 4), min_width=1),
    ],
    "aca2_l4": [
        RegisteredAdder("etai_half", "ETAI, lower half inaccurate",
                        lambda w: ErrorTolerantAdderI(w, w // 2), min_width=2),
    ],
}


def _registry_entries() -> List[RegisteredAdder]:
    entries: List[RegisteredAdder] = []
    for key, family in SPEC_CATALOG.items():
        entries.append(_from_spec_family(family))
        entries.extend(_EXTRA_ENTRIES.get(key, ()))
    return entries


def default_registry() -> Dict[str, RegisteredAdder]:
    """Key-ordered registry of every conformance target."""
    registry: Dict[str, RegisteredAdder] = {}
    for entry in _registry_entries():
        if entry.key in registry:  # pragma: no cover - defensive
            raise ValueError(f"duplicate registry key {entry.key!r}")
        registry[entry.key] = entry
    return registry


def registry_adder(key: str, width: int = DEFAULT_WIDTH) -> AdderModel:
    """Build one registered adder by key (CLI / test convenience)."""
    registry = default_registry()
    try:
        entry = registry[key]
    except KeyError:
        raise ValueError(
            f"unknown adder {key!r}; known: {', '.join(sorted(registry))}"
        ) from None
    return entry(width)


def select_entries(adders: Optional[List[str]] = None) -> List[RegisteredAdder]:
    """Resolve a list of registry keys (None = everything) to entries."""
    registry = default_registry()
    if not adders:
        return list(registry.values())
    selected = []
    for key in adders:
        if key not in registry:
            raise ValueError(
                f"unknown adder {key!r}; known: {', '.join(sorted(registry))}"
            )
        selected.append(registry[key])
    return selected
