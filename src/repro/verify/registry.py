"""The conformance model registry: every adder the harness verifies.

Each entry names a *configuration family* — a factory that builds the
adder at any requested operand width.  Families (rather than fixed
instances) are what make counterexample shrinking possible: when a layer
disagrees at width N, the shrinker rebuilds the same family at smaller
widths to find the narrowest member that still exhibits the divergence.

Widths at which a family is undefined (ETAII needs an even width, GeAr
needs ``L <= N``, ...) simply raise :class:`ValueError` from the factory;
callers probe with :meth:`RegisteredAdder.supports`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.adders import (
    AccuracyConfigurableAdder,
    AdderModel,
    AlmostCorrectAdder,
    CarryLookaheadAdder,
    CarrySelectAdder,
    CarrySkipAdder,
    ErrorTolerantAdderI,
    ErrorTolerantAdderII,
    ErrorTolerantAdderIIM,
    GracefullyDegradingAdder,
    KoggeStoneAdder,
    LowerPartOrAdder,
    RippleCarryAdder,
)
from repro.core.gear import GeArAdder, GeArConfig

#: Default operand width for registry-wide conformance runs.  Small enough
#: that the behavioural-vs-netlist layer is an exhaustive proof (2^16
#: joint patterns per adder), wide enough that every family has k >= 2
#: speculative structure where it matters.
DEFAULT_WIDTH = 8


@dataclass(frozen=True)
class RegisteredAdder:
    """One conformance target: a named, width-parameterised adder family."""

    key: str
    description: str
    build: Callable[[int], AdderModel]
    min_width: int = 2

    def __call__(self, width: int) -> AdderModel:
        if width < self.min_width:
            raise ValueError(
                f"{self.key} needs width >= {self.min_width}, got {width}"
            )
        return self.build(width)

    def supports(self, width: int) -> bool:
        """Can this family be instantiated at ``width``?"""
        try:
            self(width)
        except (ValueError, TypeError):
            return False
        return True


def _gear(r: int, p: int) -> Callable[[int], AdderModel]:
    def build(width: int) -> AdderModel:
        strict = (width - r - p) % r == 0
        return GeArAdder(GeArConfig(width, r, p, allow_partial=not strict))

    return build


def _registry_entries() -> List[RegisteredAdder]:
    return [
        RegisteredAdder("rca", "exact ripple-carry baseline",
                        lambda w: RippleCarryAdder(w), min_width=1),
        RegisteredAdder("cla", "exact carry-lookahead baseline",
                        lambda w: CarryLookaheadAdder(w), min_width=1),
        RegisteredAdder("ksa", "exact Kogge-Stone parallel prefix",
                        lambda w: KoggeStoneAdder(w), min_width=1),
        RegisteredAdder("csla", "exact carry-select, 4-bit blocks",
                        lambda w: CarrySelectAdder(w, 4), min_width=1),
        RegisteredAdder("cska", "exact carry-skip, 4-bit blocks",
                        lambda w: CarrySkipAdder(w, 4), min_width=1),
        RegisteredAdder("gear_r1p3", "GeAr(N, 1, 3) — ACA-I coverage point",
                        _gear(1, 3), min_width=5),
        RegisteredAdder("gear_r2p2", "GeAr(N, 2, 2) — ETAII/ACA-II point",
                        _gear(2, 2), min_width=6),
        RegisteredAdder("gear_r2p4", "GeAr(N, 2, 4) — deeper prediction",
                        _gear(2, 4), min_width=8),
        RegisteredAdder("aca1_l4", "ACA-I with L=4 sub-adders",
                        lambda w: AlmostCorrectAdder(w, 4), min_width=5),
        RegisteredAdder("aca2_l4", "ACA-II with L=4 sub-adders",
                        lambda w: AccuracyConfigurableAdder(w, 4), min_width=6),
        RegisteredAdder("etai_half", "ETAI, lower half inaccurate",
                        lambda w: ErrorTolerantAdderI(w, w // 2), min_width=2),
        RegisteredAdder("etaii_l4", "ETAII with L=4 windows",
                        lambda w: ErrorTolerantAdderII(w, 4), min_width=6),
        RegisteredAdder("etaiim_l4c2", "ETAIIM, L=4, two merged top segments",
                        lambda w: ErrorTolerantAdderIIM(w, 4, 2), min_width=6),
        RegisteredAdder("gda_b2c2", "GDA with M_B=2, M_C=2",
                        lambda w: GracefullyDegradingAdder(w, 2, 2), min_width=4),
        RegisteredAdder("loa_half", "LOA, lower half approximated",
                        lambda w: LowerPartOrAdder(w, w // 2), min_width=2),
    ]


def default_registry() -> Dict[str, RegisteredAdder]:
    """Key-ordered registry of every conformance target."""
    registry: Dict[str, RegisteredAdder] = {}
    for entry in _registry_entries():
        if entry.key in registry:  # pragma: no cover - defensive
            raise ValueError(f"duplicate registry key {entry.key!r}")
        registry[entry.key] = entry
    return registry


def registry_adder(key: str, width: int = DEFAULT_WIDTH) -> AdderModel:
    """Build one registered adder by key (CLI / test convenience)."""
    registry = default_registry()
    try:
        entry = registry[key]
    except KeyError:
        raise ValueError(
            f"unknown adder {key!r}; known: {', '.join(sorted(registry))}"
        ) from None
    return entry(width)


def select_entries(adders: Optional[List[str]] = None) -> List[RegisteredAdder]:
    """Resolve a list of registry keys (None = everything) to entries."""
    registry = default_registry()
    if not adders:
        return list(registry.values())
    selected = []
    for key in adders:
        if key not in registry:
            raise ValueError(
                f"unknown adder {key!r}; known: {', '.join(sorted(registry))}"
            )
        selected.append(registry[key])
    return selected
