"""Greedy counterexample shrinking.

When a layer finds a disagreement, the raw witness is usually a noisy
random pair at full width.  The shrinker reduces it along two axes, in
order:

1. **width** — rebuild the same adder family at every narrower width
   (narrowest first) and re-run the check; the first width that still
   fails wins.  Layers pass a ``find_failure(width)`` callback so each
   layer keeps its own notion of "check" (netlist simulation, round-trip
   equivalence, ...).
2. **operands** — greedily minimise ``(a, b)`` under a per-pair failure
   predicate: try clearing each set bit (MSB first) and halving each
   value, restarting whenever a reduction sticks, until a fixpoint.

The result is deterministic for a given predicate and the minimisation is
local (greedy), which is exactly what debugging wants: tiny witnesses,
cheaply.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro import obs
from repro.verify.report import Counterexample

#: Per-pair failure predicate: True when (a, b) still exhibits the bug.
PairPredicate = Callable[[int, int], bool]

#: Width-level probe: a failing pair at that width, or None.
WidthProbe = Callable[[int], Optional[Tuple[int, int]]]


def shrink_operands(fails: PairPredicate, a: int, b: int,
                    max_steps: int = 10_000) -> Tuple[int, int]:
    """Greedily minimise a failing operand pair.

    ``fails(a, b)`` must be True for the input pair; the returned pair
    still satisfies it.  Candidate reductions, tried in order until none
    applies: clear a set bit of ``a`` (MSB first), clear a set bit of
    ``b``, halve ``a``, halve ``b``.  Every accepted reduction restarts
    the scan, so the fixpoint is 1-minimal under these moves.
    """
    if not fails(a, b):
        raise ValueError("shrink_operands needs a failing pair to start from")
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        for which in (0, 1):
            value = a if which == 0 else b
            candidates = [value & ~(1 << i)
                          for i in reversed(range(value.bit_length()))]
            candidates.append(value >> 1)
            for candidate in candidates:
                if candidate == value:
                    continue
                na, nb = (candidate, b) if which == 0 else (a, candidate)
                steps += 1
                if fails(na, nb):
                    a, b = na, nb
                    improved = True
                    break
            if improved:
                break
    obs.count("verify.shrink.runs")
    obs.count("verify.shrink.steps", steps)
    return a, b


def shrink_width(find_failure: WidthProbe, width: int,
                 min_width: int = 1) -> Tuple[int, Optional[Tuple[int, int]]]:
    """Narrowest width (>= ``min_width``) at which the check still fails.

    Probes narrow-to-wide and returns ``(width, pair)`` for the first
    failing width; falls back to the original width with no pair when no
    narrower member reproduces (the caller then shrinks at full width).
    """
    for candidate in range(min_width, width):
        try:
            pair = find_failure(candidate)
        except (ValueError, TypeError):
            continue  # family undefined at this width
        if pair is not None:
            return candidate, pair
    return width, None


def shrink_counterexample(
    a: int,
    b: int,
    width: int,
    fails_at: Callable[[int], Optional[PairPredicate]],
    min_width: int = 1,
    detail: str = "",
) -> Counterexample:
    """Full two-axis shrink to a :class:`Counterexample`.

    Args:
        a, b: the original failing pair at ``width``.
        width: width the failure was observed at.
        fails_at: maps a width to a per-pair predicate for that width, or
            None when the family cannot be built there.  The predicate for
            the original width must hold for ``(a, b)``.
        min_width: smallest width worth probing.
        detail: free-form annotation copied into the result.
    """

    def probe(candidate: int) -> Optional[Tuple[int, int]]:
        predicate = fails_at(candidate)
        if predicate is None:
            return None
        limit = (1 << candidate) - 1
        # Re-check the original pair masked into range first (cheap and
        # often still failing), then sweep the small space outright when
        # the width is tiny.
        ca, cb = a & limit, b & limit
        if predicate(ca, cb):
            return ca, cb
        if candidate <= 6:
            for xa in range(limit + 1):
                for xb in range(limit + 1):
                    if predicate(xa, xb):
                        return xa, xb
        return None

    best_width, pair = shrink_width(probe, width, min_width=min_width)
    if pair is None:
        best_width, pair = width, (a, b)
    predicate = fails_at(best_width)
    if predicate is None:  # pragma: no cover - probe guarantees buildable
        return Counterexample(a=pair[0], b=pair[1], width=best_width,
                              detail=detail)
    sa, sb = shrink_operands(predicate, pair[0], pair[1])
    return Counterexample(a=sa, b=sb, width=best_width, detail=detail)
