"""Cross-layer conformance harness (``gear verify``).

The repo models every adder at six layers — behavioural Python,
gate-level netlist, emitted/re-parsed Verilog, analytic error models,
the exact error-PMF backend and the compiled bit-sliced kernel.
This package differentially verifies that all layers agree for every
adder in the conformance registry, with exhaustive proofs where the input
space permits and seeded sampling plus greedy counterexample shrinking
where it does not.  See ``docs/verify.md``.
"""

from repro.verify.oracles import (
    check_analytic,
    check_behavioural,
    check_compiled,
    check_stats,
    check_vector,
    check_verilog,
)
from repro.verify.registry import (
    DEFAULT_WIDTH,
    RegisteredAdder,
    default_registry,
    registry_adder,
    select_entries,
)
from repro.verify.report import (
    LAYERS,
    ConformanceReport,
    Counterexample,
    LayerResult,
    LayerStatus,
    summarize,
)
from repro.verify.runner import (
    VerifyOptions,
    verify_adder,
    verify_payload,
    verify_registry,
)
from repro.verify.shrink import shrink_counterexample, shrink_operands, shrink_width
from repro.verify.vectors import VectorSet, operand_vectors

__all__ = [
    "LAYERS",
    "DEFAULT_WIDTH",
    "ConformanceReport",
    "Counterexample",
    "LayerResult",
    "LayerStatus",
    "RegisteredAdder",
    "VectorSet",
    "VerifyOptions",
    "check_analytic",
    "check_behavioural",
    "check_compiled",
    "check_stats",
    "check_vector",
    "check_verilog",
    "default_registry",
    "operand_vectors",
    "registry_adder",
    "select_entries",
    "shrink_counterexample",
    "shrink_operands",
    "shrink_width",
    "summarize",
    "verify_adder",
    "verify_payload",
    "verify_registry",
]
