"""Reference values transcribed from the paper's tables.

These constants let benches and tests print paper-vs-measured comparisons
without re-reading the PDF.  Delay/area values are Xilinx ISE results on a
Virtex-6 and are compared by *ordering and ratio*, not absolutely; error
probabilities are exact model outputs and are matched tightly.

Known paper-internal inconsistency: Table III lists k = 5 for the
(48, 8, 16) configuration, but Eq. 1 gives k = (48-24)/8 + 1 = 4.  The
*analytic value* the paper prints (0.0023 %) is the Eq. 5-7 result for the
correct k = 4 (we compute 0.00228 %), so only the k column is a typo; the
simulation column (0.003 %) is within sampling noise of the model.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Sample count used by the paper for Table III's simulation column (§4.4).
PAPER_SAMPLE_COUNT = 10_000

# --------------------------------------------------------------------- #
# Table III — analytic vs simulated error probability (percent).
# Key: (N, R, P).  ``paper_k`` is the k column as printed; ``k`` is Eq. 1.
# --------------------------------------------------------------------- #
TABLE3_ERROR_PROBABILITY: Dict[Tuple[int, int, int], Dict[str, float]] = {
    (12, 4, 4): {"k": 2, "paper_k": 2, "analytic_pct": 2.9297,
                 "simulated_pct": 2.9480},
    (16, 4, 8): {"k": 2, "paper_k": 2, "analytic_pct": 0.1831,
                 "simulated_pct": 0.1830},
    (32, 8, 8): {"k": 3, "paper_k": 3, "analytic_pct": 0.3891,
                 "simulated_pct": 0.3830},
    (48, 8, 16): {"k": 4, "paper_k": 5, "analytic_pct": 0.0023,
                  "simulated_pct": 0.003},
}

# --------------------------------------------------------------------- #
# Table IV — GeAr on the Image Integral app (N=20, L=10, full-HD frame).
# Key: (R, P).  Delay in ns, probability as a fraction, times in seconds.
# --------------------------------------------------------------------- #
TABLE4_GEAR: Dict[Tuple[int, int], Dict[str, float]] = {
    (1, 9): {"delay_ns": 1.256, "p_err": 4.882813e-3,
             "approx_s": 2.604442e-3, "worst_s": 2.731612e-3,
             "average_s": 2.674385e-3, "best_s": 2.617159e-3},
    (2, 8): {"delay_ns": 1.233, "p_err": 7.324219e-3,
             "approx_s": 2.556749e-3, "worst_s": 2.650380e-3,
             "average_s": 2.612927e-3, "best_s": 2.575475e-3},
    (3, 7): {"delay_ns": 1.229, "p_err": 13.661861e-3,
             "approx_s": 2.548454e-3, "worst_s": 2.687721e-3,
             "average_s": 2.635496e-3, "best_s": 2.583271e-3},
    (4, 6): {"delay_ns": 1.224, "p_err": 21.929741e-3,
             "approx_s": 2.538086e-3, "worst_s": 2.705065e-3,
             "average_s": 2.649406e-3, "best_s": 2.593746e-3},
    (5, 5): {"delay_ns": 1.219, "p_err": 30.273438e-3,
             "approx_s": 2.527718e-3, "worst_s": 2.680764e-3,
             "average_s": 2.642502e-3, "best_s": 2.604241e-3},
    (6, 4): {"delay_ns": 1.219, "p_err": 60.80246e-3,
             "approx_s": 2.527718e-3, "worst_s": 2.835101e-3,
             "average_s": 2.758256e-3, "best_s": 2.681410e-3},
    (7, 3): {"delay_ns": 1.219, "p_err": 120.389938e-3,
             "approx_s": 2.527718e-3, "worst_s": 3.136342e-3,
             "average_s": 2.984186e-3, "best_s": 2.832030e-3},
}

TABLE4_OTHERS: Dict[str, Dict[str, float]] = {
    # All with 10-bit sub-adders on N=20 except RCA (plain 16-bit... the
    # paper lists "16" for RCA's sub-adder length; its delay column is the
    # quantity used downstream).
    "ACA-I": {"delay_ns": 1.256, "p_err": 4.882813e-3, "k": 11},
    "ACA-II": {"delay_ns": 1.219, "p_err": 30.273438e-3, "k": 3},
    "ETAII": {"delay_ns": 1.296, "p_err": 30.273438e-3, "k": 3},
    "GDA(1,9)": {"delay_ns": 3.069, "p_err": 4.882813e-3, "k": 11},
    "GDA(2,8)": {"delay_ns": 2.344, "p_err": 7.324219e-3, "k": 6},
    "GDA(5,5)": {"delay_ns": 2.969, "p_err": 30.273438e-3, "k": 3},
    "RCA": {"delay_ns": 1.365, "p_err": 0.0, "k": 1},
}

# --------------------------------------------------------------------- #
# Table I — 16-bit Image Integral comparison (selected columns).
# Delay in ns (converted from the paper's seconds), area in LUTs.
# --------------------------------------------------------------------- #
TABLE1: Dict[str, Dict[str, float]] = {
    "RCA": {"delay_ns": 1.31, "luts": 16, "ned": 0.0, "med": 0.0},
    "ACA-I": {"delay_ns": 1.30, "luts": 30, "ned": 0.2868, "med": 4577},
    "ETAII": {"delay_ns": 1.29, "luts": 28, "ned": 0.2233, "med": 3496},
    "ACA-II": {"delay_ns": 1.19, "luts": 24, "ned": 0.2233, "med": 3496},
    "GDA(4,4)": {"delay_ns": 2.24, "luts": 35, "ned": 0.2233, "med": 3496},
    "GDA(4,8)": {"delay_ns": 3.19, "luts": 37, "ned": 0.1711, "med": 506.14},
    "GeAr(4,2)": {"delay_ns": 1.16, "luts": 24, "ned": 0.2941238, "med": 4791.665},
    "GeAr(4,4)": {"delay_ns": 1.19, "luts": 24, "ned": 0.2233, "med": 3496},
    "GeAr(4,6)": {"delay_ns": 1.22, "luts": 30, "ned": 0.0836727, "med": 764.14808},
    "GeAr(4,8)": {"delay_ns": 1.25, "luts": 24, "ned": 0.1711, "med": 506.14},
}

# --------------------------------------------------------------------- #
# Table II — 8-bit GDA vs GeAr (path delay ns, LUTs, NED).
# Keys: (M_B, M_C) for GDA, (R, P) for GeAr.
# --------------------------------------------------------------------- #
TABLE2_GDA: Dict[Tuple[int, int], Dict[str, float]] = {
    (1, 1): {"delay_ns": 0.829, "luts": 9, "ned": 0.1875},
    (1, 2): {"delay_ns": 1.36, "luts": 16, "ned": 0.1076},
    (1, 3): {"delay_ns": 1.83, "luts": 21, "ned": 0.0585},
    (1, 4): {"delay_ns": 1.95, "luts": 20, "ned": 0.0273},
    (1, 5): {"delay_ns": 2.21, "luts": 25, "ned": 0.0117},
    (1, 6): {"delay_ns": 2.25, "luts": 18, "ned": 0.0039},
    (2, 2): {"delay_ns": 1.32, "luts": 12, "ned": 0.1171},
    (2, 4): {"delay_ns": 1.84, "luts": 13, "ned": 0.0234},
}

TABLE2_GEAR: Dict[Tuple[int, int], Dict[str, float]] = {
    (1, 1): {"delay_ns": 0.829, "luts": 9, "ned": 0.1875},
    (1, 2): {"delay_ns": 0.947, "luts": 9, "ned": 0.1076},
    (1, 3): {"delay_ns": 1.30, "luts": 14, "ned": 0.0585},
    (1, 4): {"delay_ns": 1.36, "luts": 17, "ned": 0.0273},
    (1, 5): {"delay_ns": 1.16, "luts": 18, "ned": 0.0117},
    (1, 6): {"delay_ns": 1.17, "luts": 14, "ned": 0.0039},
    (2, 2): {"delay_ns": 1.29, "luts": 12, "ned": 0.1171},
    (2, 4): {"delay_ns": 1.16, "luts": 12, "ned": 0.0234},
}

# --------------------------------------------------------------------- #
# §4.4 application parameters (Fig. 9): operand width and sub-adder length.
# --------------------------------------------------------------------- #
APPLICATIONS: Dict[str, Dict[str, int]] = {
    "image_integral": {"n": 20, "sub_adder_len": 10},
    "sad": {"n": 16, "sub_adder_len": 8},
    "lpf": {"n": 12, "sub_adder_len": 8},
}
