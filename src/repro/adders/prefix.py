"""Exact parallel-prefix and block adders.

The paper's §4.4 notes that GeAr is agnostic to its sub-adder
implementation — on an ASIC a faster exact adder (e.g. a parallel-prefix
design) can replace the ripple sub-adders.  These three classic exact
architectures round out the baseline library and let the ablation benches
compare FPGA-vs-ASIC-style structures:

* :class:`KoggeStoneAdder` — log-depth parallel prefix,
* :class:`CarrySelectAdder` — dual-ripple blocks with select muxes,
* :class:`CarrySkipAdder` — ripple blocks with propagate bypass.
"""

from __future__ import annotations

from repro.adders.base import ExactAdder
from repro.spec.catalog import exact_spec
from repro.utils.validation import check_pos_int


class KoggeStoneAdder(ExactAdder):
    """Exact N-bit Kogge-Stone parallel-prefix adder."""

    def __init__(self, width: int) -> None:
        self.spec = exact_spec(width, "ksa")
        super().__init__(width, f"KSA(N={width})")

    def build_netlist(self):
        return self.spec.to_netlist()

    def fingerprint(self) -> str:
        return self.spec.fingerprint()


class CarrySelectAdder(ExactAdder):
    """Exact N-bit carry-select adder with ``block``-bit sections."""

    def __init__(self, width: int, block: int = 4) -> None:
        check_pos_int("block", block)
        super().__init__(width, f"CSLA(N={width},B={block})")
        self.block = block

    def build_netlist(self):
        from repro.rtl.builders import build_carry_select

        return build_carry_select(self.width, self.block,
                                  name=f"csla_{self.width}_{self.block}")


class CarrySkipAdder(ExactAdder):
    """Exact N-bit carry-skip adder with ``block``-bit sections."""

    def __init__(self, width: int, block: int = 4) -> None:
        check_pos_int("block", block)
        super().__init__(width, f"CSKA(N={width},B={block})")
        self.block = block

    def build_netlist(self):
        from repro.rtl.builders import build_carry_skip

        return build_carry_skip(self.width, self.block,
                                name=f"cska_{self.width}_{self.block}")
