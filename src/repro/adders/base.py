"""Common interface for all adder models.

The central abstraction is :class:`AdderModel`; approximate adders built
from speculative sub-adder windows (GeAr, ACA-I/II, ETAII, GDA) additionally
share :class:`WindowedSpeculativeAdder`, which implements the vectorised
windowed addition once.

Conventions:

* operands are unsigned and must fit in ``width`` bits,
* the returned sum has ``width + 1`` significant bits (MSB = carry out),
* all methods accept plain ints or NumPy integer arrays and vectorise over
  the latter.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.utils.bitvec import mask
from repro.utils.validation import check_pos_int

IntLike = Union[int, np.ndarray]


def _validate_operand(name: str, value: IntLike, width: int) -> IntLike:
    limit = mask(width)
    if isinstance(value, np.ndarray):
        if not np.issubdtype(value.dtype, np.integer):
            raise TypeError(f"{name} must be an integer array, got dtype {value.dtype}")
        if value.size and (value.min() < 0 or value.max() > limit):
            raise ValueError(f"{name} contains values outside [0, {limit}]")
        return value.astype(np.int64, copy=False)
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an int or integer array, got {type(value).__name__}")
    if not 0 <= int(value) <= limit:
        raise ValueError(f"{name}={value} does not fit in {width} bits")
    return int(value)


class AdderModel(abc.ABC):
    """An ``N``-bit adder producing an ``N+1``-bit (possibly approximate) sum."""

    def __init__(self, width: int, name: str) -> None:
        check_pos_int("width", width)
        self.width = width
        self.name = name

    # -- core behaviour ----------------------------------------------------

    @abc.abstractmethod
    def _add_impl(self, a: IntLike, b: IntLike) -> IntLike:
        """Compute the adder's sum for validated operands."""

    def add(self, a: IntLike, b: IntLike) -> IntLike:
        """Adder output for ``a + b`` (scalars or arrays, range-checked)."""
        a = _validate_operand("a", a, self.width)
        b = _validate_operand("b", b, self.width)
        return self._add_impl(a, b)

    def add_exact(self, a: IntLike, b: IntLike) -> IntLike:
        """Reference exact sum (same validation as :meth:`add`)."""
        a = _validate_operand("a", a, self.width)
        b = _validate_operand("b", b, self.width)
        return a + b

    def error_distance(self, a: IntLike, b: IntLike) -> IntLike:
        """``|approximate - exact|`` per operand pair."""
        diff = self.add(a, b) - self.add_exact(a, b)
        return np.abs(diff) if isinstance(diff, np.ndarray) else abs(diff)

    # -- optional capabilities ----------------------------------------------

    @property
    def out_width(self) -> int:
        """Number of output bits (sum plus carry out)."""
        return self.width + 1

    @property
    def is_exact(self) -> bool:
        """True when the adder never errs (RCA, CLA)."""
        return False

    def error_probability(self) -> Optional[float]:
        """Analytic probability of an erroneous sum for uniform operands.

        Returns ``None`` when no analytic model is available for this
        architecture (the paper's model covers GeAr-expressible adders and,
        by its §4.4 extension, GDA).
        """
        return None

    def build_netlist(self):
        """Gate-level netlist of this adder, or ``None`` when not modelled."""
        return None

    def fingerprint(self) -> str:
        """Stable identity string for the engine's shard cache keys.

        Two adders with equal fingerprints must compute identical sums for
        every operand pair.  The default covers models fully determined by
        class, width and name; subclasses with extra behavioural state
        (window layouts, correction masks) must extend it.
        """
        return (f"{type(self).__module__}.{type(self).__qualname__}"
                f":w{self.width}:{self.name}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(width={self.width}, name={self.name!r})"


class ExactAdder(AdderModel):
    """Base class for adders that always produce the true sum."""

    @property
    def is_exact(self) -> bool:
        return True

    def error_probability(self) -> float:
        return 0.0

    def _add_impl(self, a: IntLike, b: IntLike) -> IntLike:
        return a + b


@dataclass(frozen=True)
class SpeculativeWindow:
    """One sub-adder window of a speculative adder.

    Attributes:
        low: lowest operand bit index the window reads.
        high: highest operand bit index the window reads (inclusive).
        result_low: lowest absolute bit position the window's sum drives.
        result_high: highest absolute bit position the window's sum drives.

    The window adds ``A[high:low] + B[high:low]`` with carry-in 0 and
    contributes local sum bits ``[result_low-low .. result_high-low]`` to
    the final result.  ``result_low - low`` is the window's carry-prediction
    depth (0 for the first window).
    """

    low: int
    high: int
    result_low: int
    result_high: int

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.result_low <= self.result_high <= self.high:
            raise ValueError(
                f"inconsistent window: low={self.low}, high={self.high}, "
                f"result=[{self.result_low}, {self.result_high}]"
            )

    @property
    def length(self) -> int:
        """Operand bits the window reads (the sub-adder length)."""
        return self.high - self.low + 1

    @property
    def prediction_bits(self) -> int:
        """Carry-prediction depth (paper's P for non-first windows)."""
        return self.result_low - self.low

    @property
    def result_bits(self) -> int:
        """Resultant bits the window contributes (paper's R)."""
        return self.result_high - self.result_low + 1


def validate_window_cover(windows: Sequence[SpeculativeWindow], width: int) -> None:
    """Check windows jointly drive bits 0..width-1 exactly once, in order."""
    if not windows:
        raise ValueError("at least one window is required")
    expected_low = 0
    for i, w in enumerate(windows):
        if w.result_low != expected_low:
            raise ValueError(
                f"window {i} drives bits from {w.result_low}, expected {expected_low}"
            )
        if w.high >= width:
            raise ValueError(f"window {i} reads bit {w.high} beyond width {width}")
        expected_low = w.result_high + 1
    if expected_low != width:
        raise ValueError(f"windows drive bits up to {expected_low - 1}, need {width - 1}")


class WindowedSpeculativeAdder(AdderModel):
    """Adder built from parallel speculative sub-adder windows.

    Subclasses provide the window list; this class implements the vectorised
    sum, the per-window error-detection flags of §3.3, and the worst-case
    error distance.  The final carry out (bit ``width``) is the last
    window's local carry out — speculative, exactly like the hardware.
    """

    def __init__(self, width: int, name: str, windows: Sequence[SpeculativeWindow]) -> None:
        super().__init__(width, name)
        validate_window_cover(windows, width)
        self.windows: List[SpeculativeWindow] = list(windows)

    def _add_impl(self, a: IntLike, b: IntLike) -> IntLike:
        result: IntLike = 0
        local = 0
        for w in self.windows:
            wmask = mask(w.length)
            local = ((a >> w.low) & wmask) + ((b >> w.low) & wmask)
            field = (local >> w.prediction_bits) & mask(w.result_bits)
            result = result | (field << w.result_low)
        carry_out = (local >> self.windows[-1].length) & 1
        return result | (carry_out << self.width)

    def error_probability(self) -> float:
        """Exact analytic error probability from the window geometry.

        Uses the first-principles DP over per-bit states
        (:func:`repro.core.error_model.error_probability_windows`), which
        applies to *any* window layout — subclasses with a paper-model
        mapping (GeAr, ACA, ETAII, GDA) override this with Eq. 5-7 to stay
        on the paper's arithmetic.
        """
        from repro.core.error_model import error_probability_windows

        return error_probability_windows(self.windows, self.width)

    def mean_error_distance(self) -> float:
        """Exact analytic E[|approx - exact|] for uniform operands.

        Delegates to the field-expectation identity
        (:func:`repro.core.error_model.mean_error_distance_windows`), which
        holds for any window geometry.
        """
        from repro.core.error_model import mean_error_distance_windows

        return mean_error_distance_windows(self.windows, self.width)

    def detection_flags(self, a: IntLike, b: IntLike) -> List[IntLike]:
        """§3.3 error-detection flag per speculative window.

        Flag ``i`` (for window index ``i >= 1``) is
        ``AND(propagate over the window's P bits) & carry_out(window i-1)``
        where the previous carry out is the *local speculative* one, exactly
        as the hardware AND gate sees it.  Entry 0 is always 0.
        """
        a = _validate_operand("a", a, self.width)
        b = _validate_operand("b", b, self.width)
        flags: List[IntLike] = []
        prev_cout: IntLike = 0
        for i, w in enumerate(self.windows):
            wmask = mask(w.length)
            local = ((a >> w.low) & wmask) + ((b >> w.low) & wmask)
            cout = (local >> w.length) & 1
            if i == 0:
                flags.append(a * 0 if isinstance(a, np.ndarray) else 0)
            else:
                p = w.prediction_bits
                prop = ((a >> w.low) ^ (b >> w.low)) & mask(p)
                all_prop = (prop == mask(p)) if p else (prop == prop)
                if isinstance(all_prop, np.ndarray):
                    flags.append((all_prop.astype(np.int64)) & prev_cout)
                else:
                    flags.append(int(all_prop) & int(prev_cout))
            prev_cout = cout
        return flags

    def max_error_distance(self) -> int:
        """Worst-case ``|approx - exact|`` over all operand pairs.

        Each speculative window can at worst miss an incoming carry, which
        costs ``2**result_low`` in the final sum, so the sum over
        speculative windows bounds the total.  Windows anchored at bit 0
        (possible in GDA when M_C reaches past the word's bottom) see every
        lower bit and cannot err, so they are excluded.  Tight when only
        one window can miss at a time (k = 2); simultaneous misses may
        partially cancel through result-field wrap-around, so for k > 2
        the realised worst case can be lower (see tests).
        """
        return sum(1 << w.result_low for w in self.windows[1:] if w.low > 0)

    def fingerprint(self) -> str:
        """Window geometry fully determines a speculative adder's sums."""
        layout = ";".join(
            f"{w.low},{w.high},{w.result_low},{w.result_high}"
            for w in self.windows
        )
        return f"{super().fingerprint()}:[{layout}]"
