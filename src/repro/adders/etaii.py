"""ETAII, the second Error Tolerant Adder of Zhu et al. [9].

The word is split into non-overlapping L/2-bit segments; each segment's sum
uses a carry predicted by a *carry generator* over the L/2 bits below it,
bounding carry propagation to L bits.  In the unified model this is
GeAr(N, R=L/2, P=L/2) (§3.1) — functionally identical to ACA-II, differing
only in how the hardware shares logic.  The spec declares ETAII in its
native structure (``gen_rca`` segment windows: separate sum units and
carry generators), which the behavioural model, the error analytics and
the netlist all compile from — the §3.1 equivalence with the GeAr window
view is covered by the conformance tests rather than assumed.
"""

from __future__ import annotations

from repro.adders.base import WindowedSpeculativeAdder
from repro.core.gear import GeArConfig
from repro.spec.catalog import etaii_spec


class ErrorTolerantAdderII(WindowedSpeculativeAdder):
    """ETAII with total sub-adder window length ``sub_adder_len`` (even) —
    a thin wrapper over its declarative spec."""

    def __init__(self, width: int, sub_adder_len: int, allow_partial: bool = False) -> None:
        self.spec = etaii_spec(width, sub_adder_len, allow_partial=allow_partial)
        half = sub_adder_len // 2
        self.config = GeArConfig(width, half, half, allow_partial=allow_partial)
        super().__init__(
            width, f"ETAII(N={width},L={sub_adder_len})", self.spec.to_windows()
        )
        self.sub_adder_len = sub_adder_len

    def error_probability(self) -> float:
        from repro.core.error_model import error_probability

        return error_probability(self.config)

    def build_netlist(self):
        return self.spec.to_netlist()

    def fingerprint(self) -> str:
        return self.spec.fingerprint()
