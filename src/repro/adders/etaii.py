"""ETAII, the second Error Tolerant Adder of Zhu et al. [9].

The word is split into non-overlapping L/2-bit segments; each segment's sum
uses a carry predicted by a *carry generator* over the L/2 bits below it,
bounding carry propagation to L bits.  In the unified model this is
GeAr(N, R=L/2, P=L/2) (§3.1) — functionally identical to ACA-II, differing
only in how the hardware shares logic (non-overlapping sum units plus
separate carry generators, reflected in the netlist/area model).
"""

from __future__ import annotations

from repro.adders.base import WindowedSpeculativeAdder
from repro.core.gear import GeArConfig


class ErrorTolerantAdderII(WindowedSpeculativeAdder):
    """ETAII with total sub-adder window length ``sub_adder_len`` (even)."""

    def __init__(self, width: int, sub_adder_len: int, allow_partial: bool = False) -> None:
        if sub_adder_len % 2 != 0:
            raise ValueError("ETAII needs an even sub-adder length")
        if sub_adder_len > width:
            raise ValueError(
                f"sub_adder_len {sub_adder_len} exceeds operand width {width}"
            )
        half = sub_adder_len // 2
        self.config = GeArConfig(width, half, half, allow_partial=allow_partial)
        super().__init__(
            width, f"ETAII(N={width},L={sub_adder_len})", self.config.windows()
        )
        self.sub_adder_len = sub_adder_len

    def error_probability(self) -> float:
        from repro.core.error_model import error_probability

        return error_probability(self.config)

    def build_netlist(self):
        from repro.rtl.builders import build_etaii

        return build_etaii(self.width, self.sub_adder_len,
                           name=f"etaii_{self.width}_{self.sub_adder_len}")
