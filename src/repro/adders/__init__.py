"""Behavioural models of every adder the paper evaluates.

All adders share the :class:`~repro.adders.base.AdderModel` interface:
``add(a, b)`` computes the (approximate) sum for scalars or NumPy arrays,
``build_netlist()`` returns the gate-level implementation, and
``error_probability()`` returns the analytic error rate where the paper's
model applies.

Baselines: RCA, CLA (exact); ACA-I [8]; ETAI, ETAII, ETAIIM [9];
ACA-II [10]; GDA [13]; LOA [12].  The GeAr adder itself lives in
:mod:`repro.core`.
"""

from repro.adders.base import AdderModel, ExactAdder, SpeculativeWindow, WindowedSpeculativeAdder
from repro.adders.rca import RippleCarryAdder
from repro.adders.cla import CarryLookaheadAdder
from repro.adders.aca1 import AlmostCorrectAdder
from repro.adders.aca2 import AccuracyConfigurableAdder
from repro.adders.etai import ErrorTolerantAdderI
from repro.adders.etaii import ErrorTolerantAdderII
from repro.adders.etaiim import ErrorTolerantAdderIIM
from repro.adders.gda import GracefullyDegradingAdder
from repro.adders.loa import LowerPartOrAdder
from repro.adders.prefix import CarrySelectAdder, CarrySkipAdder, KoggeStoneAdder

__all__ = [
    "AdderModel",
    "ExactAdder",
    "SpeculativeWindow",
    "WindowedSpeculativeAdder",
    "RippleCarryAdder",
    "CarryLookaheadAdder",
    "AlmostCorrectAdder",
    "AccuracyConfigurableAdder",
    "ErrorTolerantAdderI",
    "ErrorTolerantAdderII",
    "ErrorTolerantAdderIIM",
    "GracefullyDegradingAdder",
    "LowerPartOrAdder",
    "KoggeStoneAdder",
    "CarrySelectAdder",
    "CarrySkipAdder",
]
