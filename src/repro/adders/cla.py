"""Carry-lookahead adder — exact, used as GDA's carry-prediction substrate."""

from __future__ import annotations

from repro.adders.base import ExactAdder


class CarryLookaheadAdder(ExactAdder):
    """Exact N-bit single-level carry-lookahead adder.

    Functionally identical to RCA; structurally it trades the serial carry
    chain for wide AND-OR trees.  On FPGAs those trees map to general LUTs
    rather than the dedicated carry chain, which is why GDA (whose
    prediction units are CLAs) is *slower* than RCA in Table I — the
    netlist built here reproduces that inversion.
    """

    def __init__(self, width: int) -> None:
        super().__init__(width, f"CLA(N={width})")

    def build_netlist(self):
        from repro.rtl.builders import build_cla

        return build_cla(self.width, name=f"cla_{self.width}")
