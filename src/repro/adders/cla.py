"""Carry-lookahead adder — exact, used as GDA's carry-prediction substrate."""

from __future__ import annotations

from repro.adders.base import ExactAdder
from repro.spec.catalog import exact_spec


class CarryLookaheadAdder(ExactAdder):
    """Exact N-bit single-level carry-lookahead adder.

    Functionally identical to RCA; structurally it trades the serial carry
    chain for wide AND-OR trees.  On FPGAs those trees map to general LUTs
    rather than the dedicated carry chain, which is why GDA (whose
    prediction units are CLAs) is *slower* than RCA in Table I — the
    netlist compiled from the spec reproduces that inversion.
    """

    def __init__(self, width: int) -> None:
        self.spec = exact_spec(width, "cla")
        super().__init__(width, f"CLA(N={width})")

    def build_netlist(self):
        return self.spec.to_netlist()

    def fingerprint(self) -> str:
        return self.spec.fingerprint()
