"""ACA-I, the Almost Correct Adder of Verma et al. [8].

Overlapping L-bit sub-adders shifted by one bit, each contributing a single
resultant bit — i.e. GeAr(N, R=1, P=L-1) in the unified model (§3.1).
"""

from __future__ import annotations

from repro.adders.base import WindowedSpeculativeAdder
from repro.core.gear import GeArConfig
from repro.spec.catalog import aca1_spec


class AlmostCorrectAdder(WindowedSpeculativeAdder):
    """ACA-I with sub-adder length ``sub_adder_len`` — a thin wrapper over
    its declarative spec.

    The one-bit shift means N - L + 1 sub-adders and large input fan-out —
    the area overhead the paper notes in §2.
    """

    def __init__(self, width: int, sub_adder_len: int) -> None:
        self.spec = aca1_spec(width, sub_adder_len)
        self.config = GeArConfig(width, 1, sub_adder_len - 1)
        super().__init__(
            width, f"ACA-I(N={width},L={sub_adder_len})", self.spec.to_windows()
        )
        self.sub_adder_len = sub_adder_len

    def error_probability(self) -> float:
        from repro.core.error_model import error_probability

        return error_probability(self.config)

    def build_netlist(self):
        return self.spec.to_netlist()

    def fingerprint(self) -> str:
        return self.spec.fingerprint()
