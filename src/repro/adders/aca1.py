"""ACA-I, the Almost Correct Adder of Verma et al. [8].

Overlapping L-bit sub-adders shifted by one bit, each contributing a single
resultant bit — i.e. GeAr(N, R=1, P=L-1) in the unified model (§3.1).
"""

from __future__ import annotations

from repro.adders.base import WindowedSpeculativeAdder
from repro.core.gear import GeArConfig


class AlmostCorrectAdder(WindowedSpeculativeAdder):
    """ACA-I with sub-adder length ``sub_adder_len``.

    The one-bit shift means N - L + 1 sub-adders and large input fan-out —
    the area overhead the paper notes in §2.
    """

    def __init__(self, width: int, sub_adder_len: int) -> None:
        if sub_adder_len < 2:
            raise ValueError("ACA-I needs sub_adder_len >= 2")
        if sub_adder_len > width:
            raise ValueError(
                f"sub_adder_len {sub_adder_len} exceeds operand width {width}"
            )
        self.config = GeArConfig(width, 1, sub_adder_len - 1)
        super().__init__(
            width, f"ACA-I(N={width},L={sub_adder_len})", self.config.windows()
        )
        self.sub_adder_len = sub_adder_len

    def error_probability(self) -> float:
        from repro.core.error_model import error_probability

        return error_probability(self.config)

    def build_netlist(self):
        from repro.rtl.builders import build_aca1

        return build_aca1(self.width, self.sub_adder_len,
                          name=f"aca1_{self.width}_{self.sub_adder_len}")
