"""LOA, the Lower-part OR Adder of Gupta et al. [12].

The low ``approx_bits`` sum bits are simply ``a | b``; the upper part is an
exact adder whose carry-in is ``a & b`` of the top approximate bit.  Cited
by the paper as a representative precision-truncating design; included so
the benchmark harness can show where segmentation-based adders (GeAr & co.)
beat magnitude-truncating ones.
"""

from __future__ import annotations

from repro.adders.base import AdderModel, IntLike
from repro.spec.catalog import loa_spec
from repro.utils.bitvec import mask


class LowerPartOrAdder(AdderModel):
    """LOA with ``approx_bits`` approximate low bits (0 disables)."""

    def __init__(self, width: int, approx_bits: int) -> None:
        self.spec = loa_spec(width, approx_bits)
        super().__init__(width, f"LOA(N={width},approx={approx_bits})")
        self.approx_bits = approx_bits

    @property
    def is_exact(self) -> bool:
        return self.approx_bits == 0

    def _add_impl(self, a: IntLike, b: IntLike) -> IntLike:
        ab = self.approx_bits
        if ab == 0:
            return a + b
        low = (a | b) & mask(ab)
        carry_in = (a >> (ab - 1)) & (b >> (ab - 1)) & 1
        high = (a >> ab) + (b >> ab) + carry_in
        return (high << ab) | low

    def max_error_distance(self) -> int:
        """Worst case: all low sum bits and the carry-in wrong."""
        return (1 << (self.approx_bits + 1)) - 1 if self.approx_bits else 0

    def build_netlist(self):
        return self.spec.to_netlist()

    def fingerprint(self) -> str:
        return self.spec.fingerprint()
