"""Ripple-carry adder — the paper's exact benchmark adder (Table I, RCA)."""

from __future__ import annotations

from repro.adders.base import ExactAdder


class RippleCarryAdder(ExactAdder):
    """Exact N-bit ripple-carry adder.

    The carry chain spans all N bits, so this adder anchors the delay
    comparison: every approximate adder must beat its critical path to be
    worthwhile.
    """

    def __init__(self, width: int) -> None:
        super().__init__(width, f"RCA(N={width})")

    def build_netlist(self):
        from repro.rtl.builders import build_rca

        return build_rca(self.width, name=f"rca_{self.width}")
