"""Ripple-carry adder — the paper's exact benchmark adder (Table I, RCA)."""

from __future__ import annotations

from repro.adders.base import ExactAdder
from repro.spec.catalog import exact_spec


class RippleCarryAdder(ExactAdder):
    """Exact N-bit ripple-carry adder.

    The carry chain spans all N bits, so this adder anchors the delay
    comparison: every approximate adder must beat its critical path to be
    worthwhile.  A thin wrapper over the single-window ``rca`` spec.
    """

    def __init__(self, width: int) -> None:
        self.spec = exact_spec(width, "rca")
        super().__init__(width, f"RCA(N={width})")

    def build_netlist(self):
        return self.spec.to_netlist()

    def fingerprint(self) -> str:
        return self.spec.fingerprint()
