"""ACA-II, the Accuracy Configurable Adder of Kahng and Kang [10].

Overlapping L-bit sub-adders, each contributing its top L/2 bits —
GeAr(N, R=L/2, P=L/2) in the unified model (§3.1).
"""

from __future__ import annotations

from repro.adders.base import WindowedSpeculativeAdder
from repro.core.gear import GeArConfig


class AccuracyConfigurableAdder(WindowedSpeculativeAdder):
    """ACA-II with sub-adder length ``sub_adder_len`` (must be even)."""

    def __init__(self, width: int, sub_adder_len: int, allow_partial: bool = False) -> None:
        if sub_adder_len % 2 != 0:
            raise ValueError("ACA-II needs an even sub-adder length")
        if sub_adder_len > width:
            raise ValueError(
                f"sub_adder_len {sub_adder_len} exceeds operand width {width}"
            )
        half = sub_adder_len // 2
        self.config = GeArConfig(width, half, half, allow_partial=allow_partial)
        super().__init__(
            width, f"ACA-II(N={width},L={sub_adder_len})", self.config.windows()
        )
        self.sub_adder_len = sub_adder_len

    def error_probability(self) -> float:
        from repro.core.error_model import error_probability

        return error_probability(self.config)

    def build_netlist(self):
        from repro.rtl.builders import build_aca2

        return build_aca2(self.width, self.sub_adder_len,
                          name=f"aca2_{self.width}_{self.sub_adder_len}")
