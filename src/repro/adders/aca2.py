"""ACA-II, the Accuracy Configurable Adder of Kahng and Kang [10].

Overlapping L-bit sub-adders, each contributing its top L/2 bits —
GeAr(N, R=L/2, P=L/2) in the unified model (§3.1).
"""

from __future__ import annotations

from repro.adders.base import WindowedSpeculativeAdder
from repro.core.gear import GeArConfig
from repro.spec.catalog import aca2_spec


class AccuracyConfigurableAdder(WindowedSpeculativeAdder):
    """ACA-II with sub-adder length ``sub_adder_len`` (must be even) — a
    thin wrapper over its declarative spec."""

    def __init__(self, width: int, sub_adder_len: int, allow_partial: bool = False) -> None:
        self.spec = aca2_spec(width, sub_adder_len, allow_partial=allow_partial)
        half = sub_adder_len // 2
        self.config = GeArConfig(width, half, half, allow_partial=allow_partial)
        super().__init__(
            width, f"ACA-II(N={width},L={sub_adder_len})", self.spec.to_windows()
        )
        self.sub_adder_len = sub_adder_len

    def error_probability(self) -> float:
        from repro.core.error_model import error_probability

        return error_probability(self.config)

    def build_netlist(self):
        return self.spec.to_netlist()

    def fingerprint(self) -> str:
        return self.spec.fingerprint()
