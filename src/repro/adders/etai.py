"""ETAI, the first Error Tolerant Adder of Zhu et al. [9].

The word is split into an accurate upper part and an inaccurate lower
part.  The upper part is added exactly (no carry in from below).  The
lower part is processed *from its MSB towards the LSB*: bits add without
carry (XOR) until the first position where both operands are 1; from that
position down, every sum bit is forced to 1.

This is the adder whose poor behaviour on small inputs motivated ETAII
(§2); it is included for completeness of the baseline library.
"""

from __future__ import annotations

import numpy as np

from repro.adders.base import AdderModel, IntLike
from repro.utils.bitvec import mask


class ErrorTolerantAdderI(AdderModel):
    """ETAI with ``split`` inaccurate low bits (0 <= split < width)."""

    def __init__(self, width: int, split: int) -> None:
        if not 0 <= split < width:
            raise ValueError(f"split must be in [0, {width}), got {split}")
        super().__init__(width, f"ETAI(N={width},split={split})")
        self.split = split

    def _add_impl(self, a: IntLike, b: IntLike) -> IntLike:
        split = self.split
        high = (a >> split) + (b >> split)
        if split == 0:
            return high
        a_low = a & mask(split)
        b_low = b & mask(split)
        both = a_low & b_low
        if isinstance(both, np.ndarray):
            low = self._low_part_array(a_low, b_low, both)
        else:
            low = self._low_part_scalar(a_low, b_low, both)
        return (high << split) | low

    def _low_part_scalar(self, a_low: int, b_low: int, both: int) -> int:
        if both == 0:
            return a_low ^ b_low
        top_both = both.bit_length() - 1  # highest position with two 1s
        forced = mask(top_both + 1)
        return ((a_low ^ b_low) & ~forced) | forced

    def _low_part_array(self, a_low: np.ndarray, b_low: np.ndarray,
                        both: np.ndarray) -> np.ndarray:
        xor = a_low ^ b_low
        # Highest set bit of `both`: smear it downward, giving the forced mask.
        smear = both.copy()
        shift = 1
        while shift < self.split:
            smear |= smear >> shift
            shift <<= 1
        if self.split > 1:
            smear |= smear >> 1
        return np.where(both > 0, (xor & ~smear) | smear, xor)

    def max_error_distance(self) -> int:
        """Worst-case |approx - exact|.

        The inaccurate part can be off by nearly 2**(split+1): the true low
        sum ranges over [0, 2**(split+1) - 2] while the forced pattern is
        within [0, 2**split - 1], and the lost carry into the accurate part
        is worth another 2**split.
        """
        return (1 << (self.split + 1)) - 1 if self.split else 0
