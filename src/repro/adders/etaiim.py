"""ETAIIM, the modified ETAII of Zhu et al. [9].

ETAII's accuracy degrades for large inputs because every segment's carry is
speculative.  ETAIIM "connects the higher sub-adders": the carry chains of
the top segments are linked so the most significant bits receive exact
carries from a longer window, at the cost of a longer critical path.

Model: the lowest segments behave exactly like ETAII; the top
``connected`` segments merge into one exact block whose carry-in is still
predicted over the L/2 bits below it.
"""

from __future__ import annotations

from typing import List

from repro.adders.base import SpeculativeWindow, WindowedSpeculativeAdder


class ErrorTolerantAdderIIM(WindowedSpeculativeAdder):
    """ETAIIM with window length ``sub_adder_len`` and ``connected`` merged
    top segments.

    Args:
        width: operand width; must be a multiple of ``sub_adder_len / 2``.
        sub_adder_len: ETAII window length L (even); segments are L/2 bits.
        connected: number of top segments fused into one accurate block
            (1 leaves the adder identical to ETAII).
    """

    def __init__(self, width: int, sub_adder_len: int, connected: int = 2) -> None:
        if sub_adder_len % 2 != 0:
            raise ValueError("ETAIIM needs an even sub-adder length")
        half = sub_adder_len // 2
        if width % half != 0:
            raise ValueError(
                f"width {width} must be a multiple of the segment size {half}"
            )
        segments = width // half
        if not 1 <= connected <= segments:
            raise ValueError(
                f"connected must be in [1, {segments}], got {connected}"
            )
        self.sub_adder_len = sub_adder_len
        self.connected = connected

        windows: List[SpeculativeWindow] = []
        plain_segments = segments - connected
        # First window: the initial exact L-bit window (two segments) when
        # possible, else the merged block swallows everything.
        if plain_segments >= 2:
            windows.append(SpeculativeWindow(0, sub_adder_len - 1, 0, sub_adder_len - 1))
            next_seg = 2
        elif plain_segments == 1:
            windows.append(SpeculativeWindow(0, half - 1, 0, half - 1))
            next_seg = 1
        else:
            windows.append(SpeculativeWindow(0, width - 1, 0, width - 1))
            next_seg = segments
        # Middle windows: standard ETAII segments.
        for seg in range(next_seg, plain_segments):
            lo = (seg - 1) * half
            windows.append(
                SpeculativeWindow(lo, lo + sub_adder_len - 1, lo + half,
                                  lo + sub_adder_len - 1)
            )
        # Top window: the merged accurate block with one predicted carry-in.
        if next_seg < segments:
            result_low = plain_segments * half
            lo = max(0, result_low - half)
            windows.append(SpeculativeWindow(lo, width - 1, result_low, width - 1))

        super().__init__(
            width,
            f"ETAIIM(N={width},L={sub_adder_len},conn={connected})",
            windows,
        )
