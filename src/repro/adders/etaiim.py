"""ETAIIM, the modified ETAII of Zhu et al. [9].

ETAII's accuracy degrades for large inputs because every segment's carry is
speculative.  ETAIIM "connects the higher sub-adders": the carry chains of
the top segments are linked so the most significant bits receive exact
carries from a longer window, at the cost of a longer critical path.

Model: the lowest segments behave exactly like ETAII; the top
``connected`` segments merge into one accurate block whose carry-in is
still generated over the L/2 bits below it.  The whole layout is declared
by :func:`repro.spec.catalog.etaiim_spec` — this class is a thin wrapper.
"""

from __future__ import annotations

from repro.adders.base import WindowedSpeculativeAdder
from repro.spec.catalog import etaiim_spec


class ErrorTolerantAdderIIM(WindowedSpeculativeAdder):
    """ETAIIM with window length ``sub_adder_len`` and ``connected`` merged
    top segments.

    Args:
        width: operand width; must be a multiple of ``sub_adder_len / 2``.
        sub_adder_len: ETAII window length L (even); segments are L/2 bits.
        connected: number of top segments fused into one accurate block
            (1 leaves the adder identical to ETAII).
    """

    def __init__(self, width: int, sub_adder_len: int, connected: int = 2) -> None:
        self.spec = etaiim_spec(width, sub_adder_len, connected)
        self.sub_adder_len = sub_adder_len
        self.connected = connected
        super().__init__(
            width,
            f"ETAIIM(N={width},L={sub_adder_len},conn={connected})",
            self.spec.to_windows(),
        )

    def build_netlist(self):
        return self.spec.to_netlist()

    def fingerprint(self) -> str:
        return self.spec.fingerprint()
