"""GDA, the Gracefully Degrading Adder of Ye et al. [13].

The operands split into non-overlapping M_B-bit blocks.  The carry into
each block is selected (by multiplexers) between the previous block's
carry-out and a *carry-lookahead prediction* computed over the M_C bits
below the block boundary.  This library models the uniform configuration
the paper compares against (every block predicting over the same M_C bits,
approximate mode selected), which GeAr covers with (R=M_B, P=M_C) — §3.1.

The behavioural result is a windowed speculative adder whose windows are
aligned to block boundaries; the netlist (``build_gda``) uses genuine CLA
prediction units, which is what costs GDA its delay and area in Tables I
and II.

:meth:`GracefullyDegradingAdder.add_with_selects` models the *graceful
degradation* itself: the per-block carry muxes that let the system chain
any subset of blocks accurately at runtime (all selects accurate = exact
RCA behaviour, all approximate = the speculative adder above).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.adders.base import IntLike, WindowedSpeculativeAdder
from repro.core.gear import GeArConfig
from repro.spec.catalog import gda_spec
from repro.utils.bitvec import mask


class GracefullyDegradingAdder(WindowedSpeculativeAdder):
    """GDA(M_B, M_C) in uniform approximate mode.

    Args:
        width: operand width N; must be a multiple of ``mb``.
        mb: block (sub-adder) size M_B.
        mc: carry-prediction depth M_C.  GDA's hierarchical CLA restricts
            M_C to multiples of M_B; pass ``enforce_multiple=False`` to
            explore hypothetical points outside the architecture.
    """

    def __init__(self, width: int, mb: int, mc: int,
                 enforce_multiple: bool = True) -> None:
        self.spec = gda_spec(width, mb, mc, enforce_multiple=enforce_multiple)
        self.mb = mb
        self.mc = mc
        super().__init__(width, f"GDA(N={width},MB={mb},MC={mc})",
                         self.spec.to_windows())

    def error_probability(self) -> float:
        """§4.4 applies the GeAr error model to GDA at (R=M_B, P=M_C)."""
        from repro.core.error_model import error_probability

        strict = (self.width - self.mb - self.mc) % self.mb == 0
        cfg = GeArConfig(self.width, self.mb, self.mc, allow_partial=not strict)
        return error_probability(cfg)

    @property
    def block_count(self) -> int:
        return self.width // self.mb

    def add_with_selects(self, a: IntLike, b: IntLike,
                         accurate: Optional[Sequence[bool]] = None) -> IntLike:
        """Addition with per-block carry-source selection ([13]'s muxes).

        Args:
            a, b: operands (scalars or arrays).
            accurate: one flag per block boundary (``block_count - 1``
                entries, block 1 upward): True chains the previous block's
                true carry-out (accurate, slower path), False uses the M_C
                carry prediction (approximate).  ``None`` selects accurate
                everywhere — the exact result.

        The degradation is graceful in both directions: flipping one select
        to accurate removes exactly that boundary's speculation.
        """
        scalar = not (isinstance(a, np.ndarray) or isinstance(b, np.ndarray))
        a_arr = np.atleast_1d(np.asarray(a, dtype=np.int64))
        b_arr = np.atleast_1d(np.asarray(b, dtype=np.int64))
        a_arr, b_arr = (np.ascontiguousarray(x)
                        for x in np.broadcast_arrays(a_arr, b_arr))
        limit = mask(self.width)
        if a_arr.size and (a_arr.min() < 0 or a_arr.max() > limit
                           or b_arr.min() < 0 or b_arr.max() > limit):
            raise ValueError(f"operands must fit in {self.width} bits")
        boundaries = self.block_count - 1
        if accurate is None:
            accurate = [True] * boundaries
        if len(accurate) != boundaries:
            raise ValueError(
                f"need {boundaries} select flags, got {len(accurate)}"
            )

        result = np.zeros(a_arr.shape, dtype=np.int64)
        # The mux taps the previous block's *actual* carry-out — which may
        # itself be tainted if that block ran on a prediction.  This is the
        # hardware-faithful semantics: all-accurate selects chain into the
        # exact sum, mixed selects degrade gracefully.
        carry = np.zeros(a_arr.shape, dtype=np.int64)
        local = np.zeros(a_arr.shape, dtype=np.int64)
        for index, base in enumerate(range(0, self.width, self.mb)):
            a_blk = (a_arr >> base) & mask(self.mb)
            b_blk = (b_arr >> base) & mask(self.mb)
            if index == 0:
                cin = np.zeros(a_arr.shape, dtype=np.int64)
            elif accurate[index - 1]:
                cin = carry
            else:
                lo = max(0, base - self.mc)
                span = base - lo
                pred = (((a_arr >> lo) & mask(span))
                        + ((b_arr >> lo) & mask(span))) >> span
                cin = pred & 1
            local = a_blk + b_blk + cin
            result |= (local & mask(self.mb)) << base
            carry = (local >> self.mb) & 1
        result |= carry << self.width
        if scalar:
            return int(result[0])
        return result

    def build_netlist(self):
        return self.spec.to_netlist()

    def fingerprint(self) -> str:
        return self.spec.fingerprint()
