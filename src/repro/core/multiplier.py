"""Approximate array multiplier built from configurable adders.

A natural extension of the paper (its intro motivates adders as the most
common operator *inside* larger units): an N×N array multiplier reduces N
shifted partial products with N-1 additions, so replacing the reduction
adders with GeAr configurations yields an accuracy-configurable multiplier
whose quality knob is exactly the paper's (R, P).

The accumulator is ``2N`` bits wide; products never overflow it, and the
approximate accumulation error is the sum of the individual addition
errors, so the adder's error model gives a (loose) per-product bound.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from repro.adders.base import AdderModel, IntLike
from repro.adders.rca import RippleCarryAdder
from repro.utils.bitvec import mask
from repro.utils.validation import check_pos_int

AdderFactory = Callable[[int], AdderModel]


class ApproximateMultiplier:
    """N×N unsigned array multiplier with a configurable reduction adder.

    Args:
        width: operand width N (product width is 2N).
        adder: a ``2N``-bit adder instance for the partial-product
            reduction, or ``None`` for an exact reference multiplier.

    Example::

        from repro.core.gear import GeArAdder, GeArConfig
        mul = ApproximateMultiplier(8, GeArAdder(GeArConfig(16, 4, 4)))
        mul.multiply(200, 120)
    """

    def __init__(self, width: int, adder: Optional[AdderModel] = None) -> None:
        check_pos_int("width", width)
        if adder is not None and adder.width != 2 * width:
            raise ValueError(
                f"reduction adder must be {2 * width} bits wide, "
                f"got {adder.width}"
            )
        self.width = width
        self.adder = adder

    @property
    def out_width(self) -> int:
        return 2 * self.width

    def _validate(self, name: str, value: IntLike) -> IntLike:
        limit = mask(self.width)
        if isinstance(value, np.ndarray):
            if not np.issubdtype(value.dtype, np.integer):
                raise TypeError(f"{name} must be an integer array")
            if value.size and (value.min() < 0 or value.max() > limit):
                raise ValueError(f"{name} outside [0, {limit}]")
            return value.astype(np.int64, copy=False)
        if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
            raise TypeError(f"{name} must be an int")
        if not 0 <= int(value) <= limit:
            raise ValueError(f"{name}={value} outside [0, {limit}]")
        return int(value)

    def multiply(self, a: IntLike, b: IntLike) -> IntLike:
        """(Approximate) product; vectorises over arrays."""
        a = self._validate("a", a)
        b = self._validate("b", b)
        if self.adder is None:
            return a * b
        wide = mask(2 * self.width)
        acc: IntLike = a * 0 if isinstance(a, np.ndarray) else 0
        for i in range(self.width):
            bit = (b >> i) & 1
            partial = (a * bit) << i
            summed = self.adder.add(acc, partial)
            acc = summed & wide  # product fits 2N bits; drop the carry rail
        return acc

    def multiply_exact(self, a: IntLike, b: IntLike) -> IntLike:
        a = self._validate("a", a)
        b = self._validate("b", b)
        return a * b

    def error_distance(self, a: IntLike, b: IntLike) -> IntLike:
        diff = self.multiply(a, b) - self.multiply_exact(a, b)
        return np.abs(diff) if isinstance(diff, np.ndarray) else abs(diff)

    def mean_relative_error(self, samples: int = 20_000, seed: int = 11) -> float:
        """Monte-Carlo MRED over uniform operands (quality figure)."""
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 1 << self.width, size=samples, dtype=np.int64)
        b = rng.integers(0, 1 << self.width, size=samples, dtype=np.int64)
        err = np.abs(np.asarray(self.multiply(a, b)) - a * b)
        return float(np.mean(err / np.maximum(a * b, 1)))


def make_gear_multiplier(width: int, r: int, p: int) -> ApproximateMultiplier:
    """Convenience: N×N multiplier reducing with GeAr(2N, R, P)."""
    from repro.core.gear import GeArAdder, GeArConfig

    n = 2 * width
    strict = (n - r - p) % r == 0
    adder = GeArAdder(GeArConfig(n, r, p, allow_partial=not strict))
    return ApproximateMultiplier(width, adder)


def make_exact_multiplier(width: int) -> ApproximateMultiplier:
    """Reference multiplier reducing with an exact RCA."""
    return ApproximateMultiplier(width, RippleCarryAdder(2 * width))
