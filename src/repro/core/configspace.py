"""Configuration-space enumeration (Fig. 1 and Fig. 7).

The paper's motivational claim is that GeAr offers far more accuracy
configurations than ACA-I/ACA-II/ETAII (one point each per sub-adder
length) or GDA (prediction bits constrained to multiples of the sub-adder
block length).  These helpers enumerate each architecture's feasible
``(R, P)`` points for a given operand width together with the analytic
accuracy of each point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.error_model import accuracy_percentage
from repro.core.gear import GeArConfig
from repro.utils.validation import check_pos_int


@dataclass(frozen=True)
class DesignPoint:
    """One point of the accuracy-configurability design space.

    Attributes:
        architecture: which adder family provides the point.
        r: resultant bits per sub-adder (GDA's M_B maps onto R).
        p: carry-prediction bits (GDA's M_C maps onto P).
        accuracy: probabilistic accuracy percentage, (1-ρ[Error])·100.
        strict: True when (N-L) is an exact multiple of R (Eq. 1 yields an
            integer k); False for points only reachable in partial mode.
    """

    architecture: str
    r: int
    p: int
    accuracy: float
    strict: bool


def enumerate_configs(
    n: int,
    r: Optional[int] = None,
    allow_partial: bool = False,
    include_exact: bool = False,
) -> List[GeArConfig]:
    """All valid GeAr configurations for width ``n``.

    Args:
        n: operand width.
        r: restrict to one resultant-bit count (None = all).
        allow_partial: include configurations with non-integer (N-L)/R.
        include_exact: include degenerate k=1 configurations (L = N).
    """
    check_pos_int("n", n)
    configs: List[GeArConfig] = []
    r_values = [r] if r is not None else list(range(1, n))
    for rv in r_values:
        for p in range(1, n - rv + 1):
            if rv + p > n:
                continue
            strict = (n - rv - p) % rv == 0
            if not strict and not allow_partial:
                continue
            cfg = GeArConfig(n, rv, p, allow_partial=not strict)
            if cfg.is_exact and not include_exact:
                continue
            configs.append(cfg)
    return configs


def enumerate_gear_points(n: int, r: int, allow_partial: bool = True,
                          include_exact: bool = False) -> List[DesignPoint]:
    """GeAr design points for fixed N and R, sweeping P (Fig. 7 series).

    ``include_exact`` adds the P = N - R endpoint (a single full-width
    sub-adder, 100 % accuracy), which Fig. 7's curves run up to.
    """
    points: List[DesignPoint] = []
    configs = enumerate_configs(n, r=r, allow_partial=allow_partial,
                                include_exact=include_exact)
    for cfg in configs:
        points.append(
            DesignPoint(
                architecture="GeAr",
                r=cfg.r,
                p=cfg.p,
                accuracy=accuracy_percentage(cfg),
                strict=not cfg.allow_partial,
            )
        )
    return points


def enumerate_gda_points(n: int, r: int, include_exact: bool = False) -> List[DesignPoint]:
    """GDA design points for block size M_B = r, sweeping M_C (Fig. 7 dots).

    GDA's hierarchical carry-lookahead prediction constrains the prediction
    depth to multiples of the block size (§1, §2), so only P = R, 2R, 3R, …
    are reachable; the accuracy of each is the GeAr model's at the same
    (R, P) (§4.4 applies the model to GDA).
    """
    points: List[DesignPoint] = []
    for p in range(r, n - r + 1, r):
        if r + p > n:
            break
        strict = (n - r - p) % r == 0  # always true when p is a multiple of r
        cfg = GeArConfig(n, r, p, allow_partial=not strict)
        if cfg.is_exact and not include_exact:
            continue
        points.append(
            DesignPoint(
                architecture="GDA",
                r=r,
                p=p,
                accuracy=accuracy_percentage(cfg),
                strict=strict,
            )
        )
    return points


def enumerate_fixed_architecture_points(n: int, r: int) -> List[DesignPoint]:
    """The single (R, P) point ACA-II and ETAII offer for a given R.

    Both fix P = R (sub-adder split in half), which is the Fig. 1
    observation that their design space collapses to one configuration.
    """
    if 2 * r > n:
        return []
    strict = (n - 2 * r) % r == 0
    cfg = GeArConfig(n, r, r, allow_partial=not strict)
    return [
        DesignPoint(
            architecture="ACA-II/ETAII",
            r=r,
            p=r,
            accuracy=accuracy_percentage(cfg),
            strict=strict,
        )
    ]


def count_configurations(n: int, architecture: str, r: int) -> int:
    """Number of accuracy configurations an architecture offers (Fig. 1).

    Args:
        n: operand width.
        architecture: one of ``"GeAr"``, ``"GDA"``, ``"ACA-II"``, ``"ETAII"``,
            ``"ACA-I"``.
        r: resultant bits per sub-adder.
    """
    arch = architecture.upper().replace("-", "").replace("_", "")
    if arch == "GEAR":
        return len(enumerate_gear_points(n, r))
    if arch == "GDA":
        return len(enumerate_gda_points(n, r))
    if arch in ("ACAII", "ETAII"):
        return len(enumerate_fixed_architecture_points(n, r))
    if arch == "ACAI":
        # ACA-I produces one resultant bit per sub-adder; it offers no
        # configuration at all unless R == 1 (Fig. 1 discussion).
        return 1 if r == 1 else 0
    raise ValueError(f"unknown architecture {architecture!r}")
