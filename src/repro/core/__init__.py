"""The paper's contribution: the GeAr adder and its companion models.

* :mod:`repro.core.gear` — the (N, R, P) configuration model of §3.1 and
  the vectorised functional adder,
* :mod:`repro.core.error_model` — the analytic error-probability model of
  §3.2 (Eqs. 4–7) plus an exact dynamic-programming reference,
* :mod:`repro.core.correction` — the configurable error detection and
  correction scheme of §3.3, with cycle accounting,
* :mod:`repro.core.configspace` — enumeration of valid configurations
  (the design-space results of Fig. 1 / Fig. 7),
* :mod:`repro.core.coverage` — mappings between GeAr configurations and the
  state-of-the-art adders it subsumes.
"""

from repro.core.gear import GeArConfig, GeArAdder
from repro.core.error_model import (
    ErrorEvent,
    error_events,
    error_probability,
    error_probability_exact,
    accuracy_percentage,
)
from repro.core.correction import CorrectionResult, ErrorCorrector
from repro.core.configspace import (
    enumerate_configs,
    enumerate_gear_points,
    enumerate_gda_points,
    DesignPoint,
)
from repro.core.signed import SignedAdder
from repro.core.multiplier import (
    ApproximateMultiplier,
    make_exact_multiplier,
    make_gear_multiplier,
)
from repro.core.coverage import (
    gear_as_aca1,
    gear_as_aca2,
    gear_as_etaii,
    gear_covers_gda,
    classify_config,
)

__all__ = [
    "GeArConfig",
    "GeArAdder",
    "ErrorEvent",
    "error_events",
    "error_probability",
    "error_probability_exact",
    "accuracy_percentage",
    "CorrectionResult",
    "ErrorCorrector",
    "enumerate_configs",
    "enumerate_gear_points",
    "enumerate_gda_points",
    "DesignPoint",
    "SignedAdder",
    "ApproximateMultiplier",
    "make_exact_multiplier",
    "make_gear_multiplier",
    "gear_as_aca1",
    "gear_as_aca2",
    "gear_as_etaii",
    "gear_covers_gda",
    "classify_config",
]
