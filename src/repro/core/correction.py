"""Configurable error detection and correction (§3.3).

Detection: for sub-adder ``i`` the hardware ANDs the predicted carry
``cp_i`` (Eq. 4 — all P prediction bits propagating) with the previous
sub-adder's carry out ``co_{i-1}``.  When both are 1, sub-adder ``i``'s
result field missed an incoming carry.

Correction: instead of an incrementer, the paper feeds the erring
sub-adder's *prediction-bit inputs* through OR gates and forces their LSBs
to 1.  Because the prediction bits were all propagating, the OR is all
ones; the forced LSB then generates a carry that ripples through them into
the result field — exactly the missing carry.

Timing: the speculative result costs 1 cycle; each correction costs one
additional cycle, and corrections cascade lowest-sub-adder-first because
fixing sub-adder ``i`` updates ``co_i`` and may newly trip the detector of
sub-adder ``i+1`` (Fig. 6 discussion: k sub-adders need up to k cycles).

The ``enabled`` mask models the paper's error-control select signal: only
sub-adders whose bit is set are ever corrected, letting an application
trade residual error for bounded latency.

**A hazard the paper does not mention** (found by property testing):
selective correction is *not* monotone for arbitrary masks.  Correcting
sub-adder ``i`` can wrap its all-ones result field to zero, handing the
recovered carry up to sub-adder ``i+1``; if ``i+1``'s correction is
disabled, that carry is dropped and the result is further from exact than
with no correction at all (worked example in
``tests/test_correction.py::TestSelectiveCorrection::test_non_suffix_mask_can_hurt``).
Masks that enable a contiguous MSB-side block ("suffix-closed", the
natural MSB-first policy) are safe: any wrapped carry is always caught by
an enabled higher sub-adder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.adders.base import IntLike, WindowedSpeculativeAdder
from repro.utils.bitvec import mask


@dataclass
class CorrectionResult:
    """Outcome of an error-corrected addition.

    Attributes:
        value: the (partially) corrected sum, ``width + 1`` bits.
        cycles: total cycles consumed (1 + number of correction rounds).
        corrections: number of sub-adders corrected.
        initial_flags: detector outputs observed in the first cycle, one
            int (bitmask over sub-adder indices 1..k-1) per element.
    """

    value: IntLike
    cycles: IntLike
    corrections: IntLike
    initial_flags: IntLike


class ErrorCorrector:
    """Iterative §3.3 error detection/correction around a windowed adder.

    Args:
        adder: any :class:`WindowedSpeculativeAdder` (GeAr, ACA, ETAII, GDA
            behavioural models all qualify).
        enabled: per-sub-adder enable mask for indices ``1..k-1`` (length
            ``k-1``); ``None`` enables every sub-adder (fully accurate
            results, the default).
    """

    def __init__(
        self,
        adder: WindowedSpeculativeAdder,
        enabled: Optional[Sequence[bool]] = None,
    ) -> None:
        self.adder = adder
        k = len(adder.windows)
        if enabled is None:
            enabled = [True] * (k - 1)
        if len(enabled) != k - 1:
            raise ValueError(
                f"enabled mask must cover the {k - 1} speculative sub-adders, "
                f"got length {len(enabled)}"
            )
        self.enabled = [bool(e) for e in enabled]

    @property
    def max_cycles(self) -> int:
        """Worst-case cycles: 1 + one per enabled speculative sub-adder."""
        return 1 + sum(self.enabled)

    def add(self, a: IntLike, b: IntLike) -> CorrectionResult:
        """Add with detection/correction; vectorises over arrays."""
        scalar = not (isinstance(a, np.ndarray) or isinstance(b, np.ndarray))
        a_arr = np.atleast_1d(np.asarray(a, dtype=np.int64))
        b_arr = np.atleast_1d(np.asarray(b, dtype=np.int64))
        a_arr, b_arr = np.broadcast_arrays(a_arr, b_arr)
        a_arr = np.ascontiguousarray(a_arr)
        b_arr = np.ascontiguousarray(b_arr)
        limit = mask(self.adder.width)
        if a_arr.size and (
            a_arr.min() < 0 or a_arr.max() > limit or b_arr.min() < 0 or b_arr.max() > limit
        ):
            raise ValueError(f"operands must fit in {self.adder.width} bits")

        windows = self.adder.windows
        k = len(windows)
        n_elem = a_arr.shape
        corrected = np.zeros((k,) + n_elem, dtype=bool)  # index 0 unused
        cycles = np.ones(n_elem, dtype=np.int64)
        corrections = np.zeros(n_elem, dtype=np.int64)
        initial_flags = np.zeros(n_elem, dtype=np.int64)

        for round_index in range(k):  # at most k-1 corrections + final check
            locals_, couts = self._window_sums(a_arr, b_arr, corrected)
            flags = self._detect(a_arr, b_arr, couts)
            if round_index == 0:
                for i in range(1, k):
                    initial_flags |= flags[i] << i
            # Mask out disabled and already-corrected sub-adders.
            pending = np.zeros((k,) + n_elem, dtype=bool)
            for i in range(1, k):
                if self.enabled[i - 1]:
                    pending[i] = flags[i].astype(bool) & ~corrected[i]
            any_pending = pending.any(axis=0)
            if not any_pending.any():
                break
            # Correct the lowest pending sub-adder of each element.
            lowest = np.argmax(pending, axis=0)  # 0 where nothing pending
            for i in range(1, k):
                hit = any_pending & (lowest == i)
                corrected[i] |= hit
                corrections += hit
                cycles += hit

        locals_, couts = self._window_sums(a_arr, b_arr, corrected)
        value = np.zeros(n_elem, dtype=np.int64)
        for i, w in enumerate(windows):
            field = (locals_[i] >> w.prediction_bits) & mask(w.result_bits)
            value |= field << w.result_low
        value |= couts[-1] << self.adder.width

        if scalar:
            return CorrectionResult(
                value=int(value[0]),
                cycles=int(cycles[0]),
                corrections=int(corrections[0]),
                initial_flags=int(initial_flags[0]),
            )
        return CorrectionResult(value, cycles, corrections, initial_flags)

    # ------------------------------------------------------------------ #

    def _window_sums(self, a: np.ndarray, b: np.ndarray, corrected: np.ndarray):
        """Local sum and carry-out per window, honouring correction state."""
        locals_: List[np.ndarray] = []
        couts: List[np.ndarray] = []
        for i, w in enumerate(self.adder.windows):
            wmask = mask(w.length)
            aw = (a >> w.low) & wmask
            bw = (b >> w.low) & wmask
            if i > 0 and w.prediction_bits:
                pmask = mask(w.prediction_bits)
                forced = ((aw | bw) & pmask) | 1
                ac = np.where(corrected[i], (aw & ~pmask) | forced, aw)
                bc = np.where(corrected[i], (bw & ~pmask) | forced, bw)
            else:
                ac, bc = aw, bw
            local = ac + bc
            locals_.append(local)
            couts.append((local >> w.length) & 1)
        return locals_, couts

    def _detect(self, a: np.ndarray, b: np.ndarray, couts: List[np.ndarray]):
        """Detector outputs cp_i & co_{i-1} per window (index 0 unused)."""
        flags: List[np.ndarray] = [np.zeros(a.shape, dtype=np.int64)]
        for i, w in enumerate(self.adder.windows):
            if i == 0:
                continue
            p = w.prediction_bits
            prop = ((a >> w.low) ^ (b >> w.low)) & mask(p)
            cp = (prop == mask(p)).astype(np.int64)
            flags.append(cp & couts[i - 1])
        return flags
