"""Two's-complement signed arithmetic on top of any adder model.

The paper's adders are defined on unsigned operands; real datapaths (SAD
residuals, filter taps) are signed.  The standard identity makes any
unsigned adder signed: for N-bit two's-complement operands, the correct
(N+1)-bit signed sum pattern is the unsigned sum plus ``2^N`` per negative
operand, taken mod ``2^(N+1)``.  Approximation error magnitudes carry over
unchanged, so all error models remain valid.

Subtraction uses ``a - b = a + (-b)``; ``-b`` must be representable, i.e.
``b != -2^(N-1)``.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.adders.base import AdderModel, IntLike
from repro.utils.bitvec import mask


class SignedAdder:
    """Signed add/subtract wrapper around an :class:`AdderModel`.

    Operands are Python ints or integer arrays in
    ``[-2^(N-1), 2^(N-1) - 1]``; results are exact-width ``N+1``-bit signed
    values (no overflow possible).
    """

    def __init__(self, adder: AdderModel) -> None:
        self.adder = adder
        self.width = adder.width

    def _validate(self, name: str, value: IntLike) -> IntLike:
        lo = -(1 << (self.width - 1))
        hi = (1 << (self.width - 1)) - 1
        if isinstance(value, np.ndarray):
            if not np.issubdtype(value.dtype, np.integer):
                raise TypeError(f"{name} must be an integer array")
            if value.size and (value.min() < lo or value.max() > hi):
                raise ValueError(f"{name} outside [{lo}, {hi}]")
            return value.astype(np.int64, copy=False)
        if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
            raise TypeError(f"{name} must be an int, got {type(value).__name__}")
        if not lo <= int(value) <= hi:
            raise ValueError(f"{name}={value} outside [{lo}, {hi}]")
        return int(value)

    def add(self, a: IntLike, b: IntLike) -> IntLike:
        """Signed (possibly approximate) sum of ``a`` and ``b``."""
        a = self._validate("a", a)
        b = self._validate("b", b)
        n = self.width
        a_u = a & mask(n)
        b_u = b & mask(n)
        unsigned = self.adder.add(a_u, b_u)
        sign_fix = (((a_u >> (n - 1)) & 1) + ((b_u >> (n - 1)) & 1)) << n
        pattern = (unsigned + sign_fix) & mask(n + 1)
        # Interpret as (n+1)-bit two's complement.
        sign_bit = (pattern >> n) & 1
        result = pattern - (sign_bit << (n + 1))
        return result

    def add_exact(self, a: IntLike, b: IntLike) -> IntLike:
        """Reference exact signed sum."""
        a = self._validate("a", a)
        b = self._validate("b", b)
        return a + b

    def subtract(self, a: IntLike, b: IntLike) -> IntLike:
        """Signed (possibly approximate) difference ``a - b``.

        Raises when any ``b`` equals ``-2^(N-1)`` (its negation is not
        representable at width N).
        """
        b = self._validate("b", b)
        lo = -(1 << (self.width - 1))
        if isinstance(b, np.ndarray):
            if b.size and b.min() == lo:
                raise ValueError(f"cannot negate {lo} at width {self.width}")
            return self.add(a, -b)
        if b == lo:
            raise ValueError(f"cannot negate {lo} at width {self.width}")
        return self.add(a, -b)

    def error_distance(self, a: IntLike, b: IntLike) -> IntLike:
        """|approximate - exact| for the signed sum."""
        diff = self.add(a, b) - self.add_exact(a, b)
        return np.abs(diff) if isinstance(diff, np.ndarray) else abs(diff)
