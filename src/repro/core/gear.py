"""The GeAr adder model of §3.1.

A GeAr adder is fully defined by three parameters ``(N, R, P)``:

* ``N`` — operand width,
* ``R`` — resultant bits contributed by each speculative sub-adder,
* ``P`` — previous (carry-prediction) bits per sub-adder,
* derived: sub-adder length ``L = R + P`` and sub-adder count
  ``k = (N - L) / R + 1`` (Eq. 1).

The first sub-adder covers bits ``[L-1:0]`` and contributes all L bits
(Eq. 2); sub-adder ``i`` (1 < i <= k) covers ``[R·i+P-1 : R·(i-1)]`` and
contributes its top R bits (Eq. 3).

When ``(N - L)`` is not a multiple of ``R`` the paper still evaluates the
configuration (Table IV uses R = 3, 6, 7 with N = 20, L = 10): its error
model simply uses ``k - 1 = ceil((N - L)/R)`` speculative sub-adders.  We
support this with ``allow_partial=True``: the last sub-adder is anchored at
the top of the word (``high = N-1``) and contributes the remaining
``< R`` result bits.  Strict mode (default) raises instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.adders.base import (
    AdderModel,
    IntLike,
    SpeculativeWindow,
    WindowedSpeculativeAdder,
)
from repro.utils.validation import check_pos_int


@dataclass(frozen=True)
class GeArConfig:
    """An (N, R, P) GeAr configuration.

    Attributes:
        n: operand width N.
        r: resultant bits per speculative sub-adder.
        p: previous (carry-prediction) bits per sub-adder.
        allow_partial: accept configurations where ``(N - L) % R != 0`` by
            shortening the last sub-adder's result field (see module doc).
    """

    n: int
    r: int
    p: int
    allow_partial: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        check_pos_int("n", self.n)
        check_pos_int("r", self.r)
        check_pos_int("p", self.p)
        if self.L > self.n:
            raise ValueError(
                f"sub-adder length L=R+P={self.L} exceeds operand width N={self.n}"
            )
        if not self.allow_partial and (self.n - self.L) % self.r != 0:
            raise ValueError(
                f"(N-L) = {self.n - self.L} is not a multiple of R = {self.r}; "
                "pass allow_partial=True to accept a shortened last sub-adder"
            )

    # -- derived quantities (paper notation) --------------------------------

    @property
    def L(self) -> int:
        """Sub-adder length L = R + P."""
        return self.r + self.p

    @property
    def k(self) -> int:
        """Sub-adder count, Eq. 1 (rounded up in partial mode)."""
        return math.ceil((self.n - self.L) / self.r) + 1

    @property
    def is_exact(self) -> bool:
        """A single sub-adder spanning the whole word is an exact adder."""
        return self.k == 1

    @property
    def speculative_subadders(self) -> int:
        """Sub-adders whose carry is predicted rather than propagated."""
        return self.k - 1

    def windows(self) -> List[SpeculativeWindow]:
        """The k sub-adder windows, lowest first.

        Window 0 covers ``[0, L-1]`` and drives all L bits.  Window ``i``
        covers ``[R·i, R·i + L - 1]`` and drives its top R bits, except that
        in partial mode the last window is anchored at ``high = N-1``.
        """
        result: List[SpeculativeWindow] = [
            SpeculativeWindow(low=0, high=self.L - 1, result_low=0, result_high=self.L - 1)
        ]
        for i in range(1, self.k):
            low = self.r * i
            high = low + self.L - 1
            result_low = low + self.p
            if high > self.n - 1:
                # Partial last window: keep length L, anchor at the top.
                high = self.n - 1
                low = high - self.L + 1
                result_low = result[-1].result_high + 1
            result.append(
                SpeculativeWindow(
                    low=low, high=high, result_low=result_low, result_high=high
                )
            )
        return result

    def describe(self) -> str:
        """Compact human-readable summary, e.g. ``GeAr(N=12, R=4, P=4), k=2``."""
        return f"GeAr(N={self.n}, R={self.r}, P={self.p}), L={self.L}, k={self.k}"

    @classmethod
    def from_sub_adder_length(cls, n: int, r: int, sub_adder_len: int,
                              allow_partial: bool = False) -> "GeArConfig":
        """Build a config from (N, R, L) instead of (N, R, P)."""
        if sub_adder_len <= r:
            raise ValueError(
                f"sub-adder length {sub_adder_len} must exceed R={r}"
            )
        return cls(n, r, sub_adder_len - r, allow_partial=allow_partial)


class GeArAdder(WindowedSpeculativeAdder):
    """Functional GeAr adder.

    Wraps :class:`GeArConfig` in the common :class:`AdderModel` interface;
    behaves bit-exactly like the paper's architecture including the
    speculative carry out.  Vectorises over NumPy arrays.
    """

    def __init__(self, config: GeArConfig) -> None:
        self.config = config
        super().__init__(
            config.n,
            f"GeAr(N={config.n},R={config.r},P={config.p})",
            config.windows(),
        )

    @classmethod
    def from_params(cls, n: int, r: int, p: int, allow_partial: bool = False) -> "GeArAdder":
        return cls(GeArConfig(n, r, p, allow_partial=allow_partial))

    @property
    def is_exact(self) -> bool:
        return self.config.is_exact

    @property
    def spec(self):
        """The declarative IR of this configuration (see :mod:`repro.spec`).

        Computed lazily: the spec catalog itself builds GeAr windows from
        :class:`GeArConfig`, so this module cannot import it at load time.
        The spec is immutable, so the first build is memoised.
        """
        cached = getattr(self, "_spec", None)
        if cached is None:
            from repro.spec.catalog import gear_spec

            cfg = self.config
            cached = gear_spec(cfg.n, cfg.r, cfg.p,
                               allow_partial=cfg.allow_partial)
            self._spec = cached
        return cached

    def error_probability(self) -> float:
        """Analytic error probability from the paper's model (§3.2)."""
        from repro.core.error_model import error_probability

        return error_probability(self.config)

    def build_netlist(self):
        return self.spec.to_netlist()

    def fingerprint(self) -> str:
        return self.spec.fingerprint()
