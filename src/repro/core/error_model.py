"""Error-probability models for GeAr configurations (§3.2, Eqs. 4–7).

Three engines are provided:

1. :func:`error_probability` — the paper's analytic model.  Every
   speculative sub-adder ``s`` (window base ``b_s = R·s``) contributes R
   error-generating events ``Z_{s,m}``: a carry *generated* at bit
   ``b_s - R + (m-1)`` that *propagates* through every bit up to the top of
   the prediction window (Eq. 5, probability ``ρ[Gr]·ρ[Pr]^(L-m)``).
   Two events are mutually exclusive when one's generate position lies in
   the other's propagate span (Eq. 6), which makes compatible event sets
   *disjoint on the bit line*; their joint probability is then the product
   of the individual probabilities.  The inclusion–exclusion sum of Eq. 7
   therefore collapses to a O(k²·R²) dynamic program over "which window
   hosts the most recent selected event".

2. :func:`error_probability_brute` — literal depth-first evaluation of
   Eq. 7 (one term per compatible event subset).  Exponentially slower;
   used to validate the DP in tests.

3. :func:`error_probability_exact` — the exact error probability for
   i.i.d. uniform operand bits, computed from first principles (a dynamic
   program over bit positions with state (carry into next bit, trailing
   propagate-run length)) with no reference to the paper's event set.

A noteworthy reproduction finding: engines 1 and 3 agree to machine
precision on every strict configuration (integer ``(N-L)/R``).  The paper's event set looks truncated
(each window only lists generates within the R bits below it), but it is
actually *complete*: a carry generated deeper down that propagates into a
window's prediction span necessarily fires the event of the window owning
that generate position, because the windows' generate ranges tile every
lower bit position.  So Eq. 5-7 is an exact formula, not an
approximation, for uniform operands — `error_probability_exact` is kept
as an independent derivation that validates this, and the ablation bench
instead quantifies how far *non-uniform* operand distributions pull the
true error rate away from the model.

For *partial* configurations (``(N-L) % R != 0``, used by Table IV's
R = 3, 6, 7 rows) the model stays on the paper's nominal arithmetic — a
full-R last window — while hardware anchors a shortened last sub-adder at
the top of the word, which errs strictly less.  The model is therefore
conservative there; engine 3 uses the actual window geometry and matches
functional simulation.

All engines assume ρ[generate] = 1/4 and ρ[propagate] = 1/2 per bit
(uniform operands), exactly as §3.2 does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.gear import GeArConfig


@dataclass(frozen=True)
class ErrorEvent:
    """One error-generating event Z_{s,m} of Eq. 5.

    Attributes:
        window: speculative sub-adder index s (1-based, 1..k-1).
        m: resultant-bit index within the sub-adder (1..R).
        generate_pos: absolute bit that must generate a carry.
        propagate_low / propagate_high: inclusive absolute span of bits that
            must all propagate.
    """

    window: int
    m: int
    generate_pos: int
    propagate_low: int
    propagate_high: int

    @property
    def propagate_count(self) -> int:
        """Number of propagate bits, equal to L - m in Eq. 5."""
        return self.propagate_high - self.propagate_low + 1

    @property
    def probability(self) -> float:
        """ρ[Z] = ρ[Gr] · ρ[Pr]^(L-m) with ρ[Gr]=1/4, ρ[Pr]=1/2 (Eq. 5)."""
        return 0.25 * 0.5 ** self.propagate_count

    def excludes(self, other: "ErrorEvent") -> bool:
        """Mutual exclusivity per Eq. 6.

        True when the two events demand contradictory states of some bit:
        a shared generate position is fine (same demand), but a generate
        inside the other event's propagate span is a contradiction.
        """
        if self.generate_pos == other.generate_pos:
            return self.window != other.window or self.m != other.m
        if other.propagate_low <= self.generate_pos <= other.propagate_high:
            return True
        if self.propagate_low <= other.generate_pos <= self.propagate_high:
            return True
        return False


def error_events(config: GeArConfig) -> List[ErrorEvent]:
    """All R·(k-1) error-generating events of a configuration.

    Positions follow the paper's nominal arithmetic (window base ``R·s``)
    even in partial mode, matching how Table IV applies the model to
    non-divisible (N-L)/R configurations.
    """
    events: List[ErrorEvent] = []
    for s in range(1, config.k):
        base = config.r * s
        span_high = base + config.p - 1
        for m in range(1, config.r + 1):
            q = base - config.r + (m - 1)
            events.append(
                ErrorEvent(
                    window=s,
                    m=m,
                    generate_pos=q,
                    propagate_low=q + 1,
                    propagate_high=span_high,
                )
            )
    return events


def error_probability(config: GeArConfig) -> float:
    """ρ[Error] per the paper's model (Eq. 7), evaluated by dynamic program.

    Compatible event subsets contain at most one event per window and have
    pairwise-disjoint supports, so ``1 - ρ[Error]`` equals the sum over
    compatible subsets of ``∏(-ρ[Z])`` — computed in O(k²·R²) by tracking
    the most recent window that hosts a selected event.
    """
    if config.is_exact:
        return 0.0
    r, p = config.r, config.p
    windows = config.k - 1

    def allowed_sum(s: int, prev_end: int) -> float:
        """Σ over events of window s with generate position > prev_end."""
        total = 0.0
        base = r * s
        for m in range(1, r + 1):
            q = base - r + (m - 1)
            if q > prev_end:
                total += 0.25 * 0.5 ** (base + p - 1 - q)
        return total

    # signed[s] = Σ ∏(-ρ) over subsets whose last (highest) event window is s
    signed: List[float] = [0.0] * (windows + 1)
    total = 1.0  # the empty subset
    for s in range(1, windows + 1):
        acc = -allowed_sum(s, -1)  # subsets where s is the only/first window
        for s_prev in range(1, s):
            prev_end = r * s_prev + p - 1
            contribution = -allowed_sum(s, prev_end)
            acc += signed[s_prev] * contribution
        signed[s] = acc
        total += acc
    probability = 1.0 - total
    # Clamp away floating-point dust.
    return min(1.0, max(0.0, probability))


def error_probability_brute(config: GeArConfig, max_events: int = 22) -> float:
    """Literal Eq. 7: inclusion–exclusion over all compatible event subsets.

    Exponential in the event count; refuses configurations with more than
    ``max_events`` events.  Exists to cross-check :func:`error_probability`.
    """
    events = error_events(config)
    if len(events) > max_events:
        raise ValueError(
            f"{len(events)} events exceed max_events={max_events}; "
            "use error_probability() instead"
        )

    def recurse(index: int, chosen: List[ErrorEvent]) -> float:
        if index == len(events):
            if not chosen:
                return 0.0
            sign = -1.0 if len(chosen) % 2 == 0 else 1.0
            joint = 1.0
            for e in chosen:
                joint *= e.probability
            return sign * joint
        total = recurse(index + 1, chosen)
        event = events[index]
        if all(not event.excludes(c) for c in chosen):
            chosen.append(event)
            total += recurse(index + 1, chosen)
            chosen.pop()
        return total

    return recurse(0, [])


def error_probability_exact(config: GeArConfig) -> float:
    """Exact ρ[Error] for i.i.d. uniform operand bits, from first principles.

    Agrees with :func:`error_probability` on every configuration (see the
    module docstring); retained as an independent validation path and for
    windowed adders whose geometry deviates from GeAr's (partial windows
    use their actual prediction depths here).

    A sub-adder window errs iff the true carry entering its lowest read bit
    is 1 *and* all its prediction bits propagate — then and only then does
    its result field miss an incoming carry.  The probability that no
    window errs is computed by a forward DP over bit positions with state
    ``(carry into the next bit, trailing propagate-run length)``; the run
    length is capped at the largest prediction depth.  When every P
    prediction bits propagate, the carry leaving the prediction span equals
    the carry entering it, so the check at the span's top bit sees exactly
    the quantities needed.
    """
    return error_probability_windows(config.windows(), config.n)


def error_probability_windows(windows, n: int) -> float:
    """Exact ρ[Error] of an arbitrary windowed speculative adder.

    Works from the actual :class:`SpeculativeWindow` geometry, so it covers
    ETAIIM's fused segments and GDA's zero-anchored blocks as well as plain
    GeAr configurations.  Windows anchored at bit 0 see every lower bit and
    cannot err, so they contribute no check.
    """
    if len(windows) == 1:
        return 0.0
    checks = {}
    max_pred = 0
    for w in windows[1:]:
        if w.low == 0:
            continue  # sees all lower bits: exact
        pred = w.prediction_bits
        max_pred = max(max_pred, pred)
        checks.setdefault(w.result_low - 1, []).append(pred)
    if not checks:
        return 0.0

    cap = max_pred
    # state[(carry, run)] = probability mass; run capped at `cap`.
    state = {(0, 0): 1.0}
    error_mass = 0.0
    for bit in range(n):
        nxt: dict = {}

        def put(key, value):
            nxt[key] = nxt.get(key, 0.0) + value

        for (carry, run), mass in state.items():
            put((carry, min(run + 1, cap)), mass * 0.5)  # propagate
            put((1, 0), mass * 0.25)  # generate
            put((0, 0), mass * 0.25)  # kill
        if bit in checks:
            for pred in sorted(checks[bit], reverse=True):
                for (carry, run) in list(nxt):
                    if carry == 1 and run >= pred:
                        error_mass += nxt.pop((carry, run))
        state = nxt
    return error_mass


def accuracy_percentage(config: GeArConfig, exact: bool = False) -> float:
    """(1 - ρ[Error]) · 100 — the quantity plotted in Fig. 7."""
    prob = error_probability_exact(config) if exact else error_probability(config)
    return (1.0 - prob) * 100.0


def _carry_probability_profile(width: int) -> List[float]:
    """c[q] = P(carry into bit q) for uniform operands, c[0] = 0.

    Recurrence c[q+1] = ρ[Gr] + ρ[Pr]·c[q] = 1/4 + c[q]/2.
    """
    profile = [0.0]
    for _ in range(width):
        profile.append(0.25 + 0.5 * profile[-1])
    return profile


def mean_error_distance_upper_bound(config: GeArConfig) -> float:
    """Upper bound on E[|approx - exact|] for uniform operands.

    The deficit decomposes as Σ_i m_i · 2^{result_low_i} *minus* wrap
    cancellations (a missed carry that overflows an all-ones result field
    hands its weight to the next window).  Dropping the cancellations gives
    this bound: ρ[m_i] = ρ[Pr]^{pred} · c(low_i) since the propagate
    conjunct and the incoming-carry conjunct concern disjoint bit sets.
    """
    profile = _carry_probability_profile(config.n)
    med = 0.0
    for w in config.windows()[1:]:
        miss = 0.5 ** w.prediction_bits * profile[w.low]
        med += miss * 2.0 ** w.result_low
    return med


def mean_error_distance_windows(windows, n: int) -> float:
    """Exact E[|approx - exact|] of a windowed speculative adder.

    Uses linearity of expectation over the output fields: each window's
    local value ``v = A_w + B_w`` follows the triangular distribution of a
    sum of two i.i.d. uniforms, so E[(v >> P) mod 2^R] is computable in
    closed (enumerated) form per window regardless of window overlap.  The
    exact sum's expectation is 2^N - 1, hence

        MED = (2^N - 1) - Σ_w E[field_w]·2^{result_low_w} - P(cout)·2^N

    (approximate never exceeds exact for these adders, so E[error] = MED).

    Args:
        windows: the adder's :class:`SpeculativeWindow` list.
        n: operand width.
    """
    import numpy as np

    expected_approx = 0.0
    for w in windows:
        length = w.length
        if length > 26:
            raise ValueError(
                f"window length {length} too large for exact MED enumeration"
            )
        v = np.arange(0, (1 << (length + 1)) - 1, dtype=np.int64)
        counts = np.minimum(v, (1 << (length + 1)) - 2 - v) + 1
        probs = counts / float(4 ** length)
        field = (v >> w.prediction_bits) & ((1 << w.result_bits) - 1)
        expected_approx += float((probs * field).sum()) * 2.0 ** w.result_low
    # Speculative carry out of the last window.
    last_len = windows[-1].length
    p_cout = 1.0 - (2 ** last_len + 1) / float(2 ** (last_len + 1))
    expected_approx += p_cout * 2.0 ** n
    return (2.0 ** n - 1.0) - expected_approx


def mean_error_distance_analytic(config: GeArConfig) -> float:
    """Exact E[|approx - exact|] of a GeAr configuration (uniform operands)."""
    return mean_error_distance_windows(config.windows(), config.n)


def mean_error_distance_paper_model(config: GeArConfig) -> float:
    """E[|approx - exact|] with the paper's truncated carry chains.

    Same decomposition as :func:`mean_error_distance_analytic` but the
    carry into each window is restricted to the R bits below it (the
    event set of Eq. 5): ρ[m_s] = Σ_m ρ[Z_{s,m}].
    """
    med = 0.0
    window_objects = config.windows()[1:]
    events = error_events(config)
    for s, w in enumerate(window_objects, start=1):
        miss = sum(e.probability for e in events if e.window == s)
        med += miss * 2.0 ** w.result_low
    return med


def max_error_distance(config: GeArConfig) -> int:
    """Upper bound on |approx - exact|: Σ speculative 2^{result_low}.

    Tight for k = 2 (a single speculative window).  For k > 2 simultaneous
    misses can partially cancel — a missed carry that overflows an
    all-ones result field hands its weight to the next window — so the
    realised worst case may be lower.  Used as the NED normaliser.
    """
    return sum(1 << w.result_low for w in config.windows()[1:])


def normalized_error_distance_analytic(config: GeArConfig) -> float:
    """NED = MED / max-error-distance, both from the exact analytic model."""
    if config.is_exact:
        return 0.0
    return mean_error_distance_analytic(config) / max_error_distance(config)
