"""Configuration coverage: GeAr as a superset of state-of-the-art adders.

§3.1 shows GeAr realises ACA-I with (R=1, P=L-1), ACA-II and ETAII with
(R=L/2, P=L/2), and every GDA configuration whose carry-prediction depth is
uniform across sub-adders.  These helpers construct the corresponding
:class:`~repro.core.gear.GeArConfig` objects and classify arbitrary
configurations back to the architectures they cover.
"""

from __future__ import annotations

from typing import List

from repro.core.gear import GeArConfig
from repro.utils.validation import check_pos_int


def gear_as_aca1(n: int, sub_adder_len: int, allow_partial: bool = True) -> GeArConfig:
    """ACA-I [8] with L-bit sub-adders: GeAr(N, 1, L-1)."""
    check_pos_int("sub_adder_len", sub_adder_len)
    if sub_adder_len < 2:
        raise ValueError("ACA-I needs a sub-adder length of at least 2")
    return GeArConfig(n, 1, sub_adder_len - 1, allow_partial=allow_partial)


def gear_as_aca2(n: int, sub_adder_len: int, allow_partial: bool = True) -> GeArConfig:
    """ACA-II [10] with L-bit sub-adders: GeAr(N, L/2, L/2)."""
    if sub_adder_len % 2 != 0:
        raise ValueError("ACA-II needs an even sub-adder length")
    half = sub_adder_len // 2
    strict = (n - sub_adder_len) % half == 0
    return GeArConfig(n, half, half, allow_partial=allow_partial and not strict)


def gear_as_etaii(n: int, sub_adder_len: int, allow_partial: bool = True) -> GeArConfig:
    """ETAII [9] with L-bit windows — identical parameters to ACA-II."""
    return gear_as_aca2(n, sub_adder_len, allow_partial=allow_partial)


def gear_covers_gda(n: int, mb: int, mc: int) -> GeArConfig:
    """The GeAr configuration matching GDA(M_B, M_C) with uniform prediction.

    The architectures differ in window alignment but share sub-adder result
    width (R = M_B) and prediction depth (P = M_C), hence the same error
    model (§4.4) and the same accuracy.
    """
    strict = (n - mb - mc) % mb == 0
    return GeArConfig(n, mb, mc, allow_partial=not strict)


def classify_config(config: GeArConfig) -> List[str]:
    """Architectures whose fixed scheme coincides with ``config``.

    Returns a list among ``"ACA-I"``, ``"ACA-II"``, ``"ETAII"``,
    ``"GDA"`` (prediction depth a multiple of the block size) and
    ``"GeAr-only"`` when no fixed architecture reaches the point.
    """
    matches: List[str] = []
    if config.r == 1 and config.p == config.L - 1:
        matches.append("ACA-I")
    if config.r == config.p:
        matches.extend(["ACA-II", "ETAII"])
    if config.p % config.r == 0:
        matches.append("GDA")
    if not matches:
        matches.append("GeAr-only")
    return matches
