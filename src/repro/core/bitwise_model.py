"""Error model for non-uniform operands: per-bit generate/propagate rates.

§3.2 hard-codes ρ[Pr] = 1/2 and ρ[Gr] = 1/4 — correct for uniform
operands, off by an order of magnitude for skewed real-world data (see the
distribution ablation).  This module generalises the *exact* DP engine to
position-dependent probabilities:

1. :func:`estimate_bit_statistics` measures per-bit-position
   (generate, propagate, kill) rates from operand samples,
2. :func:`error_probability_bitwise` runs the carry/run-length DP with
   those rates.

The prediction is exact when operand bits are independent across
positions; real data has cross-bit correlation, so residual gaps remain —
but the bitwise model closes most of the distance between the paper's
uniform model and the measured rate (quantified in tests and the
distribution bench).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.gear import GeArConfig
from repro.utils.distributions import OperandDistribution
from repro.utils.validation import check_pos_int


@dataclass(frozen=True)
class BitStatistics:
    """Per-bit-position signal rates of an operand source.

    Attributes:
        generate: P(a_i AND b_i) per position i.
        propagate: P(a_i XOR b_i) per position i.
    """

    generate: Tuple[float, ...]
    propagate: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.generate) != len(self.propagate):
            raise ValueError("generate/propagate vectors must align")
        for i, (g, p) in enumerate(zip(self.generate, self.propagate)):
            if not (0.0 <= g <= 1.0 and 0.0 <= p <= 1.0 and g + p <= 1.0 + 1e-9):
                raise ValueError(f"invalid rates at bit {i}: g={g}, p={p}")

    @property
    def width(self) -> int:
        return len(self.generate)

    @classmethod
    def uniform(cls, width: int) -> "BitStatistics":
        """The paper's assumption: g = 1/4, p = 1/2 at every position."""
        check_pos_int("width", width)
        return cls(generate=(0.25,) * width, propagate=(0.5,) * width)


def estimate_bit_statistics(a: np.ndarray, b: np.ndarray, width: int) -> BitStatistics:
    """Measure per-position generate/propagate rates from operand samples."""
    check_pos_int("width", width)
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.shape != b.shape or a.size == 0:
        raise ValueError("need equal-length non-empty operand arrays")
    gen: List[float] = []
    prop: List[float] = []
    for i in range(width):
        ai = (a >> i) & 1
        bi = (b >> i) & 1
        gen.append(float(np.mean(ai & bi)))
        prop.append(float(np.mean(ai ^ bi)))
    return BitStatistics(generate=tuple(gen), propagate=tuple(prop))


def statistics_from_distribution(
    distribution: OperandDistribution,
    samples: int = 100_000,
    seed: Optional[int] = 2015,
) -> BitStatistics:
    """Convenience: estimate bit statistics for a distribution object."""
    a, b = distribution.sample_pairs(samples, seed=seed)
    return estimate_bit_statistics(a, b, distribution.width)


def error_probability_bitwise(config: GeArConfig, stats: BitStatistics) -> float:
    """Exact ρ[Error] under independent-per-position bit statistics.

    Same DP as :func:`repro.core.error_model.error_probability_exact`
    (state = carry into the next bit × trailing propagate-run length), but
    the per-bit transition probabilities come from ``stats``.  With
    ``BitStatistics.uniform`` this reproduces the paper's model exactly.
    """
    if stats.width != config.n:
        raise ValueError(
            f"statistics cover {stats.width} bits, config needs {config.n}"
        )
    windows = config.windows()
    if len(windows) == 1:
        return 0.0
    checks = {}
    max_pred = 0
    for w in windows[1:]:
        pred = w.prediction_bits
        max_pred = max(max_pred, pred)
        checks.setdefault(w.result_low - 1, []).append(pred)

    cap = max_pred
    state = {(0, 0): 1.0}
    error_mass = 0.0
    for bit in range(config.n):
        g = stats.generate[bit]
        p = stats.propagate[bit]
        k = max(0.0, 1.0 - g - p)
        nxt: dict = {}

        def put(key, value):
            if value:
                nxt[key] = nxt.get(key, 0.0) + value

        for (carry, run), mass in state.items():
            put((carry, min(run + 1, cap)), mass * p)
            put((1, 0), mass * g)
            put((0, 0), mass * k)
        if bit in checks:
            for pred in sorted(checks[bit], reverse=True):
                for key in list(nxt):
                    carry, run = key
                    if carry == 1 and run >= pred:
                        error_mass += nxt.pop(key)
        state = nxt
    return error_mass


def predict_error_rate(
    config: GeArConfig,
    distribution: OperandDistribution,
    samples: int = 100_000,
    seed: Optional[int] = 2015,
) -> float:
    """Bitwise-model prediction of the error rate on a distribution."""
    stats = statistics_from_distribution(distribution, samples=samples, seed=seed)
    return error_probability_bitwise(config, stats)
