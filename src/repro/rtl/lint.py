"""Rule-based static analysis (lint) over netlists.

The RTL substrate is the foundation every reproduced table and figure rests
on: builders construct :class:`~repro.rtl.netlist.Netlist` objects, the
optimiser rewrites them, the Verilog emitter/parser round-trips them.  None
of those layers checks global structural health — a builder that leaves
dead logic, a parse that re-introduces a combinational loop, or an output
bus wired to the wrong width is only caught (if at all) by downstream
simulation.  This module provides that check as a classic lint pass:

* :class:`Diagnostic` — one finding: rule id, :class:`Severity`, offending
  net, human message, machine-readable payload, optional source location
  (populated when the netlist came from :func:`~repro.rtl.verilog_parser.
  parse_verilog`).
* :class:`Rule` / :func:`register_rule` — an extensible registry; the
  concrete rules live in :mod:`repro.rtl.lint_rules` and register
  themselves on import.
* :func:`lint_netlist` / :func:`lint_verilog` — run the rules and return a
  :class:`LintReport` with text and JSON renderings.

The CLI front end is ``gear lint`` (see :mod:`repro.cli`); the builder
matrix in :func:`builder_matrix` is what CI lints so that every adder this
repository can construct stays lint-clean by construction.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro import obs
from repro.rtl.gates import Gate, Op
from repro.rtl.netlist import Netlist, bus_net


class Severity(enum.IntEnum):
    """Diagnostic severity; comparable so ``--fail-on`` thresholds work."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def from_label(cls, label: str) -> "Severity":
        try:
            return cls[label.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {label!r}; use one of "
                f"{', '.join(s.label for s in cls)}"
            ) from None


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    Attributes:
        rule: registered rule id (e.g. ``"dead-logic"``).
        severity: :class:`Severity` of this finding.
        message: human-readable description.
        net: offending net name, when the finding is net-local.
        location: ``(line, column)`` in the source ``.v`` file, when the
            netlist was produced by the Verilog parser.
        data: rule-specific machine-readable payload.
    """

    rule: str
    severity: Severity
    message: str
    net: Optional[str] = None
    location: Optional[Tuple[int, int]] = None
    data: Mapping[str, object] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "rule": self.rule,
            "severity": self.severity.label,
            "message": self.message,
        }
        if self.net is not None:
            out["net"] = self.net
        if self.location is not None:
            out["line"], out["column"] = self.location
        if self.data:
            out["data"] = dict(self.data)
        return out

    def format(self) -> str:
        where = f" [{self.net}]" if self.net else ""
        loc = ""
        if self.location is not None:
            loc = f" (line {self.location[0]}, col {self.location[1]})"
        return f"{self.severity.label}[{self.rule}]{where}: {self.message}{loc}"


class LintContext:
    """Precomputed structure shared by every rule during one lint run.

    Rules must not assume the netlist is well-formed: the whole point of
    lint is to diagnose netlists that violate the constructor invariants
    (hand-built graphs, mutated ``gates`` dicts, parser output).  In
    particular nothing here calls :meth:`Netlist.topological_order`, which
    raises on the very defects the loop/undriven rules report.
    """

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self.gates: Mapping[str, Gate] = netlist.gates
        self.locations: Mapping[str, Tuple[int, int]] = getattr(
            netlist, "source_locations", {}
        )
        #: net -> number of gate inputs it feeds (missing nets included).
        self.fanout: Dict[str, int] = {}
        for gate in self.gates.values():
            for src in gate.inputs:
                self.fanout[src] = self.fanout.get(src, 0) + 1
        #: declared input-bus bit nets, net -> (bus, index).
        self.input_bits: Dict[str, Tuple[str, int]] = {}
        for bus, width in netlist.input_buses.items():
            for i in range(width):
                self.input_bits[bus_net(bus, i)] = (bus, i)
        self._live: Optional[Set[str]] = None

    def loc(self, net: Optional[str]) -> Optional[Tuple[int, int]]:
        if net is None:
            return None
        return self.locations.get(net)

    def live(self) -> Set[str]:
        """Nets reachable from the output buses (same as ``opt.sweep``)."""
        if self._live is None:
            from repro.rtl.opt import live_nets

            self._live = live_nets(self.netlist)
        return self._live

    def diag(
        self,
        rule: "Rule",
        message: str,
        net: Optional[str] = None,
        severity: Optional[Severity] = None,
        **data: object,
    ) -> Diagnostic:
        """Build a :class:`Diagnostic` for ``rule``, auto-attaching location."""
        return Diagnostic(
            rule=rule.id,
            severity=severity if severity is not None else rule.severity,
            message=message,
            net=net,
            location=self.loc(net),
            data=data,
        )


@dataclasses.dataclass(frozen=True)
class Rule:
    """A registered lint rule.

    Attributes:
        id: stable kebab-case identifier (used for suppression and JSON).
        severity: default severity of findings (a rule may override per
            diagnostic via :meth:`LintContext.diag`).
        description: one-line summary shown in docs and ``--list-rules``.
        check: callable producing diagnostics for one netlist.
    """

    id: str
    severity: Severity
    description: str
    check: Callable[[LintContext, "Rule"], Iterable[Diagnostic]]


_REGISTRY: Dict[str, Rule] = {}


def register_rule(
    rule_id: str, severity: Severity, description: str
) -> Callable[[Callable[[LintContext, Rule], Iterable[Diagnostic]]], Callable]:
    """Class-less rule registration decorator.

    The decorated function receives ``(context, rule)`` and yields (or
    returns an iterable of) :class:`Diagnostic` objects.
    """

    def decorator(fn: Callable[[LintContext, Rule], Iterable[Diagnostic]]):
        if rule_id in _REGISTRY:
            raise ValueError(f"lint rule {rule_id!r} registered twice")
        _REGISTRY[rule_id] = Rule(rule_id, severity, description, fn)
        return fn

    return decorator


def registered_rules() -> List[Rule]:
    """All registered rules, id-sorted (importing the built-in rule set)."""
    import repro.rtl.lint_rules  # noqa: F401  (self-registers on import)

    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    registered_rules()  # ensure built-ins are loaded
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise ValueError(
            f"unknown lint rule {rule_id!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


@dataclasses.dataclass(frozen=True)
class LintReport:
    """Outcome of linting one netlist."""

    name: str
    diagnostics: Tuple[Diagnostic, ...]
    rules_run: Tuple[str, ...]

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def by_rule(self, rule_id: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule_id]

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity is severity)

    def worst(self) -> Optional[Severity]:
        return max((d.severity for d in self.diagnostics), default=None)

    def ok(self, fail_on: Severity = Severity.ERROR) -> bool:
        """True when no diagnostic reaches the ``fail_on`` threshold."""
        worst = self.worst()
        return worst is None or worst < fail_on

    def summary(self) -> str:
        parts = [
            f"{self.count(sev)} {sev.label}{'s' if self.count(sev) != 1 else ''}"
            for sev in (Severity.ERROR, Severity.WARNING, Severity.INFO)
            if self.count(sev)
        ]
        status = ", ".join(parts) if parts else "clean"
        return f"{self.name}: {status} ({len(self.rules_run)} rules)"

    def format_text(self) -> str:
        lines = [self.summary()]
        for diag in sorted(
            self.diagnostics, key=lambda d: (-int(d.severity), d.rule, d.net or "")
        ):
            lines.append("  " + diag.format())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "netlist": self.name,
            "ok": self.ok(),
            "counts": {
                sev.label: self.count(sev)
                for sev in (Severity.ERROR, Severity.WARNING, Severity.INFO)
            },
            "rules_run": list(self.rules_run),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def lint_netlist(
    netlist: Netlist,
    rules: Optional[Sequence[str]] = None,
    suppress: Iterable[str] = (),
) -> LintReport:
    """Run lint rules over ``netlist``.

    Args:
        netlist: circuit to analyse (need not satisfy the constructor
            invariants — defective graphs are exactly the target).
        rules: run only these rule ids (default: all registered).
        suppress: rule ids to skip (e.g. ``{"duplicate-gate"}`` for
            netlists that intentionally defer sharing to ``strash``).

    Returns:
        A :class:`LintReport`; use :meth:`LintReport.ok` for gating.
    """
    all_rules = registered_rules()
    suppress_set = set(suppress)
    for rid in suppress_set:
        get_rule(rid)  # validate: typo'd suppressions must not pass silently
    if rules is not None:
        selected = [get_rule(rid) for rid in rules]
    else:
        selected = all_rules
    selected = [r for r in selected if r.id not in suppress_set]

    ctx = LintContext(netlist)
    diagnostics: List[Diagnostic] = []
    for rule in selected:
        with obs.span(f"rtl.lint.rule.{rule.id}"):
            found = list(rule.check(ctx, rule))
        obs.count("rtl.lint.diagnostics", len(found))
        diagnostics.extend(found)
    return LintReport(
        name=netlist.name,
        diagnostics=tuple(diagnostics),
        rules_run=tuple(r.id for r in selected),
    )


def lint_verilog(
    source: str,
    rules: Optional[Sequence[str]] = None,
    suppress: Iterable[str] = (),
) -> LintReport:
    """Parse structural Verilog and lint the resulting netlist.

    Diagnostics carry (line, column) locations pointing into ``source``.
    Syntax errors raise :class:`~repro.rtl.verilog_parser.VerilogSyntaxError`
    before any lint rule runs.
    """
    from repro.rtl.verilog_parser import parse_verilog

    return lint_netlist(parse_verilog(source), rules=rules, suppress=suppress)


#: Builder-matrix entries: (builder name, positional parameters).  Every
#: architecture the repository can construct appears at least once; CI
#: lints the whole matrix so adders stay lint-clean by construction.
BUILDER_MATRIX: Tuple[Tuple[str, Tuple[int, ...]], ...] = (
    ("rca", (16,)),
    ("cla", (16,)),
    ("ksa", (16,)),
    ("csla", (16, 4)),
    ("cska", (16, 4)),
    ("gear", (8, 2, 2)),
    ("gear", (12, 4, 4)),
    ("gear", (16, 4, 8)),
    ("gear_cla", (12, 4, 4)),
    ("aca1", (16, 4)),
    ("aca2", (16, 8)),
    ("etaii", (16, 8)),
    ("gda", (16, 4, 4)),
    ("loa", (16, 8)),
    ("gear_corrected", (12, 4, 4)),
    ("hetero", (16,)),
)


def builder_matrix() -> Iterator[Tuple[str, Netlist]]:
    """Yield ``(label, netlist)`` for every entry in :data:`BUILDER_MATRIX`."""
    from repro.rtl.builders import build_named

    for name, params in BUILDER_MATRIX:
        label = " ".join([name, *map(str, params)])
        yield label, build_named(name, *params)
