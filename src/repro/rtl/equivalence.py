"""Combinational equivalence checking between netlists.

Used to validate generated RTL against golden netlists (e.g. a GeAr
netlist vs its re-parsed Verilog, or an optimised netlist vs the
original).  Two regimes:

* **exhaustive** — when the joint input space is at most ``2^max_exhaustive``
  patterns, every input combination is simulated (a proof, not a test),
* **random** — otherwise, seeded uniform vectors plus directed corner
  patterns; a miss is then merely *unlikely* and the report says so.

Returns a :class:`EquivalenceReport` with a counterexample when the
netlists disagree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.rtl.netlist import Netlist
from repro.rtl.sim import simulate_bus
from repro.utils.bitvec import mask


@dataclass(frozen=True)
class EquivalenceReport:
    """Outcome of an equivalence check."""

    equivalent: bool
    exhaustive: bool
    vectors_checked: int
    counterexample: Optional[Dict[str, int]] = None
    mismatched_bus: Optional[str] = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.equivalent


def _common_interface(left: Netlist, right: Netlist) -> Tuple[Dict[str, int], List[str]]:
    if left.input_buses != right.input_buses:
        raise ValueError(
            f"input interfaces differ: {left.input_buses} vs {right.input_buses}"
        )
    shared = sorted(set(left.output_buses) & set(right.output_buses))
    if not shared:
        raise ValueError("netlists share no output buses")
    for bus in shared:
        if len(left.output_buses[bus]) != len(right.output_buses[bus]):
            raise ValueError(f"output bus {bus!r} widths differ")
    return dict(left.input_buses), shared


def _corner_patterns(width: int) -> List[int]:
    top = mask(width)
    alt = sum(1 << i for i in range(0, width, 2))
    return sorted({0, 1, top, top - 1, top >> 1, alt, top ^ alt})


def check_equivalence(
    left: Netlist,
    right: Netlist,
    max_exhaustive: int = 22,
    random_vectors: int = 50_000,
    seed: int = 2015,
    chunk: int = 1 << 16,
) -> EquivalenceReport:
    """Check that two netlists compute identical outputs.

    Args:
        left, right: netlists with identical input buses; all *shared*
            output buses are compared.
        max_exhaustive: exhaustive proof when total input bits ≤ this.
        random_vectors: vector count for the randomised regime.
        seed: RNG seed for the randomised regime.
        chunk: vectors simulated per batch (memory bound).
    """
    inputs, shared = _common_interface(left, right)
    total_bits = sum(inputs.values())
    buses = sorted(inputs)

    def compare(stimulus: Dict[str, np.ndarray]) -> Optional[Tuple[str, int]]:
        for bus in shared:
            l_out = simulate_bus(left, stimulus, bus)
            r_out = simulate_bus(right, stimulus, bus)
            bad = np.nonzero(l_out != r_out)[0]
            if bad.size:
                return bus, int(bad[0])
        return None

    if total_bits <= max_exhaustive:
        space = 1 << total_bits
        checked = 0
        for start in range(0, space, chunk):
            count = min(chunk, space - start)
            words = np.arange(start, start + count, dtype=np.int64)
            stimulus: Dict[str, np.ndarray] = {}
            offset = 0
            for bus in buses:
                width = inputs[bus]
                stimulus[bus] = (words >> offset) & mask(width)
                offset += width
            hit = compare(stimulus)
            checked += count
            if hit is not None:
                bus, index = hit
                cex = {b: int(stimulus[b][index]) for b in buses}
                return EquivalenceReport(False, True, checked, cex, bus)
        return EquivalenceReport(True, True, space)

    rng = np.random.default_rng(seed)
    corner_lists = [_corner_patterns(inputs[b]) for b in buses]
    length = max(len(c) for c in corner_lists)
    checked = 0
    # Corner cross-section (cyclic pairing keeps it linear in patterns).
    corner_stim = {
        bus: np.array([cl[i % len(cl)] for i in range(length)], dtype=np.int64)
        for bus, cl in zip(buses, corner_lists)
    }
    hit = compare(corner_stim)
    checked += length
    if hit is not None:
        bus, index = hit
        cex = {b: int(corner_stim[b][index]) for b in buses}
        return EquivalenceReport(False, False, checked, cex, bus)

    remaining = random_vectors
    while remaining > 0:
        count = min(chunk, remaining)
        stimulus = {
            bus: rng.integers(0, 1 << inputs[bus], size=count, dtype=np.int64)
            for bus in buses
        }
        hit = compare(stimulus)
        checked += count
        remaining -= count
        if hit is not None:
            bus, index = hit
            cex = {b: int(stimulus[b][index]) for b in buses}
            return EquivalenceReport(False, False, checked, cex, bus)
    return EquivalenceReport(True, False, checked)
