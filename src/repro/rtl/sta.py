"""Static timing analysis over netlists.

Two delay models ship with the library:

* :class:`UnitDelayModel` — every logic gate costs one unit.  Good for
  comparing logic depth between adder architectures.
* :class:`FpgaDelayModel` — approximates a Xilinx Virtex-6 slice: generic
  logic pays a LUT+routing delay, while gates tagged ``group="carry"`` ride
  the dedicated fast carry chain (MUXCY/XORCY), which is roughly an order of
  magnitude faster per bit.  The default constants are calibrated so that a
  16-bit ripple-carry adder lands near the paper's 1.365 ns (Table IV) and
  the CLA-based GDA prediction logic is slower than plain sub-adders, which
  is the paper's central delay observation (§4.2).

The analysis is the classic longest-path recurrence over the DAG: arrival
time of a net = max over gate inputs + gate delay.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.rtl.gates import Gate, Op
from repro.rtl.netlist import Netlist


class DelayModel(abc.ABC):
    """Maps a gate to its propagation delay (arbitrary but consistent units)."""

    @abc.abstractmethod
    def gate_delay(self, gate: Gate) -> float:
        """Delay contributed by ``gate``; sources must cost 0."""


class UnitDelayModel(DelayModel):
    """Every logic gate costs exactly one unit (logic depth)."""

    def gate_delay(self, gate: Gate) -> float:
        return 0.0 if gate.is_source else 1.0


class FpgaDelayModel(DelayModel):
    """Virtex-6-flavoured delay model (nanoseconds).

    Args:
        lut_delay: LUT propagation delay.
        carry_delay: per-gate delay inside the dedicated carry chain (each
            ripple bit contributes two such gates in our netlists).
        mux_delay: delay of a slice MUX (carry-select style structures).
        net_delay: average local-routing delay added per generic gate.
        io_delay: fixed input-path delay (IOB + route to fabric), applied
            once at every primary input.  This is what makes the paper's
            absolute delays sit ~1 ns above the pure combinational path.
    """

    def __init__(
        self,
        lut_delay: float = 0.25,
        carry_delay: float = 0.012,
        mux_delay: float = 0.20,
        net_delay: float = 0.20,
        io_delay: float = 0.50,
    ) -> None:
        for name, value in (
            ("lut_delay", lut_delay),
            ("carry_delay", carry_delay),
            ("mux_delay", mux_delay),
            ("net_delay", net_delay),
            ("io_delay", io_delay),
        ):
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")
        self.lut_delay = lut_delay
        self.carry_delay = carry_delay
        self.mux_delay = mux_delay
        self.net_delay = net_delay
        self.io_delay = io_delay

    def gate_delay(self, gate: Gate) -> float:
        if gate.op is Op.INPUT:
            return self.io_delay
        if gate.is_source:  # constants are tied off inside the fabric
            return 0.0
        if gate.group == "carry":
            return self.carry_delay
        if gate.op is Op.MUX:
            return self.mux_delay + self.net_delay
        return self.lut_delay + self.net_delay


def arrival_times(netlist: Netlist, model: DelayModel) -> Dict[str, float]:
    """Arrival time of every net under ``model`` (primary inputs at 0)."""
    with obs.span("rtl.sta.arrival"):
        times: Dict[str, float] = {}
        for gate in netlist.topological_order():
            if gate.is_source:
                times[gate.output] = model.gate_delay(gate)
            else:
                times[gate.output] = (
                    max(times[src] for src in gate.inputs)
                    + model.gate_delay(gate)
                )
        obs.count("rtl.sta.runs")
        obs.count("rtl.sta.gates", len(times))
    return times


def critical_path_delay(netlist: Netlist, model: DelayModel,
                        buses: Optional[Sequence[str]] = None) -> float:
    """Worst arrival time over the declared output nets.

    Args:
        netlist: circuit under analysis.
        model: delay model.
        buses: restrict to these output buses (e.g. ``["S"]`` to exclude a
            GeAr error-detection bus from the datapath delay); default all.
    """
    times = arrival_times(netlist, model)
    if buses is None:
        outputs = netlist.output_nets()
    else:
        outputs = []
        for bus in buses:
            if bus not in netlist.output_buses:
                raise KeyError(f"unknown output bus {bus!r}")
            outputs.extend(netlist.output_buses[bus])
    if not outputs:
        raise ValueError("netlist declares no output buses")
    worst = max(times[net] for net in outputs)
    obs.gauge("rtl.sta.critical_delay", worst)
    return worst


def critical_path(netlist: Netlist, model: DelayModel) -> List[str]:
    """Net names along one worst path, from a primary input to an output."""
    times = arrival_times(netlist, model)
    outputs = netlist.output_nets()
    if not outputs:
        raise ValueError("netlist declares no output buses")
    current = max(outputs, key=lambda net: times[net])
    path = [current]
    while True:
        gate = netlist.gates[current]
        if gate.is_source:
            break
        current = max(gate.inputs, key=lambda net: times[net])
        path.append(current)
    path.reverse()
    return path


def depth_histogram(netlist: Netlist) -> Dict[int, int]:
    """Histogram of output-net logic depths under the unit-delay model."""
    times = arrival_times(netlist, UnitDelayModel())
    hist: Dict[int, int] = {}
    for net in netlist.output_nets():
        d = int(times[net])
        hist[d] = hist.get(d, 0) + 1
    if hist:
        obs.gauge("rtl.sta.levels", max(hist))
    return hist
