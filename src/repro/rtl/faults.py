"""Stuck-at fault injection and detector-coverage analysis.

§3.3 puts error-detection hardware (the cp·co AND gates) on every
speculative sub-adder.  Beyond catching *speculation* misses, such
detectors see some *hardware* faults too; this module quantifies that with
classic stuck-at fault simulation:

* :func:`enumerate_faults` — the stuck-at-0/1 fault list over a netlist's
  gate outputs,
* :func:`inject_fault` — a netlist copy with one net tied to a constant,
* :func:`fault_simulation` — for every fault, does any output differ on a
  vector set (detectability), and does the ``ERR`` bus flag it
  (§3.3 observability)?

This doubles as a manufacturing-test utility for the emitted RTL: the
undetectable faults of an adder netlist are exactly its redundant logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.rtl.gates import Op
from repro.rtl.netlist import Netlist
from repro.rtl.sim import simulate
from repro.utils.validation import check_pos_int


@dataclass(frozen=True)
class Fault:
    """A single stuck-at fault on a gate output net."""

    net: str
    stuck_at: int

    def __post_init__(self) -> None:
        if self.stuck_at not in (0, 1):
            raise ValueError(f"stuck_at must be 0 or 1, got {self.stuck_at}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.net}/SA{self.stuck_at}"


def enumerate_faults(netlist: Netlist, include_inputs: bool = True) -> List[Fault]:
    """All stuck-at-0/1 faults on logic-gate outputs (and optionally inputs)."""
    faults: List[Fault] = []
    for gate in netlist.gates.values():
        if gate.op in (Op.CONST0, Op.CONST1):
            continue
        if gate.op is Op.INPUT and not include_inputs:
            continue
        faults.append(Fault(gate.output, 0))
        faults.append(Fault(gate.output, 1))
    return faults


def inject_fault(netlist: Netlist, fault: Fault) -> Netlist:
    """A copy of ``netlist`` with the fault's net replaced by a constant.

    The faulty gate itself is kept (its output simply goes nowhere), which
    mirrors how a physical stuck-at defect leaves upstream logic intact.
    """
    if fault.net not in netlist.gates:
        raise KeyError(f"no net {fault.net!r} in netlist")
    faulty = Netlist(netlist.name)
    for bus, width in netlist.input_buses.items():
        faulty.add_input_bus(bus, width)

    fault_is_input = netlist.gates[fault.net].op is Op.INPUT
    # The substitute net every downstream reference of fault.net sees.
    sa_net = f"__sa_{fault.stuck_at}"
    if sa_net not in faulty.gates:
        faulty.add_gate(Op.CONST1 if fault.stuck_at else Op.CONST0, (),
                        output=sa_net)

    def mapped(net: str) -> str:
        return sa_net if net == fault.net else net

    for gate in netlist.topological_order():
        if gate.op is Op.INPUT:
            continue
        if gate.output == fault.net:
            # Keep the defective gate's upstream cone; its output is
            # renamed so the constant takes over its consumers.
            faulty.add_gate(gate.op, tuple(mapped(n) for n in gate.inputs),
                            output=f"{fault.net}__prefault", group=gate.group)
            continue
        faulty.add_gate(gate.op, tuple(mapped(n) for n in gate.inputs),
                        output=gate.output, group=gate.group)
    if fault_is_input:
        # Nothing to rename: the input gate exists; consumers were mapped.
        pass

    for bus, nets in netlist.output_buses.items():
        faulty.set_output_bus(bus, [mapped(net) for net in nets])
    return faulty


@dataclass
class FaultReport:
    """Aggregate fault-simulation outcome."""

    total: int
    detected_any_output: int
    flagged_by_err: int
    undetected: List[Fault]

    @property
    def coverage(self) -> float:
        """Fraction of faults visible at any output."""
        return self.detected_any_output / self.total if self.total else 0.0

    @property
    def err_observability(self) -> float:
        """Fraction of detected faults that also raise an ERR flag."""
        if self.detected_any_output == 0:
            return 0.0
        return self.flagged_by_err / self.detected_any_output


def _outputs(netlist: Netlist, values) -> Dict[str, np.ndarray]:
    packed = {}
    for bus, nets in netlist.output_buses.items():
        word = np.zeros(values[nets[0]].shape, dtype=np.int64)
        for i, net in enumerate(nets):
            word |= values[net].astype(np.int64) << i
        packed[bus] = word
    return packed


def fault_simulation(
    netlist: Netlist,
    vectors: int = 256,
    seed: int = 7,
    faults: Optional[Sequence[Fault]] = None,
    simulator: str = "interpreted",
) -> FaultReport:
    """Simulate every fault against seeded random vectors.

    A fault counts as *detected* when any output bus differs from the
    golden netlist on some vector, and as *ERR-flagged* when the ``ERR``
    bus (if present) differs — i.e. the §3.3 detector reacts to the defect.

    ``simulator`` selects the evaluation machinery: ``"interpreted"``
    rebuilds and re-simulates a faulty netlist per fault via
    :func:`inject_fault`; ``"compiled"`` packs the vectors once, compiles
    one bit-sliced kernel (:mod:`repro.rtl.compile`) and replays it with
    per-fault stuck-at forcing, comparing outputs in the packed domain.
    Both produce the same report for the same arguments
    (``tests/test_compile_faults.py`` pins that parity).
    """
    check_pos_int("vectors", vectors)
    if simulator not in ("interpreted", "compiled"):
        raise ValueError(
            f"simulator must be 'interpreted' or 'compiled', got {simulator!r}")
    rng = np.random.default_rng(seed)
    stimulus = {
        bus: rng.integers(0, 1 << width, size=vectors, dtype=np.int64)
        for bus, width in netlist.input_buses.items()
    }
    fault_list = list(faults) if faults is not None else enumerate_faults(netlist)

    if simulator == "compiled":
        fault_hits = _compiled_fault_sweep(netlist, stimulus, vectors,
                                           fault_list)
    else:
        fault_hits = _interpreted_fault_sweep(netlist, stimulus, fault_list)

    detected = 0
    flagged = 0
    undetected: List[Fault] = []
    for fault, (differs, err_differs) in zip(fault_list, fault_hits):
        if differs:
            detected += 1
            if err_differs:
                flagged += 1
        else:
            undetected.append(fault)
    return FaultReport(
        total=len(fault_list),
        detected_any_output=detected,
        flagged_by_err=flagged,
        undetected=undetected,
    )


def _interpreted_fault_sweep(
    netlist: Netlist, stimulus: Dict[str, np.ndarray],
    fault_list: Sequence[Fault],
) -> List[Tuple[bool, bool]]:
    """(differs, ERR differs) per fault via per-fault netlist rewriting."""
    golden = _outputs(netlist, simulate(netlist, stimulus))
    hits: List[Tuple[bool, bool]] = []
    for fault in fault_list:
        faulty = inject_fault(netlist, fault)
        outputs = _outputs(faulty, simulate(faulty, stimulus))
        differs = any(
            np.any(outputs[bus] != golden[bus]) for bus in golden
        )
        err_differs = bool(
            differs and "ERR" in golden
            and np.any(outputs["ERR"] != golden["ERR"]))
        hits.append((differs, err_differs))
    return hits


def _compiled_fault_sweep(
    netlist: Netlist, stimulus: Dict[str, np.ndarray], vectors: int,
    fault_list: Sequence[Fault],
) -> List[Tuple[bool, bool]]:
    """(differs, ERR differs) per fault via one kernel with stuck-at forcing.

    The whole campaign shares a single compiled kernel and a single packed
    copy of the vectors; each fault is one forced replay plus a masked
    word-level XOR (padding lanes beyond ``vectors`` are excluded — a
    forced net can flip them even when every real vector agrees).
    """
    from repro.rtl.compile import compile_netlist, lane_mask, pack_operands

    kernel = compile_netlist(netlist)
    packed = {
        bus: pack_operands(stimulus[bus], width)
        for bus, width in netlist.input_buses.items()
    }
    golden = kernel.run_packed(packed)
    nwords = next(iter(golden.values())).shape[1]
    mask = lane_mask(vectors, nwords)

    hits: List[Tuple[bool, bool]] = []
    for fault in fault_list:
        outputs = kernel.run_packed(packed,
                                    force={fault.net: fault.stuck_at})
        differs = any(
            bool(np.any((outputs[bus] ^ golden[bus]) & mask))
            for bus in golden
        )
        err_differs = bool(
            differs and "ERR" in golden
            and np.any((outputs["ERR"] ^ golden["ERR"]) & mask))
        hits.append((differs, err_differs))
    return hits
