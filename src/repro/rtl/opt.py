"""Netlist optimisation passes: structural hashing and dead-gate removal.

Overlapping speculative adders (ACA-I shifts its window by a single bit)
recompute the same propagate/generate terms in every window; real synthesis
shares them.  :func:`strash` performs that sharing — it rewrites the
netlist so that structurally identical gates (same op, same input nets,
commutative inputs sorted) collapse to one — and :func:`sweep` removes
logic that no longer reaches any output.  ``optimize`` chains both and is
what the FPGA characterisation applies before area estimation.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro import obs
from repro.rtl.gates import Op
from repro.rtl.netlist import Netlist

#: Ops whose operand order does not matter.
COMMUTATIVE_OPS = frozenset((Op.AND, Op.OR, Op.XOR, Op.NAND, Op.NOR, Op.XNOR))
_COMMUTATIVE = COMMUTATIVE_OPS  # backwards-compatible alias


def live_nets(netlist: Netlist) -> Set[str]:
    """Nets transitively reachable from the declared output buses.

    This is the liveness definition used by both :func:`sweep` and the
    ``dead-logic`` lint rule (:mod:`repro.rtl.lint_rules`), so the two can
    never disagree about what counts as dead.  Nets referenced but not
    driven by any gate are included as-is (the lint layer reports those
    separately as ``undriven-net``).
    """
    live: Set[str] = set()
    stack = list(netlist.output_nets())
    while stack:
        net = stack.pop()
        if net in live:
            continue
        live.add(net)
        gate = netlist.gates.get(net)
        if gate is not None:
            stack.extend(gate.inputs)
    return live


def strash_key(gate, replacement: Dict[str, str]) -> Tuple:
    """Structural-hash key of ``gate`` under an input-net substitution.

    Shared with the ``duplicate-gate`` lint rule so "strash candidate"
    means exactly "gates :func:`strash` would merge".
    """
    inputs = tuple(replacement[n] for n in gate.inputs)
    key_inputs = tuple(sorted(inputs)) if gate.op in COMMUTATIVE_OPS else inputs
    return (gate.op, key_inputs, gate.group)


def strash(netlist: Netlist) -> Netlist:
    """Structurally hash ``netlist`` into a new netlist with shared gates.

    Primary input nets keep their names; internal nets are renumbered.
    Output buses are preserved (possibly pointing at shared nets).
    """
    with obs.span("rtl.opt.strash"):
        result = _strash(netlist)
    obs.count("rtl.opt.strash_runs")
    obs.count("rtl.opt.gates_shared",
              max(0, len(netlist.gates) - len(result.gates)))
    return result


def _strash(netlist: Netlist) -> Netlist:
    result = Netlist(netlist.name)
    for bus, width in netlist.input_buses.items():
        result.add_input_bus(bus, width)

    replacement: Dict[str, str] = {}
    cache: Dict[Tuple, str] = {}
    for gate in netlist.topological_order():
        if gate.op is Op.INPUT:
            replacement[gate.output] = gate.output
            continue
        inputs = tuple(replacement[n] for n in gate.inputs)
        key = strash_key(gate, replacement)
        if key in cache:
            replacement[gate.output] = cache[key]
            continue
        if gate.op is Op.CONST0:
            new_net = result.const(0)
        elif gate.op is Op.CONST1:
            new_net = result.const(1)
        else:
            new_net = result.add_gate(gate.op, inputs, group=gate.group)
        cache[key] = new_net
        replacement[gate.output] = new_net

    for bus, nets in netlist.output_buses.items():
        result.set_output_bus(bus, [replacement[n] for n in nets])
    return result


def sweep(netlist: Netlist) -> Netlist:
    """Remove gates that do not (transitively) drive any output net."""
    with obs.span("rtl.opt.sweep"):
        result = _sweep(netlist)
    obs.count("rtl.opt.sweep_runs")
    obs.count("rtl.opt.gates_swept",
              max(0, len(netlist.gates) - len(result.gates)))
    return result


def _sweep(netlist: Netlist) -> Netlist:
    live = live_nets(netlist)

    result = Netlist(netlist.name)
    for bus, width in netlist.input_buses.items():
        result.add_input_bus(bus, width)
    for gate in netlist.topological_order():
        if gate.op is Op.INPUT or gate.output not in live:
            continue
        if gate.output in result.gates:
            continue
        result.add_gate(gate.op, gate.inputs, output=gate.output, group=gate.group)
    for bus, nets in netlist.output_buses.items():
        result.set_output_bus(bus, nets)
    return result


def optimize(netlist: Netlist) -> Netlist:
    """Structural hashing followed by dead-gate sweep."""
    return sweep(strash(netlist))
