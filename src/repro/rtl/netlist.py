"""Netlist graph with named buses and structural helper methods.

A :class:`Netlist` is a DAG of :class:`~repro.rtl.gates.Gate` objects, each
driving one named net.  Buses are a naming convention: the net for bit ``i``
of bus ``A`` is ``A[i]``.  Builders construct adders gate by gate; the
simulator, STA, area estimator and Verilog emitter all consume this class.
"""

from __future__ import annotations

import re
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.rtl.gates import Gate, Op
from repro.utils.validation import check_pos_int

#: ASCII identifier as accepted by Verilog (and by the emitter): a leading
#: letter or underscore followed by letters, digits, underscores.  Note that
#: ``str.isalnum`` is *not* a substitute — it accepts leading digits and
#: non-ASCII letters, both of which emit invalid Verilog module names.
IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")


def bus_net(bus: str, index: int) -> str:
    """Net name for bit ``index`` of bus ``bus``."""
    return f"{bus}[{index}]"


class Netlist:
    """A combinational netlist with named input/output buses."""

    def __init__(self, name: str) -> None:
        if not IDENTIFIER_RE.match(name):
            raise ValueError(f"netlist name must be an identifier, got {name!r}")
        self.name = name
        self.gates: Dict[str, Gate] = {}
        self.input_buses: Dict[str, int] = {}
        self.output_buses: Dict[str, List[str]] = {}
        #: Optional (line, column) of the source construct that created each
        #: net; populated by :mod:`repro.rtl.verilog_parser` so that lint
        #: diagnostics on parsed files can point back into the .v text.
        self.source_locations: Dict[str, Tuple[int, int]] = {}
        self._uid = 0
        #: Memoised structure queries (topological order / levels), reset by
        #: :meth:`add_gate` so construction-time mutation stays safe.
        self._topo_cache: Optional[List[Gate]] = None
        self._level_cache: Optional[List[List[Gate]]] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def fresh_net(self, prefix: str = "n") -> str:
        """Return a new unique internal net name."""
        self._uid += 1
        return f"{prefix}_{self._uid}"

    def add_gate(self, op: Op, inputs: Sequence[str], output: Optional[str] = None,
                 group: str = "") -> str:
        """Add a gate; returns the name of the driven net.

        All input nets must already be driven, so construction order is
        topological by design and cycles cannot arise.
        """
        for net in inputs:
            if net not in self.gates:
                raise KeyError(f"input net {net!r} is not driven by any gate")
        if output is None:
            output = self.fresh_net()
        if output in self.gates:
            raise ValueError(f"net {output!r} already driven")
        gate = Gate(output=output, op=op, inputs=tuple(inputs), group=group)
        self.gates[output] = gate
        self._topo_cache = None
        self._level_cache = None
        return output

    def add_input_bus(self, bus: str, width: int) -> List[str]:
        """Declare a primary input bus; returns its net names, LSB first."""
        check_pos_int("width", width)
        if bus in self.input_buses:
            raise ValueError(f"input bus {bus!r} already declared")
        self.input_buses[bus] = width
        nets = []
        for i in range(width):
            net = bus_net(bus, i)
            self.add_gate(Op.INPUT, (), output=net)
            nets.append(net)
        return nets

    def set_output_bus(self, bus: str, nets: Sequence[str]) -> None:
        """Declare a primary output bus driven by existing nets, LSB first."""
        if bus in self.output_buses:
            raise ValueError(f"output bus {bus!r} already declared")
        if not nets:
            raise ValueError("output bus must contain at least one net")
        for net in nets:
            if net not in self.gates:
                raise KeyError(f"output net {net!r} is not driven by any gate")
        self.output_buses[bus] = list(nets)

    def const(self, value: int) -> str:
        """Return a net tied to constant 0 or 1 (shared per netlist)."""
        if value not in (0, 1):
            raise ValueError(f"constant must be 0 or 1, got {value}")
        net = f"const{value}"
        if net not in self.gates:
            self.add_gate(Op.CONST1 if value else Op.CONST0, (), output=net)
        return net

    # Convenience wrappers -------------------------------------------------

    def not_(self, a: str) -> str:
        return self.add_gate(Op.NOT, (a,))

    def and_(self, *nets: str, group: str = "") -> str:
        return self.add_gate(Op.AND, nets, group=group)

    def or_(self, *nets: str, group: str = "") -> str:
        return self.add_gate(Op.OR, nets, group=group)

    def xor(self, *nets: str, group: str = "") -> str:
        return self.add_gate(Op.XOR, nets, group=group)

    def mux(self, sel: str, d0: str, d1: str, group: str = "") -> str:
        """2:1 multiplexer: output = d1 when sel else d0."""
        return self.add_gate(Op.MUX, (sel, d0, d1), group=group)

    def half_adder(self, a: str, b: str, group: str = "") -> Tuple[str, str]:
        """Return (sum, carry) nets of a half adder."""
        return self.xor(a, b, group=group), self.and_(a, b, group=group)

    def full_adder(self, a: str, b: str, cin: str, group: str = "") -> Tuple[str, str]:
        """Return (sum, carry) nets of a full adder built from two HAs."""
        s1, c1 = self.half_adder(a, b, group=group)
        s2, c2 = self.half_adder(s1, cin, group=group)
        return s2, self.or_(c1, c2, group=group)

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #

    def topological_order(self) -> List[Gate]:
        """Gates in evaluation order (sources first).

        Construction already guarantees acyclicity, but the order of
        ``self.gates`` is insertion order, which *is* topological; this
        method re-derives it with Kahn's algorithm as a structural sanity
        check (it raises if an invariant was somehow violated).

        The derivation is memoised per mutation state (``add_gate`` resets
        it), so per-call consumers like the simulator pay for Kahn's
        algorithm once per netlist, not once per stimulus batch.  Callers
        must treat the returned list as read-only.
        """
        if self._topo_cache is None:
            obs.count("rtl.netlist.topo_computed")
            indegree: Dict[str, int] = {net: len(g.inputs)
                                        for net, g in self.gates.items()}
            fanout: Dict[str, List[str]] = {net: [] for net in self.gates}
            for net, gate in self.gates.items():
                for src in gate.inputs:
                    fanout[src].append(net)
            ready = deque(net for net, deg in indegree.items() if deg == 0)
            order: List[Gate] = []
            while ready:
                net = ready.popleft()
                order.append(self.gates[net])
                for sink in fanout[net]:
                    indegree[sink] -= 1
                    if indegree[sink] == 0:
                        ready.append(sink)
            if len(order) != len(self.gates):
                raise RuntimeError("netlist contains a cycle or undriven net")
            self._topo_cache = order
        return self._topo_cache

    def topological_levels(self) -> List[List[Gate]]:
        """Gates grouped by logic depth (level 0 = inputs and constants).

        Gates within one level are mutually independent, so each level is
        safe to evaluate as one straight-line block — the structure the
        bit-sliced kernel compiler (:mod:`repro.rtl.compile`) emits code
        from.  Memoised alongside :meth:`topological_order`; treat the
        result as read-only.
        """
        if self._level_cache is None:
            depth: Dict[str, int] = {}
            levels: List[List[Gate]] = []
            for gate in self.topological_order():
                level = (0 if not gate.inputs
                         else 1 + max(depth[net] for net in gate.inputs))
                depth[gate.output] = level
                while len(levels) <= level:
                    levels.append([])
                levels[level].append(gate)
            self._level_cache = levels
        return self._level_cache

    def fanout_counts(self) -> Dict[str, int]:
        """Number of gate inputs each net feeds (output-port uses excluded)."""
        counts = {net: 0 for net in self.gates}
        for gate in self.gates.values():
            for src in gate.inputs:
                counts[src] += 1
        return counts

    def output_nets(self) -> List[str]:
        """All nets referenced by output buses (may contain duplicates)."""
        nets: List[str] = []
        for bus_nets in self.output_buses.values():
            nets.extend(bus_nets)
        return nets

    def logic_gates(self) -> List[Gate]:
        """Gates that implement logic (excludes inputs and constants)."""
        return [g for g in self.gates.values() if not g.is_source]

    def stats(self) -> Dict[str, int]:
        """Simple size statistics used by reports and tests."""
        by_op: Dict[str, int] = {}
        for gate in self.logic_gates():
            by_op[gate.op.value] = by_op.get(gate.op.value, 0) + 1
        return {
            "gates": len(self.logic_gates()),
            "nets": len(self.gates),
            "inputs": sum(self.input_buses.values()),
            "outputs": sum(len(v) for v in self.output_buses.values()),
            **{f"op_{k}": v for k, v in sorted(by_op.items())},
        }

    def lint(self, **kwargs) -> "object":
        """Run the static-analysis rules over this netlist.

        Convenience wrapper around :func:`repro.rtl.lint.lint_netlist`;
        accepts the same keyword arguments and returns a
        :class:`~repro.rtl.lint.LintReport`.
        """
        from repro.rtl.lint import lint_netlist

        return lint_netlist(self, **kwargs)

    def input_nets(self, bus: str) -> List[str]:
        """Net names of a declared input bus, LSB first."""
        width = self.input_buses[bus]
        return [bus_net(bus, i) for i in range(width)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Netlist({self.name!r}, gates={len(self.logic_gates())}, "
            f"inputs={sorted(self.input_buses)}, outputs={sorted(self.output_buses)})"
        )
