"""Vectorised functional simulation of netlists.

Net values are NumPy boolean arrays so a single pass evaluates the netlist
for an arbitrary batch of stimulus vectors; scalar ints are accepted and
broadcast.  This is how emitted RTL is checked bit-exactly against the
behavioural adder models.
"""

from __future__ import annotations

from typing import Dict, Mapping, Union

import numpy as np

from repro import obs
from repro.rtl.gates import Op
from repro.rtl.netlist import Netlist

Stimulus = Mapping[str, Union[int, np.ndarray]]


def _reduce(op: Op, values) -> np.ndarray:
    acc = values[0]
    for v in values[1:]:
        if op in (Op.AND, Op.NAND):
            acc = acc & v
        elif op in (Op.OR, Op.NOR):
            acc = acc | v
        else:  # XOR / XNOR
            acc = acc ^ v
    if op in (Op.NAND, Op.NOR, Op.XNOR):
        acc = ~acc
    return acc


def simulate(netlist: Netlist, stimulus: Stimulus) -> Dict[str, np.ndarray]:
    """Evaluate every net of ``netlist`` for the given input-bus stimulus.

    Args:
        netlist: the circuit to simulate.
        stimulus: maps each input bus name to an int or int array whose bits
            drive the bus (bit ``i`` of the value drives net ``bus[i]``).

    Returns:
        Mapping from net name to boolean array of values.
    """
    missing = set(netlist.input_buses) - set(stimulus)
    if missing:
        raise KeyError(f"stimulus missing input buses: {sorted(missing)}")
    extra = set(stimulus) - set(netlist.input_buses)
    if extra:
        raise KeyError(f"stimulus names unknown buses: {sorted(extra)}")

    with obs.span("rtl.sim.simulate"):
        shape = np.broadcast(*(np.asarray(v) for v in stimulus.values())).shape
        values: Dict[str, np.ndarray] = {}
        for bus, width in netlist.input_buses.items():
            word = np.asarray(stimulus[bus], dtype=np.int64)
            if np.any(word < 0) or np.any(word >> width != 0):
                raise ValueError(f"stimulus for bus {bus!r} does not fit in {width} bits")
            for i in range(width):
                values[f"{bus}[{i}]"] = np.broadcast_to(((word >> i) & 1).astype(bool), shape)

        logic_gates = 0
        for gate in netlist.topological_order():
            if gate.op is Op.INPUT:
                if gate.output not in values:
                    raise KeyError(f"input net {gate.output!r} has no stimulus")
                continue
            logic_gates += 1
            if gate.op is Op.CONST0:
                values[gate.output] = np.broadcast_to(np.asarray(False), shape)
            elif gate.op is Op.CONST1:
                values[gate.output] = np.broadcast_to(np.asarray(True), shape)
            elif gate.op is Op.BUF:
                values[gate.output] = values[gate.inputs[0]]
            elif gate.op is Op.NOT:
                values[gate.output] = ~values[gate.inputs[0]]
            elif gate.op is Op.MUX:
                sel, d0, d1 = (values[n] for n in gate.inputs)
                values[gate.output] = np.where(sel, d1, d0)
            else:
                values[gate.output] = _reduce(gate.op, [values[n] for n in gate.inputs])
        if obs.enabled():
            vectors = 1
            for dim in shape:
                vectors *= dim
            obs.count("rtl.sim.runs")
            obs.count("rtl.sim.gate_evals", logic_gates * vectors)
    return values


def simulate_bus(netlist: Netlist, stimulus: Stimulus, bus: str) -> np.ndarray:
    """Simulate and pack one output bus back into integer words (LSB first)."""
    if bus not in netlist.output_buses:
        raise KeyError(f"unknown output bus {bus!r}; have {sorted(netlist.output_buses)}")
    values = simulate(netlist, stimulus)
    nets = netlist.output_buses[bus]
    shape = values[nets[0]].shape
    word = np.zeros(shape, dtype=np.int64)
    for i, net in enumerate(nets):
        word |= values[net].astype(np.int64) << i
    return word
