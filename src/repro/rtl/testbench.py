"""Self-checking Verilog testbench generation.

The paper validated its RTL on an FPGA; downstream users of our emitted
Verilog will want to re-verify it in their own simulator.  This module
generates a plain-Verilog-2001 testbench for any emitted adder module:
directed corner vectors plus seeded random vectors, golden outputs
computed by the *behavioural* Python model, ``$display`` on mismatch and a
final pass/fail summary.  The file is self-contained (no DPI, no files to
load) so ``iverilog tb.v adder.v && ./a.out`` suffices.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.rtl.netlist import Netlist
from repro.rtl.sim import simulate_bus
from repro.utils.bitvec import mask
from repro.utils.validation import check_pos_int


def _corner_vectors(width: int) -> List[int]:
    top = mask(width)
    patterns = {0, 1, top, top - 1, top >> 1, (top >> 1) + 1}
    alt0 = sum(1 << i for i in range(0, width, 2))
    patterns.update({alt0, top ^ alt0})
    return sorted(patterns)


def generate_testbench(
    netlist: Netlist,
    vectors: int = 200,
    seed: int = 2015,
    tb_name: Optional[str] = None,
) -> str:
    """Render a self-checking testbench for a two-operand adder netlist.

    Args:
        netlist: module with input buses ``A``/``B`` and output bus ``S``
            (extra output buses are checked too).
        vectors: number of random vectors beyond the corner cases.
        seed: RNG seed for the random vectors (baked into the file).
        tb_name: module name of the testbench (default ``<dut>_tb``).

    Returns:
        Verilog source text.
    """
    check_pos_int("vectors", vectors)
    if set(netlist.input_buses) != {"A", "B"}:
        raise ValueError("testbench generation expects exactly buses A and B")
    width_a = netlist.input_buses["A"]
    width_b = netlist.input_buses["B"]

    rng = np.random.default_rng(seed)
    corners = _corner_vectors(min(width_a, width_b))
    a_vals: List[int] = []
    b_vals: List[int] = []
    for c in corners:
        for d in (0, 1, mask(width_b)):
            a_vals.append(c & mask(width_a))
            b_vals.append(d & mask(width_b))
    a_vals.extend(int(x) for x in rng.integers(0, 1 << width_a, size=vectors))
    b_vals.extend(int(x) for x in rng.integers(0, 1 << width_b, size=vectors))

    a_arr = np.array(a_vals, dtype=np.int64)
    b_arr = np.array(b_vals, dtype=np.int64)
    expected: List[Tuple[str, int, np.ndarray]] = []
    for bus, nets in sorted(netlist.output_buses.items()):
        expected.append((bus, len(nets), simulate_bus(netlist, {"A": a_arr, "B": b_arr}, bus)))

    name = tb_name or f"{netlist.name}_tb"
    total = len(a_vals)
    lines: List[str] = [
        "`timescale 1ns/1ps",
        f"module {name};",
        f"  reg  [{width_a - 1}:0] a;",
        f"  reg  [{width_b - 1}:0] b;",
    ]
    for bus, width, _ in expected:
        lines.append(f"  wire [{width - 1}:0] {bus.lower()}_dut;")
    ports = [".A(a)", ".B(b)"] + [f".{bus}({bus.lower()}_dut)" for bus, _, _ in expected]
    lines.append(f"  {netlist.name} dut ({', '.join(ports)});")
    lines.append("  integer errors;")
    lines.append("  task check;")
    lines.append(f"    input [{width_a - 1}:0] av;")
    lines.append(f"    input [{width_b - 1}:0] bv;")
    for bus, width, _ in expected:
        lines.append(f"    input [{width - 1}:0] exp_{bus.lower()};")
    lines.append("    begin")
    lines.append("      a = av; b = bv; #1;")
    for bus, _, _ in expected:
        low = bus.lower()
        lines.append(f"      if ({low}_dut !== exp_{low}) begin")
        lines.append(
            f"        $display(\"MISMATCH {bus}: a=%h b=%h got=%h exp=%h\", "
            f"av, bv, {low}_dut, exp_{low});"
        )
        lines.append("        errors = errors + 1;")
        lines.append("      end")
    lines.append("    end")
    lines.append("  endtask")
    lines.append("  initial begin")
    lines.append("    errors = 0;")
    for i in range(total):
        args = [f"{width_a}'h{a_vals[i]:x}", f"{width_b}'h{b_vals[i]:x}"]
        for bus, width, values in expected:
            args.append(f"{width}'h{int(values[i]):x}")
        lines.append(f"    check({', '.join(args)});")
    lines.append(
        f"    if (errors == 0) $display(\"PASS: {total} vectors\");"
    )
    lines.append("    else $display(\"FAIL: %0d mismatches\", errors);")
    lines.append("    $finish;")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
