"""Gate-level RTL substrate.

The paper evaluates adders as synthesized Verilog on a Virtex-6 FPGA.  This
package substitutes that flow with a pure-Python equivalent:

* :mod:`repro.rtl.gates` / :mod:`repro.rtl.netlist` — gate primitives and a
  netlist graph with named buses,
* :mod:`repro.rtl.sim` — vectorised functional simulation,
* :mod:`repro.rtl.compile` — compiled bit-sliced simulation kernels
  (64 vectors per ``uint64`` word; see ``docs/compile.md``),
* :mod:`repro.rtl.sta` — static timing analysis (critical path),
* :mod:`repro.rtl.area` — LUT-count estimation via greedy cone packing,
* :mod:`repro.rtl.builders` — constructors for RCA / CLA / GeAr / ETAII /
  ACA / GDA netlists,
* :mod:`repro.rtl.verilog` / :mod:`repro.rtl.verilog_parser` — structural
  Verilog emission and a parser for the emitted subset, enabling round-trip
  equivalence checks (the paper releases its RTL; we regenerate ours),
* :mod:`repro.rtl.lint` / :mod:`repro.rtl.lint_rules` — rule-based static
  analysis producing structured diagnostics (``gear lint`` on the CLI).
"""

from repro.rtl.gates import Op, Gate, GATE_ARITY
from repro.rtl.netlist import Netlist
from repro.rtl.sim import simulate, simulate_bus
from repro.rtl.compile import CompiledKernel, compile_netlist, compiled_kernel
from repro.rtl.sta import DelayModel, UnitDelayModel, FpgaDelayModel, critical_path_delay, arrival_times
from repro.rtl.area import estimate_luts
from repro.rtl.verilog import to_verilog
from repro.rtl.verilog_parser import parse_verilog
from repro.rtl.lint import (
    Diagnostic,
    LintReport,
    Severity,
    lint_netlist,
    lint_verilog,
)

__all__ = [
    "Op",
    "Gate",
    "GATE_ARITY",
    "Netlist",
    "simulate",
    "simulate_bus",
    "CompiledKernel",
    "compile_netlist",
    "compiled_kernel",
    "DelayModel",
    "UnitDelayModel",
    "FpgaDelayModel",
    "critical_path_delay",
    "arrival_times",
    "estimate_luts",
    "to_verilog",
    "parse_verilog",
    "Diagnostic",
    "LintReport",
    "Severity",
    "lint_netlist",
    "lint_verilog",
]
