"""Cycle-accurate driver for the §3.3 correction netlist.

The correction circuit of Figs. 5/6 is sequential: the speculative result
is produced in cycle 1, and each cycle thereafter one erroneous sub-adder's
inputs are re-routed through the OR/LSB-force muxes.  The netlist built by
:func:`repro.rtl.builders.build_gear_corrected` exposes the correction
state as the ``CORR`` input bus; this harness plays the role of the control
register, iterating netlist evaluations until the (enable-gated) detector
flags clear.

Two policies are provided:

* ``"sequential"`` (default) — correct the lowest flagged sub-adder per
  cycle; this is the paper's accounting (k cycles worst case) and matches
  :class:`repro.core.correction.ErrorCorrector` cycle-for-cycle.
* ``"parallel"`` — correct every currently-flagged sub-adder per cycle.
  Safe (a raised flag never turns spurious: correcting a lower sub-adder
  can only raise a previous carry-out from 0 to 1) and faster in cycles,
  at the cost of per-sub-adder latch logic the paper does not spend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.rtl.netlist import Netlist
from repro.rtl.sim import simulate
from repro.utils.bitvec import mask

_POLICIES = ("sequential", "parallel")


@dataclass
class HarnessResult:
    """Outcome of a multi-cycle corrected addition (vectorised)."""

    value: np.ndarray
    cycles: np.ndarray
    corrections: np.ndarray


class MultiCycleCorrector:
    """Drives a ``build_gear_corrected`` netlist to exact results.

    Args:
        netlist: the correction netlist (buses A, B, EN, CORR / S, ERR).
        enabled: per-sub-adder enable bits (defaults to all enabled).
        policy: ``"sequential"`` or ``"parallel"`` (see module docstring).
    """

    def __init__(self, netlist: Netlist, enabled: Optional[Sequence[bool]] = None,
                 policy: str = "sequential") -> None:
        for bus in ("A", "B", "EN", "CORR"):
            if bus not in netlist.input_buses:
                raise ValueError(f"netlist lacks required input bus {bus!r}")
        for bus in ("S", "ERR"):
            if bus not in netlist.output_buses:
                raise ValueError(f"netlist lacks required output bus {bus!r}")
        if policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}, got {policy!r}")
        self.netlist = netlist
        self.policy = policy
        self.spec = netlist.input_buses["CORR"]
        if enabled is None:
            enabled = [True] * self.spec
        if len(enabled) != self.spec:
            raise ValueError(
                f"enabled mask must have length {self.spec}, got {len(enabled)}"
            )
        self.enable_word = sum(1 << i for i, e in enumerate(enabled) if e)

    def _read(self, values, bus: str) -> np.ndarray:
        nets = self.netlist.output_buses[bus]
        word = np.zeros(values[nets[0]].shape, dtype=np.int64)
        for i, net in enumerate(nets):
            word |= values[net].astype(np.int64) << i
        return word

    def add(self, a, b) -> HarnessResult:
        """Run the correction loop; returns exact sums for enabled flags."""
        a = np.atleast_1d(np.asarray(a, dtype=np.int64))
        b = np.atleast_1d(np.asarray(b, dtype=np.int64))
        a, b = np.broadcast_arrays(a, b)
        corr = np.zeros(a.shape, dtype=np.int64)
        cycles = np.ones(a.shape, dtype=np.int64)
        corrections = np.zeros(a.shape, dtype=np.int64)

        for _ in range(self.spec + 1):
            values = simulate(
                self.netlist,
                {"A": a, "B": b, "EN": self.enable_word, "CORR": corr},
            )
            err = self._read(values, "ERR") & ~corr & mask(self.spec)
            pending = err != 0
            if not pending.any():
                break
            if self.policy == "sequential":
                fix = err & -err  # lowest set bit
                count = np.where(pending, 1, 0)
            else:
                fix = err
                count = np.zeros(a.shape, dtype=np.int64)
                for i in range(self.spec):
                    count += (err >> i) & 1
            corr |= np.where(pending, fix, 0)
            corrections += count
            cycles += pending.astype(np.int64)

        values = simulate(
            self.netlist,
            {"A": a, "B": b, "EN": self.enable_word, "CORR": corr},
        )
        return HarnessResult(
            value=self._read(values, "S"),
            cycles=cycles,
            corrections=corrections,
        )
