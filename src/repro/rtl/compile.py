"""Compiled bit-sliced netlist kernels: word-level gate simulation.

The interpreter in :mod:`repro.rtl.sim` walks the gate graph once per
stimulus batch, holding one boolean array per net — one *byte* per
simulated vector per net.  This module compiles a netlist down to flat
NumPy code over packed ``uint64`` words instead:

* **Packing** — operand pair ``j`` occupies *bit lane* ``j % 64`` of word
  ``j // 64``; net values are ``uint64`` arrays of ``ceil(V / 64)`` words,
  so one machine word carries 64 simulations and one NumPy bitwise op
  evaluates a gate for the whole batch at 1/8th the memory traffic of the
  boolean interpreter.
* **Codegen** — gates are grouped by logic depth
  (:meth:`~repro.rtl.netlist.Netlist.topological_levels`) and each level
  is emitted as one straight-line Python function (``_level_1(v): v[8] =
  v[2] & v[5]; ...``) over a flat slot array — no dict lookups, no
  per-gate dispatch, no graph walk at simulation time.
* **Caching** — :func:`compiled_kernel` memoises kernels under a
  ``compiled/v{COMPILE_VERSION}`` key derived from the spec/adder
  fingerprint (``spec/v1`` for catalog families), so byte-identical specs
  share one compiled function and any spec mutation — a new fingerprint —
  forces recompilation.
* **Fault forcing** — :meth:`CompiledKernel.run` accepts ``force={net:
  0|1}``: after the net's level executes, its slot is overwritten with an
  all-zeros/all-ones word.  This is exactly the stuck-at semantics of
  :func:`repro.rtl.faults.inject_fault` (the defective gate's cone stays
  intact; every consumer reads the constant), so a whole fault campaign
  runs off a *single* compiled kernel at word-level speed.

The kernel is wired into the rest of the stack as

* the ``compiled`` evaluation backend
  (:mod:`repro.engine.backends`; ``EvalRequest(backend="compiled")``),
* the sixth conformance oracle (``gear verify --layer compiled``:
  compiled vs interpreted simulation, exact bit-equality),
* the fast path of :func:`repro.rtl.faults.fault_simulation`
  (``simulator="compiled"``).

See ``docs/compile.md`` for the layout diagrams and measured throughput.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro.rtl.gates import Op
from repro.rtl.netlist import Netlist
from repro.rtl.sim import Stimulus

__all__ = [
    "COMPILE_VERSION",
    "WORD_BITS",
    "CompiledAdder",
    "CompiledKernel",
    "clear_kernel_cache",
    "compile_netlist",
    "compiled_kernel",
    "kernel_cache_size",
    "kernel_key",
    "lane_mask",
    "pack_operands",
    "unpack_lanes",
]

#: Version of the kernel codegen/packing contract; part of every cache key
#: so a formulation change can never serve stale kernels.
COMPILE_VERSION = 1

#: Simulations carried per machine word (bit lanes of a ``uint64``).
WORD_BITS = 64

#: Little-endian uint64 — the one byte order the lane packing is defined
#: in, so packed words mean the same thing on every host.
_LE_WORD = np.dtype("<u8")


# --------------------------------------------------------------------------- #
# Lane packing: a vectorised 64x64 bit-matrix transpose
# --------------------------------------------------------------------------- #
#
# Packing V operands into lanes is a bit-matrix transpose: operand j's 64
# bits are one row, and lane word i of block b must hold bit i of operands
# 64b..64b+63.  The butterfly network below (Hacker's Delight 7-3,
# ``transpose64``) does each 64x64 block in 6 exchange stages, vectorised
# over all blocks at once — ~20 word-wide passes over the data instead of
# one pass per bit, and it is its own inverse, so unpacking reuses it.
# The matrix lives bit-major — shape ``(64, nwords)`` with row ``r``
# holding one word per block — so every stage slice is contiguous along
# the block axis and each NumPy op runs long unit-stride inner loops.

def _butterfly_stages():
    stages = []
    j, m = 32, np.uint64(0x00000000FFFFFFFF)
    while j:
        stages.append((j, np.uint64(j), m))
        j >>= 1
        if j:
            m = m ^ (m << np.uint64(j))
    return tuple(stages)


_STAGES = _butterfly_stages()


def _bit_transpose(mat: np.ndarray) -> np.ndarray:
    """Transpose every 64x64 bit block of a ``(64, nwords)`` uint64 array.

    Block ``b`` is column ``b``: entering with ``mat[r, b]`` = the 64-bit
    value of element ``64b + r``, it leaves with ``mat[i, b]`` = the lane
    word of bit ``i`` — and vice versa, since a transpose is an
    involution.  This is the Hacker's Delight butterfly adapted to
    LSB-first row indexing: stage ``j`` exchanges the high ``j``-bit
    field of rows with bit ``j`` clear against the low field of their
    ``+j`` partners.  Scratch buffers keep every stage allocation-free.

    Requires a C-contiguous array; operates in place and returns it.
    """
    half = mat.size // 2
    t_buf = np.empty(half, dtype=np.uint64)
    u_buf = np.empty(half, dtype=np.uint64)
    for j, shift, mask in _STAGES:
        view = mat.reshape(WORD_BITS // (2 * j), 2, j, -1)
        a = view[:, 0]
        b = view[:, 1]
        t = t_buf.reshape(a.shape)
        u = u_buf.reshape(a.shape)
        np.right_shift(a, shift, out=t)
        np.bitwise_xor(t, b, out=t)
        np.bitwise_and(t, mask, out=t)
        np.left_shift(t, shift, out=u)
        a.__ixor__(u)
        b.__ixor__(t)
    return mat


def _pack_words(words: np.ndarray) -> np.ndarray:
    """Bit-slice a flat ``uint64`` value array into the full lane matrix.

    Returns the ``(64, ceil(V / 64))`` matrix whose row ``i`` holds bit
    ``i`` of every value, value ``j`` in bit lane ``j % 64`` of word
    ``j // 64``; lanes past the last value are zero.
    """
    count = words.size
    nwords = max(1, -(-count // WORD_BITS))
    buf = np.zeros(nwords * WORD_BITS, dtype=np.uint64)
    buf[:count] = words
    return _bit_transpose(np.ascontiguousarray(buf.reshape(nwords,
                                                           WORD_BITS).T))


def _unpack_words(mat: np.ndarray, count: int) -> np.ndarray:
    """Invert :func:`_pack_words`: lane matrix back to flat uint64 values."""
    return _bit_transpose(mat).T.ravel()[:count]


def lane_mask(count: int, nwords: int) -> np.ndarray:
    """Word mask selecting the first ``count`` bit lanes.

    Packed arrays round up to whole words; lanes past ``count`` hold
    zero-stimulus padding whose gate outputs are meaningless (and which a
    forced fault *can* flip), so packed-domain comparisons must AND with
    this mask before declaring a difference.
    """
    mask = np.full(nwords, ~np.uint64(0), dtype=np.uint64)
    full, rem = divmod(count, WORD_BITS)
    if full < nwords:
        mask[full] = np.uint64((1 << rem) - 1)
        mask[full + 1:] = 0
    return mask


def pack_operands(values: np.ndarray, width: int) -> np.ndarray:
    """Bit-slice integer operands into packed lane words.

    Returns a ``(width, ceil(V / 64))`` ``uint64`` array: row ``i`` holds
    bit ``i`` of every operand, with operand ``j`` in bit lane ``j % 64``
    of word ``j // 64``.  Lanes past the last operand are zero.
    """
    if width > WORD_BITS:
        raise ValueError(f"bus width {width} exceeds {WORD_BITS} bits")
    flat = np.asarray(values, dtype=np.int64).ravel()
    if flat.size and (np.any(flat < 0) or np.any(flat >> width != 0)):
        raise ValueError(f"operands do not fit in {width} bits")
    return _pack_words(flat.view(np.uint64))[:width]


def unpack_lanes(rows: List[np.ndarray], count: int) -> np.ndarray:
    """Inverse of :func:`pack_operands` for one output bus.

    ``rows`` are packed lane words, LSB-first; the result is an ``int64``
    array of ``count`` bus values (bit ``i`` taken from ``rows[i]``).
    """
    if len(rows) > WORD_BITS:
        raise ValueError(f"bus width {len(rows)} exceeds {WORD_BITS} bits")
    nwords = rows[0].shape[0] if len(rows) else 1
    mat = np.zeros((WORD_BITS, nwords), dtype=np.uint64)
    for i, row in enumerate(rows):
        mat[i] = row
    return _unpack_words(mat, count).view(np.int64)


# --------------------------------------------------------------------------- #
# Codegen
# --------------------------------------------------------------------------- #

def _gate_expression(op: Op, operands: List[str]) -> str:
    """The packed-word NumPy expression evaluating one gate."""
    if op is Op.BUF:
        return operands[0]
    if op is Op.NOT:
        return f"~{operands[0]}"
    if op is Op.MUX:
        sel, d0, d1 = operands
        return f"({sel} & {d1}) | (~{sel} & {d0})"
    joiner = {Op.AND: " & ", Op.NAND: " & ",
              Op.OR: " | ", Op.NOR: " | ",
              Op.XOR: " ^ ", Op.XNOR: " ^ "}[op]
    body = joiner.join(operands)
    if op in (Op.NAND, Op.NOR, Op.XNOR):
        return f"~({body})"
    return body


def _bus_offsets(widths: Dict[str, int]) -> Optional[Dict[str, int]]:
    """Bit offsets packing several buses into one 64-bit word, if they fit."""
    if sum(widths.values()) > WORD_BITS:
        return None
    offsets, position = {}, 0
    for bus, width in widths.items():
        offsets[bus] = position
        position += width
    return offsets


class CompiledKernel:
    """A netlist compiled to per-level straight-line bit-sliced functions.

    Instances are built by :func:`compile_netlist`; simulation entry
    points are :meth:`run` (all output buses) and :meth:`run_bus`.  The
    generated module source is kept on :attr:`source` for inspection.
    """

    def __init__(self, name: str, key: str,
                 input_buses: Dict[str, int],
                 input_slots: Dict[str, Tuple[int, ...]],
                 output_buses: Dict[str, Tuple[int, ...]],
                 const_slots: Tuple[Tuple[int, int], ...],
                 force_points: Dict[str, Tuple[int, int]],
                 levels: Tuple[object, ...],
                 n_slots: int, gate_count: int, source: str) -> None:
        self.name = name
        self.key = key
        self.input_buses = dict(input_buses)
        self._input_slots = input_slots
        self.output_buses = {bus: tuple(slots)
                             for bus, slots in output_buses.items()}
        self._const_slots = const_slots
        self._force_points = force_points
        self._levels = levels
        self._n_slots = n_slots
        self.gate_count = gate_count
        self.source = source
        # Bus → bit offset inside the shared 64-bit transpose matrix.  When
        # all input (output) buses fit in one word, packing (unpacking)
        # them costs a single butterfly instead of one per bus.
        self._in_offsets = _bus_offsets(
            {bus: width for bus, width in self.input_buses.items()})
        self._out_offsets = _bus_offsets(
            {bus: len(slots) for bus, slots in self.output_buses.items()})

    @property
    def levels(self) -> int:
        """Number of logic levels (compiled functions)."""
        return len(self._levels)

    def _force_plan(self, force: Mapping[str, int]
                    ) -> Dict[int, List[Tuple[int, int]]]:
        plan: Dict[int, List[Tuple[int, int]]] = {}
        for net, stuck_at in force.items():
            if net not in self._force_points:
                raise KeyError(f"no net {net!r} in compiled netlist")
            if stuck_at not in (0, 1):
                raise ValueError(f"stuck_at must be 0 or 1, got {stuck_at}")
            level, slot = self._force_points[net]
            plan.setdefault(level, []).append((slot, stuck_at))
        return plan

    def run(self, stimulus: Stimulus,
            force: Optional[Mapping[str, int]] = None
            ) -> Dict[str, np.ndarray]:
        """Evaluate every output bus for the given input-bus stimulus.

        Mirrors :func:`repro.rtl.sim.simulate_bus` semantics bus-wise:
        stimulus values are ints or int arrays (broadcast together), the
        result maps each output bus to packed integer words of the
        broadcast shape.  ``force`` ties nets to stuck-at constants after
        their level evaluates (see the module docstring).
        """
        missing = set(self.input_buses) - set(stimulus)
        if missing:
            raise KeyError(f"stimulus missing input buses: {sorted(missing)}")
        extra = set(stimulus) - set(self.input_buses)
        if extra:
            raise KeyError(f"stimulus names unknown buses: {sorted(extra)}")

        with obs.span("rtl.compile.run"):
            arrays = {bus: np.asarray(stimulus[bus], dtype=np.int64)
                      for bus in self.input_buses}
            shape = np.broadcast_shapes(*(a.shape for a in arrays.values()))
            count = 1
            for dim in shape:
                count *= dim

            flats: Dict[str, np.ndarray] = {}
            for bus, width in self.input_buses.items():
                word = np.broadcast_to(arrays[bus], shape).ravel()
                if word.size and (np.any(word < 0)
                                  or np.any(word >> width != 0)):
                    raise ValueError(
                        f"stimulus for bus {bus!r} does not fit in "
                        f"{width} bits")
                flats[bus] = word.view(np.uint64)

            packed: Dict[str, np.ndarray] = {}
            if self._in_offsets is not None and len(flats) > 1:
                combined = np.zeros(count, dtype=np.uint64)
                for bus, offset in self._in_offsets.items():
                    combined |= flats[bus] << np.uint64(offset)
                mat = _pack_words(combined)
                for bus, offset in self._in_offsets.items():
                    packed[bus] = mat[offset:offset + self.input_buses[bus]]
            else:
                for bus, width in self.input_buses.items():
                    packed[bus] = _pack_words(flats[bus])[:width]

            v = self._evaluate(packed, count, force)

            if self._out_offsets is not None:
                nwords = max(1, -(-count // WORD_BITS))
                mat = np.zeros((WORD_BITS, nwords), dtype=np.uint64)
                for bus, offset in self._out_offsets.items():
                    for i, slot in enumerate(self.output_buses[bus]):
                        mat[offset + i] = v[slot]
                values = _unpack_words(mat, count)
                outputs = {}
                for bus, offset in self._out_offsets.items():
                    width = len(self.output_buses[bus])
                    mask = np.uint64((1 << width) - 1)
                    outputs[bus] = ((values >> np.uint64(offset)) & mask
                                    ).view(np.int64).reshape(shape)
            else:
                outputs = {
                    bus: unpack_lanes([v[slot] for slot in slots],
                                      count).reshape(shape)
                    for bus, slots in self.output_buses.items()
                }
        return outputs

    def run_packed(self, packed: Mapping[str, np.ndarray],
                   force: Optional[Mapping[str, int]] = None
                   ) -> Dict[str, np.ndarray]:
        """Evaluate entirely in the packed-lane domain.

        ``packed`` maps each input bus to its ``(width, nwords)`` lane
        matrix (see :func:`pack_operands`); the result maps each output
        bus to a freshly stacked ``(width, nwords)`` lane matrix.  This
        skips both transposes, which is what lets fault campaigns and
        repeated sweeps pay for packing once and reuse it across every
        kernel invocation.
        """
        missing = set(self.input_buses) - set(packed)
        if missing:
            raise KeyError(f"packed stimulus missing input buses: "
                           f"{sorted(missing)}")
        rows: Dict[str, np.ndarray] = {}
        nwords = None
        for bus, width in self.input_buses.items():
            mat = np.asarray(packed[bus], dtype=np.uint64)
            if mat.ndim != 2 or mat.shape[0] != width:
                raise ValueError(
                    f"packed bus {bus!r} must have shape ({width}, nwords), "
                    f"got {mat.shape}")
            if nwords is None:
                nwords = mat.shape[1]
            elif mat.shape[1] != nwords:
                raise ValueError("packed input buses disagree on word count")
            rows[bus] = mat
        count = (nwords or 1) * WORD_BITS
        v = self._evaluate(rows, count, force)
        return {bus: np.stack([v[slot] for slot in slots])
                for bus, slots in self.output_buses.items()}

    def _evaluate(self, packed: Mapping[str, np.ndarray], count: int,
                  force: Optional[Mapping[str, int]]
                  ) -> List[Optional[np.ndarray]]:
        """Fill the slot array from packed inputs and run every level."""
        nwords = max(1, -(-count // WORD_BITS))
        v: List[Optional[np.ndarray]] = [None] * self._n_slots
        zeros = np.zeros(nwords, dtype=np.uint64)
        ones = ~zeros
        for slot, value in self._const_slots:
            v[slot] = ones if value else zeros
        for bus, mat in packed.items():
            for i, slot in enumerate(self._input_slots[bus]):
                v[slot] = mat[i]

        plan = self._force_plan(force) if force else {}
        for slot, value in plan.get(0, ()):
            v[slot] = ones if value else zeros
        for level, fn in enumerate(self._levels, start=1):
            fn(v)
            for slot, value in plan.get(level, ()):
                v[slot] = ones if value else zeros

        if obs.enabled():
            obs.count("rtl.compile.runs")
            obs.count("rtl.compile.gate_evals", self.gate_count * count)
            obs.count("rtl.compile.word_ops", self.gate_count * nwords)
        return v

    def run_bus(self, stimulus: Stimulus, bus: str,
                force: Optional[Mapping[str, int]] = None) -> np.ndarray:
        """Evaluate and return one output bus as packed integer words."""
        if bus not in self.output_buses:
            raise KeyError(f"unknown output bus {bus!r}; "
                           f"have {sorted(self.output_buses)}")
        return self.run(stimulus, force=force)[bus]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CompiledKernel({self.name!r}, gates={self.gate_count}, "
                f"levels={self.levels}, slots={self._n_slots})")


def compile_netlist(netlist: Netlist, key: str = "") -> CompiledKernel:
    """Compile one netlist to a fresh :class:`CompiledKernel` (uncached).

    Most callers want :func:`compiled_kernel`, which adds the
    fingerprint-keyed cache; this is the pure compilation step.
    """
    with obs.span("rtl.compile.build"):
        slot_of: Dict[str, int] = {}
        force_points: Dict[str, Tuple[int, int]] = {}
        const_slots: List[Tuple[int, int]] = []
        lines: List[str] = []
        gate_count = 0
        levels = netlist.topological_levels()
        for level, gates in enumerate(levels):
            if level > 0:
                lines.append(f"def _level_{level}(v):")
            for gate in gates:
                slot = slot_of[gate.output] = len(slot_of)
                force_points[gate.output] = (level, slot)
                if gate.op is Op.INPUT:
                    continue
                if gate.op in (Op.CONST0, Op.CONST1):
                    const_slots.append((slot, 1 if gate.op is Op.CONST1
                                        else 0))
                    continue
                gate_count += 1
                operands = [f"v[{slot_of[net]}]" for net in gate.inputs]
                lines.append(
                    f"    v[{slot}] = {_gate_expression(gate.op, operands)}")

        source = "\n".join(lines) + "\n" if lines else ""
        namespace: Dict[str, object] = {}
        exec(compile(source, f"<bitslice:{netlist.name}>", "exec"), namespace)
        level_fns = tuple(namespace[f"_level_{i}"]
                          for i in range(1, len(levels)))

        input_slots = {
            bus: tuple(slot_of[net] for net in netlist.input_nets(bus))
            for bus in netlist.input_buses
        }
        output_buses = {
            bus: tuple(slot_of[net] for net in nets)
            for bus, nets in netlist.output_buses.items()
        }
        obs.count("rtl.compile.compiled")
        obs.count("rtl.compile.compiled_gates", gate_count)
        return CompiledKernel(
            name=netlist.name, key=key,
            input_buses=dict(netlist.input_buses),
            input_slots=input_slots,
            output_buses=output_buses,
            const_slots=tuple(const_slots),
            force_points=force_points,
            levels=level_fns,
            n_slots=len(slot_of),
            gate_count=gate_count,
            source=source,
        )


# --------------------------------------------------------------------------- #
# The fingerprint-keyed kernel cache
# --------------------------------------------------------------------------- #

#: Process-wide compiled kernels by :func:`kernel_key`.  Worker processes
#: of the engine pool fill their own copy on first use, so kernels are
#: compiled once per (fingerprint, process), never per shard.
_KERNEL_CACHE: Dict[str, CompiledKernel] = {}


def kernel_key(source: object) -> str:
    """Cache key of a spec or adder model: the fingerprint, version-tagged.

    Specs and spec-derived models share ``spec/v1`` fingerprints, so a
    catalog family compiles exactly once however it reaches the cache;
    bespoke models key on their own fingerprint.
    """
    fingerprint = getattr(source, "fingerprint", None)
    if callable(fingerprint):
        fingerprint = fingerprint()
    if not isinstance(fingerprint, str) or not fingerprint:
        raise TypeError(
            f"{type(source).__name__} has no fingerprint to key a compiled "
            "kernel on; use compile_netlist() for raw netlists")
    return f"compiled/v{COMPILE_VERSION}:{fingerprint}"


def _netlist_of(source: object) -> Optional[Netlist]:
    build = getattr(source, "to_netlist", None) or getattr(
        source, "build_netlist", None)
    return build() if callable(build) else None


def compiled_kernel(source: object) -> CompiledKernel:
    """The cached compiled kernel of an :class:`~repro.spec.ir.AdderSpec`
    or netlist-bearing :class:`~repro.adders.base.AdderModel`.

    Keyed by :func:`kernel_key`: byte-identical specs (equal fingerprints)
    share one compiled function object; any mutation — a
    ``dataclasses.replace`` producing a new fingerprint — misses the cache
    and recompiles.  Raises :class:`ValueError` when the source has no
    gate-level netlist.
    """
    key = kernel_key(source)
    kernel = _KERNEL_CACHE.get(key)
    if kernel is not None:
        obs.count("rtl.compile.cache_hits")
        return kernel
    obs.count("rtl.compile.cache_misses")
    netlist = _netlist_of(source)
    if netlist is None:
        raise ValueError(
            f"{getattr(source, 'name', type(source).__name__)!r} has no "
            "gate-level netlist to compile")
    kernel = compile_netlist(netlist, key=key)
    _KERNEL_CACHE[key] = kernel
    return kernel


def clear_kernel_cache() -> None:
    """Drop every cached kernel (test isolation hook)."""
    _KERNEL_CACHE.clear()


def kernel_cache_size() -> int:
    """Number of kernels currently cached in this process."""
    return len(_KERNEL_CACHE)


# --------------------------------------------------------------------------- #
# The engine-facing adder view
# --------------------------------------------------------------------------- #

class CompiledAdder:
    """An adder model whose ``add()`` runs the compiled netlist kernel.

    This is what the engine's ``compiled`` backend substitutes for the
    behavioural model inside a sampling request: same name and width, the
    analytic error bounds delegated to the wrapped model, but every sum
    computed by bit-sliced gate-level simulation.  The instance is
    picklable (it carries only the wrapped model); each engine pool
    worker compiles or reuses the kernel from its own process cache.
    """

    def __init__(self, model: object) -> None:
        if _netlist_of(model) is None:
            raise ValueError(
                f"adder {getattr(model, 'name', '?')!r} has no gate-level "
                "netlist model")
        self.model = model
        self.width = model.width
        self.name = model.name
        # Expose the analytic error bound only when the wrapped model has
        # one: the engine probes with getattr and calls whatever it finds.
        bound = getattr(model, "max_error_distance", None)
        if callable(bound):
            self.max_error_distance = bound

    @property
    def out_width(self) -> int:
        return self.model.out_width

    def add(self, a, b):
        """Sum bus ``S`` of the compiled netlist for the operand batch."""
        return compiled_kernel(self.model).run({"A": a, "B": b})["S"]

    def error_distance(self, a, b):
        diff = self.add(a, b) - (np.asarray(a, dtype=np.int64)
                                 + np.asarray(b, dtype=np.int64))
        return np.abs(diff)

    def fingerprint(self) -> str:
        """The kernel cache key — disjoint from the behavioural model's
        fingerprint, so compiled shard partials can never collide with
        sampled ones in the engine cache."""
        return kernel_key(self.model)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompiledAdder({self.model!r})"
