"""Switching-activity-based dynamic power estimation.

The paper's introduction motivates approximate adders with
performance/power benefits; this module quantifies the power half for our
netlists the standard way: dynamic energy ∝ Σ_nets C_net · toggles_net.

The netlist is simulated over a stream of random operand vectors; every
net's toggle count is weighted by an effective capacitance composed of the
driving gate's output capacitance plus a wire term per fanout.  Gates on
the dedicated carry chain see much smaller capacitance (short dedicated
routes), mirroring how the delay model treats them.

Scores are relative (arbitrary units): valid for comparing adders against
each other under the same vector stream, which is all the benches need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.adders.base import AdderModel
from repro.rtl.gates import Op
from repro.rtl.netlist import Netlist
from repro.rtl.sim import simulate
from repro.utils.validation import check_pos_int

#: Relative output capacitance per gate class (arbitrary units).
GATE_CAPACITANCE = {
    "carry": 0.2,  # dedicated carry-chain cell, short route
    "mux": 1.0,
    "logic": 1.0,
    "input": 1.2,  # operand distribution network
}
#: Additional wire capacitance per fanout endpoint.
WIRE_CAPACITANCE = 0.3


@dataclass(frozen=True)
class SwitchingReport:
    """Dynamic-activity summary of one netlist under one vector stream."""

    name: str
    vectors: int
    total_toggles: int
    energy_score: float
    toggles_per_net: Dict[str, int]

    @property
    def mean_toggle_rate(self) -> float:
        """Average toggles per net per vector transition."""
        transitions = self.vectors - 1
        if transitions <= 0 or not self.toggles_per_net:
            return 0.0
        return self.total_toggles / (len(self.toggles_per_net) * transitions)

    @property
    def energy_per_op(self) -> float:
        """Energy score normalised per addition."""
        transitions = self.vectors - 1
        return self.energy_score / transitions if transitions > 0 else 0.0


def _capacitance(netlist: Netlist, net: str, fanout: Dict[str, int]) -> float:
    gate = netlist.gates[net]
    if gate.op is Op.INPUT:
        base = GATE_CAPACITANCE["input"]
    elif gate.group == "carry":
        base = GATE_CAPACITANCE["carry"]
    elif gate.op is Op.MUX:
        base = GATE_CAPACITANCE["mux"]
    else:
        base = GATE_CAPACITANCE["logic"]
    return base + WIRE_CAPACITANCE * fanout.get(net, 0)


def switching_activity(
    netlist: Netlist,
    stimulus: Dict[str, np.ndarray],
    name: Optional[str] = None,
) -> SwitchingReport:
    """Toggle counts and energy score for a stream of input vectors.

    Args:
        netlist: circuit to evaluate.
        stimulus: maps each input bus to an *array* of vectors; consecutive
            entries form the transitions whose toggles are counted.
    """
    lengths = {np.asarray(v).shape[0] for v in stimulus.values()}
    if len(lengths) != 1:
        raise ValueError("all stimulus arrays must have equal length")
    vectors = lengths.pop()
    if vectors < 2:
        raise ValueError("need at least two vectors to observe toggles")

    values = simulate(netlist, stimulus)
    fanout = netlist.fanout_counts()
    toggles: Dict[str, int] = {}
    energy = 0.0
    for net, waveform in values.items():
        flips = int(np.count_nonzero(waveform[1:] != waveform[:-1]))
        toggles[net] = flips
        energy += flips * _capacitance(netlist, net, fanout)
    return SwitchingReport(
        name=name or netlist.name,
        vectors=vectors,
        total_toggles=sum(toggles.values()),
        energy_score=energy,
        toggles_per_net=toggles,
    )


def characterize_power(
    adder: AdderModel,
    samples: int = 4000,
    seed: int = 2015,
) -> SwitchingReport:
    """Energy score of an adder under uniform random operand streams."""
    check_pos_int("samples", samples)
    netlist = adder.build_netlist()
    if netlist is None:
        raise ValueError(f"{adder.name} does not provide a netlist model")
    from repro.rtl.opt import optimize

    netlist = optimize(netlist)
    rng = np.random.default_rng(seed)
    stimulus = {
        bus: rng.integers(0, 1 << width, size=samples, dtype=np.int64)
        for bus, width in netlist.input_buses.items()
    }
    return switching_activity(netlist, stimulus, name=adder.name)
