"""Parser for the structural Verilog subset emitted by :mod:`repro.rtl.verilog`.

Grammar (whitespace/comments insignificant)::

    module    := "module" ID "(" portdecl ("," portdecl)* ")" ";"
                 item* "endmodule"
    portdecl  := ("input" | "output") "[" NUM ":" NUM "]" ID
    item      := "wire" ID ("," ID)* ";"
               | "assign" lvalue "=" expr ";"
    lvalue    := ID | ID "[" NUM "]"
    expr      := or ("?" expr ":" expr)?          (right associative)
    or        := xor ("|" xor)*
    xor       := and ("^" and)*
    and       := unary ("&" unary)*
    unary     := "~" unary | primary
    primary   := "1'b0" | "1'b1" | lvalue | "(" expr ")"

The result is rebuilt into a :class:`~repro.rtl.netlist.Netlist`, so a
round-trip ``parse_verilog(to_verilog(nl))`` can be simulated and checked
for bit-exact equivalence against the original.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, List, Optional, Tuple

from repro.rtl.gates import Op
from repro.rtl.netlist import Netlist

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<comment>//[^\n]*)"
    r"|(?P<literal>1'b[01])"
    r"|(?P<id>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<num>\d+)"
    r"|(?P<sym>[\[\]():;,=?~&|^])"
    r")"
)

_KEYWORDS = frozenset({"module", "endmodule", "input", "output", "wire", "assign"})


class VerilogSyntaxError(ValueError):
    """Raised when the source does not conform to the emitted subset."""


class _Tokens:
    def __init__(self, source: str) -> None:
        self.items: List[Tuple[str, str]] = []
        pos = 0
        while pos < len(source):
            m = _TOKEN_RE.match(source, pos)
            if m is None:
                if source[pos:].strip():
                    raise VerilogSyntaxError(
                        f"unexpected character {source[pos]!r} at offset {pos}"
                    )
                break
            pos = m.end()
            kind = m.lastgroup
            if kind is None:
                continue
            if kind == "comment":
                # Only structured group tags are kept; prose comments drop.
                text = m.group(kind)[2:].strip()
                if text.startswith("group:"):
                    self.items.append(("group_tag", text[len("group:"):]))
                continue
            self.items.append((kind, m.group(kind)))
        self.index = 0

    def peek(self) -> Tuple[str, str]:
        if self.index >= len(self.items):
            return ("eof", "")
        return self.items[self.index]

    def next(self) -> Tuple[str, str]:
        tok = self.peek()
        self.index += 1
        return tok

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        got_kind, got_value = self.next()
        if got_kind != kind or (value is not None and got_value != value):
            raise VerilogSyntaxError(
                f"expected {value or kind!r}, got {got_value!r} ({got_kind})"
            )
        return got_value

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[str]:
        got_kind, got_value = self.peek()
        if got_kind == kind and (value is None or got_value == value):
            self.index += 1
            return got_value
        return None


class _Parser:
    """Recursive-descent parser building a netlist on the fly."""

    def __init__(self, source: str) -> None:
        self.tokens = _Tokens(source)
        self.netlist: Optional[Netlist] = None
        self.output_widths: Dict[str, int] = {}
        # assigned[name] = net in the netlist providing that wire's value
        self.assigned: Dict[str, str] = {}
        self.declared_wires: set = set()

    # Module structure ---------------------------------------------------

    def parse(self) -> Netlist:
        self.tokens.expect("id", "module")
        name = self.tokens.expect("id")
        self.netlist = Netlist(name)
        self.tokens.expect("sym", "(")
        self._parse_portdecl()
        while self.tokens.accept("sym", ","):
            self._parse_portdecl()
        self.tokens.expect("sym", ")")
        self.tokens.expect("sym", ";")

        output_bits: Dict[str, Dict[int, str]] = {b: {} for b in self.output_widths}
        while True:
            kind, value = self.tokens.peek()
            if kind == "id" and value == "endmodule":
                self.tokens.next()
                break
            if kind == "id" and value == "wire":
                self.tokens.next()
                self._parse_wiredecl()
            elif kind == "id" and value == "assign":
                self.tokens.next()
                self._parse_assign(output_bits)
            else:
                raise VerilogSyntaxError(f"unexpected token {value!r} in module body")

        for bus, width in self.output_widths.items():
            missing = [i for i in range(width) if i not in output_bits[bus]]
            if missing:
                raise VerilogSyntaxError(f"output {bus} bits never assigned: {missing}")
            self.netlist.set_output_bus(bus, [output_bits[bus][i] for i in range(width)])
        if self.tokens.peek()[0] != "eof":
            raise VerilogSyntaxError("trailing tokens after endmodule")
        return self.netlist

    def _parse_portdecl(self) -> None:
        direction = self.tokens.expect("id")
        if direction not in ("input", "output"):
            raise VerilogSyntaxError(f"expected port direction, got {direction!r}")
        self.tokens.expect("sym", "[")
        high = int(self.tokens.expect("num"))
        self.tokens.expect("sym", ":")
        low = int(self.tokens.expect("num"))
        self.tokens.expect("sym", "]")
        name = self.tokens.expect("id")
        if low != 0:
            raise VerilogSyntaxError(f"port {name}: only [H:0] ranges supported")
        width = high + 1
        assert self.netlist is not None
        if direction == "input":
            self.netlist.add_input_bus(name, width)
        else:
            self.output_widths[name] = width

    def _parse_wiredecl(self) -> None:
        while True:
            self.declared_wires.add(self.tokens.expect("id"))
            if not self.tokens.accept("sym", ","):
                break
        self.tokens.expect("sym", ";")

    def _parse_assign(self, output_bits: Dict[str, Dict[int, str]]) -> None:
        name = self.tokens.expect("id")
        index: Optional[int] = None
        if self.tokens.accept("sym", "["):
            index = int(self.tokens.expect("num"))
            self.tokens.expect("sym", "]")
        self.tokens.expect("sym", "=")
        net = self._parse_expr()
        self.tokens.expect("sym", ";")
        group = self.tokens.accept("group_tag")
        if group is not None:
            assert self.netlist is not None
            gate = self.netlist.gates.get(net)
            if gate is not None and not gate.is_source:
                self.netlist.gates[net] = dataclasses.replace(gate, group=group)

        if name in self.output_widths:
            if index is None:
                raise VerilogSyntaxError(f"output {name} must be assigned per bit")
            if not 0 <= index < self.output_widths[name]:
                raise VerilogSyntaxError(f"output bit {name}[{index}] out of range")
            if index in output_bits[name]:
                raise VerilogSyntaxError(f"output bit {name}[{index}] assigned twice")
            output_bits[name][index] = net
            return
        if index is not None:
            raise VerilogSyntaxError(f"cannot assign indexed wire {name}[{index}]")
        if name in self.assigned:
            raise VerilogSyntaxError(f"wire {name} assigned twice")
        self.assigned[name] = net

    # Expressions ---------------------------------------------------------

    def _parse_expr(self) -> str:
        cond = self._parse_or()
        if self.tokens.accept("sym", "?"):
            d1 = self._parse_expr()
            self.tokens.expect("sym", ":")
            d0 = self._parse_expr()
            assert self.netlist is not None
            return self.netlist.add_gate(Op.MUX, (cond, d0, d1))
        return cond

    def _parse_binary(self, symbol: str, op: Op, parse_operand) -> str:
        operands = [parse_operand()]
        while self.tokens.accept("sym", symbol):
            operands.append(parse_operand())
        if len(operands) == 1:
            return operands[0]
        assert self.netlist is not None
        return self.netlist.add_gate(op, tuple(operands))

    def _parse_or(self) -> str:
        return self._parse_binary("|", Op.OR, self._parse_xor)

    def _parse_xor(self) -> str:
        return self._parse_binary("^", Op.XOR, self._parse_and)

    def _parse_and(self) -> str:
        return self._parse_binary("&", Op.AND, self._parse_unary)

    def _parse_unary(self) -> str:
        if self.tokens.accept("sym", "~"):
            net = self._parse_unary()
            assert self.netlist is not None
            return self.netlist.add_gate(Op.NOT, (net,))
        return self._parse_primary()

    def _parse_primary(self) -> str:
        assert self.netlist is not None
        if self.tokens.accept("sym", "("):
            net = self._parse_expr()
            self.tokens.expect("sym", ")")
            return net
        kind, value = self.tokens.peek()
        if kind == "literal":
            self.tokens.next()
            return self.netlist.const(1 if value.endswith("1") else 0)
        name = self.tokens.expect("id")
        if name in _KEYWORDS:
            raise VerilogSyntaxError(f"keyword {name!r} used as identifier")
        if self.tokens.accept("sym", "["):
            index = int(self.tokens.expect("num"))
            self.tokens.expect("sym", "]")
            if name not in self.netlist.input_buses:
                raise VerilogSyntaxError(f"indexed reference to non-input bus {name!r}")
            if not 0 <= index < self.netlist.input_buses[name]:
                raise VerilogSyntaxError(f"input bit {name}[{index}] out of range")
            return f"{name}[{index}]"
        if name in self.assigned:
            return self.assigned[name]
        raise VerilogSyntaxError(f"reference to unassigned wire {name!r}")


def parse_verilog(source: str) -> Netlist:
    """Parse a module in the emitted structural subset back to a netlist.

    Wires must be assigned before use (the emitter writes assigns in
    topological order, so this always holds for round-trips).
    """
    return _Parser(source).parse()
