"""Parser for the structural Verilog subset emitted by :mod:`repro.rtl.verilog`.

Grammar (whitespace/comments insignificant)::

    module    := "module" ID "(" portdecl ("," portdecl)* ")" ";"
                 item* "endmodule"
    portdecl  := ("input" | "output") "[" NUM ":" NUM "]" ID
    item      := "wire" ID ("," ID)* ";"
               | "assign" lvalue "=" expr ";"
    lvalue    := ID | ID "[" NUM "]"
    expr      := or ("?" expr ":" expr)?          (right associative)
    or        := xor ("|" xor)*
    xor       := and ("^" and)*
    and       := unary ("&" unary)*
    unary     := "~" unary | primary
    primary   := "1'b0" | "1'b1" | lvalue | "(" expr ")"

The result is rebuilt into a :class:`~repro.rtl.netlist.Netlist`, so a
round-trip ``parse_verilog(to_verilog(nl))`` can be simulated and checked
for bit-exact equivalence against the original.

Every token carries its (line, column) position; syntax errors report the
offending location, and each net created while parsing is recorded in
``Netlist.source_locations`` so lint diagnostics on parsed files can point
back into the ``.v`` text.
"""

from __future__ import annotations

import bisect
import dataclasses
import re
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.rtl.gates import Op
from repro.rtl.netlist import Netlist

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<comment>//[^\n]*)"
    r"|(?P<literal>1'b[01])"
    r"|(?P<id>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<num>\d+)"
    r"|(?P<sym>[\[\]():;,=?~&|^])"
    r")"
)

_KEYWORDS = frozenset({"module", "endmodule", "input", "output", "wire", "assign"})


class VerilogSyntaxError(ValueError):
    """Raised when the source does not conform to the emitted subset.

    Attributes ``line`` and ``column`` carry the 1-based source position of
    the offending token when it is known, ``None`` otherwise.
    """

    def __init__(self, message: str, line: Optional[int] = None,
                 column: Optional[int] = None) -> None:
        if line is not None:
            message = f"line {line}, col {column}: {message}"
        super().__init__(message)
        self.line = line
        self.column = column


class Token(NamedTuple):
    """One lexed token with its 1-based source position."""

    kind: str
    value: str
    line: int
    column: int


class _Tokens:
    def __init__(self, source: str) -> None:
        # Offsets of line starts, for offset -> (line, col) translation.
        self._line_starts = [0]
        for m in re.finditer(r"\n", source):
            self._line_starts.append(m.end())
        self.items: List[Token] = []
        pos = 0
        while pos < len(source):
            m = _TOKEN_RE.match(source, pos)
            if m is None:
                rest = source[pos:].strip()
                if rest:
                    offset = pos + source[pos:].index(rest[0])
                    line, col = self._locate(offset)
                    raise VerilogSyntaxError(
                        f"unexpected character {rest[0]!r}", line, col
                    )
                break
            pos = m.end()
            kind = m.lastgroup
            if kind is None:
                continue
            line, col = self._locate(m.start(kind))
            if kind == "comment":
                # Only structured group tags are kept; prose comments drop.
                text = m.group(kind)[2:].strip()
                if text.startswith("group:"):
                    self.items.append(
                        Token("group_tag", text[len("group:"):], line, col)
                    )
                continue
            self.items.append(Token(kind, m.group(kind), line, col))
        end_line, end_col = self._locate(len(source))
        self._eof = Token("eof", "", end_line, end_col)
        self.index = 0

    def _locate(self, offset: int) -> Tuple[int, int]:
        row = bisect.bisect_right(self._line_starts, offset) - 1
        return row + 1, offset - self._line_starts[row] + 1

    def peek(self) -> Token:
        if self.index >= len(self.items):
            return self._eof
        return self.items[self.index]

    def next(self) -> Token:
        tok = self.peek()
        self.index += 1
        return tok

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        tok = self.next()
        if tok.kind != kind or (value is not None and tok.value != value):
            raise VerilogSyntaxError(
                f"expected {value or kind!r}, got {tok.value!r} ({tok.kind})",
                tok.line, tok.column,
            )
        return tok.value

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[str]:
        tok = self.peek()
        if tok.kind == kind and (value is None or tok.value == value):
            self.index += 1
            return tok.value
        return None


class _Parser:
    """Recursive-descent parser building a netlist on the fly."""

    def __init__(self, source: str) -> None:
        self.tokens = _Tokens(source)
        self.netlist: Optional[Netlist] = None
        self.output_widths: Dict[str, int] = {}
        # assigned[name] = net in the netlist providing that wire's value
        self.assigned: Dict[str, str] = {}
        self.declared_wires: set = set()
        # Location of the statement currently being parsed; every gate the
        # statement creates is attributed to it in source_locations.
        self._stmt_loc: Optional[Tuple[int, int]] = None

    def _new_gate(self, op: Op, inputs: Tuple[str, ...]) -> str:
        assert self.netlist is not None
        net = self.netlist.add_gate(op, inputs)
        if self._stmt_loc is not None:
            self.netlist.source_locations[net] = self._stmt_loc
        return net

    def _const(self, value: int) -> str:
        assert self.netlist is not None
        existed = f"const{value}" in self.netlist.gates
        net = self.netlist.const(value)
        if not existed and self._stmt_loc is not None:
            self.netlist.source_locations[net] = self._stmt_loc
        return net

    # Module structure ---------------------------------------------------

    def parse(self) -> Netlist:
        self.tokens.expect("id", "module")
        name_tok = self.tokens.peek()
        name = self.tokens.expect("id")
        try:
            self.netlist = Netlist(name)
        except ValueError as exc:
            raise VerilogSyntaxError(str(exc), name_tok.line,
                                     name_tok.column) from None
        self.tokens.expect("sym", "(")
        self._parse_portdecl()
        while self.tokens.accept("sym", ","):
            self._parse_portdecl()
        self.tokens.expect("sym", ")")
        self.tokens.expect("sym", ";")

        output_bits: Dict[str, Dict[int, str]] = {b: {} for b in self.output_widths}
        while True:
            tok = self.tokens.peek()
            if tok.kind == "id" and tok.value == "endmodule":
                self.tokens.next()
                break
            if tok.kind == "id" and tok.value == "wire":
                self.tokens.next()
                self._parse_wiredecl()
            elif tok.kind == "id" and tok.value == "assign":
                self.tokens.next()
                self._stmt_loc = (tok.line, tok.column)
                self._parse_assign(output_bits)
                self._stmt_loc = None
            else:
                raise VerilogSyntaxError(
                    f"unexpected token {tok.value!r} in module body",
                    tok.line, tok.column,
                )

        for bus, width in self.output_widths.items():
            missing = [i for i in range(width) if i not in output_bits[bus]]
            if missing:
                raise VerilogSyntaxError(f"output {bus} bits never assigned: {missing}")
            self.netlist.set_output_bus(bus, [output_bits[bus][i] for i in range(width)])
        tok = self.tokens.peek()
        if tok.kind != "eof":
            raise VerilogSyntaxError("trailing tokens after endmodule",
                                     tok.line, tok.column)
        return self.netlist

    def _parse_portdecl(self) -> None:
        tok = self.tokens.peek()
        direction = self.tokens.expect("id")
        if direction not in ("input", "output"):
            raise VerilogSyntaxError(f"expected port direction, got {direction!r}",
                                     tok.line, tok.column)
        self.tokens.expect("sym", "[")
        high = int(self.tokens.expect("num"))
        self.tokens.expect("sym", ":")
        low = int(self.tokens.expect("num"))
        self.tokens.expect("sym", "]")
        name_tok = self.tokens.peek()
        name = self.tokens.expect("id")
        if low != 0:
            raise VerilogSyntaxError(f"port {name}: only [H:0] ranges supported",
                                     name_tok.line, name_tok.column)
        width = high + 1
        assert self.netlist is not None
        if direction == "input":
            for net in self.netlist.add_input_bus(name, width):
                self.netlist.source_locations[net] = (tok.line, tok.column)
        else:
            self.output_widths[name] = width

    def _parse_wiredecl(self) -> None:
        while True:
            self.declared_wires.add(self.tokens.expect("id"))
            if not self.tokens.accept("sym", ","):
                break
        self.tokens.expect("sym", ";")

    def _parse_assign(self, output_bits: Dict[str, Dict[int, str]]) -> None:
        name_tok = self.tokens.peek()
        name = self.tokens.expect("id")
        index: Optional[int] = None
        if self.tokens.accept("sym", "["):
            index = int(self.tokens.expect("num"))
            self.tokens.expect("sym", "]")
        self.tokens.expect("sym", "=")
        net = self._parse_expr()
        self.tokens.expect("sym", ";")
        group = self.tokens.accept("group_tag")
        if group is not None:
            assert self.netlist is not None
            gate = self.netlist.gates.get(net)
            if gate is not None and not gate.is_source:
                self.netlist.gates[net] = dataclasses.replace(gate, group=group)

        if name in self.output_widths:
            if index is None:
                raise VerilogSyntaxError(f"output {name} must be assigned per bit",
                                         name_tok.line, name_tok.column)
            if not 0 <= index < self.output_widths[name]:
                raise VerilogSyntaxError(f"output bit {name}[{index}] out of range",
                                         name_tok.line, name_tok.column)
            if index in output_bits[name]:
                raise VerilogSyntaxError(f"output bit {name}[{index}] assigned twice",
                                         name_tok.line, name_tok.column)
            output_bits[name][index] = net
            return
        if index is not None:
            raise VerilogSyntaxError(f"cannot assign indexed wire {name}[{index}]",
                                     name_tok.line, name_tok.column)
        if name in self.assigned:
            raise VerilogSyntaxError(f"wire {name} assigned twice",
                                     name_tok.line, name_tok.column)
        self.assigned[name] = net

    # Expressions ---------------------------------------------------------

    def _parse_expr(self) -> str:
        cond = self._parse_or()
        if self.tokens.accept("sym", "?"):
            d1 = self._parse_expr()
            self.tokens.expect("sym", ":")
            d0 = self._parse_expr()
            return self._new_gate(Op.MUX, (cond, d0, d1))
        return cond

    def _parse_binary(self, symbol: str, op: Op, parse_operand) -> str:
        operands = [parse_operand()]
        while self.tokens.accept("sym", symbol):
            operands.append(parse_operand())
        if len(operands) == 1:
            return operands[0]
        return self._new_gate(op, tuple(operands))

    def _parse_or(self) -> str:
        return self._parse_binary("|", Op.OR, self._parse_xor)

    def _parse_xor(self) -> str:
        return self._parse_binary("^", Op.XOR, self._parse_and)

    def _parse_and(self) -> str:
        return self._parse_binary("&", Op.AND, self._parse_unary)

    def _parse_unary(self) -> str:
        if self.tokens.accept("sym", "~"):
            net = self._parse_unary()
            return self._new_gate(Op.NOT, (net,))
        return self._parse_primary()

    def _parse_primary(self) -> str:
        assert self.netlist is not None
        if self.tokens.accept("sym", "("):
            net = self._parse_expr()
            self.tokens.expect("sym", ")")
            return net
        tok = self.tokens.peek()
        if tok.kind == "literal":
            self.tokens.next()
            return self._const(1 if tok.value.endswith("1") else 0)
        name = self.tokens.expect("id")
        if name in _KEYWORDS:
            raise VerilogSyntaxError(f"keyword {name!r} used as identifier",
                                     tok.line, tok.column)
        if self.tokens.accept("sym", "["):
            index = int(self.tokens.expect("num"))
            self.tokens.expect("sym", "]")
            if name not in self.netlist.input_buses:
                raise VerilogSyntaxError(
                    f"indexed reference to non-input bus {name!r}",
                    tok.line, tok.column,
                )
            if not 0 <= index < self.netlist.input_buses[name]:
                raise VerilogSyntaxError(f"input bit {name}[{index}] out of range",
                                         tok.line, tok.column)
            return f"{name}[{index}]"
        if name in self.assigned:
            return self.assigned[name]
        raise VerilogSyntaxError(f"reference to unassigned wire {name!r}",
                                 tok.line, tok.column)


def parse_verilog(source: str) -> Netlist:
    """Parse a module in the emitted structural subset back to a netlist.

    Wires must be assigned before use (the emitter writes assigns in
    topological order, so this always holds for round-trips).  The returned
    netlist's ``source_locations`` maps every created net to the (line,
    column) of the statement that produced it.
    """
    return _Parser(source).parse()
