"""Structural Verilog emission.

The paper releases its adders as synthesizable RTL; this module regenerates
equivalent RTL from our netlists.  The emitted subset is deliberately small
(ANSI module header, ``wire`` declarations, per-net ``assign`` statements)
so that :mod:`repro.rtl.verilog_parser` can parse it back for round-trip
equivalence checking.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.rtl.gates import Gate, Op
from repro.rtl.netlist import Netlist

_ID_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_BIT_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)\[(\d+)\]$")

_BINOP = {
    Op.AND: " & ",
    Op.OR: " | ",
    Op.XOR: " ^ ",
    Op.NAND: " & ",
    Op.NOR: " | ",
    Op.XNOR: " ^ ",
}
_INVERTED = frozenset((Op.NAND, Op.NOR, Op.XNOR))


def _net_ref(net: str, netlist: Netlist) -> str:
    """Verilog reference for a net: bus bit for input nets, identifier else."""
    m = _BIT_RE.match(net)
    if m and m.group(1) in netlist.input_buses:
        return net
    if not _ID_RE.match(net):
        raise ValueError(f"net name {net!r} is not emittable as a Verilog identifier")
    return net


def _gate_expr(gate: Gate, netlist: Netlist) -> str:
    refs = [_net_ref(n, netlist) for n in gate.inputs]
    if gate.op is Op.CONST0:
        return "1'b0"
    if gate.op is Op.CONST1:
        return "1'b1"
    if gate.op is Op.BUF:
        return refs[0]
    if gate.op is Op.NOT:
        return f"~{refs[0]}"
    if gate.op is Op.MUX:
        sel, d0, d1 = refs
        return f"{sel} ? {d1} : {d0}"
    expr = _BINOP[gate.op].join(refs)
    if gate.op in _INVERTED:
        return f"~({expr})"
    return expr


def to_verilog(netlist: Netlist) -> str:
    """Render ``netlist`` as a single structural Verilog module."""
    ports: List[str] = []
    for bus, width in sorted(netlist.input_buses.items()):
        ports.append(f"  input  [{width - 1}:0] {bus}")
    for bus, nets in sorted(netlist.output_buses.items()):
        ports.append(f"  output [{len(nets) - 1}:0] {bus}")

    lines: List[str] = [f"module {netlist.name} (", ",\n".join(ports), ");"]

    wires: List[str] = []
    assigns: List[str] = []
    for gate in netlist.topological_order():
        if gate.op is Op.INPUT:
            continue
        ref = _net_ref(gate.output, netlist)
        wires.append(ref)
        # Group tags (e.g. dedicated carry-chain membership) survive the
        # round-trip as structured trailing comments.
        tag = f"  // group:{gate.group}" if gate.group else ""
        assigns.append(f"  assign {ref} = {_gate_expr(gate, netlist)};{tag}")
    if wires:
        lines.append("  wire " + ", ".join(wires) + ";")
    lines.extend(assigns)

    for bus, nets in sorted(netlist.output_buses.items()):
        for i, net in enumerate(nets):
            lines.append(f"  assign {bus}[{i}] = {_net_ref(net, netlist)};")

    lines.append("endmodule")
    return "\n".join(lines) + "\n"
