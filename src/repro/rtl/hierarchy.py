"""Hierarchical Verilog: modular GeAr RTL and its elaborator.

The authors' released RTL is modular — one sub-adder entity instantiated k
times.  :func:`emit_gear_hierarchical` reproduces that shape: a gate-level
``<top>_sub`` module (one per distinct window length) plus a top module
that instantiates it per window, wires the operand slices, selects the
resultant bits and computes the §3.3 detection flags.

:func:`elaborate_hierarchical` parses that exact format back (module
splitting, instance stitching with part-select connections, vector
instance-output wires) into a flat :class:`~repro.rtl.netlist.Netlist`, so
the hierarchical artefact enjoys the same equivalence-check treatment as
the flat one.  The grammar is deliberately narrow — exactly what the
emitter produces — and every deviation raises
:class:`~repro.rtl.verilog_parser.VerilogSyntaxError`.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.core.gear import GeArConfig
from repro.rtl.builders import build_rca
from repro.rtl.gates import Op
from repro.rtl.netlist import Netlist
from repro.rtl.verilog import to_verilog
from repro.rtl.verilog_parser import VerilogSyntaxError, parse_verilog

_INSTANCE_RE = re.compile(
    r"^\s*(?P<module>[A-Za-z_]\w*)\s+(?P<inst>[A-Za-z_]\w*)\s*\("
    r"(?P<conns>[^;]*)\)\s*;\s*$"
)
_CONN_RE = re.compile(
    r"\.(?P<port>[A-Za-z_]\w*)\(\s*(?P<ref>[A-Za-z_]\w*(?:\[\d+(?::\d+)?\])?)\s*\)"
)
_VWIRE_RE = re.compile(
    r"^\s*wire\s+\[(?P<high>\d+):0\]\s+(?P<name>[A-Za-z_]\w*)\s*;\s*$"
)
_ASSIGN_RE = re.compile(r"^\s*assign\s+(?P<lhs>\S+)\s*=\s*(?P<rhs>.+);.*$")
_REF_RE = re.compile(r"^(?P<base>[A-Za-z_]\w*)(?:\[(?P<hi>\d+)(?::(?P<lo>\d+))?\])?$")


def emit_gear_hierarchical(config: GeArConfig, name: Optional[str] = None) -> str:
    """Render GeAr(N, R, P) as modular Verilog (sub-adder + top).

    The sub-adder module is the gate-level L-bit ripple adder; the top
    module instantiates one per window, selects each window's resultant
    bits, and derives the ``ERR`` flags from the prediction-bit propagates
    and the previous instance's carry out.
    """
    top_name = name or f"gear_h_{config.n}_{config.r}_{config.p}"
    windows = config.windows()
    lengths = sorted({w.length for w in windows})
    sub_sources: List[str] = []
    sub_names: Dict[int, str] = {}
    for length in lengths:
        sub = build_rca(length, name=f"{top_name}_sub{length}")
        sub_names[length] = sub.name
        sub_sources.append(to_verilog(sub))

    k = config.k
    lines: List[str] = [
        f"module {top_name} (",
        f"  input  [{config.n - 1}:0] A,",
        f"  input  [{config.n - 1}:0] B,",
        f"  output [{config.n}:0] S" + ("," if k > 1 else ""),
    ]
    if k > 1:
        lines.append(f"  output [{k - 2}:0] ERR")
    lines.append(");")

    # Instances with their output vectors.
    for i, w in enumerate(windows):
        lines.append(f"  wire [{w.length}:0] win{i};")
        lines.append(
            f"  {sub_names[w.length]} u{i} (.A(A[{w.high}:{w.low}]), "
            f".B(B[{w.high}:{w.low}]), .S(win{i}));"
        )

    # Resultant-bit selection.
    for i, w in enumerate(windows):
        for bit in range(w.result_low, w.result_high + 1):
            lines.append(f"  assign S[{bit}] = win{i}[{bit - w.low}];")
    last = len(windows) - 1
    lines.append(f"  assign S[{config.n}] = win{last}[{windows[last].length}];")

    # Detection flags: cp_i (AND of prediction propagates) & co_{i-1}.
    for i, w in enumerate(windows[1:], start=1):
        props = [f"(A[{w.low + j}] ^ B[{w.low + j}])"
                 for j in range(w.prediction_bits)]
        cp = " & ".join(props)
        prev = windows[i - 1]
        lines.append(
            f"  assign ERR[{i - 1}] = ({cp}) & win{i - 1}[{prev.length}];"
        )

    lines.append("endmodule")
    return "\n".join(sub_sources) + "\n" + "\n".join(lines) + "\n"


def _split_modules(source: str) -> Dict[str, str]:
    """Module name -> full module text."""
    modules: Dict[str, str] = {}
    for match in re.finditer(r"module\s+([A-Za-z_]\w*)\b.*?endmodule",
                             source, flags=re.S):
        modules[match.group(1)] = match.group(0)
    if not modules:
        raise VerilogSyntaxError("no modules found")
    return modules


def _expand_ref(ref: str, widths: Dict[str, int]) -> List[str]:
    """A connection reference -> list of bit references, MSB first."""
    m = _REF_RE.match(ref)
    if m is None:
        raise VerilogSyntaxError(f"unsupported connection reference {ref!r}")
    base, hi, lo = m.group("base"), m.group("hi"), m.group("lo")
    if hi is None:
        width = widths.get(base)
        if width is None:
            raise VerilogSyntaxError(f"unknown vector {base!r} in connection")
        return [f"{base}[{i}]" for i in range(width - 1, -1, -1)]
    if lo is None:
        return [f"{base}[{hi}]"]
    return [f"{base}[{i}]" for i in range(int(hi), int(lo) - 1, -1)]


def elaborate_hierarchical(source: str, top: Optional[str] = None) -> Netlist:
    """Flatten the emitted hierarchical format into one netlist.

    Args:
        source: Verilog text containing leaf modules plus one top module.
        top: name of the top module (default: the last module in the file).
    """
    modules = _split_modules(source)
    order = list(modules)
    top_name = top or order[-1]
    if top_name not in modules:
        raise VerilogSyntaxError(f"top module {top_name!r} not found")

    # Leaf modules (no instances of other known modules) parse flat.
    leaves: Dict[str, Netlist] = {}
    for name, text in modules.items():
        if name == top_name:
            continue
        leaves[name] = parse_verilog(text)

    body = modules[top_name].splitlines()
    result = Netlist(top_name)

    # Header: input/output declarations.
    input_widths: Dict[str, int] = {}
    output_widths: Dict[str, int] = {}
    for line in body:
        m = re.match(r"\s*(input|output)\s+\[(\d+):0\]\s+([A-Za-z_]\w*)", line)
        if m:
            direction, high, bus = m.group(1), int(m.group(2)), m.group(3)
            if direction == "input":
                input_widths[bus] = high + 1
                result.add_input_bus(bus, high + 1)
            else:
                output_widths[bus] = high + 1

    # vector wires for instance outputs: name -> width
    vector_widths: Dict[str, int] = {}
    # mapping from "vecname[i]" to a concrete net in `result`
    alias: Dict[str, str] = {}
    outputs: Dict[str, Dict[int, str]] = {b: {} for b in output_widths}

    def resolve(ref: str) -> str:
        if ref in alias:
            return alias[ref]
        m = _REF_RE.match(ref)
        if m and m.group("base") in input_widths and m.group("hi") is not None:
            return ref  # primary input bit, already a net
        raise VerilogSyntaxError(f"unresolvable reference {ref!r}")

    for line in body:
        if _VWIRE_RE.match(line):
            m = _VWIRE_RE.match(line)
            assert m is not None
            vector_widths[m.group("name")] = int(m.group("high")) + 1
            continue
        inst = _INSTANCE_RE.match(line)
        if inst and inst.group("module") in leaves:
            leaf = leaves[inst.group("module")]
            prefix = inst.group("inst")
            conns = dict(
                (c.group("port"), c.group("ref"))
                for c in _CONN_RE.finditer(inst.group("conns"))
            )
            # Map leaf input bits to outer nets.
            port_map: Dict[str, str] = {}
            widths = {**input_widths, **vector_widths}
            for bus, width in leaf.input_buses.items():
                if bus not in conns:
                    raise VerilogSyntaxError(
                        f"instance {prefix} leaves port {bus} unconnected"
                    )
                bits = _expand_ref(conns[bus], widths)
                if len(bits) != width:
                    raise VerilogSyntaxError(
                        f"width mismatch on {prefix}.{bus}"
                    )
                for i, ref in enumerate(reversed(bits)):  # LSB first
                    port_map[f"{bus}[{i}]"] = resolve(ref)
            # Replay leaf gates with prefixed names.
            rename: Dict[str, str] = dict(port_map)
            for gate in leaf.topological_order():
                if gate.op is Op.INPUT:
                    continue
                new_name = f"{prefix}__{gate.output}".replace("[", "_").replace("]", "")
                inputs = tuple(rename[n] for n in gate.inputs)
                result.add_gate(gate.op, inputs, output=new_name,
                                group=gate.group)
                rename[gate.output] = new_name
            # Bind leaf outputs to the instance's vector wire.
            for bus, nets in leaf.output_buses.items():
                if bus not in conns:
                    continue
                target = conns[bus]
                if target not in vector_widths:
                    raise VerilogSyntaxError(
                        f"instance output {prefix}.{bus} must drive a "
                        f"declared vector wire, got {target!r}"
                    )
                if vector_widths[target] != len(nets):
                    raise VerilogSyntaxError(f"width mismatch on wire {target}")
                for i, net in enumerate(nets):
                    alias[f"{target}[{i}]"] = rename[net]
            continue
        assign = _ASSIGN_RE.match(line)
        if assign:
            lhs = assign.group("lhs")
            rhs = assign.group("rhs").strip()
            m = _REF_RE.match(lhs)
            if m is None or m.group("hi") is None or m.group("lo") is not None:
                raise VerilogSyntaxError(f"unsupported assign target {lhs!r}")
            bus, index = m.group("base"), int(m.group("hi"))
            if bus not in output_widths:
                raise VerilogSyntaxError(f"assign to non-output {bus!r}")
            outputs[bus][index] = _parse_top_expr(result, rhs, resolve)
            continue

    for bus, width in output_widths.items():
        missing = [i for i in range(width) if i not in outputs[bus]]
        if missing:
            raise VerilogSyntaxError(f"output {bus} bits unassigned: {missing}")
        result.set_output_bus(bus, [outputs[bus][i] for i in range(width)])
    return result


def _parse_top_expr(netlist: Netlist, text: str, resolve) -> str:
    """Parse the top module's flag expressions: refs, ^ inside parens, &.

    Grammar (exactly what the emitter produces)::

        expr := term ("&" term)*
        term := ref | "(" ref "^" ref ")" | "(" expr ")"
    """
    tokens = re.findall(r"[A-Za-z_]\w*\[\d+\]|[()^&]", text)
    pos = 0

    def peek() -> Optional[str]:
        return tokens[pos] if pos < len(tokens) else None

    def take(expected: Optional[str] = None) -> str:
        nonlocal pos
        if pos >= len(tokens):
            raise VerilogSyntaxError(f"unexpected end of expression: {text!r}")
        tok = tokens[pos]
        if expected is not None and tok != expected:
            raise VerilogSyntaxError(f"expected {expected!r}, got {tok!r}")
        pos += 1
        return tok

    def term() -> str:
        if peek() == "(":
            take("(")
            left = expr()
            if peek() == "^":
                take("^")
                right = expr()
                take(")")
                return netlist.xor(left, right)
            take(")")
            return left
        return resolve(take())

    def expr() -> str:
        operands = [term()]
        while peek() == "&":
            take("&")
            operands.append(term())
        if len(operands) == 1:
            return operands[0]
        return netlist.and_(*operands)

    net = expr()
    if pos != len(tokens):
        raise VerilogSyntaxError(f"trailing tokens in expression {text!r}")
    return net
