"""FPGA LUT-count estimation via greedy fanout-free cone packing.

The paper reports area as "LUTs used" after Xilinx ISE synthesis (Table I /
Table II).  We approximate technology mapping with a standard greedy
heuristic: walk the netlist in reverse topological order and merge each gate
into its unique fanout gate whenever the merged cone still fits a K-input
LUT (K = 6 for Virtex-6).  This systematically reproduces the *relative*
area ordering between adder structures — more sub-adders and wider carry
prediction mean more unmergeable cones and therefore more LUTs.

Gates tagged ``group="carry"`` model logic absorbed by the dedicated carry
chain (MUXCY/XORCY); following Xilinx conventions each carry-chain bit
occupies the LUT it is paired with, so such gates count toward the LUT that
feeds them rather than adding new LUTs.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.rtl.gates import Op
from repro.rtl.netlist import Netlist


def estimate_luts(netlist: Netlist, k: int = 6, absorb_carry: bool = True) -> int:
    """Estimate the number of K-input LUTs needed to map ``netlist``.

    Args:
        netlist: circuit to map.
        k: LUT input count (6 for Virtex-6, 4 for older families).
        absorb_carry: if True, gates tagged ``group="carry"`` are absorbed
            into their driver LUTs (dedicated carry-chain resources).

    Returns:
        Estimated LUT count (>= 0).
    """
    if k < 2:
        raise ValueError(f"LUT input count must be >= 2, got {k}")

    fanout = netlist.fanout_counts()
    # Nets that feed primary outputs must remain visible: mark them as having
    # an extra (external) fanout so their cones are not merged away.
    for net in netlist.output_nets():
        fanout[net] += 1

    # support[net]: set of cone leaf nets (primary inputs / cone boundaries)
    # if the gate driving `net` has been merged into its fanout, it has no
    # entry in `roots`.
    roots: Dict[str, Set[str]] = {}
    order = netlist.topological_order()
    for gate in order:
        if gate.is_source:
            continue
        if absorb_carry and gate.group == "carry":
            continue
        roots[gate.output] = set(gate.inputs)

    # Greedy merge in forward topological order: a gate with exactly one
    # fanout whose combined support fits in k inputs is folded into the
    # consumer.  We iterate until a fixed point; each pass is linear.
    changed = True
    while changed:
        changed = False
        for gate in order:
            net = gate.output
            if net not in roots:
                continue
            if fanout.get(net, 0) != 1:
                continue
            # Find the unique consumer root that references `net`.
            consumer = None
            for other in order:
                if other.output in roots and net in roots[other.output]:
                    consumer = other.output
                    break
            if consumer is None:
                continue
            merged = (roots[consumer] - {net}) | roots[net]
            if len(merged) <= k:
                roots[consumer] = merged
                del roots[net]
                changed = True
    return len(roots)


def estimate_luts_fast(netlist: Netlist, k: int = 6, absorb_carry: bool = True) -> int:
    """Single-pass variant of :func:`estimate_luts` (no fixed-point loop).

    Merges in reverse topological order, folding each single-fanout gate
    into its consumer once.  Slightly less aggressive than the fixed-point
    version but O(gates × k) and adequate for large sweeps.
    """
    if k < 2:
        raise ValueError(f"LUT input count must be >= 2, got {k}")

    fanout = netlist.fanout_counts()
    for net in netlist.output_nets():
        fanout[net] += 1

    consumers: Dict[str, str] = {}
    for gate in netlist.gates.values():
        for src in gate.inputs:
            consumers[src] = gate.output  # only meaningful when fanout == 1

    support: Dict[str, Set[str]] = {}
    merged_away: Set[str] = set()
    order = netlist.topological_order()
    for gate in order:
        if gate.is_source:
            continue
        if absorb_carry and gate.group == "carry":
            merged_away.add(gate.output)
            continue
        sup: Set[str] = set()
        for src in gate.inputs:
            if src in support and src in merged_away:
                sup |= support[src]
            else:
                sup.add(src)
        support[gate.output] = sup

    luts = 0
    for gate in reversed(order):
        net = gate.output
        if gate.is_source or net in merged_away or net not in support:
            continue
        consumer = consumers.get(net)
        if (
            fanout.get(net, 0) == 1
            and consumer is not None
            and consumer in support
            and consumer not in merged_away
        ):
            merged = (support[consumer] - {net}) | support[net]
            if len(merged) <= k:
                support[consumer] = merged
                merged_away.add(net)
                continue
        luts += 1
    return luts
