"""Built-in lint rules over :class:`~repro.rtl.netlist.Netlist` graphs.

Each rule registers itself with :func:`repro.rtl.lint.register_rule`; the
framework hands every rule a shared :class:`~repro.rtl.lint.LintContext`
and collects the yielded :class:`~repro.rtl.lint.Diagnostic` objects.

Severity policy:

* **error** — the netlist cannot be trusted (simulation/STA would raise or
  silently mis-evaluate, or the Verilog emitter would produce garbage).
* **warning** — structurally valid but almost certainly a builder bug
  (dead logic, foldable constants, mis-attributed group tags).
* **info** — legitimate-by-design structures worth knowing about
  (strash candidates, fanout beyond the FPGA timing model's sweet spot).
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.rtl.gates import Gate, Op
from repro.rtl.lint import Diagnostic, LintContext, Rule, Severity, register_rule
from repro.rtl.netlist import IDENTIFIER_RE, bus_net

#: Verilog-2001 reserved words that could plausibly appear as net or module
#: names.  The emitter writes identifiers verbatim, so a collision produces
#: RTL that no tool (including our own parser) accepts.
VERILOG_KEYWORDS = frozenset(
    """always and assign begin buf bufif0 bufif1 case casex casez cmos deassign
    default defparam disable edge else end endcase endfunction endmodule
    endprimitive endspecify endtable endtask event for force forever fork
    function highz0 highz1 if ifnone initial inout input integer join large
    localparam macromodule medium module nand negedge nmos nor not notif0
    notif1 or output parameter pmos posedge primitive pull0 pull1 pulldown
    pullup rcmos real realtime reg release repeat rnmos rpmos rtran rtranif0
    rtranif1 scalared signed small specify specparam strong0 strong1 supply0
    supply1 table task time tran tranif0 tranif1 tri tri0 tri1 triand trior
    trireg unsigned vectored wait wand weak0 weak1 while wire wor xnor
    xor""".split()
)

#: Fanout beyond which the flat per-gate ``net_delay`` of
#: :class:`~repro.rtl.sta.FpgaDelayModel` stops being a fair approximation
#: (real routing delay grows with endpoint count).
FANOUT_LIMIT = 16

_CONST_OPS = frozenset((Op.CONST0, Op.CONST1))


# --------------------------------------------------------------------- #
# Graph integrity
# --------------------------------------------------------------------- #


def _strongly_connected_components(
    gates: Dict[str, Gate]
) -> Iterator[List[str]]:
    """Iterative Tarjan over the driver graph (edges: gate input -> output).

    Yields only non-trivial SCCs: size > 1, or a single net that drives
    itself.  Works on arbitrary graphs — this is the one place in the
    substrate that must not assume acyclicity.
    """
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = 0

    for root in gates:
        if root in index:
            continue
        # Explicit DFS stack: (net, iterator over successors).
        work = [(root, iter(gates[root].inputs))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            net, successors = work[-1]
            advanced = False
            for src in successors:
                if src not in gates:
                    continue  # undriven net: reported by its own rule
                if src not in index:
                    index[src] = lowlink[src] = counter
                    counter += 1
                    stack.append(src)
                    on_stack.add(src)
                    work.append((src, iter(gates[src].inputs)))
                    advanced = True
                    break
                if src in on_stack:
                    lowlink[net] = min(lowlink[net], index[src])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[net])
            if lowlink[net] == index[net]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == net:
                        break
                if len(component) > 1 or net in gates[net].inputs:
                    yield component


@register_rule(
    "combinational-loop",
    Severity.ERROR,
    "cycle in the gate graph: simulation and STA would not terminate",
)
def check_combinational_loop(ctx: LintContext, rule: Rule) -> Iterable[Diagnostic]:
    for component in _strongly_connected_components(dict(ctx.gates)):
        members = sorted(component)
        shown = ", ".join(members[:6]) + (" …" if len(members) > 6 else "")
        yield ctx.diag(
            rule,
            f"combinational loop through {len(members)} net(s): {shown}",
            net=members[0],
            nets=members,
        )


@register_rule(
    "undriven-net",
    Severity.ERROR,
    "net referenced as a gate input or output-bus bit but driven by no gate",
)
def check_undriven_net(ctx: LintContext, rule: Rule) -> Iterable[Diagnostic]:
    reported: Set[str] = set()
    for gate in ctx.gates.values():
        for src in gate.inputs:
            if src not in ctx.gates and src not in reported:
                reported.add(src)
                yield ctx.diag(
                    rule,
                    f"net {src!r} feeds gate {gate.output!r} but has no driver",
                    net=src,
                    consumer=gate.output,
                )
    for bus, nets in ctx.netlist.output_buses.items():
        for i, net in enumerate(nets):
            if net not in ctx.gates and net not in reported:
                reported.add(net)
                yield ctx.diag(
                    rule,
                    f"output bit {bus}[{i}] references undriven net {net!r}",
                    net=net,
                    bus=bus,
                    bit=i,
                )


@register_rule(
    "multiply-driven-net",
    Severity.ERROR,
    "declared input-bus bit also driven by a logic gate",
)
def check_multiply_driven(ctx: LintContext, rule: Rule) -> Iterable[Diagnostic]:
    # The gates dict allows a single driver per net, so the only expressible
    # double drive is a logic gate occupying the slot of a declared primary
    # input bit (the port *and* the gate would both drive it in RTL).
    for net, (bus, i) in ctx.input_bits.items():
        gate = ctx.gates.get(net)
        if gate is not None and gate.op is not Op.INPUT:
            yield ctx.diag(
                rule,
                f"input bit {bus}[{i}] is driven by a {gate.op.value} gate "
                "in addition to the input port",
                net=net,
                op=gate.op.value,
            )


@register_rule(
    "input-op-misuse",
    Severity.ERROR,
    "INPUT-op gate not backed by a declared bus bit, or a declared bit missing",
)
def check_input_op_misuse(ctx: LintContext, rule: Rule) -> Iterable[Diagnostic]:
    for net, gate in ctx.gates.items():
        if gate.op is Op.INPUT and net not in ctx.input_bits:
            yield ctx.diag(
                rule,
                f"INPUT gate {net!r} does not correspond to any declared "
                "input-bus bit",
                net=net,
            )
    for net, (bus, i) in ctx.input_bits.items():
        if net not in ctx.gates:
            yield ctx.diag(
                rule,
                f"input bus {bus!r} declares width "
                f"{ctx.netlist.input_buses[bus]} but bit {i} has no INPUT "
                "gate (non-contiguous bus)",
                net=net,
                bus=bus,
                bit=i,
            )


# --------------------------------------------------------------------- #
# Redundant structure
# --------------------------------------------------------------------- #


@register_rule(
    "dead-logic",
    Severity.WARNING,
    "gate unreachable from every output bus (opt.sweep would delete it)",
)
def check_dead_logic(ctx: LintContext, rule: Rule) -> Iterable[Diagnostic]:
    if not ctx.netlist.output_buses:
        return  # "no outputs at all" is output-bus-shape's finding
    live = ctx.live()
    for net, gate in ctx.gates.items():
        if gate.is_source or net in live:
            continue
        yield ctx.diag(
            rule,
            f"{gate.op.value} gate {net!r} drives no output "
            "(dead logic; sweep would remove it)",
            net=net,
            op=gate.op.value,
        )


def _const_value(gate: Gate) -> Optional[int]:
    if gate.op is Op.CONST0:
        return 0
    if gate.op is Op.CONST1:
        return 1
    return None


def _fold(op: Op, values: List[int]) -> int:
    if op is Op.BUF:
        return values[0]
    if op is Op.NOT:
        return 1 - values[0]
    if op is Op.MUX:
        sel, d0, d1 = values
        return d1 if sel else d0
    if op in (Op.AND, Op.NAND):
        out = int(all(values))
    elif op in (Op.OR, Op.NOR):
        out = int(any(values))
    else:  # XOR / XNOR
        out = sum(values) & 1
    if op in (Op.NAND, Op.NOR, Op.XNOR):
        out = 1 - out
    return out


@register_rule(
    "constant-fold",
    Severity.WARNING,
    "logic gate whose inputs are all constants (foldable at build time)",
)
def check_constant_fold(ctx: LintContext, rule: Rule) -> Iterable[Diagnostic]:
    for net, gate in ctx.gates.items():
        if gate.is_source or not gate.inputs:
            continue
        values = []
        for src in gate.inputs:
            driver = ctx.gates.get(src)
            if driver is None or driver.op not in _CONST_OPS:
                break
            values.append(_const_value(driver))
        else:
            folds_to = _fold(gate.op, values)
            yield ctx.diag(
                rule,
                f"{gate.op.value} gate {net!r} has only constant inputs; "
                f"it always evaluates to {folds_to}",
                net=net,
                folds_to=folds_to,
            )


@register_rule(
    "duplicate-gate",
    Severity.INFO,
    "structurally identical gates left unshared (strash candidates)",
)
def check_duplicate_gate(ctx: LintContext, rule: Rule) -> Iterable[Diagnostic]:
    # Same key strash uses (identity substitution): op + operand multiset
    # (commutative ops) + group.  Info severity: builders legitimately defer
    # sharing to the optimiser, but the count is a useful health signal.
    from repro.rtl.opt import COMMUTATIVE_OPS

    seen: Dict[Tuple, str] = {}
    for net, gate in ctx.gates.items():
        if gate.is_source:
            continue
        inputs = (
            tuple(sorted(gate.inputs))
            if gate.op in COMMUTATIVE_OPS
            else gate.inputs
        )
        key = (gate.op, inputs, gate.group)
        first = seen.setdefault(key, net)
        if first != net:
            yield ctx.diag(
                rule,
                f"{gate.op.value} gate {net!r} duplicates {first!r} "
                "(strash would share them)",
                net=net,
                canonical=first,
            )


# --------------------------------------------------------------------- #
# Interface shape
# --------------------------------------------------------------------- #


@register_rule(
    "output-bus-shape",
    Severity.ERROR,
    "missing/empty/colliding output buses, or a sum bus of implausible width",
)
def check_output_bus_shape(ctx: LintContext, rule: Rule) -> Iterable[Diagnostic]:
    nl = ctx.netlist
    if not nl.output_buses:
        yield ctx.diag(
            rule, "netlist declares no output buses (nothing is observable)"
        )
        return
    for bus, nets in nl.output_buses.items():
        if not nets:
            yield ctx.diag(rule, f"output bus {bus!r} is empty", bus=bus)
        if bus in nl.input_buses:
            yield ctx.diag(
                rule,
                f"bus name {bus!r} is declared both as input and output",
                bus=bus,
            )
    # Width sanity for the conventional sum bus: every adder in this repo
    # produces S of width N or N+1 for N-bit operands; anything else is a
    # mis-wired result vector (e.g. a builder slicing off the wrong bits).
    if "S" in nl.output_buses and nl.input_buses:
        operand_width = max(nl.input_buses.values())
        sum_width = len(nl.output_buses["S"])
        if not operand_width <= sum_width <= operand_width + 1:
            yield ctx.diag(
                rule,
                f"sum bus S has width {sum_width} for operand width "
                f"{operand_width} (expected {operand_width} or "
                f"{operand_width + 1})",
                severity=Severity.WARNING,
                bus="S",
                width=sum_width,
                operand_width=operand_width,
            )


_BIT_REF_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)\[(\d+)\]\Z")


@register_rule(
    "net-name",
    Severity.ERROR,
    "net or module name the Verilog emitter cannot render",
)
def check_net_name(ctx: LintContext, rule: Rule) -> Iterable[Diagnostic]:
    name = ctx.netlist.name
    if not IDENTIFIER_RE.match(name) or name in VERILOG_KEYWORDS:
        yield ctx.diag(
            rule,
            f"module name {name!r} is not a legal Verilog identifier",
        )
    for net in ctx.gates:
        m = _BIT_REF_RE.match(net)
        if m and m.group(1) in ctx.netlist.input_buses:
            continue  # emitted as a bus-bit reference, always legal
        if not IDENTIFIER_RE.match(net):
            yield ctx.diag(
                rule,
                f"net name {net!r} is not emittable as a Verilog identifier",
                net=net,
            )
        elif net in VERILOG_KEYWORDS:
            yield ctx.diag(
                rule,
                f"net name {net!r} collides with a Verilog keyword",
                net=net,
            )


@register_rule(
    "fanout-outlier",
    Severity.INFO,
    f"net fanout beyond {FANOUT_LIMIT}: flat routing-delay model is optimistic",
)
def check_fanout_outlier(ctx: LintContext, rule: Rule) -> Iterable[Diagnostic]:
    for net, count in sorted(ctx.fanout.items()):
        if count > FANOUT_LIMIT and net in ctx.gates:
            yield ctx.diag(
                rule,
                f"net {net!r} fans out to {count} gate inputs "
                f"(> {FANOUT_LIMIT}); the FPGA delay model charges flat "
                "routing delay and will underestimate this path",
                net=net,
                fanout=count,
                limit=FANOUT_LIMIT,
            )


_GROUP_RE = re.compile(r"\S+\Z")


@register_rule(
    "group-label",
    Severity.WARNING,
    "group tags that break delay/area/power attribution or the Verilog round-trip",
)
def check_group_label(ctx: LintContext, rule: Rule) -> Iterable[Diagnostic]:
    for net, gate in ctx.gates.items():
        if not gate.group:
            continue
        if gate.is_source:
            # Delay/area/power models resolve sources before consulting the
            # group, so a tag here silently does nothing.
            yield ctx.diag(
                rule,
                f"source gate {net!r} ({gate.op.value}) carries group "
                f"{gate.group!r}, which no model will ever read",
                net=net,
                group=gate.group,
            )
        elif not _GROUP_RE.match(gate.group):
            # The emitter writes "// group:<tag>"; whitespace inside the tag
            # does not survive parse_verilog, so attribution changes after a
            # round trip.
            yield ctx.diag(
                rule,
                f"gate {net!r} has group {gate.group!r} containing "
                "whitespace; the tag will not survive a Verilog round-trip",
                net=net,
                group=gate.group,
            )
